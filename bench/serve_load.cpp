// SERVE — load-drives the snapshot query engine: compiles the built map
// into an in-memory `.itms` blob, loads it back through the validating
// reader (the exact production path of `itm serve`), then replays a large
// deterministic query stream through itm::net::Executor and reports QPS,
// a latency histogram and a seed-stable aggregate answer hash.
//
// The replay is deterministic end to end: query i is derived from
// Rng::split(i), every shard runs its own QueryEngine (own LRU cache), and
// per-shard results merge in shard order — so the answer hash and every
// deterministic counter are identical for any thread count.
//
// Three further phases drive the resident-server stack (`itm served`):
// a *sustained* phase replays a bounded hot working set through an
// Epoch/EpochManager pin-answer-unpin cycle (the cache-hot steady state a
// resident server converges to), a *swap* phase re-runs it while a writer
// applies an `.itmsd` delta mid-flight, and a verification phase proves
// the delta-built epoch answers byte-identically to an engine over the
// fresh target snapshot (answer-hash equality).
//
// Usage: serve_load [seed] [scale] [queries] [threads]
//   queries defaults to 1,000,000; threads 0 = hardware concurrency.
#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "net/rng.h"
#include "serve/delta.h"
#include "serve/format.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace {

using namespace itm;

// One replayed query, derived purely from the stream index: the mix leans
// on point lookups (the hot serving path) with a tail of rollups.
std::string make_query(const serve::Snapshot& snap, Rng rng) {
  const std::uint64_t pick = rng.next_below(100);
  if (pick < 70 && !snap.prefixes.empty()) {
    // Address inside a known client prefix (95%) or anywhere (5%).
    if (rng.next_below(20) == 0) {
      return "lookup " + Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()))
                             .to_string();
    }
    const auto& rec =
        snap.prefixes[rng.next_below(snap.prefixes.size())];
    const auto prefix = rec.prefix();
    const auto offset = rng.next_below(prefix.size());
    return "lookup " + prefix.address_at(offset).to_string();
  }
  if (pick < 80 && !snap.ases.empty()) {
    return "as " +
           std::to_string(snap.ases[rng.next_below(snap.ases.size())].asn);
  }
  if (pick < 88 && !snap.ases.empty()) {
    return "outage " +
           std::to_string(snap.ases[rng.next_below(snap.ases.size())].asn);
  }
  if (pick < 93 && !snap.countries.empty()) {
    return "country " +
           std::to_string(
               snap.countries[rng.next_below(snap.countries.size())].country);
  }
  if (pick < 97) return "top-as " + std::to_string(1 + rng.next_below(20));
  if (pick < 99) {
    return "top-country " + std::to_string(1 + rng.next_below(8));
  }
  return "stats";
}

struct ShardResult {
  std::uint64_t hash = 0;
  std::uint64_t answer_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto scenario = bench::make_scenario(argc, argv);
  const std::size_t total_queries =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;
  const std::size_t threads =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;

  core::MapBuilder builder(*scenario);
  core::MapBuildOptions build_options;
  build_options.threads = threads;
  std::cerr << "[bench] building the traffic map...\n";
  const auto map = builder.build(build_options);

  // Compile and reload through the production path: the engines below serve
  // from validated file bytes, not from the builder's structures.
  bench::WallTimer compile_timer;
  std::ostringstream blob_out;
  serve::write_snapshot(map, *scenario, blob_out);
  const std::string blob = blob_out.str();
  std::string error;
  const auto snapshot = serve::read_snapshot(std::string_view(blob), &error);
  if (!snapshot) {
    std::cerr << "[bench] snapshot rejected: " << error << "\n";
    return 1;
  }
  std::ostringstream blob_again;
  serve::write_snapshot(*snapshot, blob_again);
  if (blob_again.str() != blob) {
    std::cerr << "[bench] snapshot round-trip is not byte-identical\n";
    return 1;
  }
  std::cerr << "[bench] snapshot: " << blob.size() << " bytes, "
            << snapshot->prefixes.size() << " prefixes, "
            << snapshot->endpoints.size() << " endpoints (compile+reload "
            << core::num(compile_timer.seconds(), 3) << " s)\n";

  net::Executor executor(threads);
  const Rng base(scenario->config().seed ^ 0x5e7f);
  // Latency is wall-clock by nature; the histogram handle is resolved once
  // so the per-query cost is two clock reads and one atomic increment.
  static constexpr std::uint64_t kLatencyBoundsUs[] = {1,   2,   5,    10,
                                                       20,  50,  100,  200,
                                                       500, 1000, 5000};
  auto& latency_us = obs::metrics().histogram(
      "serve_load.latency_us", kLatencyBoundsUs, obs::Determinism::kWallClock);

  bench::WallTimer replay_timer;
  const serve::Snapshot& snap = *snapshot;
  const auto shard_results = executor.map_shards<ShardResult>(
      total_queries,
      [&snap, &base, &latency_us](const net::Executor::Shard& shard) {
        serve::QueryEngine engine(snap, 4096);
        ShardResult result;
        result.hash = serve::fnv1a64("");
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          const std::string query = make_query(snap, base.split(i));
          bench::WallTimer query_timer;
          const std::string answer = engine.execute(query);
          latency_us.observe(
              static_cast<std::uint64_t>(query_timer.seconds() * 1e6));
          // Chain the per-answer hash in index order within the shard.
          result.hash ^= serve::fnv1a64(answer);
          result.hash *= 0x100000001b3ull;
          result.answer_bytes += answer.size();
        }
        result.cache_hits = engine.cache_hits();
        result.cache_misses = engine.cache_misses();
        return result;
      });
  const double elapsed = replay_timer.seconds();

  // Shard-order merge: boundaries depend only on the query count, so the
  // aggregate is identical for every thread count.
  std::uint64_t hash = serve::fnv1a64("");
  std::uint64_t answer_bytes = 0, hits = 0, misses = 0;
  for (const auto& shard : shard_results) {
    hash ^= shard.hash;
    hash *= 0x100000001b3ull;
    answer_bytes += shard.answer_bytes;
    hits += shard.cache_hits;
    misses += shard.cache_misses;
  }
  obs::count("serve_load.queries", total_queries);
  obs::count("serve_load.answer_bytes", answer_bytes);
  obs::count("serve_load.cache.hits", hits);
  obs::count("serve_load.cache.misses", misses);
  obs::gauge_set("serve_load.answer_hash",
                 static_cast<std::int64_t>(hash));

  std::cout << "== SERVE: snapshot query-serving load ==\n";
  std::cout << "queries: " << total_queries << " over "
            << executor.thread_count() << " threads in "
            << core::num(elapsed, 3) << " s ("
            << core::num(elapsed > 0 ? total_queries / elapsed : 0, 0)
            << " qps)\n";
  std::cout << "answers: " << answer_bytes << " bytes, cache hit rate "
            << core::pct(hits + misses > 0
                             ? static_cast<double>(hits) / (hits + misses)
                             : 0)
            << "\n";
  std::cout << "answer hash: " << hash
            << " (stable for this seed across thread counts)\n";
  const auto counts = latency_us.counts();
  std::cout << "latency: count=" << latency_us.count()
            << " mean_us=" << core::num(latency_us.count() > 0
                                            ? static_cast<double>(
                                                  latency_us.sum()) /
                                                  latency_us.count()
                                            : 0,
                                        2)
            << " p_le_10us="
            << core::pct(latency_us.count() > 0
                             ? static_cast<double>(counts[0] + counts[1] +
                                                   counts[2] + counts[3]) /
                                   latency_us.count()
                             : 0)
            << "\n";
  // Every shard engine feeds the shared "serve.query_latency_us" quantile
  // histogram; the log-bucket quantiles are exact to one bucket. Resolution
  // is 1 us, so sub-microsecond quantiles clamp to 1 in the record.
  const auto& quantiles = obs::metrics().quantile("serve.query_latency_us");
  const double p50 = quantiles.quantile(0.50);
  const double p90 = quantiles.quantile(0.90);
  const double p99 = quantiles.quantile(0.99);
  const double p999 = quantiles.quantile(0.999);
  std::cout << "latency quantiles (us): p50=" << core::num(p50, 1)
            << " p90=" << core::num(p90, 1) << " p99=" << core::num(p99, 1)
            << " p999=" << core::num(p999, 1)
            << " max=" << quantiles.max() << "\n";
  // ---- Resident-server phases: the `itm served` serving stack.
  // Hot working set: enough distinct queries to exercise the answer paths,
  // few enough that the per-slot LRU caches converge to all-hits — the
  // steady state of a resident server fed a production query mix.
  const std::size_t hot_set_size = std::min<std::size_t>(2048, total_queries);
  std::vector<std::string> hot_set;
  hot_set.reserve(hot_set_size);
  for (std::size_t i = 0; i < hot_set_size; ++i) {
    hot_set.push_back(make_query(snap, base.split(0x40000000ull + i)));
  }

  serve::EpochManager epochs;
  {
    auto epoch0 = serve::Epoch::from_bytes(0, blob, 4096, &error);
    if (!epoch0) {
      std::cerr << "[bench] epoch load rejected: " << error << "\n";
      return 1;
    }
    (void)epochs.install(std::move(epoch0));
  }

  // Answers the hot set `rounds` times through the pinned epoch, one
  // executor batch per round — exactly Server::answer_batch: one pin per
  // shard, the shard index as the cache slot. The shard split depends only
  // on the hot-set size, so every round re-visits the same per-slot slice
  // and the caches converge to all-hits after the first pass.
  const auto run_resident =
      [&](std::size_t rounds) -> std::pair<double, std::uint64_t> {
    std::uint64_t h = serve::fnv1a64("");
    bench::WallTimer timer;
    for (std::size_t round = 0; round < rounds; ++round) {
      const auto hashes = executor.map_shards<std::uint64_t>(
          hot_set.size(),
          [&epochs, &hot_set](const net::Executor::Shard& shard) {
            const serve::EpochPin pin(epochs, shard.index);
            std::uint64_t shard_hash = serve::fnv1a64("");
            for (std::size_t i = shard.begin; i < shard.end; ++i) {
              const std::string answer = pin->answer(shard.index, hot_set[i]);
              shard_hash ^= serve::fnv1a64(answer);
              shard_hash *= 0x100000001b3ull;
            }
            return shard_hash;
          });
      for (const std::uint64_t shard_hash : hashes) {
        h ^= shard_hash;
        h *= 0x100000001b3ull;
      }
    }
    return {timer.seconds(), h};
  };

  // Warm the per-slot caches, then measure the cache-hot steady state.
  const std::size_t sustained_rounds =
      std::max<std::size_t>(1, total_queries / hot_set.size());
  (void)run_resident(1);
  const auto [sustained_s, sustained_hash] = run_resident(sustained_rounds);
  const std::size_t sustained_queries = hot_set.size() * sustained_rounds;
  const double sustained_qps =
      sustained_s > 0 ? sustained_queries / sustained_s : 0;
  std::cout << "resident sustained: " << sustained_queries << " queries in "
            << core::num(sustained_s, 3) << " s ("
            << core::num(sustained_qps, 0) << " qps cache-hot)\n";

  // ---- Delta apply + hot swap under load.
  // The target map: the same world after a probing increment — a small,
  // realistic delta against the live snapshot.
  const auto target_snapshot = [&] {
    serve::Snapshot next = snap;
    next.addresses_probed += 4096;
    if (!next.ases.empty()) next.ases.front().activity *= 1.25;
    return next;
  }();
  std::ostringstream target_out;
  serve::write_snapshot(target_snapshot, target_out);
  const std::string target_blob = target_out.str();
  const auto delta = serve::diff_snapshots(blob, target_blob, &error);
  if (!delta) {
    std::cerr << "[bench] diff failed: " << error << "\n";
    return 1;
  }
  bench::WallTimer apply_timer;
  const auto applied = serve::apply_delta(blob, *delta, &error);
  const double delta_apply_us = apply_timer.seconds() * 1e6;
  if (!applied || *applied != target_blob) {
    std::cerr << "[bench] delta apply is not byte-identical: " << error
              << "\n";
    return 1;
  }
  std::cout << "delta: " << delta->size() << " bytes applied in "
            << core::num(delta_apply_us, 0) << " us (byte-identical to the "
            << target_blob.size() << "-byte target)\n";

  // Swap while the sustained workload is in flight: a writer thread
  // installs the delta-built epoch mid-run; readers keep answering with no
  // locks taken, and the retired epoch is returned only after every reader
  // slot released it.
  auto epoch1 = serve::Epoch::from_bytes(1, *applied, 4096, &error);
  if (!epoch1) {
    std::cerr << "[bench] applied epoch rejected: " << error << "\n";
    return 1;
  }
  std::unique_ptr<const serve::Epoch> retired;
  {
    std::unique_ptr<const serve::Epoch> next = std::move(epoch1);
    std::thread writer([&epochs, &retired, &next] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      retired = epochs.install(std::move(next));
    });
    const auto [swap_s, swap_hash] = run_resident(sustained_rounds);
    writer.join();
    (void)swap_hash;  // pre/post answers interleave; verified quiescently below
    std::cout << "swap under load: " << sustained_queries << " queries in "
              << core::num(swap_s, 3) << " s with 1 hot swap (retired epoch "
              << (retired ? retired->id() : 0) << " after "
              << (retired ? retired->queries() : 0) << " answers)\n";
  }

  // Quiescent verification: the delta-built epoch must answer the hot set
  // byte-identically to a fresh engine over the target snapshot bytes.
  const auto [verify_s, post_hash] = run_resident(1);
  (void)verify_s;
  const auto target_view = serve::borrow_snapshot(target_blob, &error);
  if (!target_view) {
    std::cerr << "[bench] target view rejected: " << error << "\n";
    return 1;
  }
  const serve::QueryEngine target_engine(*target_view, 0);
  // Same shard split and merge as run_resident(1), so the two hashes are
  // comparable exactly.
  const auto expected_shards = executor.map_shards<std::uint64_t>(
      hot_set.size(),
      [&target_engine, &hot_set](const net::Executor::Shard& shard) {
        std::uint64_t h = serve::fnv1a64("");
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          h ^= serve::fnv1a64(target_engine.answer(hot_set[i]));
          h *= 0x100000001b3ull;
        }
        return h;
      });
  std::uint64_t expected_hash = serve::fnv1a64("");
  for (const std::uint64_t shard_hash : expected_shards) {
    expected_hash ^= shard_hash;
    expected_hash *= 0x100000001b3ull;
  }
  if (post_hash != expected_hash) {
    std::cerr << "[bench] post-swap answers diverge from the fresh target "
                 "snapshot (hash " << post_hash << " != " << expected_hash
              << ")\n";
    return 1;
  }
  std::cout << "post-swap answer hash matches a fresh engine over the "
               "target snapshot (" << post_hash << ")\n";

  bench::BenchRecord record("serve_load");
  record.str("scale", argc > 2 ? argv[2] : "default")
      .num("seed", scenario->config().seed)
      .num("queries", static_cast<std::uint64_t>(total_queries))
      .num("threads", static_cast<std::uint64_t>(executor.thread_count()))
      .num("answer_hash", hash)
      .num("qps", elapsed > 0 ? total_queries / elapsed : 0.0)
      .num("sustained_qps", sustained_qps)
      .num("sustained_hash", sustained_hash)
      .num("delta_apply_us", std::max(delta_apply_us, 1.0))
      .num("swaps", epochs.swaps())
      .num("serve_p50_us", std::max(p50, 1.0))
      .num("serve_p99_us", std::max(p99, 1.0));
  std::cout << record.line();
  itm::bench::dump_metrics_snapshot("serve_load");
  return 0;
}
