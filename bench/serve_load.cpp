// SERVE — load-drives the snapshot query engine: compiles the built map
// into an in-memory `.itms` blob, loads it back through the validating
// reader (the exact production path of `itm serve`), then replays a large
// deterministic query stream through itm::net::Executor and reports QPS,
// a latency histogram and a seed-stable aggregate answer hash.
//
// The replay is deterministic end to end: query i is derived from
// Rng::split(i), every shard runs its own QueryEngine (own LRU cache), and
// per-shard results merge in shard order — so the answer hash and every
// deterministic counter are identical for any thread count.
//
// Usage: serve_load [seed] [scale] [queries] [threads]
//   queries defaults to 1,000,000; threads 0 = hardware concurrency.
#include <algorithm>
#include <sstream>
#include <string_view>

#include "bench_common.h"
#include "net/rng.h"
#include "serve/format.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace {

using namespace itm;

// One replayed query, derived purely from the stream index: the mix leans
// on point lookups (the hot serving path) with a tail of rollups.
std::string make_query(const serve::Snapshot& snap, Rng rng) {
  const std::uint64_t pick = rng.next_below(100);
  if (pick < 70 && !snap.prefixes.empty()) {
    // Address inside a known client prefix (95%) or anywhere (5%).
    if (rng.next_below(20) == 0) {
      return "lookup " + Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()))
                             .to_string();
    }
    const auto& rec =
        snap.prefixes[rng.next_below(snap.prefixes.size())];
    const auto prefix = rec.prefix();
    const auto offset = rng.next_below(prefix.size());
    return "lookup " + prefix.address_at(offset).to_string();
  }
  if (pick < 80 && !snap.ases.empty()) {
    return "as " +
           std::to_string(snap.ases[rng.next_below(snap.ases.size())].asn);
  }
  if (pick < 88 && !snap.ases.empty()) {
    return "outage " +
           std::to_string(snap.ases[rng.next_below(snap.ases.size())].asn);
  }
  if (pick < 93 && !snap.countries.empty()) {
    return "country " +
           std::to_string(
               snap.countries[rng.next_below(snap.countries.size())].country);
  }
  if (pick < 97) return "top-as " + std::to_string(1 + rng.next_below(20));
  if (pick < 99) {
    return "top-country " + std::to_string(1 + rng.next_below(8));
  }
  return "stats";
}

struct ShardResult {
  std::uint64_t hash = 0;
  std::uint64_t answer_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto scenario = bench::make_scenario(argc, argv);
  const std::size_t total_queries =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;
  const std::size_t threads =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;

  core::MapBuilder builder(*scenario);
  core::MapBuildOptions build_options;
  build_options.threads = threads;
  std::cerr << "[bench] building the traffic map...\n";
  const auto map = builder.build(build_options);

  // Compile and reload through the production path: the engines below serve
  // from validated file bytes, not from the builder's structures.
  bench::WallTimer compile_timer;
  std::ostringstream blob_out;
  serve::write_snapshot(map, *scenario, blob_out);
  const std::string blob = blob_out.str();
  std::string error;
  const auto snapshot = serve::read_snapshot(std::string_view(blob), &error);
  if (!snapshot) {
    std::cerr << "[bench] snapshot rejected: " << error << "\n";
    return 1;
  }
  std::ostringstream blob_again;
  serve::write_snapshot(*snapshot, blob_again);
  if (blob_again.str() != blob) {
    std::cerr << "[bench] snapshot round-trip is not byte-identical\n";
    return 1;
  }
  std::cerr << "[bench] snapshot: " << blob.size() << " bytes, "
            << snapshot->prefixes.size() << " prefixes, "
            << snapshot->endpoints.size() << " endpoints (compile+reload "
            << core::num(compile_timer.seconds(), 3) << " s)\n";

  net::Executor executor(threads);
  const Rng base(scenario->config().seed ^ 0x5e7f);
  // Latency is wall-clock by nature; the histogram handle is resolved once
  // so the per-query cost is two clock reads and one atomic increment.
  static constexpr std::uint64_t kLatencyBoundsUs[] = {1,   2,   5,    10,
                                                       20,  50,  100,  200,
                                                       500, 1000, 5000};
  auto& latency_us = obs::metrics().histogram(
      "serve_load.latency_us", kLatencyBoundsUs, obs::Determinism::kWallClock);

  bench::WallTimer replay_timer;
  const serve::Snapshot& snap = *snapshot;
  const auto shard_results = executor.map_shards<ShardResult>(
      total_queries,
      [&snap, &base, &latency_us](const net::Executor::Shard& shard) {
        serve::QueryEngine engine(snap, 4096);
        ShardResult result;
        result.hash = serve::fnv1a64("");
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          const std::string query = make_query(snap, base.split(i));
          bench::WallTimer query_timer;
          const std::string answer = engine.execute(query);
          latency_us.observe(
              static_cast<std::uint64_t>(query_timer.seconds() * 1e6));
          // Chain the per-answer hash in index order within the shard.
          result.hash ^= serve::fnv1a64(answer);
          result.hash *= 0x100000001b3ull;
          result.answer_bytes += answer.size();
        }
        result.cache_hits = engine.cache_hits();
        result.cache_misses = engine.cache_misses();
        return result;
      });
  const double elapsed = replay_timer.seconds();

  // Shard-order merge: boundaries depend only on the query count, so the
  // aggregate is identical for every thread count.
  std::uint64_t hash = serve::fnv1a64("");
  std::uint64_t answer_bytes = 0, hits = 0, misses = 0;
  for (const auto& shard : shard_results) {
    hash ^= shard.hash;
    hash *= 0x100000001b3ull;
    answer_bytes += shard.answer_bytes;
    hits += shard.cache_hits;
    misses += shard.cache_misses;
  }
  obs::count("serve_load.queries", total_queries);
  obs::count("serve_load.answer_bytes", answer_bytes);
  obs::count("serve_load.cache.hits", hits);
  obs::count("serve_load.cache.misses", misses);
  obs::gauge_set("serve_load.answer_hash",
                 static_cast<std::int64_t>(hash));

  std::cout << "== SERVE: snapshot query-serving load ==\n";
  std::cout << "queries: " << total_queries << " over "
            << executor.thread_count() << " threads in "
            << core::num(elapsed, 3) << " s ("
            << core::num(elapsed > 0 ? total_queries / elapsed : 0, 0)
            << " qps)\n";
  std::cout << "answers: " << answer_bytes << " bytes, cache hit rate "
            << core::pct(hits + misses > 0
                             ? static_cast<double>(hits) / (hits + misses)
                             : 0)
            << "\n";
  std::cout << "answer hash: " << hash
            << " (stable for this seed across thread counts)\n";
  const auto counts = latency_us.counts();
  std::cout << "latency: count=" << latency_us.count()
            << " mean_us=" << core::num(latency_us.count() > 0
                                            ? static_cast<double>(
                                                  latency_us.sum()) /
                                                  latency_us.count()
                                            : 0,
                                        2)
            << " p_le_10us="
            << core::pct(latency_us.count() > 0
                             ? static_cast<double>(counts[0] + counts[1] +
                                                   counts[2] + counts[3]) /
                                   latency_us.count()
                             : 0)
            << "\n";
  // Every shard engine feeds the shared "serve.query_latency_us" quantile
  // histogram; the log-bucket quantiles are exact to one bucket. Resolution
  // is 1 us, so sub-microsecond quantiles clamp to 1 in the record.
  const auto& quantiles = obs::metrics().quantile("serve.query_latency_us");
  const double p50 = quantiles.quantile(0.50);
  const double p90 = quantiles.quantile(0.90);
  const double p99 = quantiles.quantile(0.99);
  const double p999 = quantiles.quantile(0.999);
  std::cout << "latency quantiles (us): p50=" << core::num(p50, 1)
            << " p90=" << core::num(p90, 1) << " p99=" << core::num(p99, 1)
            << " p999=" << core::num(p999, 1)
            << " max=" << quantiles.max() << "\n";
  bench::BenchRecord record("serve_load");
  record.str("scale", argc > 2 ? argv[2] : "default")
      .num("seed", scenario->config().seed)
      .num("queries", static_cast<std::uint64_t>(total_queries))
      .num("threads", static_cast<std::uint64_t>(executor.thread_count()))
      .num("answer_hash", hash)
      .num("qps", elapsed > 0 ? total_queries / elapsed : 0.0)
      .num("serve_p50_us", std::max(p50, 1.0))
      .num("serve_p99_us", std::max(p99, 1.0));
  std::cout << record.line();
  itm::bench::dump_metrics_snapshot("serve_load");
  return 0;
}
