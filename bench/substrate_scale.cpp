// SUBSTRATE — the Internet-scale data-layout bench behind the committed
// BENCH_<tier>.json trajectory.
//
// For a pinned scale tier (core::ScaleTier: tiny / medium / huge — pinned
// seed, pinned config) this bench:
//
//   1. generates the scenario and times it,
//   2. measures the substrate layouts side by side:
//        bytes/AS      — SoA topology::AsTable vs the AoS AsGraph it views,
//        bytes/prefix  — path-compressed arena PrefixTrie vs a bench-local
//                        copy of the node-per-bit trie it replaced
//                        (legacy_layout.h), both loaded with every routable
//                        /24,
//   3. builds the full traffic map with the tier's build options and
//      times it,
//   4. compiles the `.itms` snapshot and replays a deterministic
//      lookup-heavy query stream through the production QueryEngine
//      (serve qps),
//   5. emits everything as one machine-readable JSON line.
//
// The JSON line is the repo's perf ledger: tools/check_bench.sh re-runs the
// tiny tier per commit and diffs structural fields exactly / perf fields
// within a tolerance band against the committed BENCH_tiny.json.
//
// Usage: substrate_scale [tiny|medium|huge] [out.json]
//   Defaults: tiny, BENCH_<tier>.json in the current directory.
#include <algorithm>
#include <string>

#include "bench_common.h"
#include "legacy_layout.h"
#include "net/prefix_trie.h"
#include "net/rng.h"
#include "serve/delta.h"
#include "serve/format.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace {

using namespace itm;

// Deterministic lookup-heavy query mix (the hot serving path), derived
// purely from the stream index.
std::string make_query(const serve::Snapshot& snap, Rng rng) {
  const std::uint64_t pick = rng.next_below(100);
  if (pick < 80 && !snap.prefixes.empty()) {
    const auto& rec = snap.prefixes[rng.next_below(snap.prefixes.size())];
    const auto prefix = rec.prefix();
    return "lookup " +
           prefix.address_at(rng.next_below(prefix.size())).to_string();
  }
  if (pick < 90 && !snap.ases.empty()) {
    return "as " +
           std::to_string(snap.ases[rng.next_below(snap.ases.size())].asn);
  }
  if (pick < 97 && !snap.countries.empty()) {
    return "country " +
           std::to_string(
               snap.countries[rng.next_below(snap.countries.size())].country);
  }
  return "stats";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string tier_name = argc > 1 ? argv[1] : "tiny";
  const auto tier = core::parse_scale_tier(tier_name);
  if (!tier) {
    std::cerr << "usage: substrate_scale [tiny|medium|huge] [out.json]\n";
    return 2;
  }
  const std::string out_path =
      argc > 2 ? argv[2] : ("BENCH_" + tier_name + ".json");

  // ---- 1. generate the pinned world.
  const auto config = core::tier_config(*tier);
  std::cerr << "[bench] generating " << tier_name << " tier (seed "
            << config.seed << ")...\n";
  bench::WallTimer gen_timer;
  auto scenario = core::Scenario::generate(config);
  const double generate_s = gen_timer.seconds();
  const auto& topo = scenario->topo();
  const std::size_t n_ases = topo.graph.size();
  std::cerr << "[bench] " << n_ases << " ASes, " << topo.graph.links().size()
            << " links, " << scenario->users().size() << " user /24s ("
            << core::num(generate_s, 1) << " s)\n";

  // ---- 2. layouts side by side, same data.
  const std::size_t as_bytes_soa = topo.table.memory_bytes();
  const std::size_t as_bytes_legacy = topo.graph.memory_bytes();

  const auto routable = topo.addresses.routable_slash24s();
  PrefixTrie<Asn> arena_trie;
  arena_trie.reserve(routable.size());
  bench::LegacyPrefixTrie<Asn> legacy_trie;
  for (const auto& prefix : routable) {
    const auto origin = topo.addresses.origin_of(prefix);
    const Asn asn = origin ? *origin : Asn(0);
    arena_trie.insert(prefix, asn);
    legacy_trie.insert(prefix, asn);
  }
  const std::size_t n_prefixes = routable.size();
  std::cerr << "[bench] trie over " << n_prefixes << " /24s: arena "
            << arena_trie.node_count() << " nodes / "
            << arena_trie.memory_bytes() << " B, legacy "
            << legacy_trie.node_count() << " nodes / "
            << legacy_trie.memory_bytes() << " B\n";

  // ---- 3. the full pipeline at the tier's build options.
  core::MapBuilder builder(*scenario);
  const auto options = core::tier_build_options(*tier);
  std::cerr << "[bench] building the traffic map...\n";
  bench::WallTimer build_timer;
  const auto map = builder.build(options);
  const double build_s = build_timer.seconds();
  bench::report_stage_timings(builder.last_timings());

  // ---- 4. snapshot + a deterministic serve replay.
  std::ostringstream blob_out;
  serve::write_snapshot(map, *scenario, blob_out);
  const std::string blob = blob_out.str();
  std::string error;
  const auto snapshot = serve::read_snapshot(std::string_view(blob), &error);
  if (!snapshot) {
    std::cerr << "[bench] snapshot rejected: " << error << "\n";
    return 1;
  }

  const std::size_t total_queries =
      *tier == core::ScaleTier::kTiny ? 200'000 : 100'000;
  serve::QueryEngine engine(*snapshot, 4096);
  const Rng base(config.seed ^ 0x5ca1e);
  std::uint64_t answer_hash = serve::fnv1a64("");
  bench::WallTimer replay_timer;
  for (std::size_t i = 0; i < total_queries; ++i) {
    const std::string answer =
        engine.execute(make_query(*snapshot, base.split(i)));
    answer_hash ^= serve::fnv1a64(answer);
    answer_hash *= 0x100000001b3ull;
  }
  const double replay_s = replay_timer.seconds();
  const double qps = replay_s > 0 ? total_queries / replay_s : 0;
  // Per-query latency quantiles from the engine's log-bucketed histogram
  // (accurate to one log-bucket). Resolution is 1 us, so sub-microsecond
  // quantiles clamp to 1 — bench_diff.py requires positive perf values.
  const auto& latency = engine.latency();
  const double serve_p50_us = std::max(latency.quantile(0.50), 1.0);
  const double serve_p99_us = std::max(latency.quantile(0.99), 1.0);
  std::cerr << "[bench] serve replay: " << total_queries << " queries in "
            << core::num(replay_s, 2) << " s (" << core::num(qps, 0)
            << " qps, p50 " << core::num(serve_p50_us, 1) << " us, p99 "
            << core::num(serve_p99_us, 1) << " us)\n";

  // ---- 4b. delta apply cost (the `itm served` apply-delta path): a small
  // probing increment against the live snapshot, applied by the strict
  // `.itmsd` applier. The rebuild must be byte-identical to the fresh
  // target — the wall time is the tier's delta_apply_us perf ledger entry.
  serve::Snapshot delta_target = *snapshot;
  delta_target.addresses_probed += 4096;
  if (!delta_target.ases.empty()) delta_target.ases.front().activity *= 1.25;
  std::ostringstream delta_target_out;
  serve::write_snapshot(delta_target, delta_target_out);
  const std::string delta_target_blob = delta_target_out.str();
  const auto delta = serve::diff_snapshots(blob, delta_target_blob, &error);
  if (!delta) {
    std::cerr << "[bench] diff failed: " << error << "\n";
    return 1;
  }
  bench::WallTimer apply_timer;
  const auto applied = serve::apply_delta(blob, *delta, &error);
  const double delta_apply_us = apply_timer.seconds() * 1e6;
  if (!applied || *applied != delta_target_blob) {
    std::cerr << "[bench] delta apply is not byte-identical: " << error
              << "\n";
    return 1;
  }
  std::cerr << "[bench] delta apply: " << delta->size() << "-byte delta -> "
            << delta_target_blob.size() << " bytes in "
            << core::num(delta_apply_us, 0) << " us (byte-identical)\n";

  // ---- 5. the ledger line. Structural fields (counts, per-entry bytes,
  // hashes) are deterministic for the pinned tier; *_s / qps / rss fields
  // are machine-dependent perf (check_bench.sh's tolerance band).
  bench::BenchRecord record("substrate_scale");
  record.str("tier", tier_name)
      .num("seed", static_cast<std::uint64_t>(config.seed))
      .num("ases", static_cast<std::uint64_t>(n_ases))
      .num("links", static_cast<std::uint64_t>(topo.graph.links().size()))
      .num("routable_prefixes", static_cast<std::uint64_t>(n_prefixes))
      .num("user_prefixes",
           static_cast<std::uint64_t>(scenario->users().size()))
      .num("bytes_per_as_soa", static_cast<double>(as_bytes_soa) / n_ases)
      .num("bytes_per_as_legacy",
           static_cast<double>(as_bytes_legacy) / n_ases)
      .num("bytes_per_prefix_soa",
           static_cast<double>(arena_trie.memory_bytes()) / n_prefixes)
      .num("bytes_per_prefix_legacy",
           static_cast<double>(legacy_trie.memory_bytes()) / n_prefixes)
      .num("trie_nodes_soa",
           static_cast<std::uint64_t>(arena_trie.node_count()))
      .num("trie_nodes_legacy",
           static_cast<std::uint64_t>(legacy_trie.node_count()))
      .num("snapshot_bytes", static_cast<std::uint64_t>(blob.size()))
      .num("client_prefixes",
           static_cast<std::uint64_t>(map.client_prefixes.size()))
      .num("answer_hash", answer_hash)
      .num("queries", static_cast<std::uint64_t>(total_queries))
      .num("generate_s", generate_s)
      .num("build_s", build_s)
      .num("serve_qps", qps)
      .num("serve_p50_us", serve_p50_us)
      .num("serve_p99_us", serve_p99_us)
      .num("delta_apply_us", std::max(delta_apply_us, 1.0))
      .num("peak_rss_bytes",
           static_cast<std::uint64_t>(bench::peak_rss_bytes()));
  record.write(out_path);
  std::cout << record.line();
  bench::dump_metrics_snapshot("substrate_scale");
  return 0;
}
