// TXT-ECS — §3.2.3's adoption numbers: 15 of the top-20 services support
// ECS, representing ~91% of top-20 traffic and ~35% of all Internet
// traffic; plus the mapping-coverage breakdown by redirection mechanism
// that determines how much of the map's user-to-host component is directly
// measurable.
#include "bench_common.h"
#include "inference/mapping_eval.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  const auto& catalog = scenario->catalog();
  const auto& matrix = scenario->matrix();

  const auto ranked = catalog.by_popularity();
  std::size_t top20_ecs = 0;
  double top20_bytes = 0, top20_ecs_bytes = 0;
  for (std::size_t i = 0; i < 20 && i < ranked.size(); ++i) {
    const auto& svc = catalog.service(ranked[i]);
    const double bytes = matrix.service_bytes(svc.id);
    top20_bytes += bytes;
    if (svc.supports_ecs) {
      ++top20_ecs;
      top20_ecs_bytes += bytes;
    }
  }
  double total_bytes = matrix.total_bytes();
  double ecs_bytes = 0;
  for (const auto& svc : catalog.services()) {
    if (svc.supports_ecs) ecs_bytes += matrix.service_bytes(svc.id);
  }

  std::cout << "== TXT-ECS: ECS adoption among popular services ==\n";
  core::Table table({"metric", "measured", "paper"});
  table.row("top-20 services supporting ECS",
            std::to_string(top20_ecs) + "/20", "15/20");
  table.row("share of top-20 traffic that is ECS-mappable",
            core::pct(top20_ecs_bytes / top20_bytes), "91%");
  table.row("share of ALL traffic from top-20 ECS services",
            core::pct(top20_ecs_bytes / total_bytes), "35%");
  table.row("share of ALL traffic from any ECS service",
            core::pct(ecs_bytes / total_bytes), "-");
  table.row("top-20 share of all traffic",
            core::pct(top20_bytes / total_bytes), "~35-40%");
  table.print();

  std::cout << "\n== user-to-host mapping coverage by mechanism ==\n";
  const auto cov = inference::mapping_coverage(catalog, matrix);
  core::Table mech({"mechanism", "traffic share", "mapping obtainable how"});
  mech.row("DNS redirection + ECS", core::pct(cov.ecs_dns_share),
           "exact, via ECS probing [13]");
  mech.row("DNS redirection, no ECS", core::pct(cov.non_ecs_dns_share),
           "resolver-located answers only");
  mech.row("anycast", core::pct(cov.anycast_share),
           "assume optimal site (see anycast_optimality)");
  mech.row("custom URLs", core::pct(cov.custom_url_share),
           "assume optimal (paper's SS3.2.3 argument)");
  mech.row("single-site long tail", core::pct(cov.single_site_share),
           "trivial (one origin)");
  mech.print();
  return 0;
}
