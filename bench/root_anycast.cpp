// ROOT-ANYCAST — §3.3.1's motivating experiment: "when we tried to predict
// paths from RIPE Atlas probes to root DNS servers, more than half could
// not be predicted due to missing links."
//
// Root letters are deployed as multi-origin anycast across carrier,
// transit and research hosts; vantage points are a RIPE-Atlas-like sample
// (mostly eyeballs plus some enterprises). Prediction runs on the public
// (collector) topology toward each letter's winning site.
#include "bench_common.h"
#include "dns/root_deployment.h"
#include "routing/prediction.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  const auto& topo = scenario->topo();
  Rng rng = scenario->fork_rng(0x700f);

  const auto deployment =
      dns::RootDeployment::build(topo, dns::RootDeploymentConfig{}, rng);

  // RIPE-Atlas-like vantage points: eyeballs (probes are mostly in home
  // networks) plus a few enterprises.
  std::vector<Asn> vantage = topo.accesses;
  for (std::size_t i = 0; i < topo.enterprises.size() / 4; ++i) {
    vantage.push_back(topo.enterprises[i]);
  }

  // Public view (same collector model as path_prediction).
  const routing::Bgp bgp(topo.graph);
  std::vector<Asn> feeders = topo.tier1s;
  for (std::size_t i = 0; i < topo.transits.size() / 6; ++i) {
    feeders.push_back(topo.transits[i]);
  }
  std::vector<Asn> all_ases;
  for (const auto& as : topo.graph.ases()) all_ases.push_back(as.asn);
  std::cerr << "[bench] collecting public view...\n";
  const auto view = routing::collect_public_view(bgp, feeders, all_ases);
  const auto observed = routing::observed_subgraph(topo.graph, view);
  const routing::Bgp observed_bgp(observed);

  std::cout << "== ROOT-ANYCAST: predicting paths to the root letters ==\n";
  core::Table table({"letter", "sites", "VP catchment spread",
                     "exact predictions", "true path missing link"});
  std::size_t total = 0, exact = 0, missing = 0;
  for (const auto& letter : deployment.letters()) {
    const auto truth_table = deployment.catchment(topo, letter.index);
    const auto pred_table = observed_bgp.routes_to_set(letter.site_hosts);
    std::size_t l_total = 0, l_exact = 0, l_missing = 0;
    std::vector<std::size_t> site_counts(letter.site_hosts.size(), 0);
    for (const Asn vp : vantage) {
      if (!truth_table.at(vp).reachable()) continue;
      ++l_total;
      ++site_counts[truth_table.at(vp).origin_index];
      const auto true_path = truth_table.path_from(vp);
      bool path_missing = false;
      for (std::size_t i = 0; i + 1 < true_path.size(); ++i) {
        if (!view.observed(true_path[i], true_path[i + 1])) {
          path_missing = true;
        }
      }
      if (path_missing) ++l_missing;
      if (pred_table.at(vp).reachable() &&
          pred_table.path_from(vp) == true_path) {
        ++l_exact;
      }
    }
    std::size_t used_sites = 0;
    for (const auto c : site_counts) {
      if (c > 0) ++used_sites;
    }
    table.row(letter.name, letter.site_hosts.size(),
              std::to_string(used_sites) + "/" +
                  std::to_string(letter.site_hosts.size()),
              core::pct(static_cast<double>(l_exact) / l_total),
              core::pct(static_cast<double>(l_missing) / l_total));
    total += l_total;
    exact += l_exact;
    missing += l_missing;
  }
  table.print();
  std::cout << "\nacross all letters and " << vantage.size()
            << " vantage points: "
            << core::pct(static_cast<double>(exact) / total)
            << " of paths predicted exactly; "
            << core::pct(static_cast<double>(missing) / total)
            << " of true paths use a collector-invisible link (paper: more "
               "than half could not be predicted)\n";
  std::cout << "note: the mechanism matches the paper (IXP route-server "
               "links carry root traffic invisibly); the absolute rate is "
               "lower because the synthetic world has one IXP per large "
               "country instead of hundreds\n";
  return 0;
}
