// Bench-only copy of the pre-SoA (PR 6) node-per-bit prefix trie, kept so
// bench/substrate_scale can measure the bytes/prefix improvement of the
// path-compressed arena trie against the exact layout it replaced, in the
// same binary and on the same data. Nothing outside the bench links this;
// production code uses itm::PrefixTrie (src/net/prefix_trie.h).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "net/ipv4.h"

namespace itm::bench {

// The original PrefixTrie storage shape: one heap node per prefix *bit*,
// two owning pointers per node. A /24 costs up to 24 nodes; storage is
// O(total bits), not O(entries).
template <typename Value>
class LegacyPrefixTrie {
 public:
  LegacyPrefixTrie() : root_(std::make_unique<Node>()) { node_count_ = 1; }

  void insert(const Ipv4Prefix& prefix, Value value) {
    Node* node = descend_create(prefix);
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  [[nodiscard]] const Value* find(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      node = node->children[bit_at(prefix.base(), depth)].get();
      if (node == nullptr) return nullptr;
    }
    return node->value ? &*node->value : nullptr;
  }

  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, Value>> longest_match(
      Ipv4Addr addr) const {
    const Node* node = root_.get();
    const Node* best = node->value ? node : nullptr;
    std::uint8_t best_depth = 0;
    for (std::uint8_t depth = 0; depth < 32; ++depth) {
      node = node->children[bit_at(addr, depth)].get();
      if (node == nullptr) break;
      if (node->value) {
        best = node;
        best_depth = static_cast<std::uint8_t>(depth + 1);
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Ipv4Prefix(addr, best_depth), *best->value);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  // Actual heap bytes of the node chain: every node is its own allocation,
  // so the real cost per node is what malloc handed back (chunk rounding +
  // header), not sizeof(Node). Measured on the root node via
  // malloc_usable_size where available; sizeof(Node) as the (flattering)
  // fallback. The arena trie's memory_bytes() has no per-node allocations,
  // so the comparison stays apples-to-apples heap usage.
  [[nodiscard]] std::size_t memory_bytes() const {
#if defined(__GLIBC__)
    const std::size_t per_node = malloc_usable_size(root_.get()) +
                                 sizeof(std::size_t);  // + chunk header
#else
    const std::size_t per_node = sizeof(Node);
#endif
    return node_count_ * per_node;
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> children[2];
  };

  static int bit_at(Ipv4Addr addr, std::uint8_t depth) {
    return (addr.bits() >> (31 - depth)) & 1u;
  }

  Node* descend_create(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = bit_at(prefix.base(), depth);
      if (node->children[bit] == nullptr) {
        node->children[bit] = std::make_unique<Node>();
        ++node_count_;
      }
      node = node->children[bit].get();
    }
    return node;
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::size_t node_count_ = 0;
};

}  // namespace itm::bench
