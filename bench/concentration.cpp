// TXT-HYPER — §1/§2's concentration premises: a handful of hypergiants
// carries ~90% of user-facing traffic; off-net caches serve much of it from
// inside eyeball networks; link-level traffic is extremely skewed (the
// reason unweighted per-link CDFs mislead).
#include <algorithm>

#include "bench_common.h"
#include "net/stats.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  const auto& matrix = scenario->matrix();
  const auto& deployment = scenario->deployment();

  std::cout << "== TXT-HYPER: traffic concentration ==\n";
  core::Table table({"hypergiant", "traffic share", "off-net share of its "
                     "bytes"});
  double hg_total = 0;
  for (const auto& hg : deployment.hypergiants()) {
    const double bytes = matrix.hypergiant_bytes(hg.id);
    hg_total += bytes;
    table.row(hg.name, core::pct(bytes / matrix.total_bytes()),
              core::pct(bytes > 0 ? matrix.offnet_bytes(hg.id) / bytes : 0));
  }
  table.print();
  std::cout << "hypergiants together: " << core::pct(hg_total / matrix.total_bytes())
            << " of all traffic (paper: ~90% from a handful of providers)\n";

  // Per-service concentration.
  std::vector<double> service_bytes;
  for (const auto& svc : scenario->catalog().services()) {
    service_bytes.push_back(matrix.service_bytes(svc.id));
  }
  std::cout << "\nper-service: top-20 carry "
            << core::pct(top_k_share(service_bytes, 20)) << ", gini="
            << core::num(gini(service_bytes)) << "\n";

  // Link-level skew: the unweighted-CDF fallacy quantified.
  const auto link_bytes = matrix.link_bytes();
  std::vector<double> loads(link_bytes.begin(), link_bytes.end());
  std::cout << "\nAS-level links: " << loads.size() << "\n";
  std::cout << "top-1% of links carry "
            << core::pct(top_k_share(loads, loads.size() / 100 + 1))
            << " of link-traversing bytes; top-10% carry "
            << core::pct(top_k_share(loads, loads.size() / 10)) << ", gini="
            << core::num(gini(loads)) << "\n";

  // The fallacy demonstrated: fraction of links whose outage would touch
  // <0.1% of bytes each — counting links equally wildly overweights them.
  double tiny_links = 0;
  double total_link_bytes = 0;
  for (const double b : loads) total_link_bytes += b;
  for (const double b : loads) {
    if (b < 0.001 * total_link_bytes) tiny_links += 1;
  }
  std::cout << core::pct(tiny_links / static_cast<double>(loads.size()))
            << " of links each carry <0.1% of traffic — an unweighted "
               "per-link CDF treats them like the giant interconnects\n";
  return 0;
}
