// ABLATIONS — sensitivity of the measurement techniques to the design
// choices DESIGN.md calls out:
//   A1: probing cadence (sweeps/day) vs. client-prefix coverage,
//   A2: public-DNS adoption vs. coverage (the technique rides on it),
//   A3: ECS scoping is what makes cache probing per-prefix (probing
//       non-ECS names yields shared entries: hits without localization),
//   A4: number of open root letters vs. root-log coverage,
//   A5: recommender similarity weight vs. precision.
// Run on a reduced scenario so the whole sweep stays fast.
#include "bench_common.h"
#include "inference/client_detection.h"
#include "inference/recommender.h"
#include "routing/public_view.h"

namespace {

itm::core::ScenarioConfig reduced(std::uint64_t seed) {
  auto c = itm::core::default_config(seed);
  c.topology.num_access = 120;
  c.topology.num_content = 45;
  c.topology.num_enterprise = 40;
  c.topology.addressing.user_24s_per_access_as = 32.0;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace itm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // ---- A1: probing cadence.
  std::cout << "== A1: cache-probing sweeps per day vs coverage ==\n";
  {
    core::Table table({"sweeps/day", "traffic coverage", "prefixes found"});
    for (const std::size_t rounds : {2u, 4u, 8u, 16u}) {
      auto scenario = core::Scenario::generate(reduced(seed));
      auto day = bench::run_measurement_day(*scenario, rounds);
      const auto cov = inference::evaluate_prefixes(
          day.prober->detected_prefixes(), scenario->users(),
          scenario->matrix(), HypergiantId(0));
      table.row(rounds, core::pct(cov.traffic_coverage), cov.detected);
    }
    table.print();
  }

  // ---- A2: public-DNS adoption.
  std::cout << "\n== A2: public-DNS adoption vs coverage ==\n";
  {
    core::Table table({"mean adoption", "traffic coverage"});
    for (const double adoption : {0.1, 0.32, 0.6}) {
      auto config = reduced(seed);
      config.users.public_dns_mean = adoption;
      auto scenario = core::Scenario::generate(config);
      auto day = bench::run_measurement_day(*scenario, 8);
      const auto cov = inference::evaluate_prefixes(
          day.prober->detected_prefixes(), scenario->users(),
          scenario->matrix(), HypergiantId(0));
      table.row(core::pct(adoption, 0), core::pct(cov.traffic_coverage));
    }
    table.print();
  }

  // ---- A3: ECS scoping. Count per-prefix signal when probing an ECS name
  // vs a non-ECS name: the latter's cache entry is shared per PoP, so a
  // probe "hit" says nothing about the probed prefix.
  std::cout << "\n== A3: ECS scoping localizes hits ==\n";
  {
    auto scenario = core::Scenario::generate(reduced(seed));
    core::Workload workload(*scenario, {}, seed);
    workload.advance_to(kSecondsPerHour * 12);
    const cdn::Service* ecs = nullptr;
    const cdn::Service* non_ecs = nullptr;
    for (const ServiceId sid : scenario->catalog().by_popularity()) {
      const auto& svc = scenario->catalog().service(sid);
      if (svc.redirection != cdn::RedirectionKind::kDnsRedirection) continue;
      if (svc.supports_ecs && ecs == nullptr) ecs = &svc;
      if (!svc.supports_ecs && non_ecs == nullptr) non_ecs = &svc;
    }
    if (ecs == nullptr || non_ecs == nullptr) {
      std::cout << "(catalog lacks an ECS or non-ECS DNS service; skipping "
                   "A3)\n";
    } else {
    const auto routable = scenario->topo().addresses.routable_slash24s();
    const auto count_hits = [&](const cdn::Service& svc) {
      std::size_t hits = 0;
      for (const auto& prefix : routable) {
        for (std::size_t pop = 0;
             pop < scenario->dns().public_pops().size(); ++pop) {
          if (scenario->dns().probe_cache(pop, svc, prefix,
                                          kSecondsPerHour * 12)) {
            ++hits;
            break;
          }
        }
      }
      return hits;
    };
    core::Table table({"probe name", "prefixes 'hit'", "of routable",
                       "interpretation"});
    const auto ecs_hits = count_hits(*ecs);
    const auto global_hits = count_hits(*non_ecs);
    table.row(ecs->hostname + " (ECS)", ecs_hits,
              core::pct(static_cast<double>(ecs_hits) / routable.size()),
              "per-prefix client evidence");
    table.row(non_ecs->hostname + " (no ECS)", global_hits,
              core::pct(static_cast<double>(global_hits) / routable.size()),
              "shared entry: every prefix 'hits'");
    table.print();
    }
  }

  // ---- A4: open root letters.
  std::cout << "\n== A4: crawlable root letters vs root-log coverage ==\n";
  {
    core::Table table({"open letters", "AS-level traffic coverage",
                       "queries crawled"});
    for (const std::size_t letters : {1u, 3u, 13u}) {
      auto config = reduced(seed);
      config.dns.root.open_letters = letters;
      config.dns.root.anonymized_fraction = 0.0;
      auto scenario = core::Scenario::generate(config);
      core::Workload workload(*scenario, {}, seed);
      workload.finish();
      const auto crawl = scan::crawl_root_logs(scenario->dns(),
                                               scenario->topo().addresses);
      const auto cov = inference::evaluate_ases(
          crawl.detected_ases(), scenario->users(), scenario->matrix(),
          HypergiantId(0), scenario->topo());
      table.row(letters, core::pct(cov.traffic_coverage),
                core::pct(static_cast<double>(crawl.total_crawled) /
                          scenario->dns().roots().total_queries()));
    }
    table.print();
    std::cout << "(detection is binary per AS, so even one letter finds the "
                 "busy resolvers; the coverage cap comes from resolver "
                 "outsourcing, not log sampling)\n";
  }

  // ---- A5b: probe loss.
  std::cout << "\n== A5b: probe loss vs coverage ==\n";
  {
    core::Table table({"probe loss", "traffic coverage"});
    for (const double loss : {0.0, 0.05, 0.25}) {
      auto scenario = core::Scenario::generate(reduced(seed));
      scan::CacheProbeConfig probe_config;
      probe_config.probe_loss = loss;
      auto day = bench::run_measurement_day(*scenario, 8, probe_config);
      const auto cov = inference::evaluate_prefixes(
          day.prober->detected_prefixes(), scenario->users(),
          scenario->matrix(), HypergiantId(0));
      table.row(core::pct(loss, 0), core::pct(cov.traffic_coverage));
    }
    table.print();
    std::cout << "(repeated sweeps make detection robust to moderate "
                 "loss)\n";
  }

  // ---- A5: recommender similarity weight.
  std::cout << "\n== A5: recommender similarity weight vs precision ==\n";
  {
    auto scenario = core::Scenario::generate(reduced(seed));
    const auto& topo = scenario->topo();
    const routing::Bgp bgp(topo.graph);
    std::vector<Asn> feeders = topo.tier1s;
    for (std::size_t i = 0; i < topo.transits.size() / 6; ++i) {
      feeders.push_back(topo.transits[i]);
    }
    std::vector<Asn> dests;
    for (const auto& as : topo.graph.ases()) dests.push_back(as.asn);
    const auto view = routing::collect_public_view(bgp, feeders, dests);
    const auto observed = routing::observed_subgraph(topo.graph, view);
    core::Table table({"similarity weight", "precision@300", "recall"});
    for (const double w : {0.0, 0.25, 0.5}) {
      inference::RecommenderConfig config;
      config.similarity_weight = w;
      const inference::PeeringRecommender rec(scenario->peeringdb(), observed,
                                              config);
      const auto candidates = rec.recommend(300);
      const auto score =
          inference::score_recommendations(candidates, topo.graph, view);
      table.row(core::num(w), core::pct(score.precision()),
                core::pct(score.recall()));
    }
    table.print();
  }
  return 0;
}
