// TXT-PATHPRED — §3.3: predicting paths from the public (route-collector)
// topology fails for more than half of eyeball-to-popular-destination pairs
// because the links their true routes use are invisible; the §3.3.3 peering
// recommender restores candidate links and improves prediction.
// Also reports [4]'s observation that >90% of peering links are invisible.
#include "bench_common.h"
#include "inference/recommender.h"
#include "scan/cloud_prober.h"
#include "routing/prediction.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  const auto& topo = scenario->topo();
  const routing::Bgp bgp(topo.graph);

  // Route collectors fed by tier-1s and a third of transit providers.
  std::vector<Asn> feeders = topo.tier1s;
  for (std::size_t i = 0; i < topo.transits.size() / 6; ++i) {
    feeders.push_back(topo.transits[i]);
  }
  std::vector<Asn> all_ases;
  for (const auto& as : topo.graph.ases()) all_ases.push_back(as.asn);
  std::cerr << "[bench] collecting public view (" << feeders.size()
            << " feeders x " << all_ases.size() << " destinations)...\n";
  const auto view = routing::collect_public_view(bgp, feeders, all_ases);
  const auto observed = routing::observed_subgraph(topo.graph, view);

  std::cout << "== TXT-PATHPRED: link visibility ==\n";
  std::cout << "all links observed: " << core::pct(view.coverage(topo.graph))
            << "; peering links observed: "
            << core::pct(view.peering_coverage(topo.graph))
            << " (paper [4]: >90% of peerings invisible)\n";
  // Route-server (multilateral IXP) links specifically — the [4] subject.
  {
    std::size_t rs_total = 0, rs_seen = 0;
    for (const auto& link : topo.graph.links()) {
      if (!link.via_route_server) continue;
      ++rs_total;
      if (view.observed(link.a, link.b)) ++rs_seen;
    }
    if (rs_total > 0) {
      std::cout << "IXP route-server peerings observed: " << rs_seen << "/"
                << rs_total << " ("
                << core::pct(static_cast<double>(rs_seen) / rs_total)
                << ")\n";
    }
  }
  // Cloud vantage points (SS3.3.2, [7]): measuring out from a cloud
  // hypergiant's VMs reveals that operator's peering fabric.
  {
    auto with_cloud = view;
    with_cloud.merge(
        scan::probe_from_cloud(topo, topo.hypergiants.front()));
    std::cout << "after probing out from one cloud hypergiant: peering "
                 "visibility "
              << core::pct(with_cloud.peering_coverage(topo.graph))
              << " (its own fabric becomes visible)\n";
  }

  // Prediction: eyeballs -> hypergiants and eyeballs -> root-like
  // destinations (content networks), with and without recommender links.
  const auto eval = [&](const topology::AsGraph& graph,
                        std::span<const Asn> dests) {
    return routing::evaluate_prediction(topo.graph, graph, view,
                                        topo.accesses, dests);
  };
  std::vector<Asn> content_dests(topo.contents.begin(),
                                 topo.contents.begin() +
                                     std::min<std::size_t>(
                                         10, topo.contents.size()));

  const auto base_hg = eval(observed, topo.hypergiants);
  const auto base_ct = eval(observed, content_dests);

  const inference::PeeringRecommender recommender(scenario->peeringdb(),
                                                  observed);
  const auto candidates = recommender.recommend(800);
  const auto augmented = inference::augment_graph(observed, candidates);
  const auto aug_hg = eval(augmented, topo.hypergiants);
  const auto aug_ct = eval(augmented, content_dests);
  const auto rec_score = inference::score_recommendations(
      candidates, topo.graph, view);

  std::cout << "\n== prediction from eyeballs ==\n";
  core::Table table({"destinations", "topology", "exact", "wrong",
                     "unreachable", "true path uses missing link"});
  const auto row = [&](const char* dests, const char* g,
                       const routing::PredictionStats& s) {
    table.row(dests, g, core::pct(s.exact_rate()),
              core::pct(static_cast<double>(s.wrong) / s.total),
              core::pct(static_cast<double>(s.unreachable) / s.total),
              core::pct(s.missing_link_rate()));
  };
  row("hypergiants", "public view", base_hg);
  row("hypergiants", "+recommended", aug_hg);
  row("content (root-like)", "public view", base_ct);
  row("content (root-like)", "+recommended", aug_ct);
  table.print();

  std::cout << "\npaper: more than half of paths toward root DNS could not "
               "be predicted due to missing links — here "
            << core::pct(base_hg.missing_link_rate())
            << " of eyeball->hypergiant true paths use an invisible link\n";
  std::cout << "recommender: " << rec_score.recommended
            << " candidate links, precision "
            << core::pct(rec_score.precision()) << ", recall of missing "
               "peerings "
            << core::pct(rec_score.recall()) << "\n";
  return 0;
}
