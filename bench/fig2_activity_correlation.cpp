// FIG2 — Figure 2: ISP subscriber counts vs. cache hit rate and vs. APNIC
// user estimates, for large eyeball ISPs across several countries, with the
// named ISPs of country "Francia" as the case study.
//
// Paper's claims to reproduce in shape: both signals correlate with
// subscribers, and cache hit rate orders the French ISPs correctly.
#include <algorithm>

#include "bench_common.h"
#include "inference/activity.h"
#include "net/stats.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  // Full hit counting (no early exit) for rate estimation.
  scan::CacheProbeConfig probe_config;
  probe_config.stop_after_first_hit = false;
  auto day = bench::run_measurement_day(*scenario, 24, probe_config);

  const auto hit_rates =
      day.prober->hit_rate_by_as(scenario->topo().addresses);

  std::cout << "== FIG2: subscribers vs cache-hit-rate vs APNIC estimate ==\n";
  core::Table table({"ISP", "country", "subscribers", "cache hit rate",
                     "APNIC estimate"});
  std::vector<double> subs, rates, apnics;
  std::vector<std::size_t> rows_per_country;
  std::vector<std::pair<std::string, double>> francia_by_subs;
  std::vector<std::pair<std::string, double>> francia_by_rate;

  // The paper plots specific large eyeball ISPs; the named Francia stand-ins
  // (Orange, SFR, ...) are the case-study rows.
  const std::vector<std::string> francia_named{"Orange", "SFR",    "Free",
                                               "Bouygues", "Free_M", "El_tele"};
  const auto rate_of = [&](Asn asn) {
    const auto it = hit_rates.find(asn.value());
    return it == hit_rates.end() ? 0.0 : it->second;
  };
  const auto add_row = [&](Asn asn, const topology::Country& country) {
    const auto& info = scenario->topo().graph.info(asn);
    const double subscribers = scenario->users().as_users(asn);
    const double rate = rate_of(asn);
    const double apnic = scenario->apnic().users(asn);
    table.row(info.name, country.name,
              static_cast<std::uint64_t>(subscribers), core::pct(rate, 2),
              static_cast<std::uint64_t>(apnic));
    subs.push_back(subscribers);
    rates.push_back(rate);
    apnics.push_back(apnic);
    if (country.id.value() == 0) {
      francia_by_subs.emplace_back(info.name, subscribers);
      francia_by_rate.emplace_back(info.name, rate);
    }
  };

  for (const auto& country : scenario->topo().geography.countries()) {
    const auto ases = scenario->topo().accesses_in(country.id);
    const std::size_t before = subs.size();
    if (country.id.value() == 0) {
      // Case-study country: the named ISPs.
      for (const Asn asn : ases) {
        const auto& name = scenario->topo().graph.info(asn).name;
        if (std::find(francia_named.begin(), francia_named.end(), name) !=
            francia_named.end()) {
          add_row(asn, country);
        }
      }
    } else {
      for (std::size_t i = 0; i < std::min<std::size_t>(5, ases.size());
           ++i) {
        add_row(ases[i], country);
      }
    }
    rows_per_country.push_back(subs.size() - before);
  }
  table.print();

  // Within-country rank agreement (adoption varies by country, so the
  // paper, too, analyzes countries separately).
  double mean_spearman = 0;
  std::size_t countries_scored = 0;
  {
    std::size_t idx = 0;
    for (const std::size_t rows : rows_per_country) {
      std::vector<double> cs(subs.begin() + idx, subs.begin() + idx + rows);
      std::vector<double> cr(rates.begin() + idx, rates.begin() + idx + rows);
      idx += rows;
      if (cs.size() < 3) continue;
      mean_spearman += spearman(cr, cs);
      ++countries_scored;
    }
    if (countries_scored > 0) {
      mean_spearman /= static_cast<double>(countries_scored);
    }
  }

  const auto rate_fit = fit_linear(rates, subs);
  const auto apnic_fit = fit_linear(apnics, subs);
  std::cout << "\ncache-hit-rate vs subscribers:  pearson="
            << core::num(pearson(rates, subs)) << " spearman="
            << core::num(spearman(rates, subs)) << " (fit R^2="
            << core::num(rate_fit.r_squared) << ", within-country spearman="
            << core::num(mean_spearman) << ")\n";
  std::cout << "APNIC estimate vs subscribers:  pearson="
            << core::num(pearson(apnics, subs)) << " spearman="
            << core::num(spearman(apnics, subs)) << " (fit R^2="
            << core::num(apnic_fit.r_squared) << ")\n";

  // Case study: does cache hit rate order the Francia ISPs correctly?
  auto by_subs = francia_by_subs;
  std::sort(by_subs.begin(), by_subs.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  auto by_rate = francia_by_rate;
  std::sort(by_rate.begin(), by_rate.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::cout << "\nFrancia case study (paper: cache hit rate orders French "
               "ISPs correctly):\n  by subscribers:";
  for (const auto& [name, v] : by_subs) std::cout << " " << name;
  std::cout << "\n  by hit rate:   ";
  for (const auto& [name, v] : by_rate) std::cout << " " << name;
  bool same_order = true;
  for (std::size_t i = 0; i < by_subs.size(); ++i) {
    if (by_subs[i].first != by_rate[i].first) same_order = false;
  }
  std::cout << "\n  ordering " << (same_order ? "matches" : "differs")
            << "\n";
  return 0;
}
