// TXT-IPID — §3.1.3's IP ID proposal: router IP ID counters advance roughly
// in proportion to forwarded traffic and show diurnal patterns, so probing
// IP ID velocity (especially at local peak time) estimates relative
// forwarding volume without any privileged feed.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "net/stats.h"
#include "scan/ipid.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  const scan::IpIdProber prober(scenario->routers());
  const auto& fleet = scenario->routers();
  const auto& geo = scenario->topo().geography;

  // --- Diurnal pattern: hourly velocity profile of a few busy routers.
  std::vector<Asn> sample;
  for (const Asn t : scenario->topo().tier1s) sample.push_back(t);
  for (std::size_t i = 0; i < 3 && i < scenario->topo().transits.size(); ++i) {
    sample.push_back(scenario->topo().transits[i]);
  }
  std::cout << "== TXT-IPID: hourly IP ID velocity (increments/s) ==\n";
  core::Table profile_table({"router AS", "min v", "max v", "peak hour (UTC)",
                             "expected peak", "diurnal ratio"});
  for (const Asn asn : sample) {
    const auto& router = fleet.of(asn);
    const auto profile =
        prober.velocity_profile(router.interface, 0, 24, 30);
    const auto hi = std::max_element(profile.begin(), profile.end());
    const auto lo = std::min_element(profile.begin(), profile.end());
    const double peak_hour = static_cast<double>(hi - profile.begin()) + 0.5;
    double expected = std::fmod(21.0 - router.lon_deg / 15.0 + 48.0, 24.0);
    profile_table.row(scenario->topo().graph.info(asn).name,
                      core::num(*lo, 1), core::num(*hi, 1),
                      core::num(peak_hour, 1), core::num(expected, 1),
                      core::num(*hi / std::max(1.0, *lo)));
  }
  profile_table.print();

  // --- Velocity as a relative-volume estimator: probe every border router
  // for one hour around its local evening and rank-correlate the estimates
  // with true forwarded bytes.
  std::vector<double> estimates, truth;
  for (const auto& router : fleet.routers()) {
    // Peak local time ~21:00: convert to UTC for this router.
    const double utc_peak_h =
        std::fmod(21.0 - router.lon_deg / 15.0 + 48.0, 24.0);
    const SimTime start =
        static_cast<SimTime>(utc_peak_h * kSecondsPerHour);
    const auto v = prober.estimate_velocity(router.interface, start,
                                            start + kSecondsPerHour, 30);
    if (!v) continue;
    estimates.push_back(*v);
    truth.push_back(fleet.forwarded_bytes(router.asn));
  }
  std::cout << "\npeak-hour velocity vs true forwarded bytes over "
            << estimates.size() << " routers:\n";
  std::cout << "  spearman=" << core::num(spearman(estimates, truth))
            << " pearson=" << core::num(pearson(estimates, truth))
            << " kendall=" << core::num(kendall_tau(estimates, truth))
            << "\n";
  std::cout << "paper: IP ID velocities display diurnal patterns suggesting "
               "proportionality to forwarded traffic — both reproduced "
               "above\n";

  // Sanity: the diurnal phase tracks longitude (15 degrees/hour) — the
  // measured peak hour should sit near 21:00 local everywhere.
  double total_error_h = 0;
  std::size_t measured = 0;
  for (const Asn asn : scenario->topo().transits) {
    const auto& router = fleet.of(asn);
    const auto profile = prober.velocity_profile(router.interface, 0, 24, 60);
    const auto hi = std::max_element(profile.begin(), profile.end());
    const double peak = static_cast<double>(hi - profile.begin()) + 0.5;
    const double expected =
        std::fmod(21.0 - router.lon_deg / 15.0 + 48.0, 24.0);
    double diff = std::abs(peak - expected);
    diff = std::min(diff, 24.0 - diff);
    total_error_h += diff;
    ++measured;
    (void)geo;
  }
  std::cout << "mean circular error of measured peak vs 21:00 local across "
            << measured << " transit routers: "
            << core::num(total_error_h / static_cast<double>(measured))
            << " hours\n";
  return 0;
}
