// USECASE — §2.1's outage use case: "to assess the impact of an outage in a
// <region, AS>, the map can tell us which popular services are affected,
// which prefixes are affected, what fraction of traffic or users" — the
// TrafficMap answers these from public data only; this bench scores those
// answers against ground truth, and demonstrates the weighted-vs-unweighted
// CDF contrast the paper opens with.
//
// Usage: map_queries [seed] [scale] [country-id] — the optional third
// argument picks the case-study country for the detail view (default 0).
#include <algorithm>

#include "bench_common.h"
#include "net/stats.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  core::MapBuilder builder(*scenario);
  std::cerr << "[bench] building the traffic map...\n";
  const auto map = builder.build();
  const auto& topo = scenario->topo();

  // --- Outage impact estimates vs ground truth across all eyeballs.
  std::vector<double> estimated, truth;
  for (const Asn asn : topo.accesses) {
    const auto impact = map.outage_impact(asn, topo.addresses);
    estimated.push_back(impact.activity_share);
    truth.push_back(scenario->matrix().as_client_bytes(asn) /
                    scenario->matrix().total_bytes());
  }
  std::cout << "== USECASE: outage-impact estimation ==\n";
  std::cout << "map's activity-share estimate vs true traffic share over "
            << estimated.size()
            << " eyeball ASes: spearman=" << core::num(spearman(estimated, truth))
            << " pearson=" << core::num(pearson(estimated, truth)) << "\n";

  // --- Detail view for the biggest eyeball of the case-study country.
  const std::uint64_t country_arg =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
  if (country_arg >= topo.geography.countries().size()) {
    std::cerr << "[bench] country id " << country_arg << " out of range (0.."
              << topo.geography.countries().size() - 1 << ")\n";
    return 2;
  }
  const CountryId case_study(static_cast<std::uint32_t>(country_arg));
  const auto eyeballs = topo.accesses_in(case_study);
  if (!eyeballs.empty()) {
    const Asn big = eyeballs.front();
    const auto impact = map.outage_impact(big, topo.addresses);
    std::cout << "\noutage of " << topo.graph.info(big).name << ":\n";
    std::cout << "  estimated activity share: "
              << core::pct(impact.activity_share) << " (truth: "
              << core::pct(scenario->matrix().as_client_bytes(big) /
                           scenario->matrix().total_bytes())
              << ")\n";
    std::cout << "  client /24s affected (map): " << impact.client_prefixes
              << "\n";
    std::cout << "  CDN servers inside the AS (off-nets): "
              << impact.servers_inside << "; services served from them: "
              << impact.services_served_from.size() << "\n";
  }

  // --- The paper's opening argument, quantified with the map: an
  // unweighted CDF over AS outages vs the activity-weighted CDF.
  WeightedCdf unweighted, weighted;
  for (std::size_t i = 0; i < estimated.size(); ++i) {
    unweighted.add(truth[i]);
    weighted.add(truth[i], truth[i]);
  }
  std::cout << "\n== weighted vs unweighted outage-impact CDF ==\n";
  core::Table table({"view", "median outage touches", "p90 outage touches"});
  table.row("unweighted (every AS equal)",
            core::pct(unweighted.quantile(0.5)),
            core::pct(unweighted.quantile(0.9)));
  table.row("traffic-weighted",
            core::pct(weighted.quantile(0.5)),
            core::pct(weighted.quantile(0.9)));
  table.print();
  std::cout << "counting outages equally suggests the median event is "
               "negligible; weighting by affected traffic shows the typical "
               "affected *byte* sits in a far more impactful event\n";
  itm::bench::dump_metrics_snapshot("map_queries");
  return 0;
}
