// TXT-ANYCAST — §2.1/§3.2.3's anycast efficiency numbers: only ~31% of
// *routes* reach the geographically closest site, yet ~60% of *users* are
// mapped optimally (Koch et al. [38] report 80% of clients within 500 km of
// their closest site). The route/user gap is the weighting thesis again:
// large eyeballs peer directly with the hypergiant and ingress near home.
#include "bench_common.h"
#include "inference/mapping_eval.h"
#include "scan/catchment.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);

  std::cout << "== TXT-ANYCAST: anycast catchment vs geographic optimum ==\n";
  core::Table table({"hypergiant", "on-net PoPs", "routes optimal",
                     "users optimal", "users within 500km"});
  double sum_routes = 0, sum_users = 0, sum_near = 0;
  std::size_t counted = 0;
  for (const auto& hg : scenario->deployment().hypergiants()) {
    std::size_t onnet = 0;
    for (const PopId pid : hg.pops) {
      if (!scenario->deployment().pop(pid).offnet) ++onnet;
    }
    const auto result = inference::anycast_optimality(
        scenario->topo(), scenario->users(), scenario->mapper(), hg.id);
    table.row(hg.name, onnet, core::pct(result.routes_optimal),
              core::pct(result.users_optimal),
              core::pct(result.users_within_500km));
    sum_routes += result.routes_optimal;
    sum_users += result.users_optimal;
    sum_near += result.users_within_500km;
    ++counted;
  }
  table.print();

  std::cout << "\nmeans: routes optimal "
            << core::pct(sum_routes / counted) << " (paper: 31%), users "
               "optimal "
            << core::pct(sum_users / counted) << " (paper: 60%), users "
               "within 500km "
            << core::pct(sum_near / counted) << " (paper: ~80%)\n";
  std::cout << "shape to verify: users-optimal > routes-optimal, and "
               "within-500km > users-optimal\n";

  // §3.2.3's fix: Verfploeter-style catchment measurement via edge compute
  // replaces the optimality assumption with exact catchments.
  const HypergiantId hg(0);
  const auto measured =
      scan::measure_catchments(scenario->mapper(), hg, scenario->topo().accesses);
  std::size_t heuristic_right = 0;
  double users_right = 0, users_total = 0;
  for (const Asn client : scenario->topo().accesses) {
    const auto optimal = scenario->mapper().optimal_site(
        hg, scenario->topo().graph.info(client).home_city);
    const double u = scenario->users().as_users(client);
    users_total += u;
    if (optimal == *measured.site_of(client)) {
      ++heuristic_right;
      users_right += u;
    }
  }
  std::cout << "\nVerfploeter-style measured catchments vs the "
               "'assume-optimal' heuristic for "
            << scenario->deployment().hypergiant(hg).name << ":\n";
  std::cout << "  heuristic matches the measured site for "
            << core::pct(static_cast<double>(heuristic_right) /
                         scenario->topo().accesses.size())
            << " of ASes (" << core::pct(users_right / users_total)
            << " of users); measured catchments are exact by construction\n";
  return 0;
}
