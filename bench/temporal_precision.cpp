// TAB1-TEMPORAL — Table 1's *desired* temporal precision: the paper wants
// hourly relative-activity estimates (current techniques give yearly root
// logs / daily probing). This bench shows the simulated probing pipeline
// can reach hourly precision: per-AS hit-rate series recover the diurnal
// shape and local peak time.
#include "bench_common.h"
#include "inference/temporal.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);

  // Hourly probing sweeps with per-sweep recording.
  scan::CacheProbeConfig probe_config;
  probe_config.record_sweeps = true;
  core::Workload workload(*scenario, {}, scenario->config().seed ^ 0xda7);
  scan::CacheProber prober(scenario->dns(), scenario->catalog(), probe_config,
                           &scenario->topo().addresses);
  const auto routable = scenario->topo().addresses.routable_slash24s();
  for (std::size_t hour = 0; hour < 24; ++hour) {
    const SimTime at = hour * kSecondsPerHour + kSecondsPerHour / 2;
    workload.advance_to(at);
    prober.sweep(routable, at);
    std::cerr << "[bench] hourly sweep " << (hour + 1) << "/24\r";
  }
  std::cerr << "\n";

  const auto activity = inference::temporal_activity(prober);
  const auto score = inference::score_temporal(activity, scenario->topo());

  std::cout << "== TAB1-TEMPORAL: hourly activity estimation ==\n";
  std::cout << "ASes with usable hourly series: " << score.ases_scored
            << " of " << scenario->topo().accesses.size() << "\n";
  std::cout << "mean correlation with true diurnal curve: "
            << core::num(score.mean_shape_correlation) << "\n";
  std::cout << "mean peak-time error: "
            << core::num(score.mean_peak_error_h) << " hours\n";

  // Show a few example series: the biggest eyeball per country.
  std::cout << "\nper-AS peak times (biggest eyeball per country):\n";
  core::Table table({"AS", "country", "estimated peak (UTC)",
                     "true peak (UTC)"});
  for (const auto& country : scenario->topo().geography.countries()) {
    const auto ases = scenario->topo().accesses_in(country.id);
    if (ases.empty()) continue;
    const Asn big = ases.front();
    const auto peak = inference::estimated_peak_hour_utc(activity, big);
    const double lon = scenario->topo()
                           .geography
                           .city(scenario->topo().graph.info(big).home_city)
                           .location.lon_deg;
    const double expected = std::fmod(21.0 - lon / 15.0 + 48.0, 24.0);
    table.row(scenario->topo().graph.info(big).name, country.name,
              peak ? core::num(*peak, 1) : "-", core::num(expected, 1));
  }
  table.print();
  std::cout << "\npaper's Table 1 asks for hourly precision at /24 "
               "granularity; hourly probing delivers AS-level hourly series "
               "(per-/24 series need more probing budget per TTL)\n";
  return 0;
}
