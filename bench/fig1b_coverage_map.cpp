// FIG1B — Figure 1b: per-country share of APNIC-estimated users inside ASes
// that cache probing identified as hosting clients (the map's shading), and
// the serving-infrastructure locations discovered by TLS scanning (the
// map's dots, Facebook servers in the paper).
#include <unordered_set>

#include "bench_common.h"
#include "inference/client_detection.h"
#include "scan/tls_scanner.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  auto day = bench::run_measurement_day(*scenario);

  // Detected ASes from cache probing alone (the figure's shading source).
  const auto detected_prefixes = day.prober->detected_prefixes();
  const auto detected_ases = inference::combine_detected(
      detected_prefixes, {}, scenario->topo().addresses);

  const auto coverage = inference::apnic_coverage_by_country(
      detected_ases, scenario->apnic(), scenario->topo());

  std::cout << "== FIG1B: % of APNIC users in ASes detected by cache "
               "probing, per country ==\n";
  core::Table table({"country", "apnic users", "% covered"});
  const auto& geo = scenario->topo().geography;
  double total_apnic = 0, covered_apnic = 0;
  for (const auto& country : geo.countries()) {
    const double users =
        scenario->apnic().country_users(scenario->topo(), country.id);
    table.row(country.name, static_cast<std::uint64_t>(users),
              core::pct(coverage[country.id.value()]));
    total_apnic += users;
    covered_apnic += users * coverage[country.id.value()];
  }
  table.print();
  std::cout << "worldwide: " << core::pct(covered_apnic / total_apnic)
            << " of APNIC-estimated users in detected ASes (paper: 98%)\n";

  // TLS scan: serving infrastructure of the offnet-heaviest hypergiant
  // (Facebook in the paper's figure).
  const auto& target = scenario->deployment().hypergiants().front();
  const scan::TlsScanner scanner(scenario->tls(),
                                 scenario->topo().addresses);
  std::vector<std::string> names{target.name};
  const auto scan_result = scanner.sweep(names);
  const auto servers = scan_result.operated_by(target.name);

  std::cout << "\n== FIG1B dots: " << target.name
            << " servers discovered by TLS scan ==\n";
  std::size_t offnet = 0;
  std::unordered_set<std::uint32_t> host_ases;
  for (const auto* ep : servers) {
    if (ep->inferred_offnet) ++offnet;
    host_ases.insert(ep->origin_as.value());
  }
  std::cout << servers.size() << " front ends found, " << offnet
            << " off-net, across " << host_ases.size()
            << " hosting ASes\n";

  // Country distribution of discovered servers (via hosting-AS country —
  // public information).
  core::Table dot_table({"country", "servers", "off-net"});
  for (const auto& country : geo.countries()) {
    std::size_t count = 0, off = 0;
    for (const auto* ep : servers) {
      if (scenario->topo().graph.info(ep->origin_as).country == country.id) {
        ++count;
        if (ep->inferred_offnet) ++off;
      }
    }
    dot_table.row(country.name, count, off);
  }
  dot_table.print();

  // Ground-truth check: did the scan find every endpoint the operator
  // actually runs (front ends plus dedicated service VIPs)?
  std::size_t truth_count = 0;
  // Pure count over the inventory; order cannot reach the output.
  // itm-lint: allow(nondet-iteration)
  for (const auto& [addr, ep] : scenario->tls().all()) {
    if (ep.hypergiant == target.id) ++truth_count;
  }
  std::cout << "scan found " << servers.size() << "/" << truth_count
            << " of the operator's true TLS endpoints\n";
  return 0;
}
