# The `ctest -L bench` gate: run the substrate_scale bench at the tiny tier
# and diff its single-line JSON record against the committed BENCH_tiny.json
# (exact structural fields, banded layout/perf fields — tools/bench_diff.py
# documents the classes). Keeps the perf ledger honest: a substrate change
# that shifts deterministic counts or regresses the layout shows up here,
# not months later when someone re-reads the trajectory.
execute_process(COMMAND ${SUBSTRATE_BIN} tiny ${WORK_DIR}/BENCH_tiny.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "substrate_scale tiny failed (${rc}): ${err}")
endif()

find_program(PYTHON3 python3)
if(NOT PYTHON3)
  message(FATAL_ERROR "python3 not found; bench record diff needs it")
endif()

execute_process(COMMAND ${PYTHON3} ${REPO_DIR}/tools/bench_diff.py
                        ${REPO_DIR}/BENCH_tiny.json
                        ${WORK_DIR}/BENCH_tiny.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench record drift:\n${out}${err}")
endif()
message(STATUS "${out}")
