// TXT-COV — §3.1.2's headline numbers: cache probing identifies client
// prefixes carrying ~95% of a reference hypergiant's ("Microsoft CDN")
// traffic with <1% false positives; root-log crawling alone reaches ~60% at
// AS granularity; the two combined reach ~99%.
#include "bench_common.h"
#include "inference/activity.h"
#include "inference/client_detection.h"
#include "net/ordered.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  auto day = bench::run_measurement_day(*scenario);

  const HypergiantId reference(0);  // the "Microsoft CDN" stand-in
  const auto detected_prefixes = day.prober->detected_prefixes();
  const auto root_ases = day.crawl.detected_ases();
  const auto combined = inference::combine_detected(
      detected_prefixes, root_ases, scenario->topo().addresses);
  const auto cache_ases = inference::combine_detected(
      detected_prefixes, {}, scenario->topo().addresses);

  const auto cache_prefix_cov = inference::evaluate_prefixes(
      detected_prefixes, scenario->users(), scenario->matrix(), reference);
  const auto cache_as_cov = inference::evaluate_ases(
      cache_ases, scenario->users(), scenario->matrix(), reference,
      scenario->topo());
  const auto root_cov = inference::evaluate_ases(
      root_ases, scenario->users(), scenario->matrix(), reference,
      scenario->topo());
  const auto combined_cov = inference::evaluate_ases(
      combined, scenario->users(), scenario->matrix(), reference,
      scenario->topo());

  std::cout << "== TXT-COV: client-detection coverage of reference "
               "hypergiant traffic ==\n";
  core::Table table({"technique", "granularity", "detected",
                     "traffic coverage", "paper", "false positives"});
  table.row("cache probing", "/24 prefix", cache_prefix_cov.detected,
            core::pct(cache_prefix_cov.traffic_coverage), "~95%",
            core::pct(cache_prefix_cov.false_positive_rate));
  table.row("cache probing", "AS", cache_as_cov.detected,
            core::pct(cache_as_cov.traffic_coverage), "-",
            core::pct(cache_as_cov.false_positive_rate));
  table.row("root-log crawl", "AS", root_cov.detected,
            core::pct(root_cov.traffic_coverage), "~60%",
            core::pct(root_cov.false_positive_rate));
  table.row("combined", "AS", combined_cov.detected,
            core::pct(combined_cov.traffic_coverage), "~99%",
            core::pct(combined_cov.false_positive_rate));

  // Extension (§3.1.3 open question): root logs refined with page-embedded
  // resolver-client associations — outsourced-resolver and public-resolver
  // clients are redistributed onto their real networks.
  const auto assoc_est = inference::activity_from_root_logs_with_associations(
      scenario->dns(), scenario->topo().addresses);
  std::vector<Asn> assoc_ases;
  for (const auto& [asn, score] : itm::net::sorted_items(assoc_est.by_as)) {
    if (score >= 1.0) assoc_ases.push_back(Asn(asn));
  }
  const auto assoc_cov = inference::evaluate_ases(
      assoc_ases, scenario->users(), scenario->matrix(), reference,
      scenario->topo());
  table.row("root-log + associations", "AS", assoc_cov.detected,
            core::pct(assoc_cov.traffic_coverage), "(extension)",
            core::pct(assoc_cov.false_positive_rate));
  table.print();

  std::cout << "\nroot-log blind spot: " << day.crawl.total_crawled
            << " crawled Chromium queries, of which the share via the "
               "public resolver is attributed to its operator's AS\n";
  std::cout << "user coverage (all hypergiants weight equally applies): "
            << core::pct(cache_prefix_cov.user_coverage)
            << " of users in detected prefixes\n";
  return 0;
}
