// Shared scaffolding for the experiment benches: scenario construction from
// command-line seed/scale, and the standard "drive a day of workload while
// cache-probing" measurement loop several experiments share.
//
// Every bench binary runs standalone with no arguments (seed 42, default
// scale); pass `<seed> [tiny|default|large]` to vary.
#pragma once

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "core/report.h"
#include "core/scale.h"
#include "core/scenario.h"
#include "core/traffic_map.h"
#include "core/workload.h"
#include "net/executor.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "scan/cache_prober.h"
#include "scan/root_crawler.h"

namespace itm::bench {

// Wall-clock stopwatch for per-stage timing and speedup reporting, backed
// by the sanctioned obs::Stopwatch (bench timings are wall-clock by nature
// and never enter the byte-equivalence diff).
class WallTimer {
 public:
  WallTimer() = default;
  void reset() { watch_.reset(); }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(watch_.elapsed_ns()) * 1e-9;
  }

 private:
  obs::Stopwatch watch_;
};

// Prints "<stage>: serial 1.23 s, 4 threads 0.41 s (3.0x)" to stderr.
inline void report_speedup(const char* stage, double serial_s,
                           double parallel_s, std::size_t threads) {
  std::cerr << "[bench] " << stage << ": serial " << core::num(serial_s, 3)
            << " s, " << threads << " threads " << core::num(parallel_s, 3)
            << " s (" << core::num(parallel_s > 0 ? serial_s / parallel_s : 0,
                                   2)
            << "x)\n";
}

// Prints the per-stage wall times of a finished map build.
inline void report_stage_timings(const core::MapBuildTimings& t) {
  std::cerr << "[bench] stage wall time: probing "
            << core::num(t.workload_probe_s, 2) << " s, tls "
            << core::num(t.tls_scan_s, 2) << " s, ecs "
            << core::num(t.ecs_map_s, 2) << " s, routing "
            << core::num(t.routing_s, 2) << " s, inference "
            << core::num(t.inference_s, 2) << " s\n";
}

// Writes the current metrics registry (all sections, including wall-clock)
// to $ITM_BENCH_METRICS_DIR/<bench_name>.metrics.json; no-op when the env
// var is unset. Call once per bench run, after the measured work.
inline void dump_metrics_snapshot(const char* bench_name) {
  // itm-lint: allow(banned-nondet-sources) -- bench harness opt-in, not a stage
  const char* dir = std::getenv("ITM_BENCH_METRICS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/" + bench_name + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[bench] cannot write metrics snapshot " << path << "\n";
    return;
  }
  obs::metrics().write_json(out, obs::MetricsRegistry::Export::kAll);
  std::cerr << "[bench] wrote metrics snapshot " << path << "\n";
}

inline core::ScenarioConfig config_from_args(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::string scale = argc > 2 ? argv[2] : "default";
  if (scale == "tiny") return core::tiny_config(seed);
  if (scale == "large") return core::large_config(seed);
  if (scale == "medium" || scale == "huge") {
    // Pinned bench tiers carry their own seed: a tier names one exact
    // world, so BENCH records stay comparable across commits. A seed
    // argument is ignored here on purpose.
    const auto tier = *core::parse_scale_tier(scale);
    if (argc > 1 && seed != core::tier_seed(tier)) {
      std::cerr << "[bench] scale '" << scale << "' pins seed "
                << core::tier_seed(tier) << "; ignoring --seed " << seed
                << "\n";
    }
    return core::tier_config(tier);
  }
  return core::default_config(seed);
}

// Peak resident set size of this process so far, in bytes (Linux
// ru_maxrss is in KiB). 0 when the kernel refuses the query.
inline std::size_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

// Single-line machine-readable bench record (the BENCH_<tier>.json format):
// insertion-ordered keys, integers verbatim, doubles with enough digits to
// round-trip. tools/check_bench.sh parses and diffs these records, so keys
// are part of the bench schema — add, don't rename.
class BenchRecord {
 public:
  explicit BenchRecord(std::string bench_name) {
    str("bench", std::move(bench_name));
  }

  BenchRecord& str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
    return *this;
  }
  BenchRecord& num(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchRecord& num(const std::string& key, double value) {
    std::ostringstream out;
    out.precision(10);
    out << value;
    fields_.emplace_back(key, out.str());
    return *this;
  }

  // The record as one JSON line (trailing newline included).
  [[nodiscard]] std::string line() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "}\n";
    return out;
  }

  // Writes the line to `path` and echoes it to stderr.
  void write(const std::string& path) const {
    std::ofstream out(path);
    out << line();
    std::cerr << "[bench] wrote " << path << ": " << line();
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

inline std::unique_ptr<core::Scenario> make_scenario(int argc, char** argv) {
  const auto config = config_from_args(argc, argv);
  std::cerr << "[bench] generating scenario (seed " << config.seed << ")...\n";
  auto scenario = core::Scenario::generate(config);
  std::cerr << "[bench] " << scenario->topo().graph.size() << " ASes, "
            << scenario->users().size() << " user /24s, "
            << scenario->catalog().size() << " services\n";
  return scenario;
}

// A day of workload with interleaved cache-probing sweeps; returns the
// prober (with accumulated hits) and leaves root logs populated.
struct MeasurementDay {
  std::unique_ptr<scan::CacheProber> prober;
  scan::RootCrawlResult crawl;
};

inline MeasurementDay run_measurement_day(
    core::Scenario& scenario, std::size_t probe_rounds = 16,
    scan::CacheProbeConfig probe_config = {},
    core::WorkloadConfig workload_config = {},
    net::Executor* executor = nullptr) {
  core::Workload workload(scenario, workload_config,
                          scenario.config().seed ^ 0xda7);
  auto prober = std::make_unique<scan::CacheProber>(
      scenario.dns(), scenario.catalog(), probe_config, nullptr, executor);
  const auto routable = scenario.topo().addresses.routable_slash24s();
  for (std::size_t round = 0; round < probe_rounds; ++round) {
    const SimTime at =
        (2 * round + 1) * workload_config.duration / (2 * probe_rounds);
    workload.advance_to(at);
    prober->sweep(routable, at);
    std::cerr << "[bench] probe round " << (round + 1) << "/" << probe_rounds
              << "\r";
  }
  std::cerr << "\n";
  workload.finish();
  MeasurementDay day;
  day.prober = std::move(prober);
  day.crawl = scan::crawl_root_logs(scenario.dns(), scenario.topo().addresses);
  return day;
}

}  // namespace itm::bench
