// Shared scaffolding for the experiment benches: scenario construction from
// command-line seed/scale, and the standard "drive a day of workload while
// cache-probing" measurement loop several experiments share.
//
// Every bench binary runs standalone with no arguments (seed 42, default
// scale); pass `<seed> [tiny|default|large]` to vary.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/report.h"
#include "core/scenario.h"
#include "core/traffic_map.h"
#include "core/workload.h"
#include "scan/cache_prober.h"
#include "scan/root_crawler.h"

namespace itm::bench {

inline core::ScenarioConfig config_from_args(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::string scale = argc > 2 ? argv[2] : "default";
  if (scale == "tiny") return core::tiny_config(seed);
  if (scale == "large") return core::large_config(seed);
  return core::default_config(seed);
}

inline std::unique_ptr<core::Scenario> make_scenario(int argc, char** argv) {
  const auto config = config_from_args(argc, argv);
  std::cerr << "[bench] generating scenario (seed " << config.seed << ")...\n";
  auto scenario = core::Scenario::generate(config);
  std::cerr << "[bench] " << scenario->topo().graph.size() << " ASes, "
            << scenario->users().size() << " user /24s, "
            << scenario->catalog().size() << " services\n";
  return scenario;
}

// A day of workload with interleaved cache-probing sweeps; returns the
// prober (with accumulated hits) and leaves root logs populated.
struct MeasurementDay {
  std::unique_ptr<scan::CacheProber> prober;
  scan::RootCrawlResult crawl;
};

inline MeasurementDay run_measurement_day(
    core::Scenario& scenario, std::size_t probe_rounds = 16,
    scan::CacheProbeConfig probe_config = {},
    core::WorkloadConfig workload_config = {}) {
  core::Workload workload(scenario, workload_config,
                          scenario.config().seed ^ 0xda7);
  auto prober = std::make_unique<scan::CacheProber>(
      scenario.dns(), scenario.catalog(), probe_config);
  const auto routable = scenario.topo().addresses.routable_slash24s();
  for (std::size_t round = 0; round < probe_rounds; ++round) {
    const SimTime at =
        (2 * round + 1) * workload_config.duration / (2 * probe_rounds);
    workload.advance_to(at);
    prober->sweep(routable, at);
    std::cerr << "[bench] probe round " << (round + 1) << "/" << probe_rounds
              << "\r";
  }
  std::cerr << "\n";
  workload.finish();
  MeasurementDay day;
  day.prober = std::move(prober);
  day.crawl = scan::crawl_root_logs(scenario.dns(), scenario.topo().addresses);
  return day;
}

}  // namespace itm::bench
