// TAB1 — Table 1: achieved coverage and precision of every Internet-traffic-
// map component, produced by running the full MapBuilder pipeline (all
// public-data techniques) and scoring each component against ground truth.
//
// Paper's Table 1 rows:
//   1a. finding prefixes with users      (desired /24 + daily; now weekly)
//   1b. estimating relative activity     (desired /24 hourly; now AS yearly)
//   2a. mapping services                 (desired facility weekly)
//   2b. mapping users to hosts           (desired prefix hourly)
//   3.  routes between users and services (desired <city,AS> daily; now N/A)
#include "bench_common.h"
#include "inference/activity.h"
#include "inference/client_detection.h"
#include "inference/geolocation.h"
#include "inference/mapping_eval.h"
#include "net/ordered.h"
#include "net/stats.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  core::MapBuilder builder(*scenario);
  std::cerr << "[bench] building the full traffic map...\n";
  const auto map = builder.build();
  const auto& topo = scenario->topo();

  // ---- 1a. Finding prefixes with users.
  const auto prefix_cov = inference::evaluate_prefixes(
      map.client_prefixes, scenario->users(), scenario->matrix(),
      HypergiantId(0));
  const auto as_cov = inference::evaluate_ases(
      map.client_ases, scenario->users(), scenario->matrix(), HypergiantId(0),
      topo);

  // ---- 1b. Relative activity.
  const auto activity_score =
      inference::score_activity(map.activity, scenario->users(), topo);

  // ---- 2a. Mapping services: endpoint discovery + geolocation.
  std::size_t truth_endpoints = scenario->tls().size();
  std::size_t discovered = 0, classified = 0, offnet_right = 0,
              offnet_total = 0;
  for (const auto& ep : map.tls.endpoints) {
    ++discovered;
    const auto* truth = scenario->tls().endpoint_at(ep.address);
    if (!ep.inferred_operator.empty()) ++classified;
    if (truth != nullptr && truth->hypergiant.has_value()) {
      ++offnet_total;
      if (ep.inferred_offnet == truth->offnet) ++offnet_right;
    }
  }
  const auto geo_truth = [&](Ipv4Addr addr) -> std::optional<GeoPoint> {
    const auto* ep = scenario->tls().endpoint_at(addr);
    if (ep == nullptr) return std::nullopt;
    return topo.geography.city(ep->city).location;
  };
  const auto geo_score =
      inference::score_geolocation(map.server_locations, geo_truth);

  // ---- 2b. Users to hosts: exactness of the inferred mapping for the
  // ECS-swept services, accounting for the ISP-resolver fraction whose real
  // answers the sweep cannot see.
  double mapped_addr_right = 0, mapped_city_right = 0, mapped_bytes = 0;
  const auto city_of = [&](Ipv4Addr addr) -> std::optional<CityId> {
    const auto* ep = scenario->tls().endpoint_at(addr);
    if (ep == nullptr) return std::nullopt;
    return ep->city;
  };
  // Service-id-sorted: the mapped_* sums are float accumulations whose
  // order must not follow hash layout (itm-lint: nondet-iteration).
  for (const auto sid : itm::net::sorted_keys(map.user_mapping)) {
    const auto& sweep = map.user_mapping.at(sid);
    const auto& svc = scenario->catalog().service(ServiceId(sid));
    const auto prefixes = scenario->users().all();
    for (const auto& up : prefixes) {
      const auto it = sweep.find(up.prefix);
      if (it == sweep.end()) continue;
      const double bytes = up.activity * svc.popularity;
      // Public-resolver bytes resolve exactly as the sweep saw; ISP bytes
      // were answered by the resolver's location instead.
      const auto isp_result = scenario->mapper().map(
          svc, up.asn, up.city, topo.graph.info(up.asn).home_city,
          up.prefix.base().bits() ^ svc.id.value());
      mapped_bytes += bytes;
      mapped_addr_right += bytes * up.public_dns_share;
      mapped_city_right += bytes * up.public_dns_share;
      if (isp_result.address == it->second) {
        mapped_addr_right += bytes * (1 - up.public_dns_share);
      }
      if (city_of(isp_result.address) == city_of(it->second)) {
        mapped_city_right += bytes * (1 - up.public_dns_share);
      }
    }
  }

  // ---- 3. Routes.
  const auto pred_before = routing::evaluate_prediction(
      topo.graph, map.observed_graph, map.public_view, topo.accesses,
      topo.hypergiants);
  const auto pred_after = routing::evaluate_prediction(
      topo.graph, map.augmented_graph, map.public_view, topo.accesses,
      topo.hypergiants);

  std::cout << "== TAB1: achieved coverage/precision per ITM component ==\n";
  core::Table table({"component", "granularity", "metric", "achieved",
                     "paper's 'now'"});
  table.row("1a finding user prefixes", "/24, daily",
            "traffic coverage (prefix level)",
            core::pct(prefix_cov.traffic_coverage), "95% (weekly)");
  table.row("", "", "false positives",
            core::pct(prefix_cov.false_positive_rate), "<1%");
  table.row("", "AS", "traffic coverage (combined)",
            core::pct(as_cov.traffic_coverage), "99%");
  table.row("1b relative activity", "AS, daily", "spearman vs truth",
            core::num(activity_score.spearman), "AS, yearly");
  table.row("", "", "kendall tau",
            core::num(activity_score.kendall_tau), "-");
  table.row("2a mapping services", "address", "endpoints discovered",
            std::to_string(discovered) + "/" + std::to_string(truth_endpoints),
            "server owner");
  table.row("", "", "off-net classification accuracy",
            core::pct(offnet_total ? static_cast<double>(offnet_right) /
                                         offnet_total
                                   : 0),
            "-");
  table.row("", "city", "median geolocation error (km)",
            core::num(geo_score.median_error_km, 0), "-");
  table.row("", "", "servers within 500km",
            core::pct(geo_score.frac_within_500km), "-");
  table.row("2b users to hosts", "/24 per service",
            "bytes mapped to correct serving city",
            core::pct(mapped_bytes > 0 ? mapped_city_right / mapped_bytes
                                       : 0),
            "routable /24s, ECS services");
  table.row("", "", "bytes mapped to exact front end",
            core::pct(mapped_bytes > 0 ? mapped_addr_right / mapped_bytes
                                       : 0),
            "-");
  table.row("3 routes", "AS path", "peering links visible",
            core::pct(map.public_view.peering_coverage(topo.graph)), "N/A");
  table.row("", "", "eyeball->hypergiant paths predicted",
            core::pct(pred_before.exact_rate()), "N/A");
  table.row("", "", "with recommended links",
            core::pct(pred_after.exact_rate()), "N/A");
  table.print();

  std::cout << "\nmap artifacts: " << map.client_prefixes.size()
            << " client /24s, " << map.client_ases.size() << " client ASes, "
            << map.tls.endpoints.size() << " TLS endpoints, "
            << map.server_locations.size() << " geolocated servers, "
            << map.user_mapping.size() << " ECS service mappings, "
            << map.recommended_links.size() << " recommended links\n";
  return 0;
}
