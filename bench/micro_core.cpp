// MICRO — google-benchmark microbenchmarks for the hot data structures and
// algorithms: prefix-trie longest-prefix match, BGP route propagation,
// DNS cache probing, anycast catchment computation, and traffic-matrix
// assembly, plus the sharded-parallel variants of the hottest pipeline
// stages (BGP public-view collection, TLS sweep, cache-probe sweep) at 1,
// 2 and 4 threads. Per-thread-count timings make the speedup directly
// readable from the report; the parallel stages produce bit-identical
// output at every thread count, so these benches measure wall clock only.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scenario.h"
#include "core/workload.h"
#include "net/executor.h"
#include "net/prefix_trie.h"
#include "routing/bgp.h"
#include "routing/public_view.h"
#include "scan/cache_prober.h"
#include "scan/tls_scanner.h"

namespace {

using namespace itm;

core::Scenario& scenario() {
  static auto s = core::Scenario::generate(core::default_config(7));
  return *s;
}

void BM_PrefixTrieLpm(benchmark::State& state) {
  PrefixTrie<int> trie;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    trie.insert(Ipv4Prefix(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                           static_cast<std::uint8_t>(rng.uniform_int(8, 24))),
                i);
  }
  std::uint32_t probe = 0x12345678;
  for (auto _ : state) {
    probe = probe * 2654435761u + 1;
    benchmark::DoNotOptimize(trie.longest_match(Ipv4Addr(probe)));
  }
}
BENCHMARK(BM_PrefixTrieLpm);

void BM_AddressPlanOrigin(benchmark::State& state) {
  const auto& plan = scenario().topo().addresses;
  std::uint32_t probe = 0x05000000;
  for (auto _ : state) {
    probe += 65521;
    benchmark::DoNotOptimize(plan.origin_of(Ipv4Addr(probe)));
  }
}
BENCHMARK(BM_AddressPlanOrigin);

void BM_BgpSingleOriginPropagation(benchmark::State& state) {
  const auto& topo = scenario().topo();
  const routing::Bgp bgp(topo.graph);
  std::size_t i = 0;
  for (auto _ : state) {
    const Asn dest(static_cast<std::uint32_t>(i++ % topo.graph.size()));
    benchmark::DoNotOptimize(bgp.routes_to(dest));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(topo.graph.size()));
}
BENCHMARK(BM_BgpSingleOriginPropagation);

void BM_BgpAnycastPropagation(benchmark::State& state) {
  const auto& topo = scenario().topo();
  const routing::Bgp bgp(topo.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp.routes_to_set(topo.hypergiants));
  }
}
BENCHMARK(BM_BgpAnycastPropagation);

// Sharded BGP propagation feeding route collectors (MapBuilder stage 3),
// over a slice of destinations so one iteration stays sub-second. Arg is
// the thread count: compare Arg(1) vs Arg(4) wall time for the speedup.
void BM_BgpPublicViewThreads(benchmark::State& state) {
  const auto& topo = scenario().topo();
  const routing::Bgp bgp(topo.graph);
  net::Executor executor(static_cast<std::size_t>(state.range(0)));
  std::vector<Asn> destinations;
  for (const auto& as : topo.graph.ases()) {
    destinations.push_back(as.asn);
    if (destinations.size() >= 256) break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::collect_public_view(
        bgp, topo.tier1s, destinations, executor));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(destinations.size()));
}
BENCHMARK(BM_BgpPublicViewThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Sharded full-address-space TLS sweep (MapBuilder stage 2).
void BM_TlsSweepThreads(benchmark::State& state) {
  auto& s = scenario();
  net::Executor executor(static_cast<std::size_t>(state.range(0)));
  const scan::TlsScanner scanner(s.tls(), s.topo().addresses);
  std::vector<std::string> names;
  for (const auto& hg : s.deployment().hypergiants()) names.push_back(hg.name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.sweep(names, executor));
  }
}
BENCHMARK(BM_TlsSweepThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Sharded ECS cache-probe sweep over every routable /24 (MapBuilder
// stage 1). Probing reads cold caches here — the per-probe cost is the
// same; only hit bookkeeping differs.
void BM_CacheProbeSweepThreads(benchmark::State& state) {
  auto& s = scenario();
  net::Executor executor(static_cast<std::size_t>(state.range(0)));
  const auto routable = s.topo().addresses.routable_slash24s();
  for (auto _ : state) {
    scan::CacheProber prober(s.dns(), s.catalog(), {}, nullptr, &executor);
    prober.sweep(routable, 1000);
    benchmark::DoNotOptimize(prober.total_probes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(routable.size()));
}
BENCHMARK(BM_CacheProbeSweepThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_DnsResolve(benchmark::State& state) {
  auto& s = scenario();
  Rng rng(3);
  const auto& up = s.users().all().front();
  const auto& svc = s.catalog().services().front();
  SimTime t = 0;
  for (auto _ : state) {
    t += 7;
    benchmark::DoNotOptimize(s.dns().resolve(up, svc, t, rng));
  }
}
BENCHMARK(BM_DnsResolve);

void BM_CacheProbe(benchmark::State& state) {
  auto& s = scenario();
  const auto& svc = s.catalog().services().front();
  const auto prefix = s.users().all().front().prefix;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.dns().probe_cache(0, svc, prefix, 1000));
  }
}
BENCHMARK(BM_CacheProbe);

void BM_ClientMapping(benchmark::State& state) {
  auto& s = scenario();
  const auto& svc = s.catalog().services().front();
  const auto prefixes = s.users().all();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& up = prefixes[i++ % prefixes.size()];
    benchmark::DoNotOptimize(
        s.mapper().map(svc, up.asn, up.city, up.city, i));
  }
}
BENCHMARK(BM_ClientMapping);

void BM_WorkloadGeneration(benchmark::State& state) {
  auto& s = scenario();
  core::WorkloadConfig config;
  config.queries_per_activity = 1.0;  // lighter event stream
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::Workload workload(s, config, seed++);
    benchmark::DoNotOptimize(workload.total_events());
  }
}
BENCHMARK(BM_WorkloadGeneration);

void BM_ScenarioGenerateTiny(benchmark::State& state) {
  std::uint64_t seed = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Scenario::generate(core::tiny_config(seed++)));
  }
}
BENCHMARK(BM_ScenarioGenerateTiny);

}  // namespace

// Expanded BENCHMARK_MAIN so a metrics snapshot (ITM_BENCH_METRICS_DIR) can
// be written after the benchmarks run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  itm::bench::dump_metrics_snapshot("micro_core");
  return 0;
}
