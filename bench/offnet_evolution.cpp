// OFFNET-EVOLUTION — the longitudinal view behind [25] ("Seven years in the
// life of hypergiants' off-nets"), which the paper's Figure 1b builds on:
// periodic TLS scans over several simulated years track each hypergiant's
// off-net expansion into eyeball networks, and how much of its traffic the
// off-net tier absorbs.
#include <unordered_set>

#include "bench_common.h"
#include "scan/tls_scanner.h"

int main(int argc, char** argv) {
  using namespace itm;
  const auto base_config = bench::config_from_args(argc, argv);

  std::cout << "== OFFNET-EVOLUTION: yearly TLS-scan view of off-net "
               "build-out ==\n";
  core::Table table({"year", "hypergiant", "off-net host ASes",
                     "front ends", "off-net share of its traffic"});

  // Deployment aggressiveness grows over the simulated years.
  const double base_rate = base_config.deployment.offnet_base;
  for (int year = 1; year <= 7; ++year) {
    auto config = base_config;
    // Same seed: the same world, with a denser deployment each year.
    config.deployment.offnet_base =
        base_rate * (0.25 + 0.125 * static_cast<double>(year));
    auto scenario = core::Scenario::generate(config);

    const scan::TlsScanner scanner(scenario->tls(),
                                   scenario->topo().addresses);
    std::vector<std::string> names;
    for (const auto& hg : scenario->deployment().hypergiants()) {
      names.push_back(hg.name);
    }
    const auto scan_result = scanner.sweep(names);

    for (const auto& hg : scenario->deployment().hypergiants()) {
      if (hg.offnet_hit_ratio <= 0) continue;  // cloud-like, no off-nets
      std::unordered_set<std::uint32_t> host_ases;
      std::size_t front_ends = 0;
      for (const auto* ep : scan_result.operated_by(hg.name)) {
        if (!ep->inferred_offnet) continue;
        host_ases.insert(ep->origin_as.value());
        ++front_ends;
      }
      const double bytes = scenario->matrix().hypergiant_bytes(hg.id);
      table.row(year, hg.name, host_ases.size(), front_ends,
                core::pct(bytes > 0
                              ? scenario->matrix().offnet_bytes(hg.id) / bytes
                              : 0));
    }
  }
  table.print();
  std::cout << "\nshape from [25]: hypergiants' off-net footprints grow "
               "steadily across years, visible entirely through TLS "
               "certificate scans\n";
  return 0;
}
