// TXT-PATHLEN — §2.1's path-length contrast: in an unweighted academic
// topology view only ~2% of paths are two ASes long, yet ~73% of (traffic-
// weighted) queries come from ASes that host a hypergiant server or connect
// directly to the hypergiant — the unweighted-CDF fallacy the paper opens
// with.
#include "bench_common.h"
#include "net/stats.h"
#include "routing/bgp.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  const auto& topo = scenario->topo();
  const routing::Bgp bgp(topo.graph);

  // --- Unweighted view: AS-path hop distribution from every AS to a
  // destination sample spanning all network types (the iPlane-style
  // "paths to all prefixes" perspective, where every path counts once).
  WeightedCdf unweighted;
  std::vector<Asn> sample_dests;
  const auto take = [&](const std::vector<Asn>& from, std::size_t k) {
    for (std::size_t i = 0; i < std::min(k, from.size()); ++i) {
      sample_dests.push_back(from[i]);
    }
  };
  take(topo.hypergiants, 2);
  take(topo.contents, 20);
  take(topo.accesses, 20);
  take(topo.enterprises, 15);
  take(topo.transits, 5);
  for (const Asn dest : sample_dests) {
    const auto table = bgp.routes_to(dest);
    for (const auto& as : topo.graph.ases()) {
      if (as.asn == dest || !table.at(as.asn).reachable()) continue;
      unweighted.add(table.at(as.asn).hops);
    }
  }

  // --- Traffic-weighted view from the ground-truth matrix.
  const auto hist = scenario->matrix().bytes_by_hops();
  double total = 0;
  for (const double b : hist) total += b;

  std::cout << "== TXT-PATHLEN: unweighted vs traffic-weighted path "
               "lengths ==\n";
  core::Table table({"AS hops", "unweighted paths", "traffic-weighted"});
  for (std::size_t h = 0; h <= 6; ++h) {
    const double uw = unweighted.fraction_at_or_below(static_cast<double>(h)) -
                      (h == 0 ? 0.0
                              : unweighted.fraction_at_or_below(
                                    static_cast<double>(h) - 1));
    table.row(h, core::pct(uw), core::pct(hist[h] / total));
  }
  table.print();

  const double unweighted_short = unweighted.fraction_at_or_below(1.0);
  const double weighted_short = (hist[0] + hist[1]) / total;
  std::cout << "\npaths <=1 hop from a hypergiant: unweighted "
            << core::pct(unweighted_short) << " of routes vs "
            << core::pct(weighted_short)
            << " of bytes (paper: 2% of paths are short vs 73% of queries "
               "from ASes <=1 hop from Google)\n";

  // Also the direct-connectivity framing, per reference hypergiant (the
  // paper's number is specifically about Google): fraction of that
  // hypergiant's traffic from client ASes that host one of its caches or
  // connect directly to it.
  const HypergiantId reference(0);
  const Asn reference_asn = topo.hypergiants.front();
  double direct_bytes = 0, all_bytes = 0;
  const auto prefixes = scenario->users().all();
  for (std::size_t pi = 0; pi < prefixes.size(); ++pi) {
    const Asn client = prefixes[pi].asn;
    const double bytes =
        scenario->matrix().prefix_hypergiant_bytes(pi, reference);
    const bool direct =
        topo.graph.adjacent(client, reference_asn) ||
        scenario->deployment().offnet_in(reference, client) != nullptr;
    all_bytes += bytes;
    if (direct) direct_bytes += bytes;
  }
  std::cout << "reference hypergiant: traffic from ASes hosting its cache "
               "or connecting directly: "
            << core::pct(direct_bytes / all_bytes) << " (paper: ~73%)\n";
  return 0;
}
