// FIG1A — Figure 1a: client /24s detected by DNS cache probing, per public
// resolver PoP.
//
// Paper: a bar per probed Google Public DNS PoP, prefix counts spanning
// several orders of magnitude (log scale), because each PoP's cache only
// reflects the prefixes in its anycast catchment. Here: one row per
// simulated public PoP with the count of distinct /24s detected there, plus
// the global union and its coverage of the ground-truth user universe.
#include <algorithm>

#include "bench_common.h"
#include "inference/client_detection.h"

int main(int argc, char** argv) {
  using namespace itm;
  auto scenario = bench::make_scenario(argc, argv);
  auto day = bench::run_measurement_day(*scenario);

  std::cout << "== FIG1A: client prefixes detected per public DNS PoP ==\n";
  const auto per_pop = day.prober->prefixes_per_pop();
  const auto& pops = scenario->dns().public_pops();
  const auto& geo = scenario->topo().geography;

  core::Table table({"pop", "city", "country", "detected /24s"});
  std::vector<std::size_t> order(per_pop.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return per_pop[a] > per_pop[b];
  });
  for (const std::size_t p : order) {
    const auto& city = geo.city(pops[p].city);
    table.row("pop-" + std::to_string(p), city.name,
              geo.country(city.country).name, per_pop[p]);
  }
  table.print();

  const auto detected = day.prober->detected_prefixes();
  const auto max_count = *std::max_element(per_pop.begin(), per_pop.end());
  const auto min_count = *std::min_element(per_pop.begin(), per_pop.end());
  std::cout << "\nunion of all PoPs: " << detected.size() << " /24s"
            << " (user universe: " << scenario->users().size() << ")\n";
  std::cout << "per-PoP spread: max/min = " << max_count << "/" << min_count
            << " — per-PoP counts reflect anycast catchment sizes\n";

  const auto cov = inference::evaluate_prefixes(
      detected, scenario->users(), scenario->matrix(), HypergiantId(0));
  std::cout << "prefix detection covers " << core::pct(cov.traffic_coverage)
            << " of reference-hypergiant traffic (paper: ~95%), "
            << core::pct(cov.false_positive_rate)
            << " false positives (paper: <1%)\n";
  itm::bench::dump_metrics_snapshot("fig1a_cache_probing");
  return 0;
}
