#!/usr/bin/env bash
# Build the full test suite under AddressSanitizer (+ LeakSanitizer) and run
# every registered test. This is the memory-safety gate: heap/stack overflow,
# use-after-free and leaks anywhere in src/, tools/ or the test fixtures.
#
# Usage: tools/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DITM_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"

# Fail on the first report; detect leaks too (ASan's default on Linux, made
# explicit so local ASAN_OPTIONS overrides do not silently disable it).
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 abort_on_error=1 detect_leaks=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
