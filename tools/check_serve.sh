#!/usr/bin/env bash
# The resident-server gate: end-to-end over the real binaries —
#
#   1. build two pinned snapshots (base and target) with `itm snapshot`,
#   2. produce an `.itmsd` delta with `itm snapshot-diff` and prove
#      `itm snapshot-apply` rebuilds the target byte-identically,
#   3. run `itm served` on a unix socket, drive a session that queries,
#      hot-swaps via apply-delta mid-session, and queries again — the
#      post-swap answers must equal a fresh `itm serve` run over the
#      target snapshot (answer-hash equality),
#   4. SIGTERM the server and require a graceful exit 0 with the socket
#      unlinked,
#   5. run the serve-labeled ctest subset (mmap/view equivalence, delta
#      property tests, session protocol, hot-swap stress).
#
# Usage: tools/check_serve.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target itm served_tests hot_swap_tests

ITM="$BUILD_DIR/tools/itm"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

# ---- 1. two pinned snapshots of the same world at different probe depths.
"$ITM" snapshot --scale tiny --seed 11 --out "$SCRATCH/base.itms" >/dev/null
"$ITM" snapshot --scale tiny --seed 12 --out "$SCRATCH/target.itms" >/dev/null

# ---- 2. diff + apply must be byte-identical to the fresh target.
"$ITM" snapshot-diff "$SCRATCH/base.itms" "$SCRATCH/target.itms" \
    --out "$SCRATCH/step.itmsd" >/dev/null
"$ITM" snapshot-apply "$SCRATCH/base.itms" "$SCRATCH/step.itmsd" \
    --out "$SCRATCH/applied.itms" >/dev/null
if ! cmp -s "$SCRATCH/applied.itms" "$SCRATCH/target.itms"; then
  echo "FAIL: snapshot-apply is not byte-identical to the target" >&2
  exit 1
fi
echo "delta apply byte-identical to the fresh target snapshot"

# A corrupted delta must be rejected (exit 4), leaving no output file.
python3 - "$SCRATCH/step.itmsd" "$SCRATCH/bad.itmsd" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[len(data) // 2] ^= 0x10
open(sys.argv[2], 'wb').write(bytes(data))
EOF
if "$ITM" snapshot-apply "$SCRATCH/base.itms" "$SCRATCH/bad.itmsd" \
    --out "$SCRATCH/never.itms" >/dev/null 2>&1; then
  echo "FAIL: corrupted delta was accepted" >&2
  exit 1
fi
echo "corrupted delta rejected"

# ---- 3. resident server: query, hot-swap under a live session, re-query.
QUERIES="stats
top-as 5
lookup 10.0.0.1"
SOCK="$SCRATCH/itm.sock"
"$ITM" served --snapshot "$SCRATCH/base.itms" --listen "$SOCK" \
    > "$SCRATCH/served.log" 2>&1 &
SERVED_PID=$!
for _ in $(seq 50); do
  [[ -S "$SOCK" ]] && break
  sleep 0.1
done
if ! [[ -S "$SOCK" ]]; then
  echo "FAIL: itm served did not create $SOCK" >&2
  cat "$SCRATCH/served.log" >&2
  exit 1
fi

# One session: pre-swap queries, the swap, post-swap queries.
cat > "$SCRATCH/session.py" <<'EOF'
import socket
import sys
sock = socket.socket(socket.AF_UNIX)
sock.connect(sys.argv[1])
sock.sendall(sys.stdin.buffer.read())
sock.shutdown(socket.SHUT_WR)
chunks = []
while True:
    chunk = sock.recv(65536)
    if not chunk:
        break
    chunks.append(chunk)
sys.stdout.buffer.write(b"".join(chunks))
EOF
{
  printf '%s\n' "$QUERIES"
  printf 'apply-delta %s\n' "$SCRATCH/step.itmsd"
  printf '%s\n' "$QUERIES"
  printf 'quit\n'
} | python3 "$SCRATCH/session.py" "$SOCK" > "$SCRATCH/session.out"

# The swap acknowledgement sits between the two query blocks.
if ! grep -q '^ok epoch=1 checksum=' "$SCRATCH/session.out"; then
  echo "FAIL: apply-delta was not acknowledged in-session" >&2
  cat "$SCRATCH/session.out" >&2
  exit 1
fi
N_QUERIES="$(printf '%s\n' "$QUERIES" | wc -l)"
head -n "$N_QUERIES" "$SCRATCH/session.out" > "$SCRATCH/pre.out"
tail -n +"$((N_QUERIES + 2))" "$SCRATCH/session.out" | head -n "$N_QUERIES" \
    > "$SCRATCH/post.out"

# Reference answers: `itm serve` (batch mode, mmap) over each snapshot.
printf '%s\n' "$QUERIES" > "$SCRATCH/queries.txt"
"$ITM" serve --snapshot "$SCRATCH/base.itms" \
    --queries "$SCRATCH/queries.txt" | tail -n "$N_QUERIES" \
    > "$SCRATCH/expect_pre.out"
"$ITM" serve --snapshot "$SCRATCH/target.itms" \
    --queries "$SCRATCH/queries.txt" | tail -n "$N_QUERIES" \
    > "$SCRATCH/expect_post.out"
if ! cmp -s "$SCRATCH/pre.out" "$SCRATCH/expect_pre.out"; then
  echo "FAIL: pre-swap answers diverge from itm serve over the base" >&2
  diff "$SCRATCH/expect_pre.out" "$SCRATCH/pre.out" >&2 || true
  exit 1
fi
if ! cmp -s "$SCRATCH/post.out" "$SCRATCH/expect_post.out"; then
  echo "FAIL: post-swap answers diverge from itm serve over the target" >&2
  diff "$SCRATCH/expect_post.out" "$SCRATCH/post.out" >&2 || true
  exit 1
fi
HASH_PRE="$(sha256sum < "$SCRATCH/pre.out" | cut -d' ' -f1)"
HASH_POST="$(sha256sum < "$SCRATCH/post.out" | cut -d' ' -f1)"
if [[ "$HASH_PRE" == "$HASH_POST" ]]; then
  echo "FAIL: pre- and post-swap answers are identical (swap had no effect)" >&2
  exit 1
fi
echo "hot swap under a live session: answer hashes match fresh snapshots"
echo "  pre-swap  $HASH_PRE"
echo "  post-swap $HASH_POST"

# ---- 4. graceful shutdown: SIGTERM -> drain -> exit 0, socket unlinked.
kill -TERM "$SERVED_PID"
SERVED_EXIT=0
wait "$SERVED_PID" || SERVED_EXIT=$?
if [[ "$SERVED_EXIT" != 0 ]]; then
  echo "FAIL: itm served exited $SERVED_EXIT on SIGTERM (want 0)" >&2
  cat "$SCRATCH/served.log" >&2
  exit 1
fi
if [[ -e "$SOCK" ]]; then
  echo "FAIL: socket not unlinked on graceful shutdown" >&2
  exit 1
fi
echo "SIGTERM: graceful exit 0, socket unlinked"

# ---- 5. the serve-labeled test subset.
ctest --test-dir "$BUILD_DIR" -L serve --output-on-failure -j"$(nproc)"
