#!/usr/bin/env python3
"""Bridge itm-lint's JSON report to GitHub Actions inline annotations.

Reads an `itm-lint --format=json` report (schema itm-lint-json/1) from the
path given as argv[1] (or stdin) and emits one `::error` workflow command
per diagnostic, which the Actions runner renders as an inline annotation on
the offending file/line. Budget violations become file-less errors.

Exits 1 when the report contains any diagnostic or budget error, so the
step fails alongside the annotations; exits 0 on a clean report.
"""

import json
import sys


def _sanitize(text: str) -> str:
    # GitHub workflow commands terminate on newlines; the data portion must
    # percent-encode them (and literal percents, which would be decoded).
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def main(argv: list) -> int:
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as fh:
            report = json.load(fh)
    else:
        report = json.load(sys.stdin)

    if report.get("schema") != "itm-lint-json/1":
        print(f"lint_annotations: unknown schema {report.get('schema')!r}",
              file=sys.stderr)
        return 2

    diagnostics = report.get("diagnostics", [])
    budget_errors = report.get("budget_errors", [])

    for d in diagnostics:
        print("::error file={file},line={line},title={title}::{message}".format(
            file=_sanitize(d["path"]),
            line=d["line"],
            title=_sanitize(f"itm-lint ({d['rule']})"),
            message=_sanitize(d["message"])))
    for e in budget_errors:
        print("::error title=itm-lint suppression budget::{message}".format(
            message=_sanitize(e)))

    files = report.get("files_scanned", 0)
    print(f"lint_annotations: {files} files scanned, "
          f"{len(diagnostics)} diagnostics, "
          f"{len(budget_errors)} budget errors", file=sys.stderr)
    return 1 if diagnostics or budget_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
