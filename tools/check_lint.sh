#!/usr/bin/env bash
# Build itm-lint and run the lint gate: the full determinism/concurrency
# static-analysis pass over src/, tools/, bench/ and tests/ (rule fixtures
# excluded — they are deliberately violating inputs) plus the rule fixture
# tests. Zero unsuppressed findings and a suppression count within
# tools/lint/suppressions.budget are required to pass.
#
# The direct itm-lint run at the end prints --stats: live suppressions per
# rule and wall time per analysis pass, so a rule that regresses into
# quadratic behaviour shows up in CI logs before it hurts.
#
# Usage: tools/check_lint.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)" --target itm-lint lint_rules_tests
ctest --test-dir "$BUILD_DIR" -L lint --output-on-failure -j"$(nproc)"

"$BUILD_DIR"/tools/lint/itm-lint \
  --budget tools/lint/suppressions.budget \
  --exclude tests/lint/fixtures \
  --stats \
  src tools bench tests
