#!/usr/bin/env bash
# Build itm-lint and run the lint gate: the full determinism/concurrency
# static-analysis pass over src/, tools/ and bench/ plus the rule fixture
# tests. Zero unsuppressed findings and a suppression count within
# tools/lint/suppressions.budget are required to pass.
#
# Usage: tools/check_lint.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)" --target itm-lint lint_rules_tests
ctest --test-dir "$BUILD_DIR" -L lint --output-on-failure -j"$(nproc)"
