#!/usr/bin/env bash
# Format gate: clang-format (via .clang-format at the repo root) applied only
# to the lines this branch actually changed, so the gate never demands a
# wholesale reformat of pre-existing code.
#
# Usage: tools/check_format.sh [base-ref]   (default: origin/main, falling
#        back to HEAD when no such ref exists). Exits 0 when clean or when
#        clang-format is not installed (the container image does not ship
#        it); exits 1 when changed lines need reformatting.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping (gate passes)"
  exit 0
fi

BASE_REF="${1:-origin/main}"
if ! git rev-parse --verify --quiet "$BASE_REF" >/dev/null; then
  BASE_REF=HEAD
fi
BASE="$(git merge-base "$BASE_REF" HEAD)"

# clang-format-diff reformats only changed hunks; fall back to whole-file
# checks restricted to files the branch touched when the helper is absent.
if command -v clang-format-diff >/dev/null 2>&1; then
  DIFF_OUT="$(git diff -U0 "$BASE" -- '*.h' '*.hpp' '*.cpp' '*.cc' \
      | clang-format-diff -p1)"
  if [[ -n "$DIFF_OUT" ]]; then
    echo "$DIFF_OUT"
    echo "check_format: changed lines need reformatting (see diff above)"
    exit 1
  fi
else
  STATUS=0
  while IFS= read -r f; do
    [[ -f "$f" ]] || continue
    if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
      echo "check_format: $f differs from .clang-format style"
      STATUS=1
    fi
  done < <(git diff --name-only "$BASE" -- '*.h' '*.hpp' '*.cpp' '*.cc')
  exit "$STATUS"
fi
echo "check_format: changed lines are clean"
