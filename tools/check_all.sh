#!/usr/bin/env bash
# Run every repo gate in sequence and print a pass/fail summary table:
#
#   format  tools/check_format.sh   changed lines match .clang-format
#   lint    tools/check_lint.sh     itm-lint determinism/concurrency rules
#   tier1   cmake + ctest           the full functional test suite
#   snapshot tools/check_snapshot.sh  .itms byte-determinism + corruption
#   serve   tools/check_serve.sh    resident server: delta + hot swap e2e
#   obs     tools/check_obs.sh      flight recorder, quantiles, itm obs
#   bench   tools/check_bench.sh    BENCH_tiny.json record vs committed
#   tsan    tools/check_tsan.sh     data races in the parallel executor
#   asan    tools/check_asan.sh     memory errors + leaks, full suite
#   ubsan   tools/check_ubsan.sh    undefined behavior, full suite
#
# Gates that cannot run here (e.g. clang-format missing) report pass with a
# note from the underlying script. Set ITM_CHECK_FAST=1 to skip the three
# sanitizer builds (each is a separate full compile).
#
# Usage: tools/check_all.sh
set -uo pipefail

cd "$(dirname "$0")/.."

declare -a NAMES=()
declare -a RESULTS=()
FAILED=0

run_gate() {
  local name="$1"
  shift
  echo
  echo "=== gate: $name ==="
  if "$@"; then
    NAMES+=("$name")
    RESULTS+=(pass)
  else
    NAMES+=("$name")
    RESULTS+=(FAIL)
    FAILED=1
  fi
}

tier1() {
  cmake -B build -S . &&
    cmake --build build -j"$(nproc)" &&
    ctest --test-dir build --output-on-failure -j"$(nproc)"
}

run_gate format tools/check_format.sh
run_gate lint tools/check_lint.sh
run_gate tier1 tier1
run_gate snapshot tools/check_snapshot.sh
run_gate serve tools/check_serve.sh
run_gate obs tools/check_obs.sh
run_gate bench tools/check_bench.sh
if [[ "${ITM_CHECK_FAST:-0}" != "1" ]]; then
  run_gate tsan tools/check_tsan.sh
  run_gate asan tools/check_asan.sh
  run_gate ubsan tools/check_ubsan.sh
else
  echo
  echo "=== ITM_CHECK_FAST=1: skipping tsan/asan/ubsan builds ==="
fi

echo
echo "=== gate summary ==="
printf '%-8s %s\n' gate result
for i in "${!NAMES[@]}"; do
  printf '%-8s %s\n' "${NAMES[$i]}" "${RESULTS[$i]}"
done
exit "$FAILED"
