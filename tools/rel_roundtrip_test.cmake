# Exports the tiny topology in as-rel format and routes over the reloaded
# file; any non-zero exit fails the test.
execute_process(COMMAND ${ITM_BIN} rel-export ${WORK_DIR}/tiny.rel --scale tiny
                RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "rel-export failed")
endif()
execute_process(COMMAND ${ITM_BIN} rel-path ${WORK_DIR}/tiny.rel 5 60
                RESULT_VARIABLE rc2 OUTPUT_VARIABLE out)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "rel-path failed: ${out}")
endif()
if(NOT out MATCHES "best path|no valley-free route")
  message(FATAL_ERROR "unexpected rel-path output: ${out}")
endif()
