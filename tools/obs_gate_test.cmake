# The observability gate: one tiny-tier build with the full instrumentation
# surface on (--progress heartbeat, --events-out flight journal, --trace-out,
# --metrics-out --metrics-full), then `itm obs report`/`itm obs trace` over
# the artifacts, including the baseline-diff exit-code contract (0 within
# tolerance, 1 on an injected deterministic regression).

execute_process(COMMAND ${ITM_BIN} map --scale tiny --seed 7 --threads 4
                        --progress
                        --events-out ${WORK_DIR}/obs_events.jsonl
                        --trace-out ${WORK_DIR}/obs_trace.json
                        --metrics-out ${WORK_DIR}/obs_metrics.json
                        --metrics-full
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "instrumented itm map failed: ${err}")
endif()

# The flight journal is bounded JSONL: non-empty, every line an object with
# the fixed keys, ending on the normal-exit run.end event.
file(READ ${WORK_DIR}/obs_events.jsonl journal)
string(REGEX REPLACE "\n+$" "" journal "${journal}")
string(REPLACE "\n" ";" journal_lines "${journal}")
list(LENGTH journal_lines journal_count)
if(journal_count EQUAL 0)
  message(FATAL_ERROR "events journal is empty")
endif()
if(journal_count GREATER 256)
  message(FATAL_ERROR
          "events journal has ${journal_count} lines; the ring bounds it "
          "to 256")
endif()
foreach(line IN LISTS journal_lines)
  if(NOT line MATCHES "^{\"ts_ms\": [0-9]+, \"seq\": [0-9]+, \"event\": ")
    message(FATAL_ERROR "malformed journal line: ${line}")
  endif()
endforeach()
list(GET journal_lines -1 last_line)
if(NOT last_line MATCHES "\"event\": \"run.end\"")
  message(FATAL_ERROR "journal must end with run.end, got: ${last_line}")
endif()
if(NOT journal MATCHES "\"event\": \"stage.begin\"")
  message(FATAL_ERROR "journal has no stage.begin events")
endif()

# The full metrics export carries the wall-clock section the report reads.
file(READ ${WORK_DIR}/obs_metrics.json metrics)
if(NOT metrics MATCHES "wall_clock")
  message(FATAL_ERROR "--metrics-full export missing wall_clock section")
endif()

# Report without baseline: summary only, exit 0, stage table present.
execute_process(COMMAND ${ITM_BIN} obs report ${WORK_DIR}/obs_metrics.json
                RESULT_VARIABLE rc_report OUTPUT_VARIABLE report_out
                ERROR_VARIABLE report_err)
if(NOT rc_report EQUAL 0)
  message(FATAL_ERROR "itm obs report failed (${rc_report}): ${report_err}")
endif()
if(NOT report_out MATCHES "stage" OR NOT report_out MATCHES "top counters")
  message(FATAL_ERROR "report missing stage table or counters: ${report_out}")
endif()

# Self-baseline: byte-identical metrics must pass the diff.
execute_process(COMMAND ${ITM_BIN} obs report ${WORK_DIR}/obs_metrics.json
                        --baseline ${WORK_DIR}/obs_metrics.json
                RESULT_VARIABLE rc_same OUTPUT_VARIABLE same_out
                ERROR_VARIABLE same_err)
if(NOT rc_same EQUAL 0)
  message(FATAL_ERROR "self-baseline report failed: ${same_out}${same_err}")
endif()

# Injected regression: perturb one deterministic counter in a copy of the
# export; the exact-match class must flag it with exit 1.
file(READ ${WORK_DIR}/obs_metrics.json doctored)
string(REGEX REPLACE "(\"executor\\.batches\": )([0-9]+)" "\\19999999"
       doctored "${doctored}")
file(WRITE ${WORK_DIR}/obs_metrics_doctored.json "${doctored}")
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/obs_metrics.json
                        ${WORK_DIR}/obs_metrics_doctored.json
                RESULT_VARIABLE doctored_diff)
if(doctored_diff EQUAL 0)
  message(FATAL_ERROR "failed to inject regression into metrics copy")
endif()
execute_process(COMMAND ${ITM_BIN} obs report
                        ${WORK_DIR}/obs_metrics_doctored.json
                        --baseline ${WORK_DIR}/obs_metrics.json
                RESULT_VARIABLE rc_regress OUTPUT_VARIABLE regress_out
                ERROR_VARIABLE regress_err)
if(NOT rc_regress EQUAL 1)
  message(FATAL_ERROR
          "injected regression exited ${rc_regress}, want 1: "
          "${regress_out}${regress_err}")
endif()
if(NOT regress_out MATCHES "REGRESSION")
  message(FATAL_ERROR "regression diagnostic missing: ${regress_out}")
endif()

# Trace analysis: stage table over the chrome trace, exit 0.
execute_process(COMMAND ${ITM_BIN} obs trace ${WORK_DIR}/obs_trace.json
                RESULT_VARIABLE rc_trace OUTPUT_VARIABLE trace_out
                ERROR_VARIABLE trace_err)
if(NOT rc_trace EQUAL 0)
  message(FATAL_ERROR "itm obs trace failed (${rc_trace}): ${trace_err}")
endif()
if(NOT trace_out MATCHES "stage critical path")
  message(FATAL_ERROR "trace analysis missing stage table: ${trace_out}")
endif()

# Unreadable inputs are runtime errors (exit 4), never silent passes.
execute_process(COMMAND ${ITM_BIN} obs report ${WORK_DIR}/no_such_file.json
                RESULT_VARIABLE rc_missing OUTPUT_VARIABLE ignored
                ERROR_VARIABLE ignored_err)
if(NOT rc_missing EQUAL 4)
  message(FATAL_ERROR "missing metrics file exited ${rc_missing}, want 4")
endif()
