#!/usr/bin/env bash
# The metrics-determinism gate: builds the toolkit, runs `itm map` with
# different thread counts, and diffs the deterministic metrics exports —
# they must be byte-identical (DESIGN.md decision #7). Then runs the
# metrics-labeled ctest subset for the full sweep.
#
# Usage: tools/check_metrics.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" --target itm

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

"$BUILD_DIR/tools/itm" map --scale tiny --seed 11 --threads 1 \
    --metrics-out "$SCRATCH/metrics_t1.json" \
    --trace-out "$SCRATCH/trace_t1.json" >/dev/null
"$BUILD_DIR/tools/itm" map --scale tiny --seed 11 --threads 8 \
    --metrics-out "$SCRATCH/metrics_t8.json" \
    --trace-out "$SCRATCH/trace_t8.json" >/dev/null

if ! diff -u "$SCRATCH/metrics_t1.json" "$SCRATCH/metrics_t8.json"; then
  echo "FAIL: metrics export differs between --threads 1 and --threads 8" >&2
  exit 1
fi
echo "metrics export byte-identical across thread counts"

ctest --test-dir "$BUILD_DIR" -L metrics --output-on-failure -j"$(nproc)"
