// itm — command-line front end to the Internet-traffic-map toolkit.
//
//   itm generate [--seed N] [--scale tiny|default|large|medium|huge]
//       Generate a synthetic Internet and print its inventory.
//   itm map [--seed N] [--scale S] [--threads N] [--json FILE] [--csv PREFIX]
//           [--metrics-out FILE] [--metrics-full] [--trace-out FILE]
//           [--events-out FILE] [--progress] [--verbose]
//       Build the traffic map from public-data measurements; optionally
//       export JSON and/or CSV artifacts. --threads shards the scan and
//       routing stages (0 = hardware concurrency, 1 = serial); the map is
//       byte-identical for every thread count. --metrics-out writes the
//       deterministic pipeline metrics (also byte-identical across thread
//       counts; add --metrics-full to append the wall-clock section —
//       timings, RSS, imbalance, latency quantiles — for `itm obs report`);
//       --trace-out writes a Chrome trace-event JSON loadable in Perfetto;
//       --events-out journals the last N pipeline events as JSONL (flushed
//       even when the build dies on a signal — the flight recorder);
//       --progress prints a ~1 Hz heartbeat with per-stage ETA to stderr;
//       --verbose prints per-stage progress to stderr.
//   itm outage <as-name> [--seed N] [--scale S]
//       Map-based outage estimate plus ground-truth what-if simulation.
//   itm path <src-as> <dst-as> [--seed N] [--scale S]
//       BGP best path and traceroute between two ASes.
//   itm top [--seed N] [--scale S]
//       Service and hypergiant traffic leaderboard (ground truth).
//   itm rel-export <file> [--seed N] [--scale S]
//       Write the AS graph in CAIDA as-rel format.
//   itm rel-path <file> <asn-a> <asn-b>
//       Load an external as-rel file (e.g. CAIDA serial-1) and print the
//       Gao-Rexford best path between two ASNs.
//   itm snapshot --out FILE [--seed N] [--scale S] [--threads N]
//               [--metrics-out FILE]
//       Build the traffic map and compile it into a versioned, checksummed
//       `.itms` snapshot — the serving artifact. Byte-identical for every
//       --threads value.
//   itm serve --snapshot FILE --queries FILE [--cache-size N]
//             [--metrics-out FILE]
//       Map an `.itms` snapshot (zero-copy, validated at map time) and
//       answer a line-delimited query batch (one answer line per query
//       line, in input order; blank lines and `#` comments are skipped).
//       See serve/query_engine.h for the verbs. A truncated or corrupted
//       snapshot is a runtime error (exit 4), never an exception.
//   itm served --snapshot FILE [--listen SOCK | --stdio] [--threads N]
//              [--cache-size N] [--events-out FILE]
//       Resident query server: keeps the snapshot mapped and answers
//       sessions over stdio (default) or an AF_UNIX socket, dispatching
//       batches across N sharded workers. Control verbs `swap-snapshot
//       <file>` and `apply-delta <file>` hot-swap the serving epoch with
//       RCU-style grace (in-flight queries finish on the old epoch);
//       `epoch` prints id/checksum/latency quantiles. SIGTERM/SIGINT
//       drain in-flight queries, flush the journal, and exit 0.
//   itm snapshot-diff <old.itms> <new.itms> --out FILE
//       Compute a versioned, checksummed `.itmsd` delta that turns the
//       old snapshot into the new one (see serve/delta.h).
//   itm snapshot-apply <base.itms> <delta.itmsd> --out FILE
//       Apply a delta to a base snapshot; the output is byte-identical to
//       the full target snapshot the delta was computed against.
//   itm obs report <metrics.json> [--baseline <metrics.json>]
//                  [--perf-tolerance X]
//       Per-stage run summary (wall time, RSS delta, shard imbalance, top
//       counters, latency quantiles) from a `--metrics-out --metrics-full`
//       export. With --baseline, diffs two runs with per-metric tolerance
//       classes (deterministic: exact; wall-clock: ratio band, default x25)
//       and exits 1 on regression.
//   itm obs trace <trace.json>
//       Per-stage critical-path and shard-imbalance stats from a
//       `--trace-out` Chrome trace.
//   itm version
//       Print build information (compiler, build type, sanitizer flags).
//
// Exit codes: 0 success, 1 regression (itm obs report --baseline only),
// 2 bad usage (missing operand/value, unknown flag), 3 unknown subcommand,
// 4 runtime error (unknown AS, unreadable file).
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/export.h"
#include "core/report.h"
#include "core/scale.h"
#include "core/scenario.h"
#include "core/traffic_map.h"
#include "core/whatif.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "net/executor.h"
#include "serve/delta.h"
#include "serve/mmap.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"
#include "topology/serialization.h"
#include "routing/bgp.h"
#include "scan/traceroute.h"

namespace {

using namespace itm;

// Distinct exit codes so scripts can tell misuse from a missing input.
constexpr int kExitUsage = 2;           // bad usage: operands/values/flags
constexpr int kExitUnknownCommand = 3;  // no such subcommand
constexpr int kExitRuntime = 4;         // valid usage, failed to execute

struct CliOptions {
  std::uint64_t seed = 42;
  // True when --seed was given (pinned tiers keep their own seed otherwise).
  bool seed_explicit = false;
  std::string scale = "default";
  // Worker threads for map builds: 0 = hardware concurrency, 1 = the exact
  // legacy serial path. Output is byte-identical for every value.
  std::size_t threads = 0;
  std::optional<std::string> json_path;
  std::optional<std::string> csv_prefix;
  std::optional<std::string> metrics_path;
  bool metrics_full = false;  // append the wall-clock section to --metrics-out
  std::optional<std::string> trace_path;
  std::optional<std::string> events_path;    // flight-recorder journal
  bool progress = false;                     // ~1 Hz heartbeat on stderr
  std::optional<std::string> out_path;       // itm snapshot --out
  std::optional<std::string> snapshot_path;  // itm serve --snapshot
  std::optional<std::string> queries_path;   // itm serve --queries
  std::size_t cache_size = 1024;             // itm serve --cache-size
  std::optional<std::string> listen_path;    // itm served --listen
  bool stdio = false;                        // itm served --stdio
  std::optional<std::string> baseline_path;  // itm obs report --baseline
  double perf_tolerance = 25.0;              // itm obs report ratio band
  bool verbose = false;
  std::vector<std::string> positional;
};

CliOptions parse(int argc, char** argv, int first) {
  CliOptions options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      options.seed = std::strtoull(next().c_str(), nullptr, 10);
      options.seed_explicit = true;
    } else if (arg == "--scale") {
      options.scale = next();
    } else if (arg == "--threads") {
      options.threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--json") {
      options.json_path = next();
    } else if (arg == "--csv") {
      options.csv_prefix = next();
    } else if (arg == "--metrics-out") {
      options.metrics_path = next();
    } else if (arg == "--metrics-full") {
      options.metrics_full = true;
    } else if (arg == "--trace-out") {
      options.trace_path = next();
    } else if (arg == "--events-out") {
      options.events_path = next();
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg == "--baseline") {
      options.baseline_path = next();
    } else if (arg == "--perf-tolerance") {
      options.perf_tolerance = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--out") {
      options.out_path = next();
    } else if (arg == "--snapshot") {
      options.snapshot_path = next();
    } else if (arg == "--queries") {
      options.queries_path = next();
    } else if (arg == "--cache-size") {
      options.cache_size = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--listen") {
      options.listen_path = next();
    } else if (arg == "--stdio") {
      options.stdio = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      std::exit(kExitUsage);
    } else {
      options.positional.push_back(arg);
    }
  }
  if (options.scale != "default" && options.scale != "large" &&
      !core::parse_scale_tier(options.scale)) {
    std::cerr << "unknown scale '" << options.scale
              << "' (expected tiny|default|large|medium|huge)\n";
    std::exit(kExitUsage);
  }
  return options;
}

// Run-scoped flight recorder + progress heartbeat, driven by --events-out /
// --progress. The recorder's crash handlers stay installed for the rest of
// the process (that is their point); the destructor handles the normal-exit
// flush and stops the heartbeat thread.
class RunInstrumentation {
 public:
  explicit RunInstrumentation(const CliOptions& options) {
    if (options.events_path) {
      try {
        obs::recorder().enable(*options.events_path);
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        std::exit(kExitRuntime);
      }
      obs::install_crash_flush();
      char fields[160];
      std::snprintf(fields, sizeof fields,
                    "\"seed\": %llu, \"scale\": \"%s\", \"threads\": %zu",
                    static_cast<unsigned long long>(options.seed),
                    options.scale.c_str(), options.threads);
      obs::recorder().event("run.begin", fields);
    }
    if (options.progress) obs::progress().enable();
  }
  ~RunInstrumentation() {
    obs::progress().disable();
    if (obs::recorder().enabled()) {
      char fields[96];
      std::snprintf(fields, sizeof fields, "\"peak_rss_bytes\": %llu",
                    static_cast<unsigned long long>(obs::peak_rss_bytes()));
      obs::recorder().event("run.end", fields);
      obs::recorder().flush();
    }
  }
  RunInstrumentation(const RunInstrumentation&) = delete;
  RunInstrumentation& operator=(const RunInstrumentation&) = delete;
};

std::unique_ptr<core::Scenario> make_scenario(const CliOptions& options) {
  core::ScenarioConfig config;
  if (options.scale == "tiny") {
    config = core::tiny_config(options.seed);
  } else if (options.scale == "large") {
    config = core::large_config(options.seed);
  } else if (const auto tier = core::parse_scale_tier(options.scale);
             tier && *tier != core::ScaleTier::kTiny) {
    // Pinned bench tiers (medium/huge): tier_config pins the seed, but the
    // CLI is an exploration tool, so an explicit --seed still wins.
    config = core::tier_config(*tier);
    if (options.seed_explicit) config.seed = options.seed;
  } else {
    config = core::default_config(options.seed);
  }
  return core::Scenario::generate(config);
}

std::optional<Asn> find_as(const core::Scenario& scenario,
                           const std::string& name) {
  for (const auto& as : scenario.topo().graph.ases()) {
    if (as.name == name) return as.asn;
  }
  return std::nullopt;
}

int cmd_generate(const CliOptions& options) {
  auto scenario = make_scenario(options);
  const auto& topo = scenario->topo();
  core::Table table({"inventory", "count"});
  table.row("ASes", topo.graph.size());
  table.row("  tier-1", topo.tier1s.size());
  table.row("  transit", topo.transits.size());
  table.row("  access (eyeball)", topo.accesses.size());
  table.row("  content", topo.contents.size());
  table.row("  hypergiant", topo.hypergiants.size());
  table.row("AS-level links", topo.graph.links().size());
  table.row("countries", topo.geography.countries().size());
  table.row("colocation facilities", topo.geography.facilities().size());
  table.row("IXPs (route servers)", topo.ixps.size());
  table.row("routable /24s", topo.addresses.total_slash24_count());
  table.row("user /24s", scenario->users().size());
  table.row("services", scenario->catalog().size());
  table.row("CDN PoPs", scenario->deployment().pops().size());
  table.row("CDN front ends", scenario->deployment().front_ends().size());
  table.print();
  std::cout << "total users: "
            << static_cast<std::uint64_t>(scenario->users().total_users())
            << ", daily traffic: "
            << core::num(scenario->matrix().total_bytes() / 1e12, 2)
            << " TB\n";
  return 0;
}

int cmd_map(const CliOptions& options) {
  // One registry + tracer per invocation, current for scenario generation
  // and the build, so topology metrics and every stage span land in the
  // exported artifacts.
  obs::MetricsRegistry registry;
  obs::Tracer trace;
  const obs::ScopedMetrics metrics_scope(registry);
  const obs::ScopedTracer trace_scope(trace);
  const RunInstrumentation instrumentation(options);

  // Stage 0 of the run: a SIGTERM during generation must still leave a
  // journal naming the stage in flight, exactly like the build stages.
  auto scenario = [&options] {
    const obs::StageScope stage("map.generate", 0, 5);
    return make_scenario(options);
  }();
  core::MapBuilder builder(*scenario);
  core::MapBuildOptions build_options;
  build_options.threads = options.threads;
  if (options.verbose) {
    build_options.on_stage = [](const char* stage) {
      std::cerr << "[itm] stage " << stage << "...\n";
    };
  }
  std::cerr << "building the traffic map...\n";
  const auto map = builder.build(build_options);
  const auto& timings = builder.last_timings();
  std::cerr << "stage wall time: probing " << core::num(timings.workload_probe_s, 2)
            << " s, tls " << core::num(timings.tls_scan_s, 2)
            << " s, ecs " << core::num(timings.ecs_map_s, 2)
            << " s, routing " << core::num(timings.routing_s, 2)
            << " s, inference " << core::num(timings.inference_s, 2)
            << " s\n";
  core::Table table({"map component", "value"});
  table.row("client /24s detected", map.client_prefixes.size());
  table.row("client ASes", map.client_ases.size());
  table.row("TLS endpoints", map.tls.endpoints.size());
  table.row("geolocated servers", map.server_locations.size());
  table.row("ECS-mapped services", map.user_mapping.size());
  table.row("observed links", map.public_view.link_count());
  table.row("recommended links", map.recommended_links.size());
  table.print();
  if (options.json_path) {
    std::ofstream out(*options.json_path);
    core::export_map_json(map, *scenario, out);
    std::cout << "wrote " << *options.json_path << "\n";
  }
  if (options.csv_prefix) {
    const auto write = [&](const char* suffix, auto exporter) {
      const std::string path = *options.csv_prefix + suffix;
      std::ofstream out(path);
      exporter(map, *scenario, out);
      std::cout << "wrote " << path << "\n";
    };
    write("_activity.csv", core::export_activity_csv);
    write("_servers.csv", core::export_servers_csv);
    write("_links.csv", core::export_recommended_links_csv);
  }
  if (options.metrics_path) {
    // Deterministic section only by default: that artifact is byte-identical
    // for every --threads value (tools/check_metrics.sh gates on it).
    // --metrics-full opts into the wall-clock section (stage timings, RSS,
    // imbalance, quantiles) for `itm obs report`; never diff that one.
    std::ofstream out(*options.metrics_path);
    registry.write_json(out,
                        options.metrics_full
                            ? obs::MetricsRegistry::Export::kAll
                            : obs::MetricsRegistry::Export::kDeterministicOnly);
    std::cout << "wrote " << *options.metrics_path << "\n";
  }
  if (options.trace_path) {
    std::ofstream out(*options.trace_path);
    trace.write_chrome_trace(out);
    std::cout << "wrote " << *options.trace_path
              << " (open in https://ui.perfetto.dev)\n";
  }
  if (options.events_path) {
    std::cout << "wrote " << *options.events_path << " (event journal)\n";
  }
  if (options.verbose) {
    std::cerr << "[itm] metrics:\n";
    registry.write_text(std::cerr);
  }
  return 0;
}

int cmd_outage(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: itm outage <as-name>\n";
    return kExitUsage;
  }
  auto scenario = make_scenario(options);
  const auto failed = find_as(*scenario, options.positional[0]);
  if (!failed) {
    std::cerr << "unknown AS '" << options.positional[0] << "'\n";
    return kExitRuntime;
  }
  if (scenario->topo().graph.info(*failed).type ==
      topology::AsType::kHypergiant) {
    std::cerr << "cannot simulate failing a hypergiant (its services would "
                 "have no serving sites)\n";
    return kExitRuntime;
  }
  core::MapBuilder builder(*scenario);
  core::MapBuildOptions build_options;
  build_options.threads = options.threads;
  std::cerr << "building the traffic map...\n";
  const auto map = builder.build(build_options);
  const auto estimate = map.outage_impact(*failed, scenario->topo().addresses);
  const auto truth = core::simulate_as_failure(*scenario, *failed);

  core::Table table({"metric", "map estimate", "ground truth"});
  table.row("activity/traffic share affected",
            core::pct(estimate.activity_share),
            core::pct(truth.client_bytes_lost + truth.service_bytes_lost));
  table.row("client /24s inside", estimate.client_prefixes, "-");
  table.row("CDN servers inside", estimate.servers_inside, "-");
  table.row("link load shifted", "-", core::pct(truth.link_load_shifted));
  table.print();
  const auto top = truth.top_gaining_links(scenario->topo().graph, 5);
  if (!top.empty()) {
    std::cout << "links absorbing the shift:\n";
    for (const auto& shift : top) {
      std::cout << "  " << scenario->topo().graph.info(shift.a).name
                << " -- " << scenario->topo().graph.info(shift.b).name
                << "  +" << core::num(shift.delta_bytes / 1e9, 1) << " GB\n";
    }
  }
  return 0;
}

int cmd_path(const CliOptions& options) {
  if (options.positional.size() < 2) {
    std::cerr << "usage: itm path <src-as> <dst-as>\n";
    return kExitUsage;
  }
  auto scenario = make_scenario(options);
  const auto src = find_as(*scenario, options.positional[0]);
  const auto dst = find_as(*scenario, options.positional[1]);
  if (!src || !dst) {
    std::cerr << "unknown AS name\n";
    return kExitRuntime;
  }
  const routing::Bgp bgp(scenario->topo().graph);
  const auto table = bgp.routes_to(*dst);
  if (!table.at(*src).reachable()) {
    std::cout << "no route\n";
    return 0;
  }
  std::cout << "AS path:";
  for (const Asn hop : table.path_from(*src)) {
    std::cout << " " << scenario->topo().graph.info(hop).name;
  }
  std::cout << "\n\ntraceroute:\n";
  const scan::Traceroute tracer(scenario->topo(), scenario->routers());
  const auto dst_addr =
      scenario->topo().addresses.of(*dst).infra_slash24.address_at(1);
  core::Table hops({"hop", "AS", "interface", "rtt ms"});
  std::size_t n = 1;
  for (const auto& hop : tracer.trace(*src, dst_addr)) {
    hops.row(n++, scenario->topo().graph.info(hop.asn).name,
             hop.interface.to_string(), core::num(hop.rtt_ms, 1));
  }
  hops.print();
  return 0;
}

int cmd_top(const CliOptions& options) {
  auto scenario = make_scenario(options);
  core::Table services({"rank", "service", "host", "mechanism", "share"});
  const auto ranked = scenario->catalog().by_popularity();
  for (std::size_t i = 0; i < 15 && i < ranked.size(); ++i) {
    const auto& svc = scenario->catalog().service(ranked[i]);
    const std::string host =
        svc.hypergiant
            ? scenario->deployment().hypergiant(*svc.hypergiant).name
            : scenario->topo().graph.info(svc.origin_as).name;
    services.row(i + 1, svc.hostname, host, cdn::to_string(svc.redirection),
                 core::pct(scenario->matrix().service_bytes(svc.id) /
                           scenario->matrix().total_bytes()));
  }
  services.print();
  return 0;
}

int cmd_rel_export(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "usage: itm rel-export <file>\n";
    return kExitUsage;
  }
  auto scenario = make_scenario(options);
  std::ofstream out(options.positional[0]);
  topology::write_as_rel(scenario->topo().graph, out);
  std::cout << "wrote " << scenario->topo().graph.links().size()
            << " links to " << options.positional[0] << "\n";
  return 0;
}

int cmd_rel_path(const CliOptions& options) {
  if (options.positional.size() < 3) {
    std::cerr << "usage: itm rel-path <file> <asn-a> <asn-b>\n";
    return kExitUsage;
  }
  std::ifstream in(options.positional[0]);
  if (!in) {
    std::cerr << "cannot open " << options.positional[0] << "\n";
    return kExitRuntime;
  }
  topology::AsGraph graph;
  if (const auto error = topology::read_as_rel(in, graph)) {
    std::cerr << options.positional[0] << ":" << error->line << ": "
              << error->message << "\n";
    return kExitRuntime;
  }
  const auto resolve = [&](const std::string& asn) -> std::optional<Asn> {
    for (const auto& as : graph.ases()) {
      if (as.name == "AS" + asn || as.name == asn) return as.asn;
    }
    return std::nullopt;
  };
  const auto src = resolve(options.positional[1]);
  const auto dst = resolve(options.positional[2]);
  if (!src || !dst) {
    std::cerr << "ASN not present in the file\n";
    return kExitRuntime;
  }
  std::cout << "loaded " << graph.size() << " ASes, "
            << graph.links().size() << " links\n";
  const routing::Bgp bgp(graph);
  const auto table = bgp.routes_to(*dst);
  if (!table.at(*src).reachable()) {
    std::cout << "no valley-free route\n";
    return 0;
  }
  std::cout << "best path:";
  for (const Asn hop : table.path_from(*src)) {
    std::cout << " " << graph.info(hop).name;
  }
  std::cout << " (" << routing::to_string(table.at(*src).source)
            << "-learned, " << table.at(*src).hops << " hops)\n";
  return 0;
}

int cmd_snapshot(const CliOptions& options) {
  if (!options.out_path) {
    std::cerr << "usage: itm snapshot --out FILE [--seed N] [--scale S] "
                 "[--threads N]\n";
    return kExitUsage;
  }
  obs::MetricsRegistry registry;
  const obs::ScopedMetrics metrics_scope(registry);
  const RunInstrumentation instrumentation(options);

  // Stage 0 of the run: a SIGTERM during generation must still leave a
  // journal naming the stage in flight, exactly like the build stages.
  auto scenario = [&options] {
    const obs::StageScope stage("map.generate", 0, 5);
    return make_scenario(options);
  }();
  core::MapBuilder builder(*scenario);
  core::MapBuildOptions build_options;
  build_options.threads = options.threads;
  std::cerr << "building the traffic map...\n";
  const auto map = builder.build(build_options);

  std::ostringstream bytes;
  serve::write_snapshot(map, *scenario, bytes);
  const std::string blob = bytes.str();
  // Self-check: the bytes we are about to publish must load cleanly.
  std::string error;
  if (!serve::read_snapshot(std::string_view(blob), &error)) {
    std::cerr << "internal error: snapshot failed validation: " << error
              << "\n";
    return kExitRuntime;
  }
  std::ofstream out(*options.out_path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open " << *options.out_path << "\n";
    return kExitRuntime;
  }
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.close();
  if (!out) {
    std::cerr << "failed writing " << *options.out_path << "\n";
    return kExitRuntime;
  }
  std::cout << "wrote " << *options.out_path << " (" << blob.size()
            << " bytes, " << map.client_prefixes.size() << " prefixes, "
            << map.tls.endpoints.size() << " endpoints, "
            << map.user_mapping.size() << " services)\n";
  if (options.metrics_path) {
    std::ofstream metrics_out(*options.metrics_path);
    registry.write_json(metrics_out,
                        options.metrics_full
                            ? obs::MetricsRegistry::Export::kAll
                            : obs::MetricsRegistry::Export::kDeterministicOnly);
    std::cout << "wrote " << *options.metrics_path << "\n";
  }
  return 0;
}

int cmd_serve(const CliOptions& options) {
  if (!options.snapshot_path || !options.queries_path) {
    std::cerr << "usage: itm serve --snapshot FILE --queries FILE "
                 "[--cache-size N]\n";
    return kExitUsage;
  }
  obs::MetricsRegistry registry;
  const obs::ScopedMetrics metrics_scope(registry);

  // Zero-copy load: the snapshot is mapped read-only and validated once;
  // the engine serves straight from the mapping. Any truncated, corrupted
  // or non-snapshot file surfaces as a one-line runtime error (exit 4).
  const obs::Stopwatch load_watch;
  std::string error;
  auto mapped = serve::MmapSnapshot::open(*options.snapshot_path, &error);
  if (!mapped) {
    std::cerr << "error: cannot serve snapshot: " << error << "\n";
    return kExitRuntime;
  }
  // Snapshot-load instrumentation: the byte count is a pure function of the
  // snapshot file (deterministic); the load duration is not.
  obs::gauge_set("serve.snapshot.bytes",
                 static_cast<std::int64_t>(mapped->size()));
  obs::gauge_set("serve.snapshot.load_ms",
                 static_cast<std::int64_t>(load_watch.elapsed_us() / 1000),
                 obs::Determinism::kWallClock);
  std::ifstream queries_in(*options.queries_path);
  if (!queries_in) {
    std::cerr << "cannot open " << *options.queries_path << "\n";
    return kExitRuntime;
  }
  serve::QueryEngine engine(mapped->view(), options.cache_size);
  std::string line;
  while (std::getline(queries_in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::cout << engine.execute(line) << "\n";
  }
  obs::count("serve.queries", engine.queries_executed());
  obs::count("serve.cache.hits", engine.cache_hits());
  obs::count("serve.cache.misses", engine.cache_misses());
  obs::count("serve.cache.evictions", engine.cache_evictions());
  std::cerr << "served " << engine.queries_executed() << " queries ("
            << engine.cache_hits() << " cache hits, seed "
            << mapped->view().seed << ")\n";
  if (options.metrics_path) {
    std::ofstream metrics_out(*options.metrics_path);
    registry.write_json(metrics_out,
                        options.metrics_full
                            ? obs::MetricsRegistry::Export::kAll
                            : obs::MetricsRegistry::Export::kDeterministicOnly);
    std::cout << "wrote " << *options.metrics_path << "\n";
  }
  return 0;
}

int cmd_served(const CliOptions& options) {
  if (!options.snapshot_path || (options.listen_path && options.stdio)) {
    std::cerr << "usage: itm served --snapshot FILE [--listen SOCK | "
                 "--stdio] [--threads N] [--cache-size N]\n";
    return kExitUsage;
  }
  obs::MetricsRegistry registry;
  const obs::ScopedMetrics metrics_scope(registry);
  // Journal + crash flush first (SIGSEGV/SIGABRT keep the flush-and-die
  // handlers), then the graceful SIGTERM/SIGINT handlers on top: a signal
  // sets one flag, the session loop drains, and the destructor of
  // RunInstrumentation flushes the journal on the way to exit 0.
  const RunInstrumentation instrumentation(options);
  serve::Server::install_signal_handlers();

  net::Executor executor(options.threads);
  serve::ServedOptions served_options;
  served_options.snapshot_path = *options.snapshot_path;
  served_options.listen_path = options.listen_path.value_or("");
  served_options.cache_capacity = options.cache_size;
  serve::Server server(served_options, executor);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "error: cannot serve snapshot: " << error << "\n";
    return kExitRuntime;
  }
  std::cerr << "itm served: epoch 0 loaded from " << *options.snapshot_path
            << (served_options.listen_path.empty()
                    ? ", serving on stdio\n"
                    : ", listening on " + served_options.listen_path + "\n");
  return server.run();
}

int cmd_snapshot_diff(const CliOptions& options) {
  if (options.positional.size() < 2 || !options.out_path) {
    std::cerr << "usage: itm snapshot-diff <old.itms> <new.itms> --out FILE\n";
    return kExitUsage;
  }
  const auto read_file = [](const std::string& path) -> std::optional<std::string> {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (is.bad()) return std::nullopt;
    return std::move(buffer).str();
  };
  const auto base = read_file(options.positional[0]);
  const auto target = read_file(options.positional[1]);
  if (!base || !target) {
    std::cerr << "cannot read "
              << options.positional[!base ? 0 : 1] << "\n";
    return kExitRuntime;
  }
  std::string error;
  const auto delta = serve::diff_snapshots(*base, *target, &error);
  if (!delta) {
    std::cerr << "error: " << error << "\n";
    return kExitRuntime;
  }
  std::ofstream out(*options.out_path, std::ios::binary);
  out.write(delta->data(), static_cast<std::streamsize>(delta->size()));
  out.close();
  if (!out) {
    std::cerr << "failed writing " << *options.out_path << "\n";
    return kExitRuntime;
  }
  const auto info = serve::read_delta_info(*delta, &error);
  std::cout << "wrote " << *options.out_path << " (" << delta->size()
            << " bytes, " << (info ? info->ops : 0) << " record ops, "
            << (100.0 * static_cast<double>(delta->size()) /
                static_cast<double>(target->size()))
            << "% of the full snapshot)\n";
  return 0;
}

int cmd_snapshot_apply(const CliOptions& options) {
  if (options.positional.size() < 2 || !options.out_path) {
    std::cerr << "usage: itm snapshot-apply <base.itms> <delta.itmsd> "
                 "--out FILE\n";
    return kExitUsage;
  }
  const auto read_file = [](const std::string& path) -> std::optional<std::string> {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (is.bad()) return std::nullopt;
    return std::move(buffer).str();
  };
  const auto base = read_file(options.positional[0]);
  const auto delta = read_file(options.positional[1]);
  if (!base || !delta) {
    std::cerr << "cannot read "
              << options.positional[!base ? 0 : 1] << "\n";
    return kExitRuntime;
  }
  std::string error;
  const auto target = serve::apply_delta(*base, *delta, &error);
  if (!target) {
    std::cerr << "error: " << error << "\n";
    return kExitRuntime;
  }
  std::ofstream out(*options.out_path, std::ios::binary);
  out.write(target->data(), static_cast<std::streamsize>(target->size()));
  out.close();
  if (!out) {
    std::cerr << "failed writing " << *options.out_path << "\n";
    return kExitRuntime;
  }
  std::cout << "wrote " << *options.out_path << " (" << target->size()
            << " bytes, checksum "
            << serve::snapshot_checksum(*target) << ")\n";
  return 0;
}

int cmd_obs(const CliOptions& options) {
  if (options.positional.size() < 2 ||
      (options.positional[0] != "report" && options.positional[0] != "trace")) {
    std::cerr << "usage: itm obs report <metrics.json> "
                 "[--baseline <metrics.json>] [--perf-tolerance X]\n"
                 "       itm obs trace <trace.json>\n";
    return kExitUsage;
  }
  if (options.positional[0] == "trace") {
    return obs::run_obs_trace(options.positional[1], std::cout, std::cerr);
  }
  obs::ObsReportOptions report_options;
  report_options.metrics_path = options.positional[1];
  report_options.baseline_path = options.baseline_path.value_or("");
  report_options.wall_tolerance = options.perf_tolerance;
  return obs::run_obs_report(report_options, std::cout, std::cerr);
}

// Build information baked in by tools/CMakeLists.txt; the fallbacks keep
// non-CMake builds (e.g. IDE single-file checks) compiling.
#ifndef ITM_COMPILER_INFO
#define ITM_COMPILER_INFO "unknown"
#endif
#ifndef ITM_BUILD_TYPE
#define ITM_BUILD_TYPE "unknown"
#endif
#ifndef ITM_SANITIZE_INFO
#define ITM_SANITIZE_INFO ""
#endif

int cmd_version() {
  std::cout << "itm — Internet traffic map toolkit\n"
            << "compiler: " << ITM_COMPILER_INFO << "\n"
            << "build type: " << ITM_BUILD_TYPE << "\n"
            << "sanitizer: "
            << (std::strlen(ITM_SANITIZE_INFO) > 0 ? ITM_SANITIZE_INFO
                                                   : "none")
            << "\n"
            << "c++ standard: " << __cplusplus << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: itm "
                 "<generate|map|outage|path|top|rel-export|rel-path|"
                 "snapshot|serve|served|snapshot-diff|snapshot-apply|"
                 "obs|version> [options]\n";
    return kExitUsage;
  }
  const std::string command = argv[1];
  const CliOptions options = parse(argc, argv, 2);
  if (command == "generate") return cmd_generate(options);
  if (command == "map") return cmd_map(options);
  if (command == "outage") return cmd_outage(options);
  if (command == "path") return cmd_path(options);
  if (command == "top") return cmd_top(options);
  if (command == "rel-export") return cmd_rel_export(options);
  if (command == "rel-path") return cmd_rel_path(options);
  if (command == "snapshot") return cmd_snapshot(options);
  if (command == "serve") return cmd_serve(options);
  if (command == "served") return cmd_served(options);
  if (command == "snapshot-diff") return cmd_snapshot_diff(options);
  if (command == "snapshot-apply") return cmd_snapshot_apply(options);
  if (command == "obs") return cmd_obs(options);
  if (command == "version") return cmd_version();
  std::cerr << "unknown command '" << command << "'\n";
  return kExitUnknownCommand;
}
