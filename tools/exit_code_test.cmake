# Verifies the CLI's distinct exit codes: 2 = bad usage, 3 = unknown
# subcommand, 4 = runtime error (see the header comment in itm_cli.cpp).
execute_process(COMMAND ${ITM_BIN} RESULT_VARIABLE rc_noargs
                ERROR_VARIABLE err_noargs OUTPUT_VARIABLE out_noargs)
if(NOT rc_noargs EQUAL 2)
  message(FATAL_ERROR "no-args exit was ${rc_noargs}, want 2")
endif()
if(NOT err_noargs MATCHES "usage:")
  message(FATAL_ERROR "no-args usage must go to stderr, got: ${out_noargs}")
endif()

execute_process(COMMAND ${ITM_BIN} frobnicate RESULT_VARIABLE rc_unknown
                ERROR_VARIABLE err_unknown)
if(NOT rc_unknown EQUAL 3)
  message(FATAL_ERROR "unknown-command exit was ${rc_unknown}, want 3")
endif()
if(NOT err_unknown MATCHES "unknown command")
  message(FATAL_ERROR "unknown-command diagnostic missing from stderr")
endif()

execute_process(COMMAND ${ITM_BIN} generate --no-such-flag
                RESULT_VARIABLE rc_flag ERROR_VARIABLE err_flag)
if(NOT rc_flag EQUAL 2)
  message(FATAL_ERROR "unknown-flag exit was ${rc_flag}, want 2")
endif()

execute_process(COMMAND ${ITM_BIN} path --scale tiny
                RESULT_VARIABLE rc_operand ERROR_VARIABLE err_operand)
if(NOT rc_operand EQUAL 2)
  message(FATAL_ERROR "missing-operand exit was ${rc_operand}, want 2")
endif()

execute_process(COMMAND ${ITM_BIN} path NoSuchAS AlsoMissing --scale tiny
                RESULT_VARIABLE rc_runtime ERROR_VARIABLE err_runtime)
if(NOT rc_runtime EQUAL 4)
  message(FATAL_ERROR "runtime-error exit was ${rc_runtime}, want 4")
endif()
