#!/usr/bin/env bash
# The snapshot-determinism gate: builds the toolkit, compiles `.itms`
# snapshots of the same map at several thread counts, and byte-compares
# them — the serving artifact must be identical for every --threads value
# (DESIGN.md decisions #6/#9). Also checks that the validating reader
# rejects corrupted files, then runs the snapshot-labeled ctest subset
# (format round-trip/bit-flip tests and the engine-equals-map suite).
#
# Usage: tools/check_snapshot.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" --target itm serve_tests

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

for threads in 1 8; do
  "$BUILD_DIR/tools/itm" snapshot --scale tiny --seed 11 \
      --threads "$threads" --out "$SCRATCH/snap_t$threads.itms" >/dev/null
done

if ! cmp "$SCRATCH/snap_t1.itms" "$SCRATCH/snap_t8.itms"; then
  echo "FAIL: snapshot differs between --threads 1 and --threads 8" >&2
  exit 1
fi
echo "snapshot byte-identical across thread counts"

# The reader must reject truncated and bit-flipped files (exit 4).
printf 'stats\n' > "$SCRATCH/queries.txt"
head -c 100 "$SCRATCH/snap_t1.itms" > "$SCRATCH/truncated.itms"
if "$BUILD_DIR/tools/itm" serve --snapshot "$SCRATCH/truncated.itms" \
    --queries "$SCRATCH/queries.txt" >/dev/null 2>&1; then
  echo "FAIL: truncated snapshot was accepted" >&2
  exit 1
fi
cp "$SCRATCH/snap_t1.itms" "$SCRATCH/flipped.itms"
python3 - "$SCRATCH/flipped.itms" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[100] ^= 0x01  # a genuine single-bit flip, whatever the byte was
open(path, 'wb').write(bytes(data))
EOF
if "$BUILD_DIR/tools/itm" serve --snapshot "$SCRATCH/flipped.itms" \
    --queries "$SCRATCH/queries.txt" >/dev/null 2>&1; then
  echo "FAIL: bit-flipped snapshot was accepted" >&2
  exit 1
fi
echo "corrupted snapshots rejected"

ctest --test-dir "$BUILD_DIR" -L snapshot --output-on-failure -j"$(nproc)"
