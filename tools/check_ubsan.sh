#!/usr/bin/env bash
# Build the full test suite under UndefinedBehaviorSanitizer and run every
# registered test. The root CMakeLists adds -fno-sanitize-recover=all for
# ITM_SANITIZE=undefined, so any UB diagnostic aborts the test instead of
# merely printing.
#
# Usage: tools/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ubsan}"

cmake -B "$BUILD_DIR" -S . -DITM_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
