#!/usr/bin/env bash
# The observability gate: builds the toolkit, then runs the obs-labeled
# ctest subset — the flight-recorder/quantile/report unit tests plus the
# end-to-end instrumented-build gate (tools/obs_gate_test.cmake), which
# exercises --progress/--events-out/--metrics-full and the `itm obs
# report`/`trace` exit-code contract. Finally kills an instrumented build
# with SIGTERM and asserts the postmortem journal survived naming the
# in-flight stage (the crash-flush path, end to end).
#
# Usage: tools/check_obs.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" --target itm obs_tests

ctest --test-dir "$BUILD_DIR" -L obs --output-on-failure -j"$(nproc)"

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

# SIGTERM postmortem: start a medium build (long enough to catch mid-stage),
# kill it, and require a readable journal whose last event is the signal
# record. || true: the killed build's nonzero exit is the point.
"$BUILD_DIR/tools/itm" map --scale medium --seed 7 --threads 2 \
    --events-out "$SCRATCH/events.jsonl" >/dev/null 2>&1 &
ITM_PID=$!
sleep 2
kill -TERM "$ITM_PID" 2>/dev/null || true
wait "$ITM_PID" 2>/dev/null || true

if [[ ! -s "$SCRATCH/events.jsonl" ]]; then
  echo "FAIL: SIGTERM-killed build left no events journal" >&2
  exit 1
fi
LAST="$(tail -n 1 "$SCRATCH/events.jsonl")"
if [[ "$LAST" != *'"event": "signal"'* || "$LAST" != *'"signo": 15'* ]]; then
  echo "FAIL: journal does not end with the SIGTERM record: $LAST" >&2
  exit 1
fi
if [[ "$LAST" != *'"stage": "'* || "$LAST" == *'"stage": ""'* ]]; then
  echo "FAIL: signal record names no in-flight stage: $LAST" >&2
  exit 1
fi
echo "postmortem journal intact: $LAST"
