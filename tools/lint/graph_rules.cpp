#include "graph_rules.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <set>
#include <string>

namespace itm::lint {

namespace {

constexpr std::string_view kRuleSignalSafety = "signal-safety";
constexpr std::string_view kRuleDeterminismTaint = "determinism-taint";
constexpr std::string_view kRuleExecutorReentrancy = "executor-reentrancy";
constexpr std::string_view kRuleFormatPairing = "format-pairing";

void report(std::vector<Diagnostic>& sink, const SymbolIndex& index,
            std::size_t file, std::size_t line, std::string_view rule,
            std::string message) {
  Diagnostic d;
  d.path = index.files()[file].path;
  d.line = line;
  d.rule = std::string(rule);
  d.message = std::move(message);
  sink.push_back(std::move(d));
}

// The token index of the argument-list `(` for the call at ident `i`
// (skipping explicit template arguments), or npos when `i` opens no call.
std::size_t call_open_paren(const std::vector<Token>& code, std::size_t i) {
  std::size_t open = i + 1;
  if (open < code.size() && is_punct(code[open], "<")) {
    const std::size_t after = skip_template_args(code, open);
    if (after == open) return SymbolIndex::npos;
    open = after;
  }
  if (open >= code.size() || !is_punct(code[open], "(")) {
    return SymbolIndex::npos;
  }
  return open;
}

bool range_has_ident(const std::vector<Token>& code, std::size_t begin,
                     std::size_t end, std::string_view name) {
  for (std::size_t i = begin; i < end; ++i) {
    if (is_ident(code[i], name)) return true;
  }
  return false;
}

// --- signal-safety ---------------------------------------------------------

// External calls tolerated on a handler path: the POSIX async-signal-safe
// set this repo actually uses, plus std::atomic member operations (lock-free
// on the integral types the recorder stores).
const std::set<std::string_view> kSignalSafeExternal = {
    "write",          "close",       "open",        "openat",
    "read",           "clock_gettime", "signal",    "raise",
    "kill",           "sigaction",   "sigemptyset", "sigfillset",
    "sigaddset",      "abort",       "_exit",       "_Exit",
    "memcpy",         "memmove",     "memset",      "memcmp",
    "strlen",         "load",        "store",       "exchange",
    "fetch_add",      "fetch_sub",   "fetch_or",    "fetch_and",
    "compare_exchange_weak", "compare_exchange_strong", "test_and_set",
};

// Identifiers whose mere appearance in a handler-reachable body is a
// violation: allocation, stdio, locks, and the std types that allocate.
const std::set<std::string_view> kSignalUnsafeMention = {
    "malloc",    "calloc",      "realloc",     "free",
    "printf",    "fprintf",     "sprintf",     "snprintf",
    "vsnprintf", "puts",        "fputs",       "fwrite",
    "fopen",     "fclose",      "cout",        "cerr",
    "clog",      "endl",        "lock_guard",  "unique_lock",
    "scoped_lock", "shared_lock", "mutex",     "condition_variable",
    "to_string", "string",      "vector",      "ostringstream",
    "stringstream",
};

// Function names registered as signal/terminate handlers: targets of
// `sa_handler =` / `sa_sigaction =` assignments and function arguments of
// `set_terminate(...)` / `signal(...)` calls that resolve to tree defs.
std::vector<std::size_t> handler_roots(const SymbolIndex& index) {
  std::set<std::size_t> roots;
  for (std::size_t f = 0; f < index.files().size(); ++f) {
    const std::vector<Token>& code = index.files()[f].code;
    for (std::size_t i = 0; i + 2 < code.size(); ++i) {
      if ((is_ident(code[i], "sa_handler") ||
           is_ident(code[i], "sa_sigaction")) &&
          is_punct(code[i + 1], "=") && is_ident(code[i + 2])) {
        for (const std::size_t fn :
             index.functions_named(code[i + 2].text)) {
          roots.insert(fn);
        }
      }
      if ((is_ident(code[i], "set_terminate") || is_ident(code[i], "signal")) &&
          is_punct(code[i + 1], "(")) {
        const std::size_t close = match_balanced(code, i + 1);
        for (std::size_t j = i + 2; j < close && j < code.size(); ++j) {
          if (!is_ident(code[j]) || !is_callable_name(code[j].text)) continue;
          for (const std::size_t fn : index.functions_named(code[j].text)) {
            roots.insert(fn);
          }
        }
      }
    }
  }
  return {roots.begin(), roots.end()};
}

}  // namespace

void rule_signal_safety(const SymbolIndex& index,
                        std::vector<Diagnostic>& sink) {
  const std::vector<std::size_t> roots = handler_roots(index);
  // BFS from every handler at once; chain[fn] is a human-readable call path
  // from the registered handler, used verbatim in diagnostics.
  std::map<std::size_t, std::string> chain;
  std::deque<std::size_t> queue;
  for (const std::size_t fn : roots) {
    if (chain.emplace(fn, index.functions()[fn].qualified).second) {
      queue.push_back(fn);
    }
  }

  while (!queue.empty()) {
    const std::size_t fn = queue.front();
    queue.pop_front();
    const FunctionDef& def = index.functions()[fn];
    const std::vector<Token>& code = index.files()[def.file].code;
    const std::string& path_here = chain[fn];

    // Any mention of an allocating/locking/stdio identifier, or a `new` /
    // `delete` / `throw`, anywhere in the reachable body.
    for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
      const Token& t = code[k];
      if (!is_ident(t)) continue;
      if (t.text == "new" || t.text == "delete" || t.text == "throw") {
        report(sink, index, def.file, t.line, kRuleSignalSafety,
               "`" + std::string(t.text) + "` in `" + def.qualified +
                   "`, reachable from signal handler via " + path_here);
      } else if (kSignalUnsafeMention.count(t.text) > 0) {
        report(sink, index, def.file, t.line, kRuleSignalSafety,
               "`" + std::string(t.text) + "` in `" + def.qualified +
                   "` is not async-signal-safe (handler path " + path_here +
                   ")");
      }
    }

    for (const CallSite& call : index.calls_of(fn)) {
      if (index.lambda_locals_of(fn).count(call.name) > 0) continue;
      if (kSignalUnsafeMention.count(call.name) > 0) continue;  // reported
      const std::vector<std::size_t>& defs = index.functions_named(call.name);
      if (call.global_qualified || defs.empty()) {
        if (kSignalSafeExternal.count(call.name) == 0) {
          report(sink, index, def.file, call.line, kRuleSignalSafety,
                 "`" + call.name + "` called from `" + def.qualified +
                     "` (handler path " + path_here +
                     ") is not on the async-signal-safe allowlist");
        }
        continue;
      }
      for (const std::size_t callee : defs) {
        if (chain.emplace(callee, path_here + " -> " + call.name).second) {
          queue.push_back(callee);
        }
      }
    }
  }
}

// --- determinism-taint -----------------------------------------------------

namespace {

// Calls that produce a wall-clock / resource value by name.
const std::set<std::string_view> kTaintSourceCalls = {
    "elapsed_ns", "elapsed_us", "elapsed_s",   "current_rss_bytes",
    "peak_rss_bytes", "unix_millis", "wall_ms_now",
};

// QuantileHistogram reads taint only through a receiver declared with that
// type — `h.quantile(0.5)` is wall-clock, `set.count(x)` is not.
const std::set<std::string_view> kQuantileReads = {
    "quantile", "mean", "sum", "max", "count", "counts",
};

// obs:: free registration helpers that default to kDeterministic.
const std::set<std::string_view> kFreeSinks = {"count", "gauge_set",
                                               "gauge_max", "observe"};
const std::set<std::string_view> kRegisterCalls = {"counter", "gauge",
                                                   "histogram"};
const std::set<std::string_view> kRecordOps = {"add", "set", "maximize",
                                               "observe"};
const std::set<std::string_view> kWriterConsume = {"u8", "u32", "u64", "f64",
                                                   "bytes"};

struct TaintContext {
  const SymbolIndex* index = nullptr;
  const std::vector<NameTable>* visible = nullptr;
  std::set<std::string> tainted_fns;  // functions whose return is tainted
};

bool method_receiver_in(const std::vector<Token>& code, std::size_t i,
                        const std::set<std::string>& table) {
  return i >= 2 &&
         (is_punct(code[i - 1], ".") || is_punct(code[i - 1], "->")) &&
         is_ident(code[i - 2]) &&
         table.count(std::string(code[i - 2].text)) > 0;
}

// Does the token at `i` open a call whose value is wall-clock tainted?
bool taint_call_at(const TaintContext& ctx, std::size_t file,
                   const std::vector<Token>& code, std::size_t i) {
  if (!is_ident(code[i]) || call_open_paren(code, i) == SymbolIndex::npos) {
    return false;
  }
  if (kTaintSourceCalls.count(code[i].text) > 0) return true;
  if (kQuantileReads.count(code[i].text) > 0 &&
      method_receiver_in(code, i, (*ctx.visible)[file].quantile)) {
    return true;
  }
  return ctx.tainted_fns.count(std::string(code[i].text)) > 0;
}

// Is any token in [begin, end) a tainted call or a tainted local?
// `deterministic_cast(...)` is the sanctioned escape hatch: its argument
// range is skipped wholesale.
bool range_tainted(const TaintContext& ctx, std::size_t file,
                   const std::vector<Token>& code, std::size_t begin,
                   std::size_t end, const std::set<std::string>& locals) {
  for (std::size_t i = begin; i < end; ++i) {
    if (is_ident(code[i], "deterministic_cast")) {
      const std::size_t open = call_open_paren(code, i);
      if (open != SymbolIndex::npos) {
        const std::size_t close = match_balanced(code, open);
        i = close < end ? close : end;
        continue;
      }
    }
    if (!is_ident(code[i])) continue;
    if (taint_call_at(ctx, file, code, i)) return true;
    if (i + 1 < end && is_punct(code[i + 1], "(")) continue;  // untainted call
    if (locals.count(std::string(code[i].text)) > 0) return true;
  }
  return false;
}

// End of the statement starting at `i`: the `;` at brace/paren depth 0, or
// `end` if the body runs out first.
std::size_t statement_end(const std::vector<Token>& code, std::size_t i,
                          std::size_t end) {
  int depth = 0;
  for (; i < end; ++i) {
    const Token& t = code[i];
    if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
    else if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) --depth;
    else if (depth <= 0 && is_punct(t, ";")) return i;
  }
  return end;
}

// Locals of `fn` that hold a wall-clock-derived value: fixpoint over
// `name = <tainted rhs>` / `name += <tainted rhs>` assignments.
std::set<std::string> tainted_locals_of(const TaintContext& ctx,
                                        std::size_t fn) {
  const FunctionDef& def = ctx.index->functions()[fn];
  const std::vector<Token>& code = ctx.index->files()[def.file].code;
  std::set<std::string> locals;
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (std::size_t k = def.body_begin + 1; k + 1 < def.body_end; ++k) {
      if (!is_ident(code[k]) ||
          !(is_punct(code[k + 1], "=") || is_punct(code[k + 1], "+="))) {
        continue;
      }
      const std::size_t rhs_end = statement_end(code, k + 2, def.body_end);
      if (range_tainted(ctx, def.file, code, k + 2, rhs_end, locals)) {
        changed |= locals.insert(std::string(code[k].text)).second;
      }
    }
    if (!changed) break;
  }
  return locals;
}

// Functions whose return value is wall-clock tainted, to a name-level
// fixpoint: a `return` statement mentioning a source, a tainted callee, or a
// tainted local marks every definition sharing the name.
void compute_tainted_functions(TaintContext& ctx) {
  for (int round = 0; round < 12; ++round) {
    bool changed = false;
    for (std::size_t fn = 0; fn < ctx.index->functions().size(); ++fn) {
      const FunctionDef& def = ctx.index->functions()[fn];
      if (ctx.tainted_fns.count(def.name) > 0) continue;
      const std::vector<Token>& code = ctx.index->files()[def.file].code;
      const std::set<std::string> locals = tainted_locals_of(ctx, fn);
      for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
        if (!is_ident(code[k], "return")) continue;
        const std::size_t rhs_end = statement_end(code, k + 1, def.body_end);
        if (range_tainted(ctx, def.file, code, k + 1, rhs_end, locals)) {
          ctx.tainted_fns.insert(def.name);
          changed = true;
          break;
        }
      }
    }
    if (!changed) break;
  }
}

}  // namespace

void rule_determinism_taint(const SymbolIndex& index,
                            const std::vector<NameTable>& visible,
                            std::vector<Diagnostic>& sink) {
  TaintContext ctx;
  ctx.index = &index;
  ctx.visible = &visible;
  compute_tainted_functions(ctx);

  for (std::size_t fn = 0; fn < index.functions().size(); ++fn) {
    const FunctionDef& def = index.functions()[fn];
    const std::vector<Token>& code = index.files()[def.file].code;
    const std::set<std::string> locals = tainted_locals_of(ctx, fn);
    const auto tainted = [&](std::size_t b, std::size_t e) {
      return range_tainted(ctx, def.file, code, b, e, locals);
    };

    for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
      if (!is_ident(code[k])) continue;
      const std::size_t open = call_open_paren(code, k);
      if (open == SymbolIndex::npos) continue;
      const std::size_t close = match_balanced(code, open);
      if (close >= def.body_end) continue;
      const bool is_method =
          k >= 1 &&
          (is_punct(code[k - 1], ".") || is_punct(code[k - 1], "->"));

      // obs::count / gauge_set / gauge_max / observe free helpers default
      // to kDeterministic; passing kWallClock sanctions the value.
      if (!is_method && kFreeSinks.count(code[k].text) > 0 &&
          !range_has_ident(code, open + 1, close, "kWallClock") &&
          tainted(open + 1, close)) {
        report(sink, index, def.file, code[k].line, kRuleDeterminismTaint,
               "wall-clock-derived value flows into kDeterministic metric "
               "via obs::" + std::string(code[k].text) +
                   " — pass Determinism::kWallClock or wrap in "
                   "obs::deterministic_cast");
      }

      // registry.counter/gauge/histogram(name, det).add/set/observe(value)
      if (is_method && kRegisterCalls.count(code[k].text) > 0 &&
          close + 3 < def.body_end && is_punct(code[close + 1], ".") &&
          is_ident(code[close + 2]) &&
          kRecordOps.count(code[close + 2].text) > 0 &&
          is_punct(code[close + 3], "(")) {
        const std::size_t vclose = match_balanced(code, close + 3);
        if (vclose < def.body_end &&
            !range_has_ident(code, open + 1, close, "kWallClock") &&
            tainted(close + 4, vclose)) {
          report(sink, index, def.file, code[close + 2].line,
                 kRuleDeterminismTaint,
                 "wall-clock-derived value recorded into a metric registered "
                 "kDeterministic (`." + std::string(code[k].text) +
                     "(...)." + std::string(code[close + 2].text) +
                     "`) — register it kWallClock or use "
                     "obs::deterministic_cast");
        }
      }

      // ByteWriter payloads are deterministic artifacts by definition.
      if (is_method && kWriterConsume.count(code[k].text) > 0 &&
          method_receiver_in(code, k, visible[def.file].bytewriter) &&
          tainted(open + 1, close)) {
        report(sink, index, def.file, code[k].line, kRuleDeterminismTaint,
               "wall-clock-derived value written into a snapshot payload via "
               "ByteWriter::" + std::string(code[k].text) +
                   " — snapshots must be bit-reproducible "
                   "(obs::deterministic_cast to override)");
      }
    }
  }
}

// --- executor-reentrancy ---------------------------------------------------

namespace {

const std::set<std::string_view> kExecutorEntry = {"parallel_for",
                                                   "parallel_map",
                                                   "map_shards"};

// reaches[fn]: calling fn may execute an Executor entry point (directly or
// through any chain of tree-internal calls).
std::vector<char> compute_reaches(const SymbolIndex& index) {
  const std::size_t n = index.functions().size();
  std::vector<char> reaches(n, 0);
  for (std::size_t fn = 0; fn < n; ++fn) {
    for (const CallSite& call : index.calls_of(fn)) {
      if (kExecutorEntry.count(call.name) > 0) {
        reaches[fn] = 1;
        break;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fn = 0; fn < n; ++fn) {
      if (reaches[fn] != 0) continue;
      for (const CallSite& call : index.calls_of(fn)) {
        if (call.global_qualified ||
            index.lambda_locals_of(fn).count(call.name) > 0) {
          continue;
        }
        for (const std::size_t callee : index.functions_named(call.name)) {
          if (reaches[callee] != 0) {
            reaches[fn] = 1;
            changed = true;
            break;
          }
        }
        if (reaches[fn] != 0) break;
      }
    }
  }
  return reaches;
}

// Human-readable chain from `fn` to the entry point it reaches.
std::string reach_chain(const SymbolIndex& index,
                        const std::vector<char>& reaches, std::size_t fn) {
  std::string chain = index.functions()[fn].name;
  std::set<std::size_t> seen;
  std::size_t cur = fn;
  while (seen.insert(cur).second) {
    bool advanced = false;
    for (const CallSite& call : index.calls_of(cur)) {
      if (kExecutorEntry.count(call.name) > 0) {
        return chain + " -> " + call.name;
      }
    }
    for (const CallSite& call : index.calls_of(cur)) {
      if (call.global_qualified ||
          index.lambda_locals_of(cur).count(call.name) > 0) {
        continue;
      }
      for (const std::size_t callee : index.functions_named(call.name)) {
        if (reaches[callee] != 0 && seen.count(callee) == 0) {
          chain += " -> " + call.name;
          cur = callee;
          advanced = true;
          break;
        }
      }
      if (advanced) break;
    }
    if (!advanced) break;
  }
  return chain;
}

// The body span of a lambda whose `[` is at `i`, or (npos, npos).
std::pair<std::size_t, std::size_t> lambda_body_span(
    const std::vector<Token>& code, std::size_t i) {
  const std::size_t cap_close = match_balanced(code, i);
  if (cap_close >= code.size()) return {SymbolIndex::npos, SymbolIndex::npos};
  std::size_t j = cap_close + 1;
  if (j < code.size() && is_punct(code[j], "(")) {
    j = match_balanced(code, j) + 1;
  }
  // Tolerate mutable / noexcept / trailing-return decorations up to the
  // body brace; bail if the construct never opens one.
  const std::size_t limit = std::min(code.size(), j + 32);
  while (j < limit && !is_punct(code[j], "{")) ++j;
  if (j >= limit || !is_punct(code[j], "{")) {
    return {SymbolIndex::npos, SymbolIndex::npos};
  }
  const std::size_t body_end = match_balanced(code, j);
  if (body_end >= code.size()) return {SymbolIndex::npos, SymbolIndex::npos};
  return {j, body_end};
}

}  // namespace

void rule_executor_reentrancy(const SymbolIndex& index,
                              std::vector<Diagnostic>& sink) {
  const std::vector<char> reaches = compute_reaches(index);

  for (std::size_t fn = 0; fn < index.functions().size(); ++fn) {
    const FunctionDef& def = index.functions()[fn];
    const std::vector<Token>& code = index.files()[def.file].code;
    for (const CallSite& call : index.calls_of(fn)) {
      if (kExecutorEntry.count(call.name) == 0) continue;
      const std::size_t open = call_open_paren(code, call.token);
      if (open == SymbolIndex::npos) continue;
      const std::size_t close = match_balanced(code, open);
      // Lambdas passed as arguments: `[` in argument position.
      for (std::size_t i = open + 1; i < close; ++i) {
        if (!is_punct(code[i], "[") ||
            !(is_punct(code[i - 1], "(") || is_punct(code[i - 1], ","))) {
          continue;
        }
        const auto [body, body_end] = lambda_body_span(code, i);
        if (body == SymbolIndex::npos) continue;
        for (std::size_t k = body + 1; k < body_end; ++k) {
          if (!is_ident(code[k]) || !is_callable_name(code[k].text)) continue;
          if (call_open_paren(code, k) == SymbolIndex::npos) continue;
          if (kExecutorEntry.count(code[k].text) > 0) {
            report(sink, index, def.file, code[k].line,
                   kRuleExecutorReentrancy,
                   "`" + std::string(code[k].text) + "` called from inside a " +
                       call.name +
                       " callback — nested parallelism deadlocks the "
                       "executor pool");
            continue;
          }
          if (index.lambda_locals_of(fn).count(std::string(code[k].text)) >
              0) {
            continue;
          }
          for (const std::size_t callee :
               index.functions_named(code[k].text)) {
            if (reaches[callee] == 0) continue;
            report(sink, index, def.file, code[k].line,
                   kRuleExecutorReentrancy,
                   "call path from a " + call.name + " callback re-enters "
                       "the executor: " +
                       reach_chain(index, reaches, callee));
            break;
          }
        }
        i = body_end;  // nested lambdas were covered by the span scan
      }
    }
  }
}

// --- format-pairing --------------------------------------------------------

namespace {

struct SectionSeq {
  std::vector<std::string> seq;
  std::size_t file = 0;
  std::size_t line = 0;
};

std::string join_seq(const std::vector<std::string>& seq) {
  std::string out = "[";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += " ";
    out += seq[i];
  }
  return out + "]";
}

// Section name (`kStrings`) from a `SectionId :: kX` mention in [begin,
// end), or empty — the write_section *definition* takes a bare `SectionId
// id` parameter and is skipped by exactly this test.
std::string section_arg(const std::vector<Token>& code, std::size_t begin,
                        std::size_t end) {
  for (std::size_t i = begin; i + 2 < end; ++i) {
    if (is_ident(code[i], "SectionId") && is_punct(code[i + 1], "::") &&
        is_ident(code[i + 2]) && code[i + 2].text.front() == 'k') {
      return std::string(code[i + 2].text);
    }
  }
  return {};
}

void collect_consumers(const std::vector<Token>& code, std::size_t begin,
                       std::size_t end, const std::set<std::string>& receivers,
                       std::vector<std::string>& out) {
  for (std::size_t k = begin; k < end; ++k) {
    if (is_ident(code[k]) && kWriterConsume.count(code[k].text) > 0 &&
        method_receiver_in(code, k, receivers) && k + 1 < end &&
        is_punct(code[k + 1], "(")) {
      out.emplace_back(code[k].text);
    }
  }
}

}  // namespace

void rule_format_pairing(const SymbolIndex& index,
                         const std::vector<NameTable>& visible,
                         std::vector<Diagnostic>& sink) {
  std::map<std::string, SectionSeq> writes;
  std::map<std::string, SectionSeq> reads;

  for (std::size_t f = 0; f < index.files().size(); ++f) {
    const std::vector<Token>& code = index.files()[f].code;

    // Writer side: the ByteWriter calls between the top of the enclosing
    // block and the `write_section(..., SectionId::kX, ...)` call.
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
      if (!is_ident(code[i], "write_section") || !is_punct(code[i + 1], "(")) {
        continue;
      }
      const std::size_t close = match_balanced(code, i + 1);
      const std::string section = section_arg(code, i + 2, close);
      if (section.empty()) continue;
      // Enclosing block start: reverse brace scan.
      std::size_t start = 0;
      int depth = 0;
      for (std::size_t j = i; j-- > 0;) {
        if (is_punct(code[j], "}")) {
          ++depth;
        } else if (is_punct(code[j], "{")) {
          if (depth > 0) {
            --depth;
          } else {
            start = j;
            break;
          }
        }
      }
      SectionSeq entry;
      entry.file = f;
      entry.line = code[i].line;
      collect_consumers(code, start, i, visible[f].bytewriter, entry.seq);
      writes.emplace(section, std::move(entry));  // first writer wins
    }

    // Reader side: `<parse-fn>(..., ByteReader(*payload(SectionId::kX)) ...)`
    // — locate a `name(SectionId::kX)` accessor call, walk back to the
    // enclosing parse call, and flatten that function's ByteReader reads.
    for (std::size_t i = 0; i + 5 < code.size(); ++i) {
      if (!(is_ident(code[i]) && is_punct(code[i + 1], "(") &&
            is_ident(code[i + 2], "SectionId") && is_punct(code[i + 3], "::") &&
            is_ident(code[i + 4]) && code[i + 4].text.front() == 'k' &&
            is_punct(code[i + 5], ")"))) {
        continue;
      }
      const std::string section(code[i + 4].text);
      std::size_t parse_fn = SymbolIndex::npos;
      const std::size_t back_stop = i > 12 ? i - 12 : 0;
      for (std::size_t j = i; j-- > back_stop;) {
        if (!is_ident(code[j]) || !is_callable_name(code[j].text)) continue;
        // ByteReader's own constructor is an indexed definition; skip it so
        // the walk-back lands on the parse function, not the wrapper.
        if (code[j].text == "ByteReader") continue;
        if (j + 1 >= code.size() || !is_punct(code[j + 1], "(")) continue;
        const std::vector<std::size_t>& defs =
            index.functions_named(code[j].text);
        if (defs.empty()) continue;
        parse_fn = defs.front();
        break;
      }
      if (parse_fn == SymbolIndex::npos) continue;
      const FunctionDef& def = index.functions()[parse_fn];
      SectionSeq entry;
      entry.file = f;
      entry.line = code[i].line;
      collect_consumers(index.files()[def.file].code, def.body_begin + 1,
                        def.body_end, visible[def.file].bytereader,
                        entry.seq);
      reads.emplace(section, std::move(entry));
    }
  }

  // A lint run over a partial tree (fixtures, subsets) sees only one side;
  // pairing checks require both maps to be populated.
  for (const auto& [section, w] : writes) {
    const auto it = reads.find(section);
    if (it == reads.end()) {
      if (!reads.empty()) {
        report(sink, index, w.file, w.line, kRuleFormatPairing,
               "section " + section + " is written but no reader parses it");
      }
      continue;
    }
    if (w.seq != it->second.seq) {
      report(sink, index, w.file, w.line, kRuleFormatPairing,
             "section " + section + " ABI drift: writer emits " +
                 join_seq(w.seq) + " but reader consumes " +
                 join_seq(it->second.seq));
    }
  }
  if (!writes.empty()) {
    for (const auto& [section, r] : reads) {
      if (writes.count(section) == 0) {
        report(sink, index, r.file, r.line, kRuleFormatPairing,
               "section " + section + " is parsed but no writer emits it");
      }
    }
  }
}

}  // namespace itm::lint
