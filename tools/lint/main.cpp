// itm-lint CLI.
//
//   itm-lint [--budget FILE] [--stats] [--format=json] [--exclude PREFIX]
//            PATH...
//
// PATHs are files or directories (recursed for .h/.hpp/.cpp/.cc). Exit
// codes are distinct so CI can tell failure modes apart:
//   0  clean
//   1  unsuppressed violations (printed as file:line: [rule] message)
//   2  usage or I/O error
//   3  suppression budget exceeded (violations may also have printed)
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int usage(std::ostream& os) {
  os << "usage: itm-lint [--budget FILE] [--stats] [--format=json]\n"
        "                [--exclude PREFIX]... PATH...\n"
        "  --budget FILE    enforce tools/lint/suppressions.budget caps\n"
        "  --stats          print live-suppression counts and per-rule wall "
        "time\n"
        "  --format=json    machine-readable report on stdout (SARIF-lite)\n"
        "  --exclude PREFIX skip files whose path starts with PREFIX "
        "(repeatable;\n"
        "                   keeps lint fixtures out of a tree-wide run)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> excludes;
  std::string budget_path;
  bool stats = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--budget") {
      if (++i >= argc) return usage(std::cerr);
      budget_path = argv[i];
    } else if (arg == "--exclude") {
      if (++i >= argc) return usage(std::cerr);
      excludes.emplace_back(argv[i]);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "itm-lint: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(std::cerr);

  std::vector<itm::lint::SourceFile> files;
  try {
    // Expand directories, then sort: itm-lint's own output must be
    // deterministic (directory iteration order is not).
    std::vector<std::string> expanded;
    for (const std::string& p : paths) {
      if (fs::is_directory(p)) {
        for (const auto& entry : fs::recursive_directory_iterator(p)) {
          if (entry.is_regular_file() && lintable(entry.path())) {
            expanded.push_back(entry.path().generic_string());
          }
        }
      } else if (fs::is_regular_file(p)) {
        expanded.push_back(p);
      } else {
        std::cerr << "itm-lint: no such file or directory: " << p << "\n";
        return 2;
      }
    }
    std::sort(expanded.begin(), expanded.end());
    expanded.erase(std::unique(expanded.begin(), expanded.end()),
                   expanded.end());
    expanded.erase(std::remove_if(expanded.begin(), expanded.end(),
                                  [&](const std::string& path) {
                                    for (const std::string& ex : excludes) {
                                      if (path.rfind(ex, 0) == 0) return true;
                                    }
                                    return false;
                                  }),
                   expanded.end());
    files.reserve(expanded.size());
    for (const std::string& p : expanded) {
      files.push_back(itm::lint::SourceFile{p, read_file(p)});
    }
  } catch (const std::exception& e) {
    std::cerr << "itm-lint: " << e.what() << "\n";
    return 2;
  }

  const itm::lint::LintResult result = itm::lint::lint_sources(files);

  int exit_code = result.diagnostics.empty() ? 0 : 1;
  std::vector<std::string> budget_errors;
  if (!budget_path.empty()) {
    try {
      const auto budget = itm::lint::parse_budget(read_file(budget_path));
      budget_errors = itm::lint::check_budget(result, budget);
      if (!budget_errors.empty()) exit_code = 3;
    } catch (const std::exception& e) {
      std::cerr << "itm-lint: " << e.what() << "\n";
      return 2;
    }
  }

  if (json) {
    std::cout << itm::lint::to_json(result, budget_errors);
  } else {
    for (const auto& d : result.diagnostics) {
      std::cout << itm::lint::format_diagnostic(d) << "\n";
    }
    for (const auto& e : budget_errors) {
      std::cerr << "itm-lint: budget: " << e << "\n";
    }
    if (exit_code == 0) {
      std::cout << "itm-lint: " << files.size() << " files clean\n";
    }
  }
  if (stats) {
    std::ostream& os = json ? std::cerr : std::cout;  // keep stdout pure JSON
    os << "— live suppressions by rule —\n";
    for (const auto& [rule, used] : result.suppressions_used) {
      os << rule << " " << used << "\n";
    }
    os << "— wall time by pass —\n";
    for (const auto& [pass, seconds] : result.rule_seconds) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%8.3f ms", seconds * 1e3);
      os << buf << "  " << pass << "\n";
    }
  }
  return exit_code;
}
