// itm-lint: static enforcement of the repo's determinism & concurrency
// invariants (DESIGN.md decisions #6/#7/#8/#12).
//
// The linter runs in two passes over the whole scan set. Pass 1 builds the
// cross-translation-unit symbol index (tools/lint/index.h): per-file name
// tables scoped by include closure, every function definition, and a
// name-level call graph. Pass 2 runs two rule families on top of it:
// file-local token rules (this file's .cpp) and graph rules that need
// reachability or cross-file pairing (graph_rules.h). The name-level
// approximation is deliberately conservative and AST-free: a name means the
// union of everything it could resolve to, and scoping (include closure,
// receiver types, local declarations) trims the union where it provably
// cannot apply.
//
// Rules (ids are stable; fixtures and suppressions reference them):
//   nondet-iteration      range-for over an unordered_{map,set} without an
//                         adjacent sort of what the loop builds
//   banned-nondet-sources std::rand / random_device / <random> engines /
//                         system_clock / steady_clock / getenv / pointer
//                         hashing outside allowlisted sites
//   rng-discipline        a shared Rng captured by reference and *consumed*
//                         inside an Executor::parallel_* lambda (split() is
//                         the sanctioned derivation and stays legal)
//   executor-capture      default [&] captures, or mutation of a by-ref
//                         captured object that is not a per-index slot or a
//                         commutative atomic op, inside a parallel_* lambda
//   float-reduction-order float/double += accumulation into by-ref captured
//                         state inside an Executor::parallel_* lambda
//   metric-name-format    metric/span names must match [a-z0-9_.]+
//   signal-safety         nothing reachable from a registered signal or
//                         terminate handler may allocate, lock, throw, or
//                         touch stdio (call-graph reachability)
//   determinism-taint     wall-clock values (Stopwatch, RSS, quantile reads)
//                         must not flow into kDeterministic metrics or
//                         snapshot payloads; obs::deterministic_cast is the
//                         sanctioned escape hatch
//   executor-reentrancy   no call path from inside an Executor callback back
//                         into parallel_for/parallel_map/map_shards
//   format-pairing        ByteWriter section sequences in the snapshot
//                         writer must mirror the ByteReader sequences in the
//                         reader (.itms ABI-drift detector)
//   stale-suppression     an `itm-lint: allow(...)` comment that suppressed
//                         nothing (kept as an error so suppressions cannot
//                         outlive the code they excused)
//
// Suppression: `// itm-lint: allow(<rule>)` on the violating line or the
// line directly above — graph-rule diagnostics are suppressible at the line
// they report, same as token rules. Every live suppression is counted
// against tools/lint/suppressions.budget so the total cannot silently grow.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace itm::lint {

struct SourceFile {
  std::string path;     // reported verbatim in diagnostics
  std::string content;  // full source text
};

struct Diagnostic {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // unsuppressed, file/line ordered
  // Live `allow` comments per rule (each counted once even if it masked
  // several diagnostics) — compared against the suppression budget.
  std::map<std::string, std::size_t> suppressions_used;
  std::size_t files_scanned = 0;
  // Wall time per pass ("index", one entry per rule family, "suppressions"),
  // in execution order. Measured with CLOCK_MONOTONIC; excluded from the
  // JSON output so golden tests stay byte-stable.
  std::vector<std::pair<std::string, double>> rule_seconds;
};

// Rule ids a suppression or budget line may reference (stale-suppression is
// excluded: meta-findings cannot be suppressed).
[[nodiscard]] const std::set<std::string_view>& known_rules();

// Lints every file: builds the symbol index, runs token and graph rules,
// then applies suppressions globally.
[[nodiscard]] LintResult lint_sources(const std::vector<SourceFile>& files);

// "path:line: [rule] message" — the format golden fixtures match against.
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

// Machine-readable SARIF-lite report for CI annotation (schema
// "itm-lint-json/1"): diagnostics, suppression counts, budget errors.
// Deterministic for a given tree — timings are deliberately omitted.
[[nodiscard]] std::string to_json(const LintResult& result,
                                  const std::vector<std::string>& budget_errors);

// Budget file format: `<rule> <max-live-suppressions>` per line, `#`
// comments allowed. Returns rule -> cap. Throws std::runtime_error on a
// malformed line, an unknown rule, or a duplicated rule.
[[nodiscard]] std::map<std::string, std::size_t> parse_budget(
    const std::string& text);

// Human-readable budget violations ("rule: N live suppressions > budget M");
// empty means within budget. Rules absent from the budget default to 0.
[[nodiscard]] std::vector<std::string> check_budget(
    const LintResult& result, const std::map<std::string, std::size_t>& budget);

}  // namespace itm::lint
