// itm-lint: static enforcement of the repo's determinism & concurrency
// invariants (DESIGN.md decisions #6/#7/#8).
//
// The linter runs in two passes over the whole scan set. Pass 1 builds a
// name table: identifiers declared anywhere with an unordered container
// type, an Rng type, or a float type. Names declared in headers apply
// globally (headers are included everywhere); names declared in a .cpp
// apply to that file only. Pass 2 walks each file's token stream and
// reports rule violations. This name-level approximation is deliberately
// conservative and AST-free: a name declared unordered anywhere is treated
// as unordered everywhere it is visible, which is the right bias for a
// determinism gate.
//
// Rules (ids are stable; fixtures and suppressions reference them):
//   nondet-iteration      range-for over an unordered_{map,set} without an
//                         adjacent sort of what the loop builds
//   banned-nondet-sources std::rand / random_device / <random> engines /
//                         system_clock / steady_clock / getenv / pointer
//                         hashing outside allowlisted sites
//   rng-discipline        a shared Rng captured by reference and *consumed*
//                         inside an Executor::parallel_* lambda (split() is
//                         the sanctioned derivation and stays legal)
//   executor-capture      default [&] captures, or mutation of a by-ref
//                         captured object that is not a per-index slot,
//                         inside an Executor::parallel_* lambda
//   float-reduction-order float/double += accumulation into by-ref captured
//                         state inside an Executor::parallel_* lambda
//   stale-suppression     an `itm-lint: allow(...)` comment that suppressed
//                         nothing (kept as an error so suppressions cannot
//                         outlive the code they excused)
//
// Suppression: `// itm-lint: allow(<rule>)` on the violating line or the
// line directly above. Every live suppression is counted against
// tools/lint/suppressions.budget so the total cannot silently grow.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace itm::lint {

struct SourceFile {
  std::string path;     // reported verbatim in diagnostics
  std::string content;  // full source text
};

struct Diagnostic {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // unsuppressed, file/line ordered
  // Live `allow` comments per rule (each counted once even if it masked
  // several diagnostics) — compared against the suppression budget.
  std::map<std::string, std::size_t> suppressions_used;
};

// Lints every file against the shared cross-file name table.
[[nodiscard]] LintResult lint_sources(const std::vector<SourceFile>& files);

// "path:line: [rule] message" — the format golden fixtures match against.
[[nodiscard]] std::string format_diagnostic(const Diagnostic& d);

// Budget file format: `<rule> <max-live-suppressions>` per line, `#`
// comments allowed. Returns rule -> cap. Throws std::runtime_error on a
// malformed line.
[[nodiscard]] std::map<std::string, std::size_t> parse_budget(
    const std::string& text);

// Human-readable budget violations ("rule: N live suppressions > budget M");
// empty means within budget. Rules absent from the budget default to 0.
[[nodiscard]] std::vector<std::string> check_budget(
    const LintResult& result, const std::map<std::string, std::size_t>& budget);

}  // namespace itm::lint
