// Minimal C++ lexer for itm-lint.
//
// itm-lint is deliberately AST-lite: the determinism rules it enforces are
// about *lexical shapes* (range-for over an unordered container, a clock
// identifier outside an allowlisted file, an Rng consumed inside an executor
// lambda), so a token stream with line numbers is enough. The lexer must
// still be a real lexer — rule keywords like "random_device" appear inside
// this tool's own string literals, and itm-lint scans its own source — so
// comments, string/char literals and raw strings are lexed as single tokens
// and never mistaken for code.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace itm::lint {

enum class TokKind {
  kIdentifier,  // identifiers and keywords (no distinction needed)
  kNumber,
  kString,   // string literal, char literal, raw string (quotes included)
  kPunct,    // operators and punctuation; multi-char ops are one token
  kComment,  // // or /* */, text includes the delimiters
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string_view text;  // view into the source buffer
  std::size_t line = 0;   // 1-based line of the token's first character
};

// Tokenizes `source`. The returned tokens view into `source`, which must
// outlive them. Comments are kept (suppression scanning needs them); rule
// code that walks the stream should use a comment-skipping cursor.
// Unterminated literals/comments are closed at end of file rather than
// reported — itm-lint lints code that already compiles.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

// True for tokens rule logic should see (everything but comments/EOF).
[[nodiscard]] inline bool is_code(const Token& t) {
  return t.kind != TokKind::kComment && t.kind != TokKind::kEof;
}

}  // namespace itm::lint
