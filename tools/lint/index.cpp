#include "index.h"

#include <algorithm>

namespace itm::lint {

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokKind::kIdentifier && t.text == name;
}

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }

// Index of the closer matching the opener at `open` ((), {}, []), or
// toks.size() if unbalanced. EOF-safe.
std::size_t match_balanced(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(") || is_punct(toks[i], "{") ||
        is_punct(toks[i], "[")) {
      ++depth;
    } else if (is_punct(toks[i], ")") || is_punct(toks[i], "}") ||
               is_punct(toks[i], "]")) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

// Skips balanced template arguments: toks[i] must be `<`; returns the index
// one past the matching `>` (treating `>>` as two closers), or `i` when the
// construct does not look like template arguments (bails on `;` or `{`).
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size() || !is_punct(toks[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size() && j < i + 512; ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ">")) {
      if (--depth == 0) return j + 1;
    } else if (is_punct(t, ">>")) {
      depth -= 2;
      // depth < 0 means the second `>` closed an *enclosing* template
      // (`vector<unordered_map<K, V>>`): the inner type is nested inside an
      // ordered container, so the declared name is not itself unordered.
      if (depth < 0) return i;
      if (depth == 0) return j + 1;
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      return i;  // not a template argument list after all
    }
  }
  return i;
}

namespace {

// Identifiers that look like `name(` but can never be a callee or a
// function definition being introduced.
const std::set<std::string_view> kNotCallable = {
    "if",        "for",      "while",        "switch",   "catch",
    "return",    "sizeof",   "alignof",      "decltype", "static_assert",
    "new",       "delete",   "throw",        "case",     "operator",
    "requires",  "noexcept", "alignas",      "co_await", "co_return",
    "co_yield",  "typeid",   "static_cast",  "const_cast",
    "dynamic_cast", "reinterpret_cast", "defined",
};

}  // namespace

bool is_callable_name(std::string_view name) {
  return kNotCallable.count(name) == 0;
}

void NameTable::merge(const NameTable& other) {
  unordered.insert(other.unordered.begin(), other.unordered.end());
  rng.insert(other.rng.begin(), other.rng.end());
  floats.insert(other.floats.begin(), other.floats.end());
  bytewriter.insert(other.bytewriter.begin(), other.bytewriter.end());
  bytereader.insert(other.bytereader.begin(), other.bytereader.end());
  quantile.insert(other.quantile.begin(), other.quantile.end());
  atomics.insert(other.atomics.begin(), other.atomics.end());
}

namespace {

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

// After a type's tokens, skip declarator decorations (const, &, *, &&).
std::size_t skip_declarator_prefix(const std::vector<Token>& toks,
                                   std::size_t i) {
  while (i < toks.size() &&
         (is_ident(toks[i], "const") || is_punct(toks[i], "&") ||
          is_punct(toks[i], "*") || is_punct(toks[i], "&&"))) {
    ++i;
  }
  return i;
}

// From a declaration's initializer, skip to the `,` or `;` that ends this
// declarator (balanced in parens/braces/brackets). Returns that index.
std::size_t skip_to_declarator_end(const std::vector<Token>& toks,
                                   std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
    else if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) {
      if (depth == 0) return i;  // end of an enclosing list — stop
      --depth;
    } else if (depth == 0 && (is_punct(t, ",") || is_punct(t, ";"))) {
      return i;
    }
  }
  return i;
}

// Records the declared names following a type at position `i` (one past the
// type tokens), handling `a, b;` chains and `= init` skipping.
void record_declared_names(const std::vector<Token>& toks, std::size_t i,
                           std::set<std::string>& into) {
  while (i < toks.size()) {
    i = skip_declarator_prefix(toks, i);
    if (i >= toks.size() || !is_ident(toks[i])) return;
    into.insert(std::string(toks[i].text));
    ++i;
    // Function declarations (`type name(...)`) record the name and stop:
    // call sites of that name then count as producing this type.
    if (i < toks.size() && is_punct(toks[i], "(")) return;
    i = skip_to_declarator_end(toks, i);
    if (i >= toks.size() || !is_punct(toks[i], ",")) return;
    ++i;  // continue the declarator chain
  }
}

NameTable collect_names(const std::vector<Token>& toks) {
  NameTable table;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!is_ident(t)) continue;
    if (kUnorderedTypes.count(t.text) > 0) {
      const std::size_t after = skip_template_args(toks, i + 1);
      if (after > i + 1) record_declared_names(toks, after, table.unordered);
    } else if (t.text == "Rng") {
      // `Rng name`, `itm::Rng name`; skip `Rng(` ctors and `Rng::` scope.
      record_declared_names(toks, i + 1, table.rng);
    } else if (t.text == "double" || t.text == "float") {
      record_declared_names(toks, i + 1, table.floats);
    } else if (t.text == "ByteWriter") {
      record_declared_names(toks, i + 1, table.bytewriter);
    } else if (t.text == "ByteReader") {
      record_declared_names(toks, i + 1, table.bytereader);
    } else if (t.text == "QuantileHistogram") {
      record_declared_names(toks, i + 1, table.quantile);
    } else if (t.text == "atomic") {
      // `std::atomic<T> name` — but not atomics nested inside another
      // template (vector<atomic<int>>), where skip_template_args bails.
      const std::size_t after = skip_template_args(toks, i + 1);
      if (after > i + 1) record_declared_names(toks, after, table.atomics);
    }
  }
  return table;
}

// --- function definition scanning -----------------------------------------

constexpr std::size_t kNpos = SymbolIndex::npos;

// `j` sits on the `:` that opens a constructor member-init list. Returns the
// index of the body `{`, or npos when the construct turns out not to be an
// init list (a ternary, a label). Member brace-inits (`b_{y}`) are braces
// directly preceded by an identifier or template `>`; the body brace follows
// `)`, `}` or the `:` chain itself.
std::size_t skip_ctor_init_list(const std::vector<Token>& toks,
                                std::size_t j) {
  ++j;
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (is_punct(t, "{")) {
      const Token& prev = toks[j - 1];
      if (is_ident(prev) || is_punct(prev, ">")) {
        const std::size_t close = match_balanced(toks, j);
        if (close >= toks.size()) return kNpos;
        j = close + 1;
      } else {
        return j;  // the function body
      }
    } else if (is_punct(t, "(")) {
      const std::size_t close = match_balanced(toks, j);
      if (close >= toks.size()) return kNpos;
      j = close + 1;
    } else if (is_punct(t, "<")) {
      const std::size_t after = skip_template_args(toks, j);
      j = after > j ? after : j + 1;
    } else if (is_ident(t) || is_punct(t, "::") || is_punct(t, ",") ||
               is_punct(t, "...")) {
      ++j;
    } else {
      return kNpos;
    }
  }
  return kNpos;
}

// toks[i] is an identifier followed by `(`. Returns the body-`{` index when
// this is a function definition, npos otherwise. Tolerant of trailing
// const/noexcept/ref-qualifiers/override/final/trailing-return and ctor
// init lists; anything else (`;`, `=`, `,`, an operator) disqualifies.
std::size_t definition_body(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t close = match_balanced(toks, i + 1);
  if (close >= toks.size()) return kNpos;
  std::size_t j = close + 1;
  const std::size_t limit = std::min(toks.size(), j + 64);
  while (j < limit) {
    const Token& t = toks[j];
    if (is_punct(t, "{")) return j;
    if (is_punct(t, ":")) return skip_ctor_init_list(toks, j);
    if (is_ident(t, "noexcept") && j + 1 < toks.size() &&
        is_punct(toks[j + 1], "(")) {
      const std::size_t c = match_balanced(toks, j + 1);
      if (c >= toks.size()) return kNpos;
      j = c + 1;
      continue;
    }
    if (is_ident(t, "const") || is_ident(t, "noexcept") ||
        is_ident(t, "override") || is_ident(t, "final") ||
        is_ident(t, "mutable") || is_ident(t, "try")) {
      ++j;
      continue;
    }
    if (is_punct(t, "->") || is_punct(t, "::") || is_punct(t, "&") ||
        is_punct(t, "&&") || is_punct(t, "*")) {
      ++j;
      continue;
    }
    if (is_punct(t, "<")) {
      const std::size_t after = skip_template_args(toks, j);
      if (after == j) return kNpos;
      j = after;
      continue;
    }
    if (is_ident(t) && kNotCallable.count(t.text) == 0) {
      ++j;  // trailing-return type name
      continue;
    }
    return kNpos;
  }
  return kNpos;
}

}  // namespace

SymbolIndex SymbolIndex::build(const std::vector<SourceFile>& sources) {
  SymbolIndex index;
  index.files_.reserve(sources.size());

  for (const SourceFile& src : sources) {
    FileTokens ft;
    ft.path = src.path;
    ft.raw = tokenize(src.content);
    ft.code.reserve(ft.raw.size());
    for (const Token& t : ft.raw) {
      if (is_code(t)) ft.code.push_back(t);
    }
    // Quoted include directives: `#` `include` `"path"`.
    for (std::size_t i = 0; i + 2 < ft.raw.size(); ++i) {
      if (is_punct(ft.raw[i], "#") && is_ident(ft.raw[i + 1], "include") &&
          ft.raw[i + 2].kind == TokKind::kString &&
          ft.raw[i + 2].text.size() >= 2 && ft.raw[i + 2].text.front() == '"') {
        ft.includes.emplace_back(
            ft.raw[i + 2].text.substr(1, ft.raw[i + 2].text.size() - 2));
      }
    }
    index.files_.push_back(std::move(ft));
  }

  // Include graph: an include path matches a scanned file by exact path or
  // path-suffix ("net/rng.h" matches "src/net/rng.h"), then closed
  // transitively so a header pulled in through another header still counts.
  const std::size_t n = index.files_.size();
  std::vector<std::vector<std::size_t>> edges(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (const std::string& inc : index.files_[f].includes) {
      for (std::size_t g = 0; g < n; ++g) {
        if (g == f) continue;
        const std::string& path = index.files_[g].path;
        if (path == inc ||
            (path.size() > inc.size() + 1 && path.ends_with(inc) &&
             path[path.size() - inc.size() - 1] == '/')) {
          edges[f].push_back(g);
        }
      }
    }
  }
  index.visibility_.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> queue = {f};
    seen[f] = true;
    while (!queue.empty()) {
      const std::size_t cur = queue.back();
      queue.pop_back();
      index.visibility_[f].push_back(cur);
      for (const std::size_t next : edges[cur]) {
        if (!seen[next]) {
          seen[next] = true;
          queue.push_back(next);
        }
      }
    }
    std::sort(index.visibility_[f].begin(), index.visibility_[f].end());
  }

  index.names_.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    index.names_[f] = collect_names(index.files_[f].code);
  }

  // Function definitions + per-function call sites and lambda locals.
  for (std::size_t f = 0; f < n; ++f) {
    const std::vector<Token>& code = index.files_[f].code;
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
      if (!is_ident(code[i]) || kNotCallable.count(code[i].text) > 0 ||
          !is_punct(code[i + 1], "(")) {
        continue;
      }
      // A member-access receiver or `new T(...)` cannot open a definition.
      if (i > 0 && (is_punct(code[i - 1], ".") || is_punct(code[i - 1], "->") ||
                    is_ident(code[i - 1], "new") ||
                    is_ident(code[i - 1], "return"))) {
        continue;
      }
      const std::size_t body = definition_body(code, i);
      if (body == npos) continue;
      const std::size_t body_end = match_balanced(code, body);
      if (body_end >= code.size()) continue;

      FunctionDef def;
      def.name = std::string(code[i].text);
      def.file = f;
      def.line = code[i].line;
      def.body_begin = body;
      def.body_end = body_end;
      // Qualified name: walk back over `ident ::` pairs and a destructor `~`.
      std::size_t first = i;
      if (first > 0 && is_punct(code[first - 1], "~")) {
        def.name = "~" + def.name;
        --first;
      }
      std::string qualified = def.name;
      while (first >= 2 && is_punct(code[first - 1], "::") &&
             is_ident(code[first - 2])) {
        qualified = std::string(code[first - 2].text) + "::" + qualified;
        first -= 2;
      }
      def.qualified = std::move(qualified);
      index.functions_.push_back(std::move(def));
    }
  }

  index.calls_.resize(index.functions_.size());
  index.lambda_locals_.resize(index.functions_.size());
  for (std::size_t fn = 0; fn < index.functions_.size(); ++fn) {
    const FunctionDef& def = index.functions_[fn];
    const std::vector<Token>& code = index.files_[def.file].code;
    for (std::size_t k = def.body_begin + 1; k < def.body_end; ++k) {
      if (!is_ident(code[k])) continue;
      // `auto name = [...]`: a local lambda binding, not an external call.
      if (is_ident(code[k], "auto")) {
        std::size_t j = skip_declarator_prefix(code, k + 1);
        if (j + 2 < def.body_end && is_ident(code[j]) &&
            is_punct(code[j + 1], "=") && is_punct(code[j + 2], "[")) {
          index.lambda_locals_[fn].insert(std::string(code[j].text));
        }
        continue;
      }
      if (kNotCallable.count(code[k].text) > 0) continue;
      std::size_t open = k + 1;
      if (open < def.body_end && is_punct(code[open], "<")) {
        const std::size_t after = skip_template_args(code, open);
        if (after == open || after >= def.body_end ||
            !is_punct(code[after], "(")) {
          continue;
        }
        open = after;
      }
      if (open >= def.body_end || !is_punct(code[open], "(")) continue;
      CallSite call;
      call.name = std::string(code[k].text);
      call.line = code[k].line;
      call.token = k;
      call.global_qualified = k >= 1 && is_punct(code[k - 1], "::") &&
                              (k < 2 || !is_ident(code[k - 2]));
      index.calls_[fn].push_back(std::move(call));
    }
  }

  for (std::size_t fn = 0; fn < index.functions_.size(); ++fn) {
    index.by_name_[index.functions_[fn].name].push_back(fn);
  }
  return index;
}

const std::vector<std::size_t>& SymbolIndex::functions_named(
    std::string_view name) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kEmpty : it->second;
}

std::size_t SymbolIndex::enclosing_function(std::size_t file,
                                            std::size_t tok) const {
  std::size_t best = npos;
  std::size_t best_span = static_cast<std::size_t>(-1);
  for (std::size_t fn = 0; fn < functions_.size(); ++fn) {
    const FunctionDef& def = functions_[fn];
    if (def.file != file || tok <= def.body_begin || tok >= def.body_end) {
      continue;
    }
    const std::size_t span = def.body_end - def.body_begin;
    if (span < best_span) {
      best_span = span;
      best = fn;
    }
  }
  return best;
}

NameTable SymbolIndex::visible_names(std::size_t file) const {
  NameTable table = names_[file];
  for (const std::size_t other : visibility_[file]) {
    if (other != file) table.merge(names_[other]);
  }
  return table;
}

}  // namespace itm::lint
