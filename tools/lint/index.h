// Pass 1 of itm-lint: a lightweight cross-translation-unit symbol index.
//
// The index is what turned itm-lint from a file-local token scanner into a
// whole-tree analyzer (DESIGN.md decision #12). It is still deliberately
// AST-free — everything is name-level over the lexer's token stream — but it
// now knows three things the token-level rules could not:
//
//   * Include closure. `#include "x/y.h"` directives are resolved against
//     the scan set (suffix match) and closed transitively, so a declaration
//     in a header is visible exactly to the files that can actually see it,
//     not to the whole tree. This is what killed the nondet-iteration
//     false positives from unrelated files reusing a member name.
//   * Function definitions. Every `name(...) { ... }` body in the tree,
//     with its qualified name, file, line, and token span. Lambda bodies
//     are attributed to their enclosing function (they execute on its
//     behalf), and `auto f = [...]` locals are recorded so a call to a
//     local lambda is not mistaken for an external library call.
//   * A name-level call graph. Each call site inside a function body is an
//     edge to every definition sharing the callee's base name; `::name(...)`
//     global-qualified calls are classified as external (libc). Reachability
//     queries over this graph power the signal-safety, determinism-taint
//     and executor-reentrancy rule families in graph_rules.cpp.
//
// Name-level resolution over-approximates (one name, many defs), which is
// the correct bias for a gate: a rule fires on the union of what the name
// could mean, and scoping (include closure, receiver types, local decls)
// trims the union where it provably cannot apply.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace itm::lint {

// Identifiers declared with a type the rules care about. Built per file and
// widened with the declarations of every header in the file's include
// closure (headers are the only cross-file visibility channel).
struct NameTable {
  std::set<std::string> unordered;   // unordered_{map,set,...} declarations
  std::set<std::string> rng;         // itm::Rng
  std::set<std::string> floats;      // float / double
  std::set<std::string> bytewriter;  // serve::ByteWriter
  std::set<std::string> bytereader;  // serve::ByteReader
  std::set<std::string> quantile;    // obs::QuantileHistogram
  std::set<std::string> atomics;     // std::atomic<...>

  void merge(const NameTable& other);
};

// One tokenization of one file, shared by every pass so no file is lexed
// twice.
struct FileTokens {
  std::string path;
  std::vector<Token> raw;   // comments included (suppression scanning)
  std::vector<Token> code;  // comments/EOF stripped (all rule logic)
  std::vector<std::string> includes;  // quoted #include paths, as written
};

struct FunctionDef {
  std::string name;       // base identifier ("flush_from_signal")
  std::string qualified;  // as written ("FlightRecorder::flush_from_signal")
  std::size_t file = 0;   // index into SymbolIndex::files()
  std::size_t line = 0;   // line of the name token
  std::size_t body_begin = 0;  // code-token index of the body '{'
  std::size_t body_end = 0;    // code-token index of the matching '}'
};

struct CallSite {
  std::string name;  // callee base identifier
  std::size_t line = 0;
  std::size_t token = 0;          // code-token index of the callee ident
  bool global_qualified = false;  // written `::name(...)` — external by fiat
};

class SymbolIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] static SymbolIndex build(const std::vector<SourceFile>& files);

  [[nodiscard]] const std::vector<FileTokens>& files() const { return files_; }
  [[nodiscard]] const std::vector<FunctionDef>& functions() const {
    return functions_;
  }
  [[nodiscard]] const std::vector<CallSite>& calls_of(std::size_t fn) const {
    return calls_[fn];
  }
  // Names bound to lambdas inside the function (`auto emit = [...]`): calls
  // to them are internal — the lambda body is already part of this function.
  [[nodiscard]] const std::set<std::string>& lambda_locals_of(
      std::size_t fn) const {
    return lambda_locals_[fn];
  }

  // Definitions sharing a base name; empty for external symbols.
  [[nodiscard]] const std::vector<std::size_t>& functions_named(
      std::string_view name) const;

  // Innermost function whose body span contains code-token `tok` of `file`;
  // npos at namespace scope.
  [[nodiscard]] std::size_t enclosing_function(std::size_t file,
                                               std::size_t tok) const;

  // File indices visible from `file`: itself plus the transitive closure of
  // its quoted includes resolved within the scan set.
  [[nodiscard]] const std::vector<std::size_t>& visible_files(
      std::size_t file) const {
    return visibility_[file];
  }

  // Per-file declarations; the effective table for linting `file` is its own
  // table merged with the tables of every visible header.
  [[nodiscard]] const NameTable& names_of(std::size_t file) const {
    return names_[file];
  }
  [[nodiscard]] NameTable visible_names(std::size_t file) const;

 private:
  std::vector<FileTokens> files_;
  std::vector<FunctionDef> functions_;
  std::vector<std::vector<CallSite>> calls_;        // per function
  std::vector<std::set<std::string>> lambda_locals_;  // per function
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_name_;
  std::vector<std::vector<std::size_t>> visibility_;  // per file, sorted
  std::vector<NameTable> names_;                      // per file
};

// Shared token helpers (defined in index.cpp, used by every rule pass).
// is_callable_name: false for control keywords, casts and `operator` — the
// identifiers that look like `name(` but can never be a callee.
[[nodiscard]] bool is_callable_name(std::string_view name);
[[nodiscard]] bool is_punct(const Token& t, std::string_view p);
[[nodiscard]] bool is_ident(const Token& t, std::string_view name);
[[nodiscard]] bool is_ident(const Token& t);
[[nodiscard]] std::size_t match_balanced(const std::vector<Token>& toks,
                                         std::size_t open);
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& toks,
                                             std::size_t i);

}  // namespace itm::lint
