// Pass 2, graph family: rules that need the cross-TU symbol index — call
// graph reachability (signal-safety, executor-reentrancy), interprocedural
// name-level dataflow (determinism-taint) and cross-file sequence pairing
// (format-pairing). File-local token rules stay in lint.cpp.
//
// Every function appends raw (unsuppressed) diagnostics to `sink`;
// lint_sources applies the shared suppression pass afterwards, so an
// `itm-lint: allow(<rule>)` comment works the same for graph rules as for
// token rules. `visible` is the per-file effective name table (own
// declarations plus the include closure), indexed like SymbolIndex::files().
#pragma once

#include <vector>

#include "index.h"

namespace itm::lint {

// No function reachable from a registered signal/terminate handler
// (sa_handler/sa_sigaction assignment, set_terminate(f), signal(sig, f))
// may allocate, lock, throw, or touch stdio; external calls must be on the
// async-signal-safe allowlist.
void rule_signal_safety(const SymbolIndex& index,
                        std::vector<Diagnostic>& sink);

// Wall-clock-derived values (Stopwatch reads, RSS probes, QuantileHistogram
// reads) must not flow into kDeterministic metric registrations or into
// ByteWriter snapshot payloads. obs::deterministic_cast(v) is the sanctioned
// escape hatch; passing Determinism::kWallClock sanctions the registration.
void rule_determinism_taint(const SymbolIndex& index,
                            const std::vector<NameTable>& visible,
                            std::vector<Diagnostic>& sink);

// No call path from inside an Executor::parallel_for / parallel_map /
// map_shards callback may re-enter one of those entry points: a worker
// blocking on a child batch deadlocks the pool (net/executor.h contract).
void rule_executor_reentrancy(const SymbolIndex& index,
                              std::vector<Diagnostic>& sink);

// The flattened ByteWriter call sequence feeding write_section(...,
// SectionId::kX, ...) must mirror the ByteReader call sequence of the parse
// function consuming payload(SectionId::kX) — the `.itms` ABI-drift gate.
void rule_format_pairing(const SymbolIndex& index,
                         const std::vector<NameTable>& visible,
                         std::vector<Diagnostic>& sink);

}  // namespace itm::lint
