#include "lexer.h"

#include <cctype>

namespace itm::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

// Multi-character punctuators, longest first so max-munch works by ordered
// probing. `::` must be one token (range-for detection keys on a bare `:`),
// and `>>` must be one token (template-argument skipping closes two depths).
constexpr std::string_view kPuncts[] = {
    "<=>", "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",  "##",
};

// Length of an encoding prefix (u8, u, U, L, optionally followed by R for a
// raw string) glued to a quote at `rest[len]`; 0 when `rest` does not start
// a prefixed literal. The bare-R raw string reports length 1.
std::size_t literal_prefix_len(std::string_view rest) {
  std::size_t len = 0;
  if (rest.starts_with("u8")) {
    len = 2;
  } else if (!rest.empty() &&
             (rest[0] == 'u' || rest[0] == 'U' || rest[0] == 'L')) {
    len = 1;
  }
  if (len < rest.size() && rest[len] == 'R') ++len;
  if (len >= rest.size() || (rest[len] != '"' && rest[len] != '\'')) {
    // Not a literal prefix unless it ends exactly at a quote — but a lone R
    // before `"` is the classic raw-string form.
    return !rest.empty() && rest[0] == 'R' && rest.size() > 1 &&
                   rest[1] == '"'
               ? 1
               : 0;
  }
  return len;
}

// Consumes a user-defined literal suffix ("x"_kb, 10'000_rows handled by the
// pp-number path) directly attached to a just-lexed literal: the suffix is
// part of the literal token, never a phantom identifier a rule could match.
void consume_udl_suffix(std::string_view src, std::size_t& i) {
  if (i < src.size() && ident_start(src[i])) {
    while (i < src.size() && ident_char(src[i])) ++i;
  }
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = src.size();

  const auto advance_lines = [&](std::string_view text) {
    for (const char c : text) {
      if (c == '\n') ++line;
    }
  };
  const auto push = [&](TokKind kind, std::size_t begin, std::size_t end,
                        std::size_t at_line) {
    out.push_back(Token{kind, src.substr(begin, end - begin), at_line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    const std::size_t start_line = line;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      push(TokKind::kComment, start, i, start_line);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      i = i + 1 < n ? i + 2 : n;
      push(TokKind::kComment, start, i, start_line);
      advance_lines(src.substr(start, i - start));
      continue;
    }

    // Encoding prefixes make a literal: u8R"(..)", LR"(..)", u"..", L'x'.
    // The prefix must glue directly onto the quote, otherwise it is an
    // ordinary identifier.
    const std::size_t prefix = literal_prefix_len(src.substr(i));

    // Raw strings: [prefix]R"delim( ... )delim".
    if (prefix > 0 && src[i + prefix - 1] == 'R' && i + prefix < n &&
        src[i + prefix] == '"') {
      std::size_t d = i + prefix + 1;
      while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n') ++d;
      if (d < n && src[d] == '(') {
        const std::string close =
            ")" + std::string(src.substr(i + prefix + 1, d - (i + prefix + 1))) +
            "\"";
        const std::size_t end = src.find(close, d + 1);
        i = end == std::string_view::npos ? n : end + close.size();
        consume_udl_suffix(src, i);
        push(TokKind::kString, start, i, start_line);
        advance_lines(src.substr(start, i - start));
        continue;
      }
    }

    // String / char literals (escape-aware), with optional encoding prefix
    // and user-defined literal suffix ("x"_sv, 'c'_u, u8"y"sv).
    if (c == '"' || c == '\'' ||
        (prefix > 0 && i + prefix < n &&
         (src[i + prefix] == '"' || src[i + prefix] == '\''))) {
      i += prefix;
      const char quote = src[i];
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      consume_udl_suffix(src, i);
      push(TokKind::kString, start, i, start_line);
      continue;
    }

    if (ident_start(c)) {
      while (i < n && ident_char(src[i])) ++i;
      push(TokKind::kIdentifier, start, i, start_line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      // pp-number: good enough for 0x1p-3, 1'000'000, 1e+9, 0b1010ull.
      ++i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      push(TokKind::kNumber, start, i, start_line);
      continue;
    }

    // Punctuation, longest match first.
    std::size_t len = 1;
    for (const std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        len = p.size();
        break;
      }
    }
    i += len;
    push(TokKind::kPunct, start, i, start_line);
  }

  out.push_back(Token{TokKind::kEof, src.substr(n, 0), line});
  return out;
}

}  // namespace itm::lint
