#include "lexer.h"

#include <cctype>

namespace itm::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

// Multi-character punctuators, longest first so max-munch works by ordered
// probing. `::` must be one token (range-for detection keys on a bare `:`),
// and `>>` must be one token (template-argument skipping closes two depths).
constexpr std::string_view kPuncts[] = {
    "<=>", "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",  "##",
};

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = src.size();

  const auto advance_lines = [&](std::string_view text) {
    for (const char c : text) {
      if (c == '\n') ++line;
    }
  };
  const auto push = [&](TokKind kind, std::size_t begin, std::size_t end,
                        std::size_t at_line) {
    out.push_back(Token{kind, src.substr(begin, end - begin), at_line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    const std::size_t start_line = line;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      push(TokKind::kComment, start, i, start_line);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      i = i + 1 < n ? i + 2 : n;
      push(TokKind::kComment, start, i, start_line);
      advance_lines(src.substr(start, i - start));
      continue;
    }

    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n') ++d;
      if (d < n && src[d] == '(') {
        const std::string close =
            ")" + std::string(src.substr(i + 2, d - (i + 2))) + "\"";
        const std::size_t end = src.find(close, d + 1);
        i = end == std::string_view::npos ? n : end + close.size();
        push(TokKind::kString, start, i, start_line);
        advance_lines(src.substr(start, i - start));
        continue;
      }
    }

    // String / char literals (escape-aware).
    if (c == '"' || c == '\'') {
      ++i;
      while (i < n && src[i] != c) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      push(TokKind::kString, start, i, start_line);
      continue;
    }

    if (ident_start(c)) {
      while (i < n && ident_char(src[i])) ++i;
      push(TokKind::kIdentifier, start, i, start_line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      // pp-number: good enough for 0x1p-3, 1'000'000, 1e+9, 0b1010ull.
      ++i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      push(TokKind::kNumber, start, i, start_line);
      continue;
    }

    // Punctuation, longest match first.
    std::size_t len = 1;
    for (const std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        len = p.size();
        break;
      }
    }
    i += len;
    push(TokKind::kPunct, start, i, start_line);
  }

  out.push_back(Token{TokKind::kEof, src.substr(n, 0), line});
  return out;
}

}  // namespace itm::lint
