#include "lint.h"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "graph_rules.h"
#include "index.h"
#include "lexer.h"

namespace itm::lint {

namespace {

constexpr std::string_view kRuleNondetIteration = "nondet-iteration";
constexpr std::string_view kRuleBannedSources = "banned-nondet-sources";
constexpr std::string_view kRuleRngDiscipline = "rng-discipline";
constexpr std::string_view kRuleExecutorCapture = "executor-capture";
constexpr std::string_view kRuleFloatReduction = "float-reduction-order";
constexpr std::string_view kRuleStaleSuppression = "stale-suppression";
constexpr std::string_view kRuleMetricName = "metric-name-format";
constexpr std::string_view kRuleSignalSafety = "signal-safety";
constexpr std::string_view kRuleDeterminismTaint = "determinism-taint";
constexpr std::string_view kRuleExecutorReentrancy = "executor-reentrancy";
constexpr std::string_view kRuleFormatPairing = "format-pairing";

const std::set<std::string_view> kKnownRules = {
    kRuleNondetIteration,  kRuleBannedSources,      kRuleRngDiscipline,
    kRuleExecutorCapture,  kRuleFloatReduction,     kRuleMetricName,
    kRuleSignalSafety,     kRuleDeterminismTaint,   kRuleExecutorReentrancy,
    kRuleFormatPairing,
};

// Clock identifiers are banned in deterministic stages; src/obs/ owns wall
// time by design (DESIGN.md decision #7), so it is allowlisted wholesale.
const std::set<std::string_view> kBannedClocks = {
    "system_clock", "steady_clock", "high_resolution_clock"};

// All randomness must flow through itm::Rng: <random> engines and
// distributions differ across standard libraries, random_device is
// nondeterministic by definition.
const std::set<std::string_view> kBannedRandom = {
    "rand",
    "srand",
    "random_device",
    "mt19937",
    "mt19937_64",
    "default_random_engine",
    "minstd_rand",
    "minstd_rand0",
    "ranlux24",
    "ranlux48",
    "knuth_b",
    "uniform_int_distribution",
    "uniform_real_distribution",
    "normal_distribution",
    "bernoulli_distribution",
    "poisson_distribution",
    "geometric_distribution",
    "exponential_distribution",
    "discrete_distribution",
    "piecewise_constant_distribution",
};

const std::set<std::string_view> kBannedEnv = {"getenv", "secure_getenv"};

// Rng methods that advance generator state. split() is absent on purpose:
// deriving a child stream is the sanctioned pattern inside parallel code.
const std::set<std::string_view> kRngConsumingMethods = {
    "next_u64",    "next_below",  "uniform_int", "uniform",
    "bernoulli",   "normal",      "lognormal",   "exponential",
    "pareto",      "poisson",     "weighted_index", "shuffle",
    "sample_indices", "reseed",
};

// Container/object mutations that are racy (and order-dependent) when the
// receiver is shared across executor shards.
const std::set<std::string_view> kMutatingMethods = {
    "push_back", "emplace_back", "pop_back", "insert",  "emplace",
    "try_emplace", "erase",      "clear",    "resize",  "assign",
    "merge",     "swap",         "reset",    "push",    "pop",
};

const std::set<std::string_view> kAssignOps = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

// Read-modify-write operators that commute, so shard interleaving cannot
// change the result when the receiver is a std::atomic (the same doctrine
// obs::Counter is built on: commutative integer ops, relaxed order).
const std::set<std::string_view> kCommutativeOps = {"++", "--", "+=", "-=",
                                                    "&=", "|=", "^="};

const std::set<std::string_view> kExecutorEntryPoints = {
    "parallel_for", "parallel_map", "map_shards"};

struct Suppression {
  std::size_t line = 0;
  std::string rule;
  bool used = false;
};

double monotonic_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

// ---------------------------------------------------------------------------
// Lambda model for the executor rules.

struct LambdaInfo {
  bool default_ref_capture = false;
  bool default_copy_capture = false;
  std::size_t bracket_line = 0;            // line of the `[`
  std::set<std::string> ref_captures;      // explicit &name
  std::set<std::string> copy_captures;     // explicit name / init-captures
  std::size_t body_begin = 0;              // index of `{`
  std::size_t body_end = 0;                // index of matching `}`
};

// True when `[` at toks[i] starts a lambda rather than a subscript: a
// subscript's `[` follows a value (identifier, `)`, `]`, literal).
bool starts_lambda(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kIdentifier || prev.kind == TokKind::kNumber ||
      prev.kind == TokKind::kString) {
    return false;
  }
  return !(is_punct(prev, ")") || is_punct(prev, "]"));
}

// Parses the lambda whose `[` is at toks[i]; returns false if it has no
// body we can find (e.g. an attribute or array-new expression).
bool parse_lambda(const std::vector<Token>& toks, std::size_t i,
                  LambdaInfo& out) {
  const std::size_t cap_end = match_balanced(toks, i);
  if (cap_end >= toks.size()) return false;
  out.bracket_line = toks[i].line;
  // Capture items, comma-separated at depth 0.
  std::size_t j = i + 1;
  while (j < cap_end) {
    if (is_punct(toks[j], "&")) {
      if (j + 1 < cap_end && is_ident(toks[j + 1])) {
        out.ref_captures.insert(std::string(toks[j + 1].text));
        j += 2;
      } else {
        out.default_ref_capture = true;
        ++j;
      }
    } else if (is_punct(toks[j], "=")) {
      out.default_copy_capture = true;
      ++j;
    } else if (is_ident(toks[j]) && toks[j].text != "this") {
      out.copy_captures.insert(std::string(toks[j].text));
      ++j;
    } else {
      ++j;
    }
    // Skip the remainder of this capture item (init-captures etc.).
    int depth = 0;
    while (j < cap_end) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "{") ||
          is_punct(toks[j], "[")) {
        ++depth;
      } else if (is_punct(toks[j], ")") || is_punct(toks[j], "}") ||
                 is_punct(toks[j], "]")) {
        --depth;
      } else if (depth == 0 && is_punct(toks[j], ",")) {
        ++j;
        break;
      }
      ++j;
    }
  }
  // Parameters (optional), then anything up to the body brace.
  j = cap_end + 1;
  if (j < toks.size() && is_punct(toks[j], "(")) {
    j = match_balanced(toks, j) + 1;
  }
  while (j < toks.size() && !is_punct(toks[j], "{")) {
    // A `;` or `)` before `{` means this bracket was not a lambda.
    if (is_punct(toks[j], ";") || is_punct(toks[j], ")")) return false;
    ++j;
  }
  if (j >= toks.size()) return false;
  out.body_begin = j;
  out.body_end = match_balanced(toks, j);
  return out.body_end < toks.size();
}

// Declarator decorations between a type and its name (const, &, *, &&).
std::size_t skip_decl_prefix(const std::vector<Token>& toks, std::size_t i) {
  while (i < toks.size() &&
         (is_ident(toks[i], "const") || is_punct(toks[i], "&") ||
          is_punct(toks[i], "*") || is_punct(toks[i], "&&"))) {
    ++i;
  }
  return i;
}

// Names declared with the given type keyword inside [begin, end) — used to
// exempt shard-local variables from the capture rules.
std::set<std::string> local_decls_of(const std::vector<Token>& toks,
                                     std::size_t begin, std::size_t end,
                                     const std::set<std::string_view>& types) {
  std::set<std::string> out;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (is_ident(toks[i]) && types.count(toks[i].text) > 0) {
      std::size_t j = skip_decl_prefix(toks, i + 1);
      if (j < end && is_ident(toks[j])) out.insert(std::string(toks[j].text));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------

// Token-level rules for one file, reading names through the file's visible
// table (its own declarations plus its include closure). Diagnostics go
// straight to the shared raw sink; suppressions are applied globally after
// every rule family has run.
class FileLinter {
 public:
  FileLinter(const SymbolIndex& index, std::size_t file,
             const NameTable& table, std::vector<Diagnostic>& sink)
      : index_(index),
        file_(file),
        path_(index.files()[file].path),
        code_(index.files()[file].code),
        table_(table),
        sink_(sink) {}

  // --- banned-nondet-sources -----------------------------------------------
  void rule_banned_sources() {
    const bool obs_wallclock_allowed =
        path_.find("src/obs/") != std::string::npos;
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (!is_ident(t)) continue;
      if (kBannedClocks.count(t.text) > 0 && !obs_wallclock_allowed) {
        report(t.line, kRuleBannedSources,
               "'" + std::string(t.text) +
                   "' is wall-clock: deterministic stages must use SimTime; "
                   "wall time belongs to itm::obs spans");
      } else if (kBannedRandom.count(t.text) > 0) {
        report(t.line, kRuleBannedSources,
               "'" + std::string(t.text) +
                   "' bypasses itm::Rng: all randomness must derive from the "
                   "scenario seed via Rng/Rng::split");
      } else if (kBannedEnv.count(t.text) > 0) {
        report(t.line, kRuleBannedSources,
               "'" + std::string(t.text) +
                   "' reads ambient process state inside a deterministic "
                   "stage; plumb configuration through options structs");
      } else if (t.text == "hash" && i + 1 < code_.size() &&
                 is_punct(code_[i + 1], "<")) {
        const std::size_t after = skip_template_args(code_, i + 1);
        for (std::size_t j = i + 2; j + 1 < after; ++j) {
          if (is_punct(code_[j], "*")) {
            report(t.line, kRuleBannedSources,
                   "hashing a pointer value: pointer identity varies run to "
                   "run (ASLR); hash a stable id instead");
            break;
          }
        }
      }
    }
  }

  // --- nondet-iteration ----------------------------------------------------
  void rule_nondet_iteration() {
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
      if (!is_ident(code_[i], "for") || !is_punct(code_[i + 1], "(")) continue;
      const std::size_t close = match_balanced(code_, i + 1);
      if (close >= code_.size()) continue;
      // Find the range-for `:` at paren depth 1 (a `;` first means a
      // classic for loop).
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(code_[j], "(") || is_punct(code_[j], "{") ||
            is_punct(code_[j], "[")) {
          ++depth;
        } else if (is_punct(code_[j], ")") || is_punct(code_[j], "}") ||
                   is_punct(code_[j], "]")) {
          --depth;
        } else if (depth == 1 && is_punct(code_[j], ";")) {
          break;
        } else if (depth == 1 && is_punct(code_[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      // An identifier of unordered type anywhere in the range expression —
      // unless it is wrapped in one of net/ordered.h's sorted snapshots.
      std::string culprit;
      std::size_t culprit_tok = 0;
      bool ordered_wrapper = false;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (!is_ident(code_[j])) continue;
        if (code_[j].text == "sorted_items" ||
            code_[j].text == "sorted_keys") {
          ordered_wrapper = true;
          break;
        }
        if (culprit.empty() &&
            table_.unordered.count(std::string(code_[j].text)) > 0) {
          culprit = std::string(code_[j].text);
          culprit_tok = j;
        }
      }
      if (ordered_wrapper) continue;
      if (culprit.empty()) continue;
      if (local_ordered_decl(culprit, culprit_tok)) continue;
      if (sorted_after_loop(i, close)) continue;
      report(code_[i].line, kRuleNondetIteration,
             "range-for over unordered container '" + culprit +
                 "': iteration order is a hash-layout accident; iterate a "
                 "sorted copy (or sort what this loop builds) before it can "
                 "feed outputs or merges");
    }
  }

  // The unordered name may be shadowed by a local `auto` declaration whose
  // initializer involves nothing unordered (`const auto* series =
  // activity.series_of(asn);`): the local provably holds an ordered value,
  // so the member name from an included header does not apply here.
  bool local_ordered_decl(const std::string& name, std::size_t use_tok) {
    const std::size_t fn = index_.enclosing_function(file_, use_tok);
    if (fn == SymbolIndex::npos) return false;
    const FunctionDef& def = index_.functions()[fn];
    for (std::size_t k = def.body_begin + 1; k < use_tok; ++k) {
      if (!is_ident(code_[k], "auto")) continue;
      std::size_t j = skip_decl_prefix(code_, k + 1);
      if (j >= use_tok || !is_ident(code_[j], name) ||
          !is_punct(code_[j + 1], "=")) {
        continue;
      }
      bool unordered_init = false;
      for (std::size_t m = j + 2; m < use_tok && !is_punct(code_[m], ";");
           ++m) {
        if (is_ident(code_[m]) &&
            table_.unordered.count(std::string(code_[m].text)) > 0) {
          unordered_init = true;
          break;
        }
      }
      if (!unordered_init) return true;
    }
    return false;
  }

  // True when everything the loop body push_backs into is std::sort-ed
  // within the following window — the sanctioned snapshot-then-sort idiom.
  bool sorted_after_loop(std::size_t for_idx, std::size_t paren_close) {
    std::size_t body_begin = paren_close + 1;
    if (body_begin >= code_.size()) return false;
    std::size_t body_end;
    if (is_punct(code_[body_begin], "{")) {
      body_end = match_balanced(code_, body_begin);
    } else {
      body_end = body_begin;
      while (body_end < code_.size() && !is_punct(code_[body_end], ";")) {
        ++body_end;
      }
    }
    if (body_end >= code_.size()) return false;
    (void)for_idx;
    std::set<std::string> pushed;
    for (std::size_t j = body_begin; j + 3 < body_end; ++j) {
      if (is_ident(code_[j]) && is_punct(code_[j + 1], ".") &&
          (is_ident(code_[j + 2], "push_back") ||
           is_ident(code_[j + 2], "emplace_back")) &&
          is_punct(code_[j + 3], "(")) {
        pushed.insert(std::string(code_[j].text));
      }
    }
    if (pushed.empty()) return false;
    // Look ahead a bounded window for a sort of a pushed container:
    // `sort(...X.begin...)` with X within a few tokens of the call (handles
    // member chains like `sort(impact.services.begin(), ...)`).
    const std::size_t limit = std::min(code_.size(), body_end + 400);
    for (std::size_t j = body_end; j + 1 < limit; ++j) {
      if (!(is_ident(code_[j], "sort") || is_ident(code_[j], "stable_sort")) ||
          !is_punct(code_[j + 1], "(")) {
        continue;
      }
      const std::size_t probe_end = std::min(limit, j + 10);
      for (std::size_t p = j + 2; p + 2 < probe_end; ++p) {
        if (is_ident(code_[p]) &&
            pushed.count(std::string(code_[p].text)) > 0 &&
            is_punct(code_[p + 1], ".") && is_ident(code_[p + 2], "begin")) {
          return true;
        }
      }
    }
    return false;
  }

  // --- metric-name-format --------------------------------------------------
  // Metric and span names are a flat namespace shared across the whole
  // pipeline, dumped into JSON keys and diffed by tools: they must be
  // lowercase dotted identifiers ([a-z0-9_.]+). Only obs call sites with a
  // string-literal first argument are checked — bare `count`/`observe`
  // collide with std names, so the free functions require `obs::`
  // qualification and the registry methods a `.`/`->` receiver.
  void rule_metric_names() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (!is_ident(t)) continue;
      bool site = false;
      if (t.text == "count" || t.text == "gauge_set" ||
          t.text == "gauge_max" || t.text == "observe" ||
          t.text == "observe_quantile") {
        site = i >= 2 && is_punct(code_[i - 1], "::") &&
               is_ident(code_[i - 2], "obs");
      } else if (t.text == "counter" || t.text == "gauge" ||
                 t.text == "histogram" || t.text == "quantile") {
        site = i >= 1 && (is_punct(code_[i - 1], ".") ||
                          is_punct(code_[i - 1], "->"));
      } else if (t.text == "Span" || t.text == "StageScope") {
        site = true;
      }
      // The name literal is the first ( argument; RAII declarations put the
      // variable identifier between the type and the paren (Span s("x")).
      std::size_t open = i + 1;
      if (site && (t.text == "Span" || t.text == "StageScope") &&
          open < code_.size() && is_ident(code_[open])) {
        ++open;
      }
      if (!site || open + 1 >= code_.size() || !is_punct(code_[open], "(") ||
          code_[open + 1].kind != TokKind::kString) {
        continue;
      }
      std::string_view name = code_[open + 1].text;  // quotes included
      if (name.size() < 2 || name.front() != '"' || name.back() != '"') {
        continue;  // char/raw literal — not a metric name
      }
      name = name.substr(1, name.size() - 2);
      const bool ok =
          !name.empty() && std::all_of(name.begin(), name.end(), [](char c) {
            return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   c == '_' || c == '.';
          });
      if (!ok) {
        report(code_[open + 1].line, kRuleMetricName,
               "metric/span name \"" + std::string(name) +
                   "\" must match [a-z0-9_.]+ — one flat lowercase dotted "
                   "namespace keeps exports greppable and diffable");
      }
    }
  }

  // --- rng-discipline / executor-capture / float-reduction-order -----------
  void rule_executor_lambdas() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(code_[i]) ||
          kExecutorEntryPoints.count(code_[i].text) == 0) {
        continue;
      }
      std::size_t j = skip_template_args(code_, i + 1);
      if (j >= code_.size() || !is_punct(code_[j], "(")) continue;
      const std::size_t args_end = match_balanced(code_, j);
      if (args_end >= code_.size()) continue;
      for (std::size_t k = j + 1; k < args_end; ++k) {
        if (!is_punct(code_[k], "[") || !starts_lambda(code_, k)) continue;
        LambdaInfo lambda;
        if (!parse_lambda(code_, k, lambda)) continue;
        check_executor_lambda(lambda);
        k = lambda.body_end;  // don't rescan inside this lambda
      }
      i = args_end;
    }
  }

 private:
  void report(std::size_t line, std::string_view rule, std::string message) {
    sink_.push_back(
        Diagnostic{path_, line, std::string(rule), std::move(message)});
  }

  bool captured_by_ref(const LambdaInfo& l, const std::string& name) const {
    return l.ref_captures.count(name) > 0 || l.default_ref_capture;
  }

  bool is_atomic(const std::string& name) const {
    return table_.atomics.count(name) > 0;
  }

  void check_executor_lambda(const LambdaInfo& lambda) {
    if (lambda.default_ref_capture) {
      report(lambda.bracket_line, kRuleExecutorCapture,
             "default [&] capture in an executor lambda hides shared mutable "
             "state; list every capture explicitly");
    }
    const auto local_rngs =
        local_decls_of(code_, lambda.body_begin, lambda.body_end, {"Rng"});
    const auto local_floats = local_decls_of(
        code_, lambda.body_begin, lambda.body_end, {"double", "float"});
    for (std::size_t i = lambda.body_begin + 1; i < lambda.body_end; ++i) {
      if (!is_ident(code_[i])) continue;
      const std::string name(code_[i].text);
      // Skip member accesses (`x.name`): only the receiver is checked.
      if (i > 0 && (is_punct(code_[i - 1], ".") ||
                    is_punct(code_[i - 1], "->"))) {
        continue;
      }
      const Token* next = i + 1 < lambda.body_end ? &code_[i + 1] : nullptr;
      if (next == nullptr) continue;

      // rng-discipline: consuming a shared generator from a shard.
      if (table_.rng.count(name) > 0 && local_rngs.count(name) == 0 &&
          captured_by_ref(lambda, name) && is_punct(*next, ".") &&
          i + 2 < lambda.body_end && is_ident(code_[i + 2]) &&
          kRngConsumingMethods.count(code_[i + 2].text) > 0) {
        report(code_[i].line, kRuleRngDiscipline,
               "shared Rng '" + name + "' consumed ('" +
                   std::string(code_[i + 2].text) +
                   "') inside an executor lambda: draws depend on shard "
                   "interleaving; derive a per-item stream with Rng::split");
        continue;
      }

      // Mutations of by-ref captured names that are not per-slot writes.
      if (!captured_by_ref(lambda, name) ||
          table_.rng.count(name) > 0) {
        continue;
      }
      if (is_punct(*next, "[")) continue;  // indexed slot: the contract
      const bool is_float =
          table_.floats.count(name) > 0 && local_floats.count(name) == 0;
      // Walk a member chain (`x.a.b`) to the operation that applies to it.
      std::size_t op = i + 1;
      while (op + 1 < lambda.body_end && is_punct(code_[op], ".") &&
             is_ident(code_[op + 1])) {
        const std::string_view member = code_[op + 1].text;
        if (kMutatingMethods.count(member) > 0 && op + 2 < lambda.body_end &&
            is_punct(code_[op + 2], "(")) {
          report(code_[i].line, kRuleExecutorCapture,
                 "'" + name + "." + std::string(member) +
                     "(...)' mutates state captured by reference in an "
                     "executor lambda: write per-index slots or per-shard "
                     "accumulators merged in shard order");
          op = lambda.body_end;
          break;
        }
        op += 2;
      }
      if (op >= lambda.body_end) continue;
      const Token& op_tok = code_[op];
      const bool direct = op == i + 1;  // operator applies to the bare name
      if (op_tok.kind != TokKind::kPunct) continue;
      if (direct && is_punct(op_tok, "+=") && is_float) {
        report(code_[i].line, kRuleFloatReduction,
               "floating-point '+=' into by-ref captured '" + name +
                   "' inside an executor lambda: float addition is not "
                   "associative, so the sum depends on scheduling; keep a "
                   "per-shard accumulator and merge in shard order");
      } else if (direct && is_atomic(name) &&
                 kCommutativeOps.count(op_tok.text) > 0) {
        // Commutative read-modify-write on a std::atomic: racy-by-design
        // but order-independent, the same contract obs::Counter relies on.
        continue;
      } else if (kAssignOps.count(op_tok.text) > 0 ||
                 is_punct(op_tok, "++") || is_punct(op_tok, "--")) {
        report(code_[i].line, kRuleExecutorCapture,
               "'" + name + " " + std::string(op_tok.text) +
                   "' mutates state captured by reference in an executor "
                   "lambda: a data race and an ordering hazard; write "
                   "per-index slots or per-shard accumulators");
      }
    }
    // Prefix increments of captured names (`++shared`).
    for (std::size_t i = lambda.body_begin + 1; i + 1 < lambda.body_end;
         ++i) {
      if ((is_punct(code_[i], "++") || is_punct(code_[i], "--")) &&
          is_ident(code_[i + 1]) &&
          captured_by_ref(lambda, std::string(code_[i + 1].text)) &&
          !(i > 0 && (is_punct(code_[i - 1], ".") ||
                      is_punct(code_[i - 1], "->")))) {
        // `++x` where x is captured by ref and not followed by `[`;
        // atomics commute under ++/--, so they are exempt by design.
        if (i + 2 < lambda.body_end && is_punct(code_[i + 2], "[")) continue;
        if (is_atomic(std::string(code_[i + 1].text))) continue;
        report(code_[i].line, kRuleExecutorCapture,
               "'" + std::string(code_[i].text) +
                   std::string(code_[i + 1].text) +
                   "' mutates state captured by reference in an executor "
                   "lambda: a data race and an ordering hazard; write "
                   "per-index slots or per-shard accumulators");
      }
    }
  }

  const SymbolIndex& index_;
  std::size_t file_;
  const std::string& path_;
  const std::vector<Token>& code_;
  const NameTable& table_;
  std::vector<Diagnostic>& sink_;
};

// Scans one file's raw tokens (comments included) for `itm-lint: allow(...)`
// comments. Unknown rule names are reported immediately; valid ones are
// returned for the global flush.
std::vector<Suppression> collect_suppressions(const FileTokens& file,
                                              std::vector<Diagnostic>& sink) {
  std::vector<Suppression> out;
  for (const Token& t : file.raw) {
    if (t.kind != TokKind::kComment) continue;
    std::string_view text = t.text;
    std::size_t pos = text.find("itm-lint:");
    while (pos != std::string_view::npos) {
      const std::size_t open = text.find("allow(", pos);
      if (open == std::string_view::npos) break;
      const std::size_t close = text.find(')', open);
      if (close == std::string_view::npos) break;
      std::string_view inner = text.substr(open + 6, close - (open + 6));
      // Comma-separated rule list.
      while (!inner.empty()) {
        const std::size_t comma = inner.find(',');
        std::string_view rule = inner.substr(0, comma);
        while (!rule.empty() && rule.front() == ' ') rule.remove_prefix(1);
        while (!rule.empty() && rule.back() == ' ') rule.remove_suffix(1);
        // Placeholder text in prose (`allow(<rule>)`, `allow(...)`) is
        // not a suppression attempt; only identifier-shaped rules count.
        const bool rule_shaped =
            !rule.empty() && std::all_of(rule.begin(), rule.end(), [](char c) {
              return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                     c == '-' || c == '_';
            });
        if (rule_shaped) {
          if (kKnownRules.count(rule) == 0) {
            sink.push_back(Diagnostic{
                file.path, t.line, std::string(kRuleStaleSuppression),
                "unknown rule '" + std::string(rule) +
                    "' in itm-lint: allow(...)"});
          } else {
            out.push_back(Suppression{t.line, std::string(rule), false});
          }
        }
        if (comma == std::string_view::npos) break;
        inner.remove_prefix(comma + 1);
      }
      pos = text.find("itm-lint:", close);
    }
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::set<std::string_view>& known_rules() { return kKnownRules; }

LintResult lint_sources(const std::vector<SourceFile>& files) {
  LintResult result;
  result.files_scanned = files.size();
  std::vector<Diagnostic> raw;

  const auto timed = [&](std::string_view pass, const auto& body) {
    const double t0 = monotonic_seconds();
    body();
    result.rule_seconds.emplace_back(std::string(pass),
                                     monotonic_seconds() - t0);
  };

  // Pass 1: the symbol index and per-file effective name tables.
  SymbolIndex index;
  std::vector<NameTable> visible;
  timed("index", [&] {
    index = SymbolIndex::build(files);
    visible.resize(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      visible[i] = index.visible_names(i);
    }
  });

  // Pass 2a: file-local token rules.
  const auto per_file = [&](std::string_view pass, const auto& rule) {
    timed(pass, [&] {
      for (std::size_t i = 0; i < files.size(); ++i) {
        FileLinter linter(index, i, visible[i], raw);
        rule(linter);
      }
    });
  };
  per_file(kRuleBannedSources,
           [](FileLinter& l) { l.rule_banned_sources(); });
  per_file(kRuleNondetIteration,
           [](FileLinter& l) { l.rule_nondet_iteration(); });
  per_file("executor-captures",
           [](FileLinter& l) { l.rule_executor_lambdas(); });
  per_file(kRuleMetricName, [](FileLinter& l) { l.rule_metric_names(); });

  // Pass 2b: cross-TU graph rules.
  timed(kRuleSignalSafety, [&] { rule_signal_safety(index, raw); });
  timed(kRuleDeterminismTaint,
        [&] { rule_determinism_taint(index, visible, raw); });
  timed(kRuleExecutorReentrancy,
        [&] { rule_executor_reentrancy(index, raw); });
  timed(kRuleFormatPairing,
        [&] { rule_format_pairing(index, visible, raw); });

  // Global suppression flush, keyed by path so cross-TU diagnostics are
  // suppressible exactly like token-rule ones.
  timed("suppressions", [&] {
    std::map<std::string, std::vector<Suppression>> by_path;
    for (std::size_t i = 0; i < files.size(); ++i) {
      by_path[index.files()[i].path] =
          collect_suppressions(index.files()[i], raw);
    }
    for (Diagnostic& d : raw) {
      bool suppressed = false;
      if (d.rule != kRuleStaleSuppression) {
        const auto it = by_path.find(d.path);
        if (it != by_path.end()) {
          for (Suppression& s : it->second) {
            if (s.rule == d.rule &&
                (d.line == s.line || d.line == s.line + 1)) {
              s.used = true;
              suppressed = true;
            }
          }
        }
      }
      if (!suppressed) result.diagnostics.push_back(std::move(d));
    }
    for (const auto& [path, suppressions] : by_path) {
      for (const Suppression& s : suppressions) {
        if (s.used) {
          ++result.suppressions_used[s.rule];
        } else {
          result.diagnostics.push_back(Diagnostic{
              path, s.line, std::string(kRuleStaleSuppression),
              "itm-lint: allow(" + s.rule +
                  ") suppresses nothing on this or the next line; remove "
                  "it"});
        }
      }
    }
    std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.path != b.path) return a.path < b.path;
                       return a.line < b.line;
                     });
  });
  return result;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

std::string to_json(const LintResult& result,
                    const std::vector<std::string>& budget_errors) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"itm-lint\",\n";
  os << "  \"schema\": \"itm-lint-json/1\",\n";
  os << "  \"files_scanned\": " << result.files_scanned << ",\n";
  os << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"path\": \"" << json_escape(d.path)
       << "\", \"line\": " << d.line << ", \"rule\": \"" << json_escape(d.rule)
       << "\", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  os << (result.diagnostics.empty() ? "],\n" : "\n  ],\n");
  os << "  \"suppressions_used\": {";
  std::size_t n = 0;
  for (const auto& [rule, used] : result.suppressions_used) {
    os << (n++ == 0 ? "\n" : ",\n");
    os << "    \"" << json_escape(rule) << "\": " << used;
  }
  os << (n == 0 ? "},\n" : "\n  },\n");
  os << "  \"budget_errors\": [";
  for (std::size_t i = 0; i < budget_errors.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    \"" << json_escape(budget_errors[i]) << "\"";
  }
  os << (budget_errors.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::map<std::string, std::size_t> parse_budget(const std::string& text) {
  std::map<std::string, std::size_t> budget;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule;
    if (!(fields >> rule)) continue;  // blank / comment-only line
    long long cap = -1;
    if (!(fields >> cap) || cap < 0) {
      throw std::runtime_error("budget line " + std::to_string(lineno) +
                               ": expected '<rule> <count>', got '" + line +
                               "'");
    }
    if (kKnownRules.count(rule) == 0) {
      throw std::runtime_error("budget line " + std::to_string(lineno) +
                               ": unknown rule '" + rule + "'");
    }
    if (budget.count(rule) > 0) {
      throw std::runtime_error("budget line " + std::to_string(lineno) +
                               ": duplicate rule '" + rule + "'");
    }
    budget[rule] = static_cast<std::size_t>(cap);
  }
  return budget;
}

std::vector<std::string> check_budget(
    const LintResult& result,
    const std::map<std::string, std::size_t>& budget) {
  std::vector<std::string> errors;
  for (const auto& [rule, used] : result.suppressions_used) {
    const auto it = budget.find(rule);
    const std::size_t cap = it == budget.end() ? 0 : it->second;
    if (used > cap) {
      errors.push_back(rule + ": " + std::to_string(used) +
                       " live suppressions exceed the budget of " +
                       std::to_string(cap) +
                       " (tools/lint/suppressions.budget); fix the new "
                       "violation instead of suppressing it");
    }
  }
  return errors;
}

}  // namespace itm::lint
