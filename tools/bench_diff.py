#!/usr/bin/env python3
"""Validate and diff substrate_scale BENCH records (single-line JSON).

Usage: bench_diff.py <committed.json> <fresh.json>

Three classes of keys:
  * structural — deterministic for the pinned tier (counts, hashes):
    must match the committed record exactly;
  * layout — per-entry byte costs: deterministic modulo allocator details,
    compared within a tight band (x1.5);
  * perf — wall time / qps / RSS: machine-dependent, compared within a wide
    band (x25 by default, ITM_BENCH_PERF_TOLERANCE overrides) that still
    catches order-of-magnitude regressions on comparable hardware.

Also enforces the layout improvement invariants the SoA refactor claims:
bytes/AS and bytes/prefix must be lower through the SoA/arena structures
than through the legacy layout, on any machine.
"""

import json
import os
import sys

STRUCTURAL = [
    "bench", "tier", "seed", "ases", "links", "routable_prefixes",
    "user_prefixes", "trie_nodes_soa", "trie_nodes_legacy", "snapshot_bytes",
    "client_prefixes", "answer_hash", "queries",
]
LAYOUT = [
    "bytes_per_as_soa", "bytes_per_as_legacy",
    "bytes_per_prefix_soa", "bytes_per_prefix_legacy",
]
PERF = ["generate_s", "build_s", "serve_qps", "serve_p50_us", "serve_p99_us",
        "delta_apply_us", "peak_rss_bytes"]

LAYOUT_TOLERANCE = 1.5


def load_record(path):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read().strip()
    if "\n" in text:
        raise SystemExit(f"{path}: expected a single-line JSON record")
    record = json.loads(text)
    if not isinstance(record, dict):
        raise SystemExit(f"{path}: expected a JSON object")
    return record


def check_schema(path, record):
    missing = [k for k in STRUCTURAL + LAYOUT + PERF if k not in record]
    if missing:
        raise SystemExit(f"{path}: missing keys: {', '.join(missing)}")
    for key in LAYOUT + PERF:
        value = record[key]
        if not isinstance(value, (int, float)) or value <= 0:
            raise SystemExit(f"{path}: {key} must be a positive number, "
                             f"got {value!r}")


def check_improvement(path, record):
    for soa, legacy in [("bytes_per_as_soa", "bytes_per_as_legacy"),
                        ("bytes_per_prefix_soa", "bytes_per_prefix_legacy")]:
        if record[soa] >= record[legacy]:
            raise SystemExit(
                f"{path}: {soa} ({record[soa]:.1f}) must improve on "
                f"{legacy} ({record[legacy]:.1f})")


def within_band(committed, fresh, factor):
    lo, hi = committed / factor, committed * factor
    return lo <= fresh <= hi


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    committed_path, fresh_path = sys.argv[1], sys.argv[2]
    committed = load_record(committed_path)
    fresh = load_record(fresh_path)
    check_schema(committed_path, committed)
    check_schema(fresh_path, fresh)
    check_improvement(committed_path, committed)
    check_improvement(fresh_path, fresh)

    failures = []
    for key in STRUCTURAL:
        if committed[key] != fresh[key]:
            failures.append(f"  {key}: committed {committed[key]!r} != "
                            f"fresh {fresh[key]!r} (must match exactly)")
    for key in LAYOUT:
        if not within_band(committed[key], fresh[key], LAYOUT_TOLERANCE):
            failures.append(
                f"  {key}: fresh {fresh[key]:.1f} outside "
                f"x{LAYOUT_TOLERANCE} band of committed {committed[key]:.1f}")
    perf_tolerance = float(os.environ.get("ITM_BENCH_PERF_TOLERANCE", "25"))
    for key in PERF:
        if not within_band(committed[key], fresh[key], perf_tolerance):
            failures.append(
                f"  {key}: fresh {fresh[key]:.3g} outside "
                f"x{perf_tolerance:g} band of committed {committed[key]:.3g}")

    if failures:
        print(f"BENCH record drift ({fresh_path} vs {committed_path}):")
        print("\n".join(failures))
        print("If the change is intentional, regenerate the committed record:"
              f"\n  build/bench/substrate_scale {committed['tier']} "
              f"{committed_path}")
        raise SystemExit(1)
    print(f"bench record OK: {fresh_path} matches {committed_path} "
          f"({len(STRUCTURAL)} exact, {len(LAYOUT)} layout-band, "
          f"{len(PERF)} perf-band keys)")


if __name__ == "__main__":
    main()
