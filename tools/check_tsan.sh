#!/usr/bin/env bash
# Build the deterministic-parallelism tests under ThreadSanitizer and run
# the tsan-labeled subset (executor unit tests, serial/parallel
# equivalence tests, and the epoch hot-swap stress test). This is the
# data-race gate for src/net/executor.*, every sharded pipeline stage,
# and the resident server's RCU epoch swap.
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DITM_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target executor_tests parallel_tests hot_swap_tests

# Fail on any race TSan reports, even if the test assertions still pass.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 abort_on_error=1}"
ctest --test-dir "$BUILD_DIR" -L tsan --output-on-failure -j"$(nproc)"
