# The snapshot-determinism gate: `itm snapshot` must write byte-identical
# `.itms` files for every thread count (the compiled map is already
# byte-stable per DESIGN.md decision #6; the snapshot inherits that and this
# test pins it), and `itm serve` must answer a batch identically from each
# of them. The reader must also reject corrupted input with exit code 4.
foreach(threads 1 4 8)
  execute_process(COMMAND ${ITM_BIN} snapshot --scale tiny --seed 7
                          --threads ${threads}
                          --out ${WORK_DIR}/snap_t${threads}.itms
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "itm snapshot --threads ${threads} failed: ${err}")
  endif()
endforeach()

foreach(threads 4 8)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          ${WORK_DIR}/snap_t1.itms
                          ${WORK_DIR}/snap_t${threads}.itms
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "snapshot differs between --threads 1 and --threads ${threads}; "
            ".itms files must be byte-identical for every thread count")
  endif()
endforeach()

# Serve the same batch from two of the snapshots: answers must match.
file(WRITE ${WORK_DIR}/snap_queries.txt
     "stats\ntop-as 5\ntop-country 3\nas 0\noutage 14\ncountry 0\n")
foreach(threads 1 8)
  execute_process(COMMAND ${ITM_BIN} serve
                          --snapshot ${WORK_DIR}/snap_t${threads}.itms
                          --queries ${WORK_DIR}/snap_queries.txt
                  RESULT_VARIABLE rc
                  OUTPUT_FILE ${WORK_DIR}/snap_answers_t${threads}.txt
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "itm serve failed on snap_t${threads}.itms: ${err}")
  endif()
endforeach()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/snap_answers_t1.txt
                        ${WORK_DIR}/snap_answers_t8.txt
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "serve answers differ between snapshots")
endif()
file(READ ${WORK_DIR}/snap_answers_t1.txt answers)
if(NOT answers MATCHES "stats ases=")
  message(FATAL_ERROR "serve output missing stats answer: ${answers}")
endif()
if(answers MATCHES "error:")
  message(FATAL_ERROR "serve batch produced an error answer: ${answers}")
endif()

# Corrupted input must be rejected with exit 4, never crash or half-load.
# (Byte-level truncation and bit-flip coverage lives in the serve_tests
# gtest suite, which can mint binary mutations; here we gate the CLI path.)
file(WRITE ${WORK_DIR}/snap_garbage.itms "this is not a snapshot at all")
execute_process(COMMAND ${ITM_BIN} serve
                        --snapshot ${WORK_DIR}/snap_garbage.itms
                        --queries ${WORK_DIR}/snap_queries.txt
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 4)
  message(FATAL_ERROR
          "serving a garbage snapshot exited ${rc}, expected 4")
endif()
file(WRITE ${WORK_DIR}/snap_empty.itms "")
execute_process(COMMAND ${ITM_BIN} serve
                        --snapshot ${WORK_DIR}/snap_empty.itms
                        --queries ${WORK_DIR}/snap_queries.txt
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 4)
  message(FATAL_ERROR "serving an empty snapshot exited ${rc}, expected 4")
endif()

# Usage errors keep the CLI's exit-code discipline.
execute_process(COMMAND ${ITM_BIN} snapshot RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "itm snapshot without --out exited ${rc}, expected 2")
endif()
execute_process(COMMAND ${ITM_BIN} serve RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "itm serve without inputs exited ${rc}, expected 2")
endif()
