#!/usr/bin/env bash
# The bench-trajectory gate: smoke-runs the substrate_scale bench at the
# tiny tier, validates the emitted single-line JSON record's schema, and
# diffs it against the committed BENCH_tiny.json — structural fields must
# match exactly, layout fields within a tight band, perf fields within a
# wide band (tools/bench_diff.py documents the classes). Then runs the
# bench-labeled ctest subset.
#
# The medium-tier record (BENCH_medium.json) is regenerated manually when
# the substrate changes:  build/bench/substrate_scale medium BENCH_medium.json
#
# Usage: tools/check_bench.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" --target substrate_scale

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

"$BUILD_DIR/bench/substrate_scale" tiny "$SCRATCH/BENCH_tiny.json" \
    >/dev/null

python3 tools/bench_diff.py BENCH_tiny.json "$SCRATCH/BENCH_tiny.json"

ctest --test-dir "$BUILD_DIR" -L bench --output-on-failure -j"$(nproc)"
