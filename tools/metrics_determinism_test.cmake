# The deterministic-metrics gate: `itm map --metrics-out` must write
# byte-identical JSON for every thread count (DESIGN.md decision #7). Wall
# time lives in the trace file, which is only sanity-checked, never diffed.
foreach(threads 1 4 8)
  execute_process(COMMAND ${ITM_BIN} map --scale tiny --seed 7
                          --threads ${threads}
                          --metrics-out ${WORK_DIR}/metrics_t${threads}.json
                          --trace-out ${WORK_DIR}/trace_t${threads}.json
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "itm map --threads ${threads} failed: ${err}")
  endif()
endforeach()

foreach(threads 4 8)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          ${WORK_DIR}/metrics_t1.json
                          ${WORK_DIR}/metrics_t${threads}.json
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "metrics JSON differs between --threads 1 and --threads "
            "${threads}; deterministic metrics must be thread-count "
            "independent")
  endif()
endforeach()

# The trace must be valid-looking Chrome trace JSON with the stage spans.
file(READ ${WORK_DIR}/trace_t4.json trace)
if(NOT trace MATCHES "traceEvents")
  message(FATAL_ERROR "trace output missing traceEvents array")
endif()
if(NOT trace MATCHES "map.workload_probe" OR NOT trace MATCHES "map.inference")
  message(FATAL_ERROR "trace output missing pipeline stage spans")
endif()
