// Shared tiny scenario for module tests: generated once per test binary so
// fixtures stay fast. Tests must not mutate the scenario except through the
// DNS system (which is reset-free but monotonic; tests that need virgin
// cache state should use their own scenario).
#pragma once

#include "core/scenario.h"

namespace itm::testing {

inline core::Scenario& shared_tiny_scenario() {
  static auto scenario = core::Scenario::generate(core::tiny_config(1234));
  return *scenario;
}

}  // namespace itm::testing
