#include "cdn/tls.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"

namespace itm::cdn {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(TlsInventory, EveryFrontEndListens) {
  auto& s = shared_tiny_scenario();
  for (const auto& fe : s.deployment().front_ends()) {
    const auto* ep = s.tls().endpoint_at(fe.address);
    ASSERT_NE(ep, nullptr);
    ASSERT_TRUE(ep->hypergiant.has_value());
    EXPECT_EQ(*ep->hypergiant, fe.owner);
  }
}

TEST(TlsInventory, OffnetsPresentOperatorCert) {
  auto& s = shared_tiny_scenario();
  bool found_offnet = false;
  for (const auto& fe : s.deployment().front_ends()) {
    const auto& pop = s.deployment().pop(fe.pop);
    if (!pop.offnet) continue;
    found_offnet = true;
    const auto* ep = s.tls().endpoint_at(fe.address);
    ASSERT_NE(ep, nullptr);
    EXPECT_TRUE(ep->offnet);
    const auto& hg = s.deployment().hypergiant(fe.owner);
    bool has_operator_name = false;
    for (const auto& name : ep->default_cert_names) {
      if (name.find(hg.name) != std::string::npos) has_operator_name = true;
    }
    EXPECT_TRUE(has_operator_name);
  }
  EXPECT_TRUE(found_offnet);
}

TEST(TlsInventory, NoEndpointAtRandomUserAddress) {
  auto& s = shared_tiny_scenario();
  const auto user24 = s.topo().addresses.user_slash24(
      s.topo().accesses.front(), 0);
  EXPECT_EQ(s.tls().endpoint_at(user24.address_at(77)), nullptr);
  EXPECT_FALSE(s.tls().serves(user24.address_at(77), "svc-0.example"));
}

TEST(TlsInventory, SniServedByOwnOperatorOnly) {
  auto& s = shared_tiny_scenario();
  // Pick a DNS-redirection service of hypergiant 0 and front ends of both
  // hypergiant 0 and hypergiant 1.
  const Service* svc = nullptr;
  for (const auto& candidate : s.catalog().services()) {
    if (candidate.hypergiant && candidate.hypergiant->value() == 0 &&
        candidate.redirection == RedirectionKind::kDnsRedirection) {
      svc = &candidate;
      break;
    }
  }
  ASSERT_NE(svc, nullptr);
  for (const auto& fe : s.deployment().front_ends()) {
    const bool should_serve = fe.owner.value() == 0;
    EXPECT_EQ(s.tls().serves(fe.address, svc->hostname), should_serve);
  }
}

TEST(TlsInventory, DedicatedAddressesServeTheirHostname) {
  auto& s = shared_tiny_scenario();
  for (const auto& svc : s.catalog().services()) {
    if (svc.redirection == RedirectionKind::kDnsRedirection) continue;
    EXPECT_TRUE(s.tls().serves(svc.service_address, svc.hostname))
        << svc.name;
    EXPECT_FALSE(s.tls().serves(svc.service_address, "other.example"));
  }
}

TEST(TlsInventory, SizeCoversFrontEndsAndDedicated) {
  auto& s = shared_tiny_scenario();
  std::size_t dedicated = 0;
  for (const auto& svc : s.catalog().services()) {
    if (svc.redirection != RedirectionKind::kDnsRedirection) ++dedicated;
  }
  EXPECT_EQ(s.tls().size(),
            s.deployment().front_ends().size() + dedicated);
}

}  // namespace
}  // namespace itm::cdn
