#include "cdn/deployment.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "../test_scenario.h"

namespace itm::cdn {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(Deployment, OneHypergiantPerConfiguredAs) {
  auto& s = shared_tiny_scenario();
  EXPECT_EQ(s.deployment().hypergiants().size(),
            s.topo().hypergiants.size());
  for (const auto& hg : s.deployment().hypergiants()) {
    EXPECT_EQ(s.topo().graph.info(hg.asn).type,
              topology::AsType::kHypergiant);
    EXPECT_NE(s.deployment().by_asn(hg.asn), nullptr);
  }
  EXPECT_EQ(s.deployment().by_asn(s.topo().accesses.front()), nullptr);
}

TEST(Deployment, OnnetAddressesInsideOwnSpace) {
  auto& s = shared_tiny_scenario();
  for (const auto& fe : s.deployment().front_ends()) {
    const auto& pop = s.deployment().pop(fe.pop);
    const auto origin = s.topo().addresses.origin_of(fe.address);
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(*origin, pop.asn) << "front end outside its PoP's AS";
    if (!pop.offnet) {
      EXPECT_EQ(pop.asn, s.deployment().hypergiant(fe.owner).asn);
    }
  }
}

TEST(Deployment, OffnetsLiveInAccessNetworks) {
  auto& s = shared_tiny_scenario();
  std::size_t offnets = 0;
  for (const auto& pop : s.deployment().pops()) {
    if (!pop.offnet) continue;
    ++offnets;
    EXPECT_EQ(s.topo().graph.info(pop.asn).type, topology::AsType::kAccess);
    // offnet_in finds it.
    EXPECT_NE(s.deployment().offnet_in(pop.owner, pop.asn), nullptr);
  }
  EXPECT_GT(offnets, 0u);
}

TEST(Deployment, OffnetHeavyHypergiantsOnly) {
  auto& s = shared_tiny_scenario();
  const auto& config = s.config().deployment;
  for (const auto& hg : s.deployment().hypergiants()) {
    std::size_t offnet_count = 0;
    for (const PopId pid : hg.pops) {
      if (s.deployment().pop(pid).offnet) ++offnet_count;
    }
    if (hg.id.value() < config.offnet_heavy_hypergiants) {
      EXPECT_GT(offnet_count, 0u) << hg.name;
      EXPECT_GT(hg.offnet_hit_ratio, 0.0);
    } else {
      EXPECT_EQ(offnet_count, 0u) << hg.name;
      EXPECT_EQ(hg.offnet_hit_ratio, 0.0);
    }
  }
}

TEST(Deployment, FrontEndAddressesUnique) {
  auto& s = shared_tiny_scenario();
  std::unordered_set<Ipv4Addr> seen;
  for (const auto& fe : s.deployment().front_ends()) {
    EXPECT_TRUE(seen.insert(fe.address).second)
        << "duplicate " << fe.address;
  }
}

TEST(Deployment, NearestOnnetPopIsNearest) {
  auto& s = shared_tiny_scenario();
  const auto& geo = s.topo().geography;
  const auto& hg = s.deployment().hypergiants().front();
  for (const auto& city : geo.cities()) {
    const PopId nearest = s.deployment().nearest_onnet_pop(hg.id, city.id, geo);
    const double got = geo.distance_km(s.deployment().pop(nearest).city, city.id);
    for (const PopId pid : hg.pops) {
      const auto& pop = s.deployment().pop(pid);
      if (pop.offnet) continue;
      EXPECT_LE(got, geo.distance_km(pop.city, city.id) + 1e-9);
    }
  }
}

TEST(Deployment, EveryPopHasFrontEnds) {
  auto& s = shared_tiny_scenario();
  std::vector<std::size_t> counts(s.deployment().pops().size(), 0);
  for (const auto& fe : s.deployment().front_ends()) {
    ++counts[fe.pop.value()];
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_GT(counts[i], 0u) << "PoP " << i;
  }
}

TEST(Deployment, BiggerEyeballsHostMoreOffnets) {
  auto& s = shared_tiny_scenario();
  // Count off-nets in large vs small eyeballs; large should dominate.
  double large_rate = 0, small_rate = 0;
  std::size_t large_n = 0, small_n = 0;
  for (const Asn a : s.topo().accesses) {
    std::size_t hosted = 0;
    for (const auto& hg : s.deployment().hypergiants()) {
      if (s.deployment().offnet_in(hg.id, a) != nullptr) ++hosted;
    }
    if (s.topo().graph.info(a).size_factor > 1.0) {
      large_rate += static_cast<double>(hosted);
      ++large_n;
    } else {
      small_rate += static_cast<double>(hosted);
      ++small_n;
    }
  }
  ASSERT_GT(large_n, 0u);
  ASSERT_GT(small_n, 0u);
  EXPECT_GE(large_rate / static_cast<double>(large_n),
            small_rate / static_cast<double>(small_n));
}

}  // namespace
}  // namespace itm::cdn
