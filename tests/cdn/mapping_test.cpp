#include "cdn/mapping.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"
#include "net/geo.h"

namespace itm::cdn {
namespace {

using itm::testing::shared_tiny_scenario;

const Service* find_service(const core::Scenario& s, RedirectionKind kind,
                            bool ecs = false) {
  for (const auto& svc : s.catalog().services()) {
    if (svc.redirection == kind && (!ecs || svc.supports_ecs)) return &svc;
  }
  return nullptr;
}

TEST(ClientMapper, SingleSiteAlwaysOrigin) {
  auto& s = shared_tiny_scenario();
  const auto* svc = find_service(s, RedirectionKind::kSingleSite);
  ASSERT_NE(svc, nullptr);
  const Asn client = s.topo().accesses.front();
  const auto result =
      s.mapper().map(*svc, client, CityId(0), CityId(0), 7);
  EXPECT_FALSE(result.pop.has_value());
  EXPECT_EQ(result.server_as, svc->origin_as);
  EXPECT_EQ(result.address, svc->service_address);
}

TEST(ClientMapper, DnsSiteIsDeterministic) {
  auto& s = shared_tiny_scenario();
  const auto* svc = find_service(s, RedirectionKind::kDnsRedirection);
  ASSERT_NE(svc, nullptr);
  for (const auto& city : s.topo().geography.cities()) {
    EXPECT_EQ(s.mapper().dns_site(*svc, city.id),
              s.mapper().dns_site(*svc, city.id));
  }
}

TEST(ClientMapper, DnsSiteMostlyNearest) {
  auto& s = shared_tiny_scenario();
  const auto& geo = s.topo().geography;
  std::size_t nearest = 0, total = 0;
  for (const auto& svc : s.catalog().services()) {
    if (svc.redirection != RedirectionKind::kDnsRedirection) continue;
    for (const auto& city : geo.cities()) {
      const PopId chosen = s.mapper().dns_site(svc, city.id);
      const PopId optimal = s.mapper().optimal_site(*svc.hypergiant, city.id);
      ++total;
      if (chosen == optimal) ++nearest;
    }
  }
  ASSERT_GT(total, 0u);
  const double rate = static_cast<double>(nearest) / static_cast<double>(total);
  // geo_mapping_accuracy is 0.9; allow sampling slack (ties can only help).
  EXPECT_GT(rate, 0.8);
  EXPECT_LE(rate, 1.0);
}

TEST(ClientMapper, AnycastUsesVipAddress) {
  auto& s = shared_tiny_scenario();
  const auto* svc = find_service(s, RedirectionKind::kAnycast);
  ASSERT_NE(svc, nullptr);
  const Asn client = s.topo().accesses.front();
  const auto& info = s.topo().graph.info(client);
  const auto result =
      s.mapper().map(*svc, client, info.home_city, info.home_city, 1);
  EXPECT_EQ(result.address, svc->service_address);
  ASSERT_TRUE(result.pop.has_value());
  EXPECT_FALSE(s.deployment().pop(*result.pop).offnet);
}

TEST(ClientMapper, AnycastCatchmentMatchesPrecomputation) {
  auto& s = shared_tiny_scenario();
  const HypergiantId hg(0);
  for (const Asn a : s.topo().accesses) {
    const PopId site = s.mapper().anycast_site(hg, a);
    // Site is one of the hypergiant's on-net PoPs.
    const auto& pop = s.deployment().pop(site);
    EXPECT_EQ(pop.owner, hg);
    EXPECT_FALSE(pop.offnet);
  }
}

TEST(ClientMapper, CustomUrlGoesToOptimalSiteWithoutOffnet) {
  auto& s = shared_tiny_scenario();
  const auto* svc = find_service(s, RedirectionKind::kCustomUrl);
  ASSERT_NE(svc, nullptr);
  // Pick a client AS without an off-net of this hypergiant.
  for (const Asn client : s.topo().accesses) {
    if (s.deployment().offnet_in(*svc->hypergiant, client) != nullptr) {
      continue;
    }
    const auto& info = s.topo().graph.info(client);
    const auto result =
        s.mapper().map(*svc, client, info.home_city, info.home_city, 3);
    ASSERT_TRUE(result.pop.has_value());
    EXPECT_EQ(*result.pop,
              s.mapper().optimal_site(*svc->hypergiant, info.home_city));
    break;
  }
}

TEST(ClientMapper, OffnetOverrideForCacheableServices) {
  auto& s = shared_tiny_scenario();
  // Find a cacheable hypergiant service and a client hosting its off-net.
  for (const auto& svc : s.catalog().services()) {
    if (!svc.hypergiant || !svc.offnet_cacheable) continue;
    for (const Asn client : s.topo().accesses) {
      const auto* offnet = s.deployment().offnet_in(*svc.hypergiant, client);
      if (offnet == nullptr) continue;
      const auto& info = s.topo().graph.info(client);
      const auto with = s.mapper().map(svc, client, info.home_city,
                                       info.home_city, 5);
      ASSERT_TRUE(with.pop.has_value());
      EXPECT_TRUE(with.offnet);
      EXPECT_EQ(with.server_as, client);
      const auto without =
          s.mapper().map(svc, client, info.home_city, info.home_city, 5,
                         /*allow_offnet=*/false);
      ASSERT_TRUE(without.pop.has_value());
      EXPECT_FALSE(without.offnet);
      EXPECT_NE(without.server_as, client);
      return;  // one pair suffices
    }
  }
  GTEST_SKIP() << "no cacheable service with off-net in tiny scenario";
}

TEST(ClientMapper, OptimalSiteMinimizesDistance) {
  auto& s = shared_tiny_scenario();
  const auto& geo = s.topo().geography;
  const HypergiantId hg(0);
  for (const auto& city : geo.cities()) {
    const PopId best = s.mapper().optimal_site(hg, city.id);
    const double best_km =
        geo.distance_km(s.deployment().pop(best).city, city.id);
    for (const PopId pid : s.deployment().hypergiant(hg).pops) {
      const auto& pop = s.deployment().pop(pid);
      if (pop.offnet) continue;
      EXPECT_LE(best_km, geo.distance_km(pop.city, city.id) + 1e-9);
    }
  }
}

TEST(ClientMapper, EffectiveCityChangesDnsAnswer) {
  // Mapping by a far-away effective city must (for some service/city pair)
  // give a different PoP than the true client city — the public-resolver
  // bias for non-ECS services.
  auto& s = shared_tiny_scenario();
  const auto& geo = s.topo().geography;
  bool differs = false;
  for (const auto& svc : s.catalog().services()) {
    if (svc.redirection != RedirectionKind::kDnsRedirection) continue;
    for (const auto& a : geo.cities()) {
      for (const auto& b : geo.cities()) {
        if (geo.distance_km(a.id, b.id) < 3000) continue;
        if (s.mapper().dns_site(svc, a.id) != s.mapper().dns_site(svc, b.id)) {
          differs = true;
          break;
        }
      }
      if (differs) break;
    }
    if (differs) break;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace itm::cdn
