#include "cdn/services.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "../test_scenario.h"

namespace itm::cdn {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(ServiceCatalog, PopularitySumsToOne) {
  auto& s = shared_tiny_scenario();
  double total = 0;
  for (const auto& svc : s.catalog().services()) total += svc.popularity;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ServiceCatalog, HypergiantShareMatchesConfig) {
  auto& s = shared_tiny_scenario();
  const double hg_share = s.catalog().popularity_share(
      [](const Service& svc) { return svc.hypergiant.has_value(); });
  EXPECT_NEAR(hg_share, s.config().services.hypergiant_traffic_share, 1e-9);
}

TEST(ServiceCatalog, ByPopularityIsSorted) {
  auto& s = shared_tiny_scenario();
  const auto ranked = s.catalog().by_popularity();
  ASSERT_EQ(ranked.size(), s.catalog().size());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(s.catalog().service(ranked[i - 1]).popularity,
              s.catalog().service(ranked[i]).popularity);
  }
  // Most popular service is hypergiant-hosted by construction.
  EXPECT_TRUE(s.catalog().service(ranked.front()).hypergiant.has_value());
}

TEST(ServiceCatalog, HostnameLookup) {
  auto& s = shared_tiny_scenario();
  const auto& first = s.catalog().services().front();
  const auto* found = s.catalog().by_hostname(first.hostname);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, first.id);
  EXPECT_EQ(s.catalog().by_hostname("no-such-host.example"), nullptr);
}

TEST(ServiceCatalog, LongtailAreSingleSiteOnContentAses) {
  auto& s = shared_tiny_scenario();
  for (const auto& svc : s.catalog().services()) {
    if (svc.hypergiant) continue;
    EXPECT_EQ(svc.redirection, RedirectionKind::kSingleSite);
    EXPECT_EQ(s.topo().graph.info(svc.origin_as).type,
              topology::AsType::kContent);
    // Origin address belongs to the origin AS.
    const auto origin = s.topo().addresses.origin_of(svc.service_address);
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(*origin, svc.origin_as);
  }
}

TEST(ServiceCatalog, ServiceAddressesUniqueWhereAssigned) {
  auto& s = shared_tiny_scenario();
  std::unordered_set<Ipv4Addr> seen;
  for (const auto& svc : s.catalog().services()) {
    if (svc.redirection == RedirectionKind::kDnsRedirection) continue;
    EXPECT_TRUE(seen.insert(svc.service_address).second)
        << svc.name << " collides at " << svc.service_address;
  }
}

TEST(ServiceCatalog, EcsOnlyOnDnsRedirection) {
  auto& s = shared_tiny_scenario();
  for (const auto& svc : s.catalog().services()) {
    if (svc.supports_ecs) {
      EXPECT_EQ(svc.redirection, RedirectionKind::kDnsRedirection);
    }
  }
}

TEST(ServiceCatalog, TtlsWithinConfiguredRange) {
  auto& s = shared_tiny_scenario();
  const auto& config = s.config().services;
  for (const auto& svc : s.catalog().services()) {
    EXPECT_GE(svc.dns_ttl_s, config.min_ttl_s);
    if (svc.hypergiant) EXPECT_LE(svc.dns_ttl_s, config.max_ttl_s);
  }
}

TEST(ServiceCatalog, VipsInsideHypergiantSpace) {
  auto& s = shared_tiny_scenario();
  for (const auto& svc : s.catalog().services()) {
    if (!svc.hypergiant ||
        svc.redirection == RedirectionKind::kDnsRedirection) {
      continue;
    }
    const auto origin = s.topo().addresses.origin_of(svc.service_address);
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(*origin, s.deployment().hypergiant(*svc.hypergiant).asn);
  }
}

TEST(ServiceCatalog, PopularityShareHelper) {
  auto& s = shared_tiny_scenario();
  const double all = s.catalog().popularity_share([](const Service&) {
    return true;
  });
  EXPECT_NEAR(all, 1.0, 1e-9);
  const double none = s.catalog().popularity_share([](const Service&) {
    return false;
  });
  EXPECT_DOUBLE_EQ(none, 0.0);
}

}  // namespace
}  // namespace itm::cdn
