#include "net/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace itm::net {
namespace {

TEST(Executor, EmptyRangeNeverInvokesTheFunction) {
  Executor executor(4);
  std::atomic<int> calls{0};
  executor.parallel_for(0, [&calls](const Executor::Shard&) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE((executor.parallel_map<int>(0, [](std::size_t) { return 1; }))
                  .empty());
}

TEST(Executor, SingleItemRunsExactlyOnce) {
  Executor executor(4);
  std::atomic<int> calls{0};
  executor.parallel_for(1, [&calls](const Executor::Shard& shard) {
    ++calls;
    EXPECT_EQ(shard.begin, 0u);
    EXPECT_EQ(shard.end, 1u);
    EXPECT_EQ(shard.index, 0u);
    EXPECT_EQ(shard.count, 1u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Executor, MoreThreadsThanItemsCoversEachItemOnce) {
  Executor executor(8);
  std::vector<std::atomic<int>> touched(3);
  executor.parallel_for(3, [&touched](const Executor::Shard& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) ++touched[i];
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(Executor, ShardsPartitionTheRange) {
  // Shard geometry is a pure function of n: contiguous, disjoint, complete.
  for (const std::size_t n : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    Executor executor(3);
    std::vector<std::atomic<int>> touched(n);
    std::atomic<std::size_t> shards_seen{0};
    executor.parallel_for(n, [&touched, &shards_seen,
                              n](const Executor::Shard& shard) {
      ++shards_seen;
      EXPECT_EQ(shard.count, Executor::shard_count_for(n));
      for (std::size_t i = shard.begin; i < shard.end; ++i) ++touched[i];
    });
    EXPECT_EQ(shards_seen.load(), Executor::shard_count_for(n));
    for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
  }
}

TEST(Executor, ParallelMapPreservesIndexOrder) {
  Executor executor(4);
  const auto out = executor.parallel_map<std::size_t>(
      1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Executor, ResultsIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    Executor executor(threads);
    return executor.parallel_map<double>(
        512, [](std::size_t i) { return static_cast<double>(i) * 0.5 + 1; });
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(13));
}

TEST(Executor, MapShardsReturnsOnePerShardInOrder) {
  Executor executor(4);
  const std::size_t n = 1000;
  const auto sums = executor.map_shards<std::uint64_t>(
      n, [](const Executor::Shard& shard) {
        std::uint64_t sum = 0;
        for (std::size_t i = shard.begin; i < shard.end; ++i) sum += i;
        return sum;
      });
  EXPECT_EQ(sums.size(), Executor::shard_count_for(n));
  const auto total = std::accumulate(sums.begin(), sums.end(),
                                     std::uint64_t{0});
  EXPECT_EQ(total, std::uint64_t{n} * (n - 1) / 2);
}

TEST(Executor, ExceptionFromWorkerPropagatesLowestShardFirst) {
  Executor executor(4);
  const auto run = [&] {
    executor.parallel_for(64, [](const Executor::Shard& shard) {
      if (shard.index == 5) throw std::runtime_error("shard five");
      if (shard.index == 40) throw std::runtime_error("shard forty");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  try {
    run();
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard five");
  }
  // The pool survives an exceptional batch.
  std::atomic<int> calls{0};
  executor.parallel_for(8, [&calls](const Executor::Shard&) { ++calls; });
  EXPECT_EQ(calls.load(), static_cast<int>(Executor::shard_count_for(8)));
}

TEST(Executor, ExceptionPropagatesOnSerialPathToo) {
  Executor executor(1);
  EXPECT_THROW(executor.parallel_for(
                   4,
                   [](const Executor::Shard&) {
                     throw std::runtime_error("serial boom");
                   }),
               std::runtime_error);
}

TEST(Executor, NestedSubmitIsRejected) {
  Executor executor(4);
  const auto nested = [&] {
    executor.parallel_for(16, [&executor](const Executor::Shard&) {
      // The nested call is the point of this test: it must throw.
      // itm-lint: allow(executor-reentrancy)
      executor.parallel_for(2, [](const Executor::Shard&) {});
    });
  };
  EXPECT_THROW(nested(), std::logic_error);
  // Also rejected when the inner call targets a different executor (any
  // nested region could deadlock or oversubscribe).
  Executor other(2);
  const auto cross_nested = [&] {
    executor.parallel_for(16, [&other](const Executor::Shard&) {
      // Deliberate cross-executor nesting; the guard must still reject it.
      // itm-lint: allow(executor-reentrancy)
      other.parallel_for(2, [](const Executor::Shard&) {});
    });
  };
  EXPECT_THROW(cross_nested(), std::logic_error);
}

TEST(Executor, ZeroSelectsHardwareConcurrency) {
  Executor executor(0);
  EXPECT_GE(executor.thread_count(), 1u);
  EXPECT_EQ(executor.thread_count(), Executor::hardware_threads());
}

TEST(Executor, ManyConcurrentIncrementsSumCorrectly) {
  Executor executor(4);
  std::atomic<std::uint64_t> sum{0};
  executor.parallel_for(10000, [&sum](const Executor::Shard& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), std::uint64_t{10000} * 9999 / 2);
}

TEST(Executor, BackToBackBatchesReuseThePool) {
  Executor executor(4);
  for (int round = 0; round < 50; ++round) {
    const auto out = executor.parallel_map<int>(
        97, [round](std::size_t i) { return static_cast<int>(i) + round; });
    ASSERT_EQ(out.size(), 97u);
    EXPECT_EQ(out[96], 96 + round);
  }
}

}  // namespace
}  // namespace itm::net
