#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace itm {
namespace {

TEST(Ipv4Addr, FromOctetsAndBits) {
  const auto a = Ipv4Addr::from_octets(10, 1, 2, 3);
  EXPECT_EQ(a.bits(), 0x0a010203u);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
}

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("192.168.0.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv4Addr::from_octets(192, 168, 0, 1));
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->bits(), 0xffffffffu);
}

TEST(Ipv4Addr, ParseInvalid) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1), Ipv4Addr(2));
  EXPECT_EQ(Ipv4Addr(7), Ipv4Addr(7));
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix p(Ipv4Addr::from_octets(10, 1, 2, 3), 24);
  EXPECT_EQ(p.base(), Ipv4Addr::from_octets(10, 1, 2, 0));
  EXPECT_EQ(p.length(), 24);
  const Ipv4Prefix q(Ipv4Addr::from_octets(10, 1, 2, 0), 24);
  EXPECT_EQ(p, q);
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  const auto p = Ipv4Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/x").has_value());
}

TEST(Ipv4Prefix, ContainsAddress) {
  const Ipv4Prefix p(Ipv4Addr::from_octets(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.contains(Ipv4Addr::from_octets(10, 255, 0, 1)));
  EXPECT_FALSE(p.contains(Ipv4Addr::from_octets(11, 0, 0, 0)));
  const Ipv4Prefix all(Ipv4Addr(0), 0);
  EXPECT_TRUE(all.contains(Ipv4Addr(0xffffffff)));
}

TEST(Ipv4Prefix, ContainsPrefix) {
  const Ipv4Prefix p(Ipv4Addr::from_octets(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.contains(Ipv4Prefix(Ipv4Addr::from_octets(10, 1, 0, 0), 16)));
  EXPECT_TRUE(p.contains(p));
  EXPECT_FALSE(p.contains(Ipv4Prefix(Ipv4Addr(0), 0)));  // broader
  EXPECT_FALSE(
      p.contains(Ipv4Prefix(Ipv4Addr::from_octets(11, 0, 0, 0), 16)));
}

TEST(Ipv4Prefix, SizeAndChildren) {
  const Ipv4Prefix p(Ipv4Addr::from_octets(10, 0, 0, 0), 22);
  EXPECT_EQ(p.size(), 1024u);
  EXPECT_EQ(p.child(24, 0), *Ipv4Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(p.child(24, 3), *Ipv4Prefix::parse("10.0.3.0/24"));
  EXPECT_EQ(p.child(32, 5).base(), Ipv4Addr::from_octets(10, 0, 0, 5));
  EXPECT_EQ(p.address_at(257), Ipv4Addr::from_octets(10, 0, 1, 1));
}

TEST(Ipv4Prefix, ParentAt) {
  const auto p = *Ipv4Prefix::parse("10.1.2.0/24");
  EXPECT_EQ(p.parent_at(16), *Ipv4Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(p.parent_at(0), Ipv4Prefix(Ipv4Addr(0), 0));
}

TEST(Ipv4Prefix, MaskEdges) {
  EXPECT_EQ(Ipv4Prefix::mask_for(0), 0u);
  EXPECT_EQ(Ipv4Prefix::mask_for(32), 0xffffffffu);
  EXPECT_EQ(Ipv4Prefix::mask_for(8), 0xff000000u);
}

TEST(Ipv4Prefix, HashDistinguishesLengths) {
  std::unordered_set<Ipv4Prefix> set;
  set.insert(*Ipv4Prefix::parse("10.0.0.0/8"));
  set.insert(*Ipv4Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace itm
