#include "net/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <unordered_set>

namespace itm {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  // Two parents seeded identically fork the same child stream.
  Rng p1(7), p2(7);
  Rng c1 = p1.fork(5);
  Rng c2 = p2.fork(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
  // Different stream ids give different children.
  Rng p3(7);
  Rng c3 = p3.fork(6);
  int equal = 0;
  Rng c1b = Rng(7).fork(5);
  for (int i = 0; i < 50; ++i) {
    if (c1b.next_u64() == c3.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(42);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const int b : buckets) {
    EXPECT_NEAR(b, 10000, 600);
  }
}

TEST(Rng, NextBelowOne) {
  Rng rng(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(42);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanAndRange) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  double sum = 0, ss = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    ss += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(ss / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 100000, 0.5, 0.02);
}

TEST(Rng, ParetoBoundsAndTail) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 1.5);
  }
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  Rng rng(42);
  for (const double mean : {0.5, 4.0, 100.0}) {
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(42);
  const double weights[] = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.015);
  EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.015);
}

TEST(Rng, SampleIndicesDistinctAndComplete) {
  Rng rng(42);
  const auto some = rng.sample_indices(100, 10);
  EXPECT_EQ(some.size(), 10u);
  std::unordered_set<std::size_t> set(some.begin(), some.end());
  EXPECT_EQ(set.size(), 10u);
  for (const auto i : some) EXPECT_LT(i, 100u);

  const auto all = rng.sample_indices(10, 10);
  std::unordered_set<std::size_t> full(all.begin(), all.end());
  EXPECT_EQ(full.size(), 10u);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(42);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngSplit, IndependentOfConsumptionOrder) {
  // split() is a pure function of the construction seed and the label:
  // how much the parent (or sibling splits) consumed must not matter.
  Rng untouched(99);
  Rng drained(99);
  for (int i = 0; i < 1000; ++i) drained.next_u64();
  Rng a = untouched.split(7);
  Rng b = drained.split(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  // Splitting in a different order yields the same streams too.
  Rng fwd(5), rev(5);
  Rng f1 = fwd.split(1);
  Rng f2 = fwd.split(2);
  Rng r2 = rev.split(2);
  Rng r1 = rev.split(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(f1.next_u64(), r1.next_u64());
    EXPECT_EQ(f2.next_u64(), r2.next_u64());
  }
}

TEST(RngSplit, DistinctLabelsGiveDistinctStreams) {
  Rng root(42);
  std::unordered_set<std::uint64_t> firsts;
  for (std::uint64_t label = 0; label < 1000; ++label) {
    firsts.insert(root.split(label).next_u64());
  }
  // All 1000 single-label streams start differently (collisions would be a
  // 1-in-2^44 event for a good mixer).
  EXPECT_EQ(firsts.size(), 1000u);
  // And none collides with the parent's own stream.
  EXPECT_EQ(firsts.count(Rng(42).next_u64()), 0u);
}

TEST(RngSplit, NestedSplitsAreStable) {
  // split() composes: a grandchild stream depends only on the chain of
  // labels, not on when each level split or drew.
  Rng r1(11), r2(11);
  Rng child1 = r1.split(3);
  for (int i = 0; i < 77; ++i) child1.next_u64();
  Rng grand1 = child1.split(9);
  Rng grand2 = r2.split(3).split(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(grand1.next_u64(), grand2.next_u64());
}

TEST(RngSplit, StringLabelsMatchAcrossInstances) {
  Rng a(8), b(8);
  Rng s1 = a.split("loss-process");
  Rng s2 = b.split("loss-process");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
  Rng other = Rng(8).split("different-label");
  EXPECT_NE(Rng(8).split("loss-process").next_u64(), other.next_u64());
}

TEST(RngSplit, PlatformStableGoldenValues) {
  // Pinned outputs: the split derivation is integer-only (splitmix64-style
  // finalizer + FNV-1a for strings), so these values must match on every
  // platform and compiler. A change here breaks cross-run reproducibility
  // of sharded sweeps — bump only with a conscious format break.
  EXPECT_EQ(Rng(42).split(7).next_u64(), 9835235893518595715ull);
  EXPECT_EQ(Rng(42).split("itm").next_u64(), 10776368583893607627ull);
  EXPECT_EQ(Rng(0).split(0).next_u64(), 18110106563157542208ull);
}

TEST(RngSplit, SeedAccessorReflectsConstructionSeed) {
  EXPECT_EQ(Rng(1234).seed(), 1234u);
  Rng r(55);
  for (int i = 0; i < 10; ++i) r.next_u64();
  EXPECT_EQ(r.seed(), 55u);  // consumption does not change identity
  r.reseed(77);
  EXPECT_EQ(r.seed(), 77u);
}

TEST(ZipfSampler, PmfSumsToOneAndDecreases) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (std::size_t k = 0; k < 100; ++k) {
    total += zipf.pmf(k);
    if (k > 0) {
      EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, SampleFrequenciesMatchPmf) {
  const ZipfSampler zipf(10, 1.2);
  Rng rng(42);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.pmf(k),
                0.01)
        << "rank " << k;
  }
}

class ZipfExponentProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentProperty, HeadShareGrowsWithExponent) {
  const double s = GetParam();
  const ZipfSampler zipf(1000, s);
  double head = 0;
  for (std::size_t k = 0; k < 10; ++k) head += zipf.pmf(k);
  // Higher exponent concentrates more mass at the head.
  const ZipfSampler flat(1000, 0.1);
  double flat_head = 0;
  for (std::size_t k = 0; k < 10; ++k) flat_head += flat.pmf(k);
  EXPECT_GT(head, flat_head);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentProperty,
                         ::testing::Values(0.6, 0.9, 1.2, 1.5));

// The misuse guard: re-pointing an existing generator at another's state
// (copy-assignment) is the "shard resets a shared rng" bug and must not
// compile. Stream derivation (copy-construction of a fresh value,
// move-assignment from split()/fork() rvalues) stays allowed.
static_assert(!std::is_copy_assignable_v<Rng>,
              "copy-assigning an Rng silently aliases streams; use split()");
static_assert(std::is_copy_constructible_v<Rng>);
static_assert(std::is_move_constructible_v<Rng>);
static_assert(std::is_move_assignable_v<Rng>);

TEST(Rng, MoveAssignFromSplitKeepsStreamIdentity) {
  Rng parent(99);
  Rng shard(0);
  shard = parent.split(3);  // move-assignment: the supported re-point idiom
  Rng reference = parent.split(3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(shard.next_u64(), reference.next_u64());
  }
}

}  // namespace
}  // namespace itm
