#include "net/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace itm {
namespace {

TEST(Summarize, BasicMoments) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summarize, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{7.0};
  const auto s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Pearson, PerfectAndInverse) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Spearman, MonotonicNonlinearIsOne) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x{1, 2, 2, 4};
  const std::vector<double> y{1, 3, 3, 9};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{1, 3, 5, 7};  // y = 2x + 1
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLineHasLowerR2) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  const std::vector<double> y{0.0, 2.5, 1.5, 4.0, 3.0};
  const auto fit = fit_linear(x, y);
  EXPECT_GT(fit.slope, 0.0);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.3);
}

TEST(KendallTau, PerfectAgreementAndDisagreement) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> up{10, 20, 30, 40};
  const std::vector<double> down{40, 30, 20, 10};
  EXPECT_DOUBLE_EQ(kendall_tau(x, up), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(x, down), -1.0);
}

TEST(WeightedCdf, UnitWeightsBehaveLikeEcdf) {
  WeightedCdf cdf;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(WeightedCdf, WeightsShiftTheDistribution) {
  // The paper's core argument: one heavy sample dominates the weighted view.
  WeightedCdf weighted;
  weighted.add(1.0, 1.0);
  weighted.add(2.0, 1.0);
  weighted.add(10.0, 98.0);
  EXPECT_NEAR(weighted.fraction_at_or_below(2.0), 0.02, 1e-12);
  EXPECT_DOUBLE_EQ(weighted.quantile(0.5), 10.0);

  WeightedCdf unweighted;
  unweighted.add(1.0);
  unweighted.add(2.0);
  unweighted.add(10.0);
  EXPECT_NEAR(unweighted.fraction_at_or_below(2.0), 2.0 / 3.0, 1e-12);
}

TEST(WeightedCdf, IgnoresNonPositiveWeights) {
  WeightedCdf cdf;
  cdf.add(1.0, 0.0);
  cdf.add(2.0, -1.0);
  EXPECT_EQ(cdf.sample_count(), 0u);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(WeightedCdf, CurveEndpoints) {
  WeightedCdf cdf;
  cdf.add(0.0);
  cdf.add(10.0);
  const auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 10.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Gini, UniformIsZeroConcentratedIsHigh) {
  const std::vector<double> equal{5, 5, 5, 5};
  EXPECT_NEAR(gini(equal), 0.0, 1e-12);
  const std::vector<double> concentrated{0, 0, 0, 100};
  EXPECT_NEAR(gini(concentrated), 0.75, 1e-12);
}

TEST(TopKShare, KnownValues) {
  const std::vector<double> masses{50, 30, 10, 5, 5};
  EXPECT_NEAR(top_k_share(masses, 1), 0.5, 1e-12);
  EXPECT_NEAR(top_k_share(masses, 2), 0.8, 1e-12);
  EXPECT_NEAR(top_k_share(masses, 99), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(top_k_share(masses, 0), 0.0);
  EXPECT_DOUBLE_EQ(top_k_share({}, 3), 0.0);
}

}  // namespace
}  // namespace itm
