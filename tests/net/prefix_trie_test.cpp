#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "net/rng.h"

namespace itm {
namespace {

Ipv4Prefix pfx(const char* text) { return *Ipv4Prefix::parse(text); }

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.1.0.0/16"), 2);
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(pfx("10.0.0.0/8")), 1);
  EXPECT_EQ(trie.find(pfx("10.0.0.0/9")), nullptr);
  EXPECT_TRUE(trie.erase(pfx("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(pfx("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.find(pfx("10.0.0.0/8")), nullptr);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.0.0.0/8"), 9);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(pfx("10.0.0.0/8")), 9);
}

TEST(PrefixTrie, LongestMatchPicksMostSpecific) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(pfx("10.1.2.0/24"), 24);

  const auto m1 = trie.longest_match(Ipv4Addr::from_octets(10, 1, 2, 3));
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->first, pfx("10.1.2.0/24"));
  EXPECT_EQ(m1->second.get(), 24);

  const auto m2 = trie.longest_match(Ipv4Addr::from_octets(10, 1, 9, 0));
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->second.get(), 16);

  const auto m3 = trie.longest_match(Ipv4Addr::from_octets(10, 9, 9, 9));
  ASSERT_TRUE(m3.has_value());
  EXPECT_EQ(m3->second.get(), 8);

  EXPECT_FALSE(trie.longest_match(Ipv4Addr::from_octets(11, 0, 0, 0)));
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(0), 0), 0);
  const auto m = trie.longest_match(Ipv4Addr(0xdeadbeef));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first.length(), 0);
}

TEST(PrefixTrie, LongestCovering) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  const auto c = trie.longest_covering(pfx("10.1.2.0/24"));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->second.get(), 16);
  // Exact entry covers itself.
  const auto self = trie.longest_covering(pfx("10.1.0.0/16"));
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->second.get(), 16);
  EXPECT_FALSE(trie.longest_covering(pfx("11.0.0.0/24")).has_value());
}

TEST(PrefixTrie, ForEachVisitsInOrder) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.2.0.0/16"), 1);
  trie.insert(pfx("10.1.0.0/16"), 2);
  trie.insert(pfx("10.0.0.0/8"), 3);
  const auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 3u);
  // Parent first, then children in address order.
  EXPECT_EQ(entries[0].first, pfx("10.0.0.0/8"));
  EXPECT_EQ(entries[1].first, pfx("10.1.0.0/16"));
  EXPECT_EQ(entries[2].first, pfx("10.2.0.0/16"));
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.1/32"), 7);
  const auto m = trie.longest_match(Ipv4Addr::from_octets(10, 0, 0, 1));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->second.get(), 7);
  EXPECT_FALSE(trie.longest_match(Ipv4Addr::from_octets(10, 0, 0, 2)));
}

// Property: LPM agrees with brute force over random prefix sets.
class PrefixTrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::map<Ipv4Prefix, int> reference;
  for (int i = 0; i < 300; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(4, 28));
    const Ipv4Prefix p(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                       len);
    trie.insert(p, i);
    reference[p] = i;
  }
  EXPECT_EQ(trie.size(), reference.size());
  for (int probe = 0; probe < 500; ++probe) {
    const Ipv4Addr addr(static_cast<std::uint32_t>(rng.next_u64()));
    // Brute force: most specific containing prefix.
    const Ipv4Prefix* best = nullptr;
    int best_value = -1;
    for (const auto& [p, v] : reference) {
      if (p.contains(addr) && (best == nullptr || p.length() > best->length())) {
        best = &p;
        best_value = v;
      }
    }
    const auto got = trie.longest_match(addr);
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->first, *best);
      EXPECT_EQ(got->second.get(), best_value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTrieProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

// Stateful property test: ~10k random interleaved operations against a
// std::map oracle with brute-force LPM/covering scans. Catches interactions
// the static test above cannot — erase leaving internal nodes, reinsertion
// after erase, size bookkeeping across overwrites, /0 and /32 extremes.
class PrefixTrieStatefulProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieStatefulProperty, AgreesWithMapOracle) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::map<Ipv4Prefix, int> oracle;

  // Mutating/querying ops target a previously-inserted prefix half the
  // time so erase/overwrite/find regularly hit live entries; the other half
  // draws fresh prefixes across the full /0../32 range.
  std::vector<Ipv4Prefix> inserted;
  const auto fresh_prefix = [&rng] {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
    const auto base = static_cast<std::uint32_t>(rng.next_u64());
    return Ipv4Prefix(Ipv4Addr(base), len);  // canonicalizes host bits
  };
  const auto random_prefix = [&] {
    if (!inserted.empty() && rng.next_below(2) == 0) {
      return inserted[rng.next_below(inserted.size())];
    }
    return fresh_prefix();
  };

  const auto oracle_lpm = [&oracle](Ipv4Addr addr) {
    const std::pair<const Ipv4Prefix, int>* best = nullptr;
    for (const auto& entry : oracle) {
      if (entry.first.contains(addr) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    return best;
  };
  const auto oracle_covering = [&oracle](const Ipv4Prefix& q) {
    const std::pair<const Ipv4Prefix, int>* best = nullptr;
    for (const auto& entry : oracle) {
      if (entry.first.length() <= q.length() &&
          entry.first.contains(q.base()) &&
          (best == nullptr || entry.first.length() > best->first.length())) {
        best = &entry;
      }
    }
    return best;
  };

  for (int op = 0; op < 10000; ++op) {
    switch (rng.next_below(6)) {
      case 0:
      case 1: {  // insert / overwrite
        const auto p = random_prefix();
        trie.insert(p, op);
        oracle[p] = op;
        inserted.push_back(p);
        break;
      }
      case 2: {  // erase (often an existing entry)
        const auto p = random_prefix();
        const bool expect = oracle.erase(p) > 0;
        EXPECT_EQ(trie.erase(p), expect);
        break;
      }
      case 3: {  // exact find
        const auto p = random_prefix();
        const auto it = oracle.find(p);
        const int* got = trie.find(p);
        if (it == oracle.end()) {
          EXPECT_EQ(got, nullptr);
        } else {
          ASSERT_NE(got, nullptr);
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      case 4: {  // longest_match
        const Ipv4Addr addr(static_cast<std::uint32_t>(rng.next_u64()));
        const auto* best = oracle_lpm(addr);
        const auto got = trie.longest_match(addr);
        if (best == nullptr) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(got->first, best->first);
          EXPECT_EQ(got->second.get(), best->second);
        }
        break;
      }
      case 5: {  // longest_covering
        const auto q = random_prefix();
        const auto* best = oracle_covering(q);
        const auto got = trie.longest_covering(q);
        if (best == nullptr) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(got->first, best->first);
          EXPECT_EQ(got->second.get(), best->second);
        }
        break;
      }
    }
    EXPECT_EQ(trie.size(), oracle.size());
  }

  // Final sweep: surviving entries match the oracle exactly, and for_each
  // yields them in (base, length) order — the same order std::map uses.
  const auto entries = trie.entries();
  ASSERT_EQ(entries.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [p, v] : entries) {
    EXPECT_EQ(p, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTrieStatefulProperty,
                         ::testing::Values(17, 404, 0xabcdef));

// Large-scale stateful property test for the path-compacted arena layout:
// 10k..1M prefixes against a std::map reference model, with random
// insert / exact-lookup / longest-prefix-match / erase sequences. Each
// phase draws from its own Rng::split stream so op mixes stay stable when
// one phase's draw count changes.
//
// The reference LPM avoids an O(n) scan by probing the map once per
// candidate length (33 masked lookups), so the oracle itself stays fast at
// one million entries.
class PrefixTrieScaleProperty
    : public ::testing::TestWithParam<std::size_t> {};

namespace {

const std::pair<const Ipv4Prefix, std::uint32_t>* map_lpm(
    const std::map<Ipv4Prefix, std::uint32_t>& reference, Ipv4Addr addr,
    std::uint8_t max_len = 32) {
  for (int len = max_len; len >= 0; --len) {
    const Ipv4Prefix candidate(addr, static_cast<std::uint8_t>(len));
    const auto it = reference.find(candidate);
    if (it != reference.end()) return &*it;
  }
  return nullptr;
}

}  // namespace

TEST_P(PrefixTrieScaleProperty, AgreesWithMapReference) {
  const std::size_t count = GetParam();
  const Rng base(0x5ca1ab1eull + count);
  PrefixTrie<std::uint32_t> trie;
  std::map<Ipv4Prefix, std::uint32_t> reference;

  // Insert phase: a routing-table-shaped mix — mostly /16../24 with some
  // short covering aggregates and /32 host routes.
  Rng insert_rng = base.split("insert");
  std::vector<Ipv4Prefix> inserted;
  inserted.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint8_t len;
    switch (insert_rng.next_below(10)) {
      case 0: len = static_cast<std::uint8_t>(insert_rng.uniform_int(1, 12)); break;
      case 1: len = 32; break;
      default:
        len = static_cast<std::uint8_t>(insert_rng.uniform_int(16, 24));
        break;
    }
    const Ipv4Prefix p(
        Ipv4Addr(static_cast<std::uint32_t>(insert_rng.next_u64())), len);
    trie.insert(p, static_cast<std::uint32_t>(i));
    reference[p] = static_cast<std::uint32_t>(i);
    inserted.push_back(p);
  }
  ASSERT_EQ(trie.size(), reference.size());

  // Path compression bound: every stored prefix adds at most one leaf and
  // one fork node to the arena (plus the root).
  EXPECT_LE(trie.node_count(), 2 * reference.size() + 1);

  // Exact lookups: half live entries, half fresh (mostly-absent) prefixes.
  Rng lookup_rng = base.split("lookup");
  const std::size_t probes = std::min<std::size_t>(count, 20000);
  for (std::size_t i = 0; i < probes; ++i) {
    const Ipv4Prefix p =
        lookup_rng.next_below(2) == 0
            ? inserted[lookup_rng.next_below(inserted.size())]
            : Ipv4Prefix(
                  Ipv4Addr(static_cast<std::uint32_t>(lookup_rng.next_u64())),
                  static_cast<std::uint8_t>(lookup_rng.uniform_int(8, 32)));
    const auto it = reference.find(p);
    const std::uint32_t* got = trie.find(p);
    if (it == reference.end()) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, it->second);
    }
  }

  // Longest-prefix matches: half targeted inside stored prefixes (so deep
  // matches are exercised), half uniform over the address space.
  Rng lpm_rng = base.split("lpm");
  for (std::size_t i = 0; i < probes; ++i) {
    Ipv4Addr addr(static_cast<std::uint32_t>(lpm_rng.next_u64()));
    if (lpm_rng.next_below(2) == 0) {
      const Ipv4Prefix& inside = inserted[lpm_rng.next_below(inserted.size())];
      addr = inside.address_at(lpm_rng.next_below(inside.size()));
    }
    const auto* best = map_lpm(reference, addr);
    const auto got = trie.longest_match(addr);
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->first, best->first);
      EXPECT_EQ(got->second.get(), best->second);
    }
  }

  // Erase a slice of live entries, then re-verify exact + LPM behaviour.
  Rng erase_rng = base.split("erase");
  for (std::size_t i = 0; i < probes / 2; ++i) {
    const Ipv4Prefix& p = inserted[erase_rng.next_below(inserted.size())];
    const bool expect = reference.erase(p) > 0;
    EXPECT_EQ(trie.erase(p), expect);
  }
  ASSERT_EQ(trie.size(), reference.size());
  for (std::size_t i = 0; i < probes / 2; ++i) {
    const Ipv4Addr addr(static_cast<std::uint32_t>(erase_rng.next_u64()));
    const auto* best = map_lpm(reference, addr);
    const auto got = trie.longest_match(addr);
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->first, best->first);
    }
  }
}

// The 1M case keeps the whole-suite budget in check because probe counts
// are capped; it is the size the huge tier's announced-prefix universe
// needs (ROADMAP: ~1M announced prefixes).
INSTANTIATE_TEST_SUITE_P(Sizes, PrefixTrieScaleProperty,
                         ::testing::Values(10'000, 100'000, 1'000'000));

}  // namespace
}  // namespace itm
