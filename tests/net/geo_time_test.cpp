#include <gtest/gtest.h>

#include "net/geo.h"
#include "net/sim_time.h"

namespace itm {
namespace {

TEST(Haversine, ZeroForSamePoint) {
  const GeoPoint p{48.85, 2.35};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, OneDegreeAtEquatorIsAbout111Km) {
  const GeoPoint a{0, 0}, b{0, 1};
  EXPECT_NEAR(haversine_km(a, b), 111.2, 0.5);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{48.85, 2.35}, b{35.68, 139.69};  // Paris <-> Tokyo
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
  EXPECT_NEAR(haversine_km(a, b), 9710, 100);
}

TEST(Haversine, Antipodal) {
  const GeoPoint a{0, 0}, b{0, 180};
  EXPECT_NEAR(haversine_km(a, b), 20015, 20);  // half circumference
}

TEST(MinRtt, GrowsWithDistanceAndIsPositive) {
  const GeoPoint a{0, 0}, near{0, 1}, far{0, 50};
  EXPECT_GT(min_rtt_ms(a, far), min_rtt_ms(a, near));
  EXPECT_GT(min_rtt_ms(a, near), 0.0);
  // ~1575 km/deg... sanity: 50 degrees ~ 5560 km => RTT >= ~70ms at c/1.47*1.3
  EXPECT_NEAR(min_rtt_ms(a, far), 2 * 5560 / (204.0 / 1.3), 10);
}

TEST(LocalHour, UtcAndOffsets) {
  EXPECT_DOUBLE_EQ(local_hour(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(local_hour(kSecondsPerHour * 12, 0.0), 12.0);
  EXPECT_DOUBLE_EQ(local_hour(0, 15.0), 1.0);    // +1h per 15 deg east
  EXPECT_DOUBLE_EQ(local_hour(0, -30.0), 22.0);  // wraps below zero
  EXPECT_DOUBLE_EQ(local_hour(kSecondsPerDay, 0.0), 0.0);  // wraps at a day
}

TEST(Diurnal, PeaksAt21Local) {
  EXPECT_NEAR(diurnal_multiplier(21.0), 1.75, 1e-12);
  EXPECT_NEAR(diurnal_multiplier(9.0), 0.25, 1e-12);  // trough opposite
  EXPECT_GT(diurnal_multiplier(20.0), diurnal_multiplier(12.0));
}

TEST(Diurnal, MeanOverDayIsOne) {
  double sum = 0;
  const int steps = 24 * 60;
  for (int i = 0; i < steps; ++i) {
    sum += diurnal_multiplier(24.0 * i / steps);
  }
  EXPECT_NEAR(sum / steps, 1.0, 1e-6);
}

TEST(Diurnal, DepthZeroIsFlat) {
  EXPECT_DOUBLE_EQ(diurnal_multiplier(3.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(diurnal_multiplier(21.0, 0.0), 1.0);
}

TEST(DiurnalAt, LongitudeShiftsPhase) {
  // At t where UTC hour is 21, longitude 0 peaks; longitude 180 troughs.
  const SimTime t = 21 * kSecondsPerHour;
  EXPECT_GT(diurnal_at(t, 0.0), diurnal_at(t, 180.0));
}

}  // namespace
}  // namespace itm
