#include "topology/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

#include "../test_scenario.h"
#include "routing/bgp.h"

namespace itm::topology {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(AsRelSerialization, RoundTripPreservesStructure) {
  auto& s = shared_tiny_scenario();
  const auto& original = s.topo().graph;

  std::stringstream stream;
  write_as_rel(original, stream);

  AsGraph loaded;
  const auto error = read_as_rel(stream, loaded);
  ASSERT_FALSE(error.has_value()) << error->message;

  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.links().size(), original.links().size());
  // Densification preserved first-appearance order == original order for a
  // graph exported with dense ASNs... not guaranteed in general, so compare
  // by name mapping.
  std::unordered_map<std::string, Asn> by_name;
  for (const auto& as : loaded.ases()) by_name.emplace(as.name, as.asn);
  for (const auto& link : original.links()) {
    const Asn la = by_name.at("AS" + std::to_string(link.a.value()));
    const Asn lb = by_name.at("AS" + std::to_string(link.b.value()));
    const auto rel = loaded.relation(la, lb);
    ASSERT_TRUE(rel.has_value());
    if (link.a_to_b == Relation::kPeer) {
      EXPECT_EQ(*rel, Relation::kPeer);
    } else {
      // a was the customer.
      EXPECT_EQ(*rel, Relation::kProvider);
    }
  }
}

TEST(AsRelSerialization, RoutingAgreesAfterRoundTrip) {
  auto& s = shared_tiny_scenario();
  std::stringstream stream;
  write_as_rel(s.topo().graph, stream);
  AsGraph loaded;
  ASSERT_FALSE(read_as_rel(stream, loaded).has_value());

  // Same dense order (export emits internal numbers; first appearance
  // follows link order) is NOT guaranteed, so compare reachable counts and
  // hop histograms, which are label-invariant.
  const routing::Bgp original_bgp(s.topo().graph);
  const routing::Bgp loaded_bgp(loaded);
  // Find the loaded Asn matching the original hypergiant by name.
  const Asn hg = s.topo().hypergiants.front();
  Asn loaded_hg{0};
  for (const auto& as : loaded.ases()) {
    if (as.name == "AS" + std::to_string(hg.value())) loaded_hg = as.asn;
  }
  const auto t1 = original_bgp.routes_to(hg);
  const auto t2 = loaded_bgp.routes_to(loaded_hg);
  std::size_t r1 = 0, r2 = 0;
  double hops1 = 0, hops2 = 0;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    if (t1.at(Asn(static_cast<std::uint32_t>(i))).reachable()) {
      ++r1;
      hops1 += t1.at(Asn(static_cast<std::uint32_t>(i))).hops;
    }
  }
  for (std::size_t i = 0; i < t2.size(); ++i) {
    if (t2.at(Asn(static_cast<std::uint32_t>(i))).reachable()) {
      ++r2;
      hops2 += t2.at(Asn(static_cast<std::uint32_t>(i))).hops;
    }
  }
  EXPECT_EQ(r1, r2);
  EXPECT_DOUBLE_EQ(hops1, hops2);
}

TEST(AsRelSerialization, ParsesRealWorldishFile) {
  std::stringstream stream;
  stream << "# comment line\n"
         << "174|2914|0\n"      // two tier-1s peering
         << "174|7922|-1\n"     // 174 provides 7922
         << "2914|7922|-1\n"    // multihomed customer
         << "7922|33651|-1\n"   // 7922 provides a stub
         << "\n";               // blank lines tolerated
  AsGraph graph;
  ASSERT_FALSE(read_as_rel(stream, graph).has_value());
  EXPECT_EQ(graph.size(), 4u);
  EXPECT_EQ(graph.links().size(), 4u);
  // AS names carry original numbers.
  bool found = false;
  for (const auto& as : graph.ases()) {
    if (as.name == "AS33651") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AsRelSerialization, RejectsMalformedInput) {
  const auto expect_error = [](const char* text, std::size_t line) {
    std::stringstream stream(text);
    AsGraph graph;
    const auto error = read_as_rel(stream, graph);
    ASSERT_TRUE(error.has_value()) << text;
    EXPECT_EQ(error->line, line);
  };
  expect_error("174\n", 1);
  expect_error("174|x|0\n", 1);
  expect_error("174|2914|7\n", 1);
  expect_error("174|174|0\n", 1);
  expect_error("1|2|0\n3|3|0\n", 2);
}

TEST(AsRelSerialization, DuplicateLinesKeepFirst) {
  std::stringstream stream;
  stream << "1|2|0\n1|2|0\n2|1|0\n";
  AsGraph graph;
  ASSERT_FALSE(read_as_rel(stream, graph).has_value());
  EXPECT_EQ(graph.links().size(), 1u);
}

}  // namespace
}  // namespace itm::topology
