#include "topology/as_table.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/rng.h"
#include "topology/generator.h"

namespace itm::topology {
namespace {

class AsTableTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TopologyConfig config;
    config.geography.num_countries = 4;
    config.geography.cities_per_country = 4;
    config.num_tier1 = 4;
    config.num_transit = 10;
    config.num_access = 30;
    config.num_content = 12;
    config.num_hypergiants = 3;
    config.num_enterprise = 10;
    Rng rng(7);
    topo_ = new Topology(generate_topology(config, rng));
  }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }

  static Topology* topo_;
};

Topology* AsTableTest::topo_ = nullptr;

TEST_F(AsTableTest, ScalarColumnsMatchAsInfo) {
  const AsGraph& graph = topo_->graph;
  const AsTable& table = topo_->table;
  ASSERT_EQ(table.size(), graph.size());
  for (const auto& as : graph.ases()) {
    EXPECT_EQ(table.type(as.asn), as.type);
    EXPECT_EQ(table.country(as.asn), as.country);
    EXPECT_EQ(table.home_city(as.asn), as.home_city);
    EXPECT_EQ(table.policy(as.asn), as.policy);
    EXPECT_EQ(table.profile(as.asn), as.profile);
    EXPECT_EQ(table.size_factor(as.asn), as.size_factor);
    EXPECT_EQ(table.name(as.asn), as.name);
  }
}

TEST_F(AsTableTest, StringTableOrderIsAsNamesThenCountries) {
  // The snapshot writer interns AS names in dense ASN order, then country
  // names; the topology table must reproduce exactly that order so the
  // serve layer can reuse it (layout equivalence depends on this).
  const AsTable& table = topo_->table;
  net::StringTable expected;
  for (const auto& as : topo_->graph.ases()) expected.intern(as.name);
  for (const auto& c : topo_->geography.countries()) expected.intern(c.name);
  ASSERT_EQ(table.strings().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(table.strings().at(static_cast<std::uint32_t>(i)),
              expected.at(static_cast<std::uint32_t>(i)));
  }
  for (const auto& c : topo_->geography.countries()) {
    EXPECT_EQ(table.strings().at(table.country_name_ref(c.id)), c.name);
  }
}

TEST_F(AsTableTest, CsrMatchesPerAsVectors) {
  const AsGraph& graph = topo_->graph;
  const AsTable& table = topo_->table;
  for (const auto& as : graph.ases()) {
    const auto& neighbors = graph.neighbors(as.asn);
    ASSERT_EQ(table.degree(as.asn), neighbors.size());
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const auto view = table.neighbor(as.asn, i);
      EXPECT_EQ(view.asn, neighbors[i].asn);
      EXPECT_EQ(view.relation, neighbors[i].relation);
      EXPECT_EQ(view.link_index, neighbors[i].link_index);
    }
    const auto cities = table.presence_cities(as.asn);
    ASSERT_EQ(cities.size(), as.presence_cities.size());
    EXPECT_TRUE(std::equal(cities.begin(), cities.end(),
                           as.presence_cities.begin()));
    const auto facilities = table.facilities(as.asn);
    ASSERT_EQ(facilities.size(), as.facilities.size());
    EXPECT_TRUE(
        std::equal(facilities.begin(), facilities.end(), as.facilities.begin()));
  }
}

TEST_F(AsTableTest, ConeSizesMatchGraphBfs) {
  for (const auto& as : topo_->graph.ases()) {
    EXPECT_EQ(topo_->table.cone_size(as.asn),
              topo_->graph.customer_cone_size(as.asn))
        << "asn " << as.asn;
  }
}

TEST_F(AsTableTest, RanksAreProviderMonotone) {
  const AsGraph& graph = topo_->graph;
  const AsTable& table = topo_->table;
  for (const auto& as : graph.ases()) {
    const auto degree = graph.degree(as.asn);
    std::uint32_t max_customer_rank = 0;
    bool has_customer = false;
    for (const auto& nb : graph.neighbors(as.asn)) {
      if (nb.relation != Relation::kCustomer) continue;
      has_customer = true;
      max_customer_rank = std::max(max_customer_rank, table.rank(nb.asn));
    }
    if (!has_customer) {
      EXPECT_EQ(table.rank(as.asn), 0u) << "asn " << as.asn;
      EXPECT_EQ(degree.customers, 0u);
    } else {
      EXPECT_EQ(table.rank(as.asn), max_customer_rank + 1)
          << "asn " << as.asn;
    }
  }
}

TEST_F(AsTableTest, RankBucketsPartitionAllAses) {
  const AsTable& table = topo_->table;
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < table.num_ranks(); ++r) {
    std::uint32_t prev = 0;
    bool first = true;
    for (const std::uint32_t asn : table.ases_at_rank(r)) {
      EXPECT_EQ(table.rank(Asn(asn)), r);
      if (!first) EXPECT_GT(asn, prev);  // ascending ASN within a rank
      prev = asn;
      first = false;
      ++total;
    }
  }
  EXPECT_EQ(total, table.size());
}

TEST_F(AsTableTest, MemoryAccountingIsNonTrivial) {
  EXPECT_GT(topo_->table.memory_bytes(), 0u);
  EXPECT_GT(topo_->graph.memory_bytes(), 0u);
  // The SoA columns must undercut the AoS layout (struct padding, per-AS
  // heap vectors); this is the bench's bytes/AS claim at unit-test scale.
  EXPECT_LT(topo_->table.memory_bytes(), topo_->graph.memory_bytes());
}

}  // namespace
}  // namespace itm::topology
