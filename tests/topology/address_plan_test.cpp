#include "topology/address_plan.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace itm::topology {
namespace {

TopologyConfig small_topology() {
  TopologyConfig c;
  c.geography.num_countries = 3;
  c.geography.cities_per_country = 4;
  c.num_tier1 = 3;
  c.num_transit = 6;
  c.num_access = 15;
  c.num_content = 6;
  c.num_hypergiants = 2;
  c.num_enterprise = 5;
  return c;
}

class AddressPlanTest : public ::testing::Test {
 protected:
  AddressPlanTest() : rng_(11), topo_(generate_topology(small_topology(), rng_)) {}
  Rng rng_;
  Topology topo_;
};

TEST_F(AddressPlanTest, AggregatesDoNotOverlap) {
  const auto& all = topo_.addresses.all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i].aggregate.contains(all[j].aggregate))
          << all[i].aggregate << " contains " << all[j].aggregate;
      EXPECT_FALSE(all[j].aggregate.contains(all[i].aggregate));
    }
  }
}

TEST_F(AddressPlanTest, AggregateSizedToNeeds) {
  for (const auto& a : topo_.addresses.all()) {
    const std::uint64_t needed =
        a.user_slash24s + a.content_slash24s + a.misc_slash24s + 1;
    EXPECT_GE(a.aggregate.size() / 256, needed);
    // Power-of-two and not more than 2x oversized.
    EXPECT_LT(a.aggregate.size() / 256, 2 * needed);
  }
}

TEST_F(AddressPlanTest, RangesDisjointWithinAggregate) {
  for (const auto& a : topo_.addresses.all()) {
    if (a.user_slash24s == 0 || a.content_slash24s == 0) continue;
    const auto user_last =
        topo_.addresses.user_slash24(a.asn, a.user_slash24s - 1);
    const auto content_first = topo_.addresses.content_slash24(a.asn, 0);
    EXPECT_LT(user_last.base(), content_first.base());
  }
}

TEST_F(AddressPlanTest, InfraIsLastAnnouncedSlash24) {
  for (const auto& a : topo_.addresses.all()) {
    EXPECT_TRUE(a.aggregate.contains(a.infra_slash24));
    EXPECT_EQ(a.announced_slash24s,
              a.user_slash24s + a.content_slash24s + a.misc_slash24s + 1);
    EXPECT_LE(a.announced_slash24s, a.aggregate.size() / 256);
    EXPECT_EQ(a.infra_slash24, a.aggregate.child(24, a.announced_slash24s - 1));
  }
}

TEST_F(AddressPlanTest, OriginLookupByAddressAndPrefix) {
  for (const auto& a : topo_.addresses.all()) {
    EXPECT_EQ(topo_.addresses.origin_of(a.aggregate.base()), a.asn);
    EXPECT_EQ(topo_.addresses.origin_of(a.infra_slash24), a.asn);
    EXPECT_EQ(
        topo_.addresses.origin_of(a.aggregate.address_at(a.aggregate.size() - 1)),
        a.asn);
  }
  // Unallocated space has no origin.
  EXPECT_FALSE(topo_.addresses.origin_of(Ipv4Addr::from_octets(0, 1, 2, 3))
                   .has_value());
}

TEST_F(AddressPlanTest, AccessAsesHaveUsers) {
  for (const Asn asn : topo_.accesses) {
    EXPECT_GT(topo_.addresses.of(asn).user_slash24s, 0u);
  }
  for (const Asn asn : topo_.tier1s) {
    EXPECT_EQ(topo_.addresses.of(asn).user_slash24s, 0u);
  }
}

TEST_F(AddressPlanTest, RoutableEnumerationMatchesTotals) {
  const auto routable = topo_.addresses.routable_slash24s();
  EXPECT_EQ(routable.size(), topo_.addresses.total_slash24_count());
  // All enumerated /24s resolve to an origin.
  for (std::size_t i = 0; i < routable.size(); i += 97) {
    EXPECT_TRUE(topo_.addresses.origin_of(routable[i]).has_value());
  }
}

TEST_F(AddressPlanTest, UserSlash24sAreSubsetOfRoutable) {
  const auto user = topo_.addresses.user_slash24s();
  std::size_t expected = 0;
  for (const auto& a : topo_.addresses.all()) expected += a.user_slash24s;
  EXPECT_EQ(user.size(), expected);
  for (const auto& p : user) {
    const auto asn = topo_.addresses.origin_of(p);
    ASSERT_TRUE(asn.has_value());
    EXPECT_EQ(topo_.graph.info(*asn).type, AsType::kAccess);
  }
}

}  // namespace
}  // namespace itm::topology
