#include "topology/generator.h"

#include <gtest/gtest.h>

#include "routing/bgp.h"

namespace itm::topology {
namespace {

TopologyConfig test_config() {
  TopologyConfig c;
  c.geography.num_countries = 8;
  c.geography.cities_per_country = 5;
  c.num_tier1 = 4;
  c.num_transit = 12;
  c.num_access = 40;
  c.num_content = 15;
  c.num_hypergiants = 3;
  c.num_enterprise = 10;
  return c;
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : rng_(77), topo_(generate_topology(test_config(), rng_)) {}
  Rng rng_;
  Topology topo_;
};

TEST_F(GeneratorTest, CountsMatchConfig) {
  EXPECT_EQ(topo_.tier1s.size(), 4u);
  EXPECT_EQ(topo_.transits.size(), 12u);
  EXPECT_EQ(topo_.accesses.size(), 40u);
  EXPECT_EQ(topo_.contents.size(), 15u);
  EXPECT_EQ(topo_.hypergiants.size(), 3u);
  EXPECT_EQ(topo_.enterprises.size(), 10u);
  EXPECT_EQ(topo_.graph.size(), 4u + 12 + 40 + 15 + 3 + 10);
}

TEST_F(GeneratorTest, Tier1FullMesh) {
  for (std::size_t i = 0; i < topo_.tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < topo_.tier1s.size(); ++j) {
      EXPECT_EQ(topo_.graph.relation(topo_.tier1s[i], topo_.tier1s[j]),
                Relation::kPeer);
    }
  }
}

TEST_F(GeneratorTest, EveryNonTier1HasAProvider) {
  for (const auto& as : topo_.graph.ases()) {
    if (as.type == AsType::kTier1) continue;
    EXPECT_GT(topo_.graph.degree(as.asn).providers, 0u)
        << as.name << " has no provider";
  }
}

TEST_F(GeneratorTest, EveryAsCanReachEveryTier1) {
  const routing::Bgp bgp(topo_.graph);
  const auto table = bgp.routes_to(topo_.tier1s.front());
  for (const auto& as : topo_.graph.ases()) {
    EXPECT_TRUE(table.at(as.asn).reachable()) << as.name;
  }
}

TEST_F(GeneratorTest, NamedIspsExistWithFixedSizes) {
  bool found_orange = false;
  for (const Asn asn : topo_.accesses) {
    const auto& info = topo_.graph.info(asn);
    if (info.name == "Orange") {
      found_orange = true;
      EXPECT_DOUBLE_EQ(info.size_factor, 3.2);
      EXPECT_EQ(info.country.value(), 0u);
    }
  }
  EXPECT_TRUE(found_orange);
}

TEST_F(GeneratorTest, HypergiantsPeerWithMostLargeEyeballs) {
  std::size_t large = 0, large_peered = 0, small = 0, small_peered = 0;
  for (const Asn a : topo_.accesses) {
    const bool is_large = topo_.graph.info(a).size_factor > 2.5;
    bool peered = false;
    for (const Asn h : topo_.hypergiants) {
      if (topo_.graph.relation(h, a) == Relation::kPeer) peered = true;
    }
    (is_large ? large : small) += 1;
    if (peered) (is_large ? large_peered : small_peered) += 1;
  }
  ASSERT_GT(large, 0u);
  ASSERT_GT(small, 0u);
  // Flattening: big eyeballs nearly always peer directly with a hypergiant,
  // and far more often than small ones.
  EXPECT_GT(static_cast<double>(large_peered) / large, 0.8);
  EXPECT_GT(static_cast<double>(large_peered) / large,
            static_cast<double>(small_peered) / small);
}

TEST_F(GeneratorTest, PeeringRequiresNoTier1OrEnterpriseEndpoints) {
  for (const auto& link : topo_.graph.links()) {
    if (link.a_to_b != Relation::kPeer) continue;
    const auto ta = topo_.graph.info(link.a).type;
    const auto tb = topo_.graph.info(link.b).type;
    const bool tier1_pair = ta == AsType::kTier1 && tb == AsType::kTier1;
    EXPECT_TRUE(tier1_pair || (ta != AsType::kTier1 && tb != AsType::kTier1));
    EXPECT_NE(ta, AsType::kEnterprise);
    EXPECT_NE(tb, AsType::kEnterprise);
  }
}

TEST_F(GeneratorTest, PeeringAffinityModelProperties) {
  const auto config = test_config();
  AsInfo open_content;
  open_content.type = AsType::kContent;
  open_content.policy = PeeringPolicy::kOpen;
  open_content.profile = TrafficProfile::kHeavyOutbound;
  open_content.size_factor = 1.0;
  AsInfo open_eyeball = open_content;
  open_eyeball.type = AsType::kAccess;
  open_eyeball.profile = TrafficProfile::kHeavyInbound;
  AsInfo restrictive = open_content;
  restrictive.policy = PeeringPolicy::kRestrictive;

  // No shared facility, no peering.
  EXPECT_DOUBLE_EQ(peering_affinity(open_content, open_eyeball, 0, config),
                   0.0);
  // Complementary open pairs peer more than restrictive ones.
  EXPECT_GT(peering_affinity(open_content, open_eyeball, 1, config),
            peering_affinity(restrictive, open_eyeball, 1, config));
  // More shared facilities help.
  EXPECT_GE(peering_affinity(open_content, open_eyeball, 3, config),
            peering_affinity(open_content, open_eyeball, 1, config));
  // Probability bounded.
  EXPECT_LE(peering_affinity(open_content, open_eyeball, 10, config), 0.95);
}

TEST_F(GeneratorTest, AccessesInSortedBySize) {
  const auto in_country = topo_.accesses_in(CountryId(0));
  for (std::size_t i = 1; i < in_country.size(); ++i) {
    EXPECT_GE(topo_.graph.info(in_country[i - 1]).size_factor,
              topo_.graph.info(in_country[i]).size_factor);
  }
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  Rng r1(5), r2(5);
  const auto t1 = generate_topology(test_config(), r1);
  const auto t2 = generate_topology(test_config(), r2);
  ASSERT_EQ(t1.graph.size(), t2.graph.size());
  ASSERT_EQ(t1.graph.links().size(), t2.graph.links().size());
  for (std::size_t i = 0; i < t1.graph.links().size(); ++i) {
    EXPECT_EQ(t1.graph.links()[i].a, t2.graph.links()[i].a);
    EXPECT_EQ(t1.graph.links()[i].b, t2.graph.links()[i].b);
  }
}

TEST_F(GeneratorTest, HypergiantsSkipSomeSmallCountries) {
  // At least one (hypergiant, country) pair without presence, so anycast
  // can be suboptimal cross-border.
  bool some_absent = false;
  for (const Asn h : topo_.hypergiants) {
    const auto& info = topo_.graph.info(h);
    for (const auto& country : topo_.geography.countries()) {
      bool present = false;
      for (const CityId city : info.presence_cities) {
        if (topo_.geography.city(city).country == country.id) present = true;
      }
      if (!present) some_absent = true;
    }
  }
  EXPECT_TRUE(some_absent);
}

}  // namespace
}  // namespace itm::topology
