#include "topology/geography.h"

#include <gtest/gtest.h>

#include <numeric>

namespace itm::topology {
namespace {

GeographyConfig small_config() {
  GeographyConfig c;
  c.num_countries = 5;
  c.cities_per_country = 6;
  return c;
}

TEST(Geography, GeneratesRequestedCounts) {
  Rng rng(1);
  const auto geo = Geography::generate(small_config(), rng);
  EXPECT_EQ(geo.countries().size(), 5u);
  EXPECT_EQ(geo.cities().size(), 30u);
  EXPECT_FALSE(geo.facilities().empty());
}

TEST(Geography, CountrySharesSumToOne) {
  Rng rng(2);
  const auto geo = Geography::generate(small_config(), rng);
  double total = 0;
  for (const auto& c : geo.countries()) total += c.user_share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Geography, CityWeightsSumToOnePerCountry) {
  Rng rng(3);
  const auto geo = Geography::generate(small_config(), rng);
  for (const auto& country : geo.countries()) {
    double total = 0;
    for (const CityId id : country.cities) {
      total += geo.city(id).population_weight;
      EXPECT_EQ(geo.city(id).country, country.id);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Geography, CoordinatesAreValid) {
  Rng rng(4);
  const auto geo = Geography::generate(small_config(), rng);
  for (const auto& city : geo.cities()) {
    EXPECT_GE(city.location.lat_deg, -90.0);
    EXPECT_LE(city.location.lat_deg, 90.0);
    EXPECT_GE(city.location.lon_deg, -180.0);
    EXPECT_LE(city.location.lon_deg, 180.0);
  }
}

TEST(Geography, FacilitiesOnlyInLargerCities) {
  Rng rng(5);
  const auto geo = Geography::generate(small_config(), rng);
  for (const auto& facility : geo.facilities()) {
    const auto& city = geo.city(facility.city);
    // Facilities sit in the top half of cities by construction.
    const auto& country = geo.country(city.country);
    const auto it = std::find(country.cities.begin(), country.cities.end(),
                              city.id);
    const auto rank = static_cast<std::size_t>(it - country.cities.begin());
    EXPECT_LT(rank, std::max<std::size_t>(1, country.cities.size() / 2));
  }
  // The largest city of each country has at least one facility.
  for (const auto& country : geo.countries()) {
    EXPECT_FALSE(geo.facilities_in(country.cities.front()).empty());
  }
}

TEST(Geography, SampleCityRespectsCountry) {
  Rng rng(6);
  const auto geo = Geography::generate(small_config(), rng);
  for (int i = 0; i < 50; ++i) {
    const auto country = geo.sample_country(rng);
    const auto city = geo.sample_city(country, rng);
    EXPECT_EQ(geo.city(city).country, country);
  }
}

TEST(Geography, SampleCountryFavorsLargeShares) {
  Rng rng(7);
  const auto geo = Geography::generate(small_config(), rng);
  // Find the largest-share country and verify it is sampled most often.
  std::size_t largest = 0;
  for (std::size_t c = 0; c < geo.countries().size(); ++c) {
    if (geo.countries()[c].user_share >
        geo.countries()[largest].user_share) {
      largest = c;
    }
  }
  std::vector<int> counts(geo.countries().size(), 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[geo.sample_country(rng).value()];
  }
  for (std::size_t c = 0; c < counts.size(); ++c) {
    EXPECT_GE(counts[largest], counts[c]);
  }
}

TEST(Geography, DeterministicForSeed) {
  Rng r1(9), r2(9);
  const auto g1 = Geography::generate(small_config(), r1);
  const auto g2 = Geography::generate(small_config(), r2);
  ASSERT_EQ(g1.cities().size(), g2.cities().size());
  for (std::size_t i = 0; i < g1.cities().size(); ++i) {
    EXPECT_EQ(g1.cities()[i].location, g2.cities()[i].location);
    EXPECT_EQ(g1.cities()[i].name, g2.cities()[i].name);
  }
}

}  // namespace
}  // namespace itm::topology
