#include <gtest/gtest.h>

#include <algorithm>

#include "../test_scenario.h"
#include "routing/public_view.h"
#include "topology/generator.h"

namespace itm::topology {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(Ixp, LargerCountriesGetExchanges) {
  auto& s = shared_tiny_scenario();
  EXPECT_FALSE(s.topo().ixps.empty());
  EXPECT_LE(s.topo().ixps.size(), s.topo().geography.countries().size());
}

TEST(Ixp, MembersArePresentAtTheFacility) {
  auto& s = shared_tiny_scenario();
  for (const auto& ixp : s.topo().ixps) {
    for (const Asn member : ixp.members) {
      const auto& info = s.topo().graph.info(member);
      EXPECT_NE(std::find(info.facilities.begin(), info.facilities.end(),
                          ixp.facility),
                info.facilities.end())
          << info.name << " not at " << ixp.name;
      EXPECT_NE(info.type, AsType::kTier1);
      EXPECT_NE(info.type, AsType::kHypergiant);
      EXPECT_NE(info.type, AsType::kEnterprise);
    }
  }
}

TEST(Ixp, RouteServerParticipantsAreMembers) {
  auto& s = shared_tiny_scenario();
  for (const auto& ixp : s.topo().ixps) {
    for (const Asn participant : ixp.route_server_participants) {
      EXPECT_NE(std::find(ixp.members.begin(), ixp.members.end(), participant),
                ixp.members.end());
      EXPECT_NE(s.topo().graph.info(participant).policy,
                PeeringPolicy::kRestrictive);
    }
  }
}

TEST(Ixp, RouteServerMeshIsComplete) {
  auto& s = shared_tiny_scenario();
  for (const auto& ixp : s.topo().ixps) {
    const auto& rs = ixp.route_server_participants;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      for (std::size_t j = i + 1; j < rs.size(); ++j) {
        // Adjacent either through the route server (peer) or through a
        // pre-existing business relationship (transit links are kept).
        EXPECT_TRUE(s.topo().graph.adjacent(rs[i], rs[j]))
            << s.topo().graph.info(rs[i]).name << " / "
            << s.topo().graph.info(rs[j]).name;
      }
    }
  }
}

TEST(Ixp, RouteServerLinksAreFlagged) {
  auto& s = shared_tiny_scenario();
  std::size_t rs_links = 0;
  for (const auto& link : s.topo().graph.links()) {
    if (link.via_route_server) {
      ++rs_links;
      EXPECT_EQ(link.a_to_b, Relation::kPeer);
      ASSERT_EQ(link.facilities.size(), 1u);
    }
  }
  EXPECT_GT(rs_links, 0u);
}

TEST(Ixp, RouteServerLinksMostlyInvisibleToCollectors) {
  auto& s = shared_tiny_scenario();
  const routing::Bgp bgp(s.topo().graph);
  std::vector<Asn> feeders = s.topo().tier1s;
  for (std::size_t i = 0; i < s.topo().transits.size() / 3; ++i) {
    feeders.push_back(s.topo().transits[i]);
  }
  std::vector<Asn> dests;
  for (const auto& as : s.topo().graph.ases()) dests.push_back(as.asn);
  const auto view = routing::collect_public_view(bgp, feeders, dests);
  std::size_t rs_total = 0, rs_seen = 0;
  for (const auto& link : s.topo().graph.links()) {
    if (!link.via_route_server) continue;
    ++rs_total;
    if (view.observed(link.a, link.b)) ++rs_seen;
  }
  ASSERT_GT(rs_total, 0u);
  // [4]: more than 90% of the IXP's peerings were invisible.
  EXPECT_LT(static_cast<double>(rs_seen) / static_cast<double>(rs_total),
            0.35);
}

TEST(Ixp, DisabledByConfig) {
  auto config = core::tiny_config(99);
  config.topology.build_ixps = false;
  Rng rng(config.seed);
  const auto topo = generate_topology(config.topology, rng);
  EXPECT_TRUE(topo.ixps.empty());
  for (const auto& link : topo.graph.links()) {
    EXPECT_FALSE(link.via_route_server);
  }
}

}  // namespace
}  // namespace itm::topology
