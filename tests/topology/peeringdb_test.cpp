#include "topology/peeringdb.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/generator.h"

namespace itm::topology {
namespace {

TopologyConfig test_config() {
  TopologyConfig c;
  c.geography.num_countries = 4;
  c.num_tier1 = 3;
  c.num_transit = 10;
  c.num_access = 30;
  c.num_content = 10;
  c.num_hypergiants = 2;
  c.num_enterprise = 8;
  return c;
}

class PeeringDbTest : public ::testing::Test {
 protected:
  PeeringDbTest() : rng_(3), topo_(generate_topology(test_config(), rng_)) {
    db_ = PeeringDb::build(topo_.graph, PeeringDbConfig{}, rng_);
  }
  Rng rng_;
  Topology topo_;
  PeeringDb db_;
};

TEST_F(PeeringDbTest, HypergiantsAlwaysRegistered) {
  for (const Asn h : topo_.hypergiants) {
    EXPECT_NE(db_.lookup(h), nullptr);
  }
}

TEST_F(PeeringDbTest, CoverageIsPartial) {
  EXPECT_GT(db_.records().size(), 0u);
  EXPECT_LT(db_.records().size(), topo_.graph.size());
}

TEST_F(PeeringDbTest, DeclaredFacilitiesAreSubsetOfActual) {
  for (const auto& rec : db_.records()) {
    const auto& actual = topo_.graph.info(rec.asn).facilities;
    for (const auto f : rec.facilities) {
      EXPECT_NE(std::find(actual.begin(), actual.end(), f), actual.end());
    }
  }
}

TEST_F(PeeringDbTest, TrafficLevelCorrelatesWithSize) {
  // Networks with size > 2 should rarely declare a lower traffic level than
  // networks with size < 0.3; check means.
  double big_sum = 0, small_sum = 0;
  int big_n = 0, small_n = 0;
  for (const auto& rec : db_.records()) {
    const double size = topo_.graph.info(rec.asn).size_factor;
    if (size > 2.0) {
      big_sum += rec.traffic_level;
      ++big_n;
    } else if (size < 0.3) {
      small_sum += rec.traffic_level;
      ++small_n;
    }
  }
  if (big_n > 0 && small_n > 0) {
    EXPECT_GT(big_sum / big_n, small_sum / small_n);
  }
}

TEST_F(PeeringDbTest, MembersOfFacility) {
  // Every record's declared facilities must list it as a member.
  for (const auto& rec : db_.records()) {
    for (const auto f : rec.facilities) {
      const auto members = db_.members_of(f);
      EXPECT_NE(std::find(members.begin(), members.end(), rec.asn),
                members.end());
    }
  }
}

TEST_F(PeeringDbTest, LookupUnregisteredReturnsNull) {
  // Find an AS without a record (coverage is partial so one must exist).
  bool found = false;
  for (const auto& as : topo_.graph.ases()) {
    if (db_.lookup(as.asn) == nullptr) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PeeringDbConfigTest, ZeroRegistrationGivesEmptyDb) {
  Rng rng(4);
  auto topo = generate_topology(test_config(), rng);
  PeeringDbConfig config;
  config.p_register_hypergiant = 0;
  config.p_register_content = 0;
  config.p_register_transit = 0;
  config.p_register_access = 0;
  config.p_register_tier1 = 0;
  config.p_register_enterprise = 0;
  const auto db = PeeringDb::build(topo.graph, config, rng);
  EXPECT_TRUE(db.records().empty());
}

}  // namespace
}  // namespace itm::topology
