#include "topology/as_graph.h"

#include <gtest/gtest.h>

namespace itm::topology {
namespace {

AsInfo mk(const char* name, AsType type = AsType::kTransit) {
  AsInfo info;
  info.name = name;
  info.type = type;
  return info;
}

TEST(AsGraph, AddAsAssignsDenseAsns) {
  AsGraph g;
  const Asn a = g.add_as(mk("a"));
  const Asn b = g.add_as(mk("b"));
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.info(a).name, "a");
}

TEST(AsGraph, TransitRelationsAreAsymmetric) {
  AsGraph g;
  const Asn customer = g.add_as(mk("c"));
  const Asn provider = g.add_as(mk("p"));
  g.add_transit(customer, provider);
  EXPECT_EQ(g.relation(customer, provider), Relation::kProvider);
  EXPECT_EQ(g.relation(provider, customer), Relation::kCustomer);
  EXPECT_TRUE(g.adjacent(customer, provider));
  EXPECT_TRUE(g.adjacent(provider, customer));
}

TEST(AsGraph, PeeringIsSymmetric) {
  AsGraph g;
  const Asn a = g.add_as(mk("a"));
  const Asn b = g.add_as(mk("b"));
  g.add_peering(a, b);
  EXPECT_EQ(g.relation(a, b), Relation::kPeer);
  EXPECT_EQ(g.relation(b, a), Relation::kPeer);
}

TEST(AsGraph, RelationOfNonNeighborsIsEmpty) {
  AsGraph g;
  const Asn a = g.add_as(mk("a"));
  const Asn b = g.add_as(mk("b"));
  EXPECT_FALSE(g.relation(a, b).has_value());
  EXPECT_FALSE(g.adjacent(a, b));
}

TEST(AsGraph, CustomerConeFollowsCustomerEdgesOnly) {
  AsGraph g;
  const Asn top = g.add_as(mk("top"));
  const Asn mid = g.add_as(mk("mid"));
  const Asn leaf = g.add_as(mk("leaf"));
  const Asn peer = g.add_as(mk("peer"));
  g.add_transit(mid, top);   // mid is top's customer
  g.add_transit(leaf, mid);  // leaf is mid's customer
  g.add_peering(top, peer);
  const auto cone = g.customer_cone(top);
  EXPECT_EQ(cone.size(), 3u);  // top, mid, leaf; peer excluded
  EXPECT_EQ(g.customer_cone_size(leaf), 1u);
  EXPECT_EQ(g.customer_cone_size(mid), 2u);
}

TEST(AsGraph, ConeHandlesMultihoming) {
  AsGraph g;
  const Asn p1 = g.add_as(mk("p1"));
  const Asn p2 = g.add_as(mk("p2"));
  const Asn c = g.add_as(mk("c"));
  g.add_transit(c, p1);
  g.add_transit(c, p2);
  EXPECT_EQ(g.customer_cone_size(p1), 2u);
  EXPECT_EQ(g.customer_cone_size(p2), 2u);
}

TEST(AsGraph, DegreeCounts) {
  AsGraph g;
  const Asn a = g.add_as(mk("a"));
  const Asn b = g.add_as(mk("b"));
  const Asn c = g.add_as(mk("c"));
  const Asn d = g.add_as(mk("d"));
  g.add_transit(b, a);  // b customer of a
  g.add_transit(a, c);  // a customer of c
  g.add_peering(a, d);
  const auto deg = g.degree(a);
  EXPECT_EQ(deg.customers, 1u);
  EXPECT_EQ(deg.providers, 1u);
  EXPECT_EQ(deg.peers, 1u);
  EXPECT_EQ(deg.total(), 3u);
}

TEST(AsGraph, AsesOfType) {
  AsGraph g;
  g.add_as(mk("t1", AsType::kTier1));
  g.add_as(mk("acc", AsType::kAccess));
  g.add_as(mk("t1b", AsType::kTier1));
  EXPECT_EQ(g.ases_of_type(AsType::kTier1).size(), 2u);
  EXPECT_EQ(g.ases_of_type(AsType::kAccess).size(), 1u);
  EXPECT_TRUE(g.ases_of_type(AsType::kHypergiant).empty());
}

TEST(AsGraph, LinkFacilitiesPreserved) {
  AsGraph g;
  const Asn a = g.add_as(mk("a"));
  const Asn b = g.add_as(mk("b"));
  g.add_peering(a, b, {FacilityId(7)});
  ASSERT_EQ(g.links().size(), 1u);
  ASSERT_EQ(g.links()[0].facilities.size(), 1u);
  EXPECT_EQ(g.links()[0].facilities[0], FacilityId(7));
}

TEST(AsGraph, ToStringCoversAllEnums) {
  EXPECT_STREQ(to_string(AsType::kTier1), "tier1");
  EXPECT_STREQ(to_string(AsType::kHypergiant), "hypergiant");
  EXPECT_STREQ(to_string(PeeringPolicy::kOpen), "open");
  EXPECT_STREQ(to_string(TrafficProfile::kHeavyInbound), "heavy-inbound");
}

}  // namespace
}  // namespace itm::topology
