#include "traffic/user_base.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_scenario.h"
#include "net/stats.h"

namespace itm::traffic {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(UserBase, OnePrefixRecordPerUserSlash24) {
  auto& s = shared_tiny_scenario();
  std::size_t expected = 0;
  for (const auto& a : s.topo().addresses.all()) expected += a.user_slash24s;
  EXPECT_EQ(s.users().size(), expected);
}

TEST(UserBase, FindByExactPrefix) {
  auto& s = shared_tiny_scenario();
  const auto& first = s.users().all().front();
  const auto* found = s.users().find(first.prefix);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->prefix, first.prefix);
  // A non-user prefix returns nullptr.
  const auto infra = s.topo().addresses.of(s.topo().accesses.front())
                         .infra_slash24;
  EXPECT_EQ(s.users().find(infra), nullptr);
}

TEST(UserBase, TotalsMatchPerPrefixSums) {
  auto& s = shared_tiny_scenario();
  double users = 0, activity = 0;
  for (const auto& up : s.users().all()) {
    users += up.users;
    activity += up.activity;
  }
  EXPECT_NEAR(users, s.users().total_users(), 1e-6);
  EXPECT_NEAR(activity, s.users().total_activity(), 1e-6);
}

TEST(UserBase, PerAsAggregatesConsistent) {
  auto& s = shared_tiny_scenario();
  for (const Asn asn : s.topo().accesses) {
    double users = 0;
    for (const auto& up : s.users().all()) {
      if (up.asn == asn) users += up.users;
    }
    EXPECT_NEAR(users, s.users().as_users(asn), 1e-6);
    EXPECT_GT(s.users().as_users(asn), 0.0);
  }
  // Non-access ASes host no users.
  EXPECT_DOUBLE_EQ(s.users().as_users(s.topo().tier1s.front()), 0.0);
}

TEST(UserBase, CitiesBelongToTheAsPresence) {
  auto& s = shared_tiny_scenario();
  for (const auto& up : s.users().all()) {
    const auto& presence = s.topo().graph.info(up.asn).presence_cities;
    EXPECT_NE(std::find(presence.begin(), presence.end(), up.city),
              presence.end());
  }
}

TEST(UserBase, BehavioralSharesInRange) {
  auto& s = shared_tiny_scenario();
  for (const auto& up : s.users().all()) {
    EXPECT_GE(up.public_dns_share, 0.0);
    EXPECT_LE(up.public_dns_share, 0.95);
    EXPECT_GE(up.chromium_share, 0.2);
    EXPECT_LE(up.chromium_share, 0.95);
    EXPECT_GT(up.users, 0.0);
    EXPECT_GT(up.activity, 0.0);
  }
}

TEST(UserBase, PublicDnsAdoptionVariesByCountry) {
  auto& s = shared_tiny_scenario();
  const auto& countries = s.topo().geography.countries();
  double lo = 1.0, hi = 0.0;
  for (const auto& c : countries) {
    const double adoption = s.users().country_public_dns(c.id);
    lo = std::min(lo, adoption);
    hi = std::max(hi, adoption);
    EXPECT_GE(adoption, 0.05);
    EXPECT_LE(adoption, 0.8);
  }
  EXPECT_GT(hi - lo, 0.01);  // some cross-country variation
}

TEST(UserBase, SizeFactorDrivesAsUserCounts) {
  auto& s = shared_tiny_scenario();
  // Spearman between size_factor and as_users should be strongly positive.
  std::vector<double> size, users;
  for (const Asn a : s.topo().accesses) {
    size.push_back(s.topo().graph.info(a).size_factor);
    users.push_back(s.users().as_users(a));
  }
  EXPECT_GT(spearman(size, users), 0.7);
}

}  // namespace
}  // namespace itm::traffic
