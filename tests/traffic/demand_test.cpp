#include "traffic/demand.h"

#include <gtest/gtest.h>

#include <numeric>

#include "../test_scenario.h"
#include "net/stats.h"

namespace itm::traffic {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(TrafficMatrix, TotalEqualsActivityTimesScale) {
  auto& s = shared_tiny_scenario();
  // Popularity sums to 1, so total bytes = total activity x scale.
  EXPECT_NEAR(s.matrix().total_bytes(),
              s.users().total_activity() * s.config().demand.bytes_scale,
              s.matrix().total_bytes() * 1e-9);
}

TEST(TrafficMatrix, PerPrefixSumsToTotal) {
  auto& s = shared_tiny_scenario();
  const auto pb = s.matrix().prefix_bytes();
  const double sum = std::accumulate(pb.begin(), pb.end(), 0.0);
  EXPECT_NEAR(sum, s.matrix().total_bytes(), s.matrix().total_bytes() * 1e-9);
}

TEST(TrafficMatrix, PerServiceSumsToTotal) {
  auto& s = shared_tiny_scenario();
  double sum = 0;
  for (const auto& svc : s.catalog().services()) {
    sum += s.matrix().service_bytes(svc.id);
  }
  EXPECT_NEAR(sum, s.matrix().total_bytes(), s.matrix().total_bytes() * 1e-9);
}

TEST(TrafficMatrix, HypergiantBytesMatchServiceSums) {
  auto& s = shared_tiny_scenario();
  for (const auto& hg : s.deployment().hypergiants()) {
    double expected = 0;
    for (const auto& svc : s.catalog().services()) {
      if (svc.hypergiant == hg.id) expected += s.matrix().service_bytes(svc.id);
    }
    EXPECT_NEAR(s.matrix().hypergiant_bytes(hg.id), expected,
                expected * 1e-9 + 1e-6);
  }
}

TEST(TrafficMatrix, HypergiantsCarryConfiguredShare) {
  auto& s = shared_tiny_scenario();
  double hg_bytes = 0;
  for (const auto& hg : s.deployment().hypergiants()) {
    hg_bytes += s.matrix().hypergiant_bytes(hg.id);
  }
  EXPECT_NEAR(hg_bytes / s.matrix().total_bytes(),
              s.config().services.hypergiant_traffic_share, 1e-6);
}

TEST(TrafficMatrix, PrefixHypergiantDecomposition) {
  auto& s = shared_tiny_scenario();
  for (const auto& hg : s.deployment().hypergiants()) {
    double sum = 0;
    for (std::size_t pi = 0; pi < s.users().size(); ++pi) {
      sum += s.matrix().prefix_hypergiant_bytes(pi, hg.id);
    }
    EXPECT_NEAR(sum, s.matrix().hypergiant_bytes(hg.id),
                sum * 1e-9 + 1e-6);
  }
}

TEST(TrafficMatrix, AsClientBytesMatchPrefixSums) {
  auto& s = shared_tiny_scenario();
  const auto prefixes = s.users().all();
  const auto pb = s.matrix().prefix_bytes();
  std::vector<double> per_as(s.topo().graph.size(), 0.0);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    per_as[prefixes[i].asn.value()] += pb[i];
  }
  for (const Asn a : s.topo().accesses) {
    EXPECT_NEAR(per_as[a.value()], s.matrix().as_client_bytes(a),
                per_as[a.value()] * 1e-9 + 1e-6);
  }
}

TEST(TrafficMatrix, AsServiceBytesDecomposeAsClientBytes) {
  auto& s = shared_tiny_scenario();
  const Asn a = s.topo().accesses.front();
  double sum = 0;
  for (const auto& svc : s.catalog().services()) {
    sum += s.matrix().as_service_bytes(a, svc.id);
  }
  EXPECT_NEAR(sum, s.matrix().as_client_bytes(a), sum * 1e-9 + 1e-6);
}

TEST(TrafficMatrix, OffnetBytesOnlyForOffnetHypergiants) {
  auto& s = shared_tiny_scenario();
  bool some_offnet_bytes = false;
  for (const auto& hg : s.deployment().hypergiants()) {
    if (hg.offnet_hit_ratio > 0) {
      some_offnet_bytes |= s.matrix().offnet_bytes(hg.id) > 0;
    } else {
      EXPECT_DOUBLE_EQ(s.matrix().offnet_bytes(hg.id), 0.0);
    }
  }
  EXPECT_TRUE(some_offnet_bytes);
}

TEST(TrafficMatrix, HopHistogramCoversAllBytes) {
  auto& s = shared_tiny_scenario();
  const auto hist = s.matrix().bytes_by_hops();
  const double sum = std::accumulate(hist.begin(), hist.end(), 0.0);
  // All client ASes can reach all servers in a generated topology.
  EXPECT_NEAR(sum, s.matrix().total_bytes(), s.matrix().total_bytes() * 1e-6);
  // Flattening: one-hop (direct peering/transit) plus zero-hop (off-net)
  // dominate; long paths are rare.
  const double short_share = (hist[0] + hist[1] + hist[2]) / sum;
  EXPECT_GT(short_share, 0.6);
}

TEST(TrafficMatrix, LinkBytesConservation) {
  auto& s = shared_tiny_scenario();
  const auto link_bytes = s.matrix().link_bytes();
  ASSERT_EQ(link_bytes.size(), s.topo().graph.links().size());
  const double on_links =
      std::accumulate(link_bytes.begin(), link_bytes.end(), 0.0);
  // Every byte traverses hops(bytes) links; totals must match the
  // hop-weighted sum.
  const auto hist = s.matrix().bytes_by_hops();
  double expected = 0;
  for (std::size_t h = 0; h < hist.size(); ++h) {
    expected += static_cast<double>(h) * hist[h];
  }
  EXPECT_NEAR(on_links, expected, expected * 1e-6 + 1e-6);
}

TEST(TrafficMatrix, PopBytesLandOnServingPops) {
  auto& s = shared_tiny_scenario();
  const auto pop_bytes = s.matrix().pop_bytes();
  double on_pops = std::accumulate(pop_bytes.begin(), pop_bytes.end(), 0.0);
  // All hypergiant bytes land on pops; single-site bytes do not.
  double hg_total = 0;
  for (const auto& hg : s.deployment().hypergiants()) {
    hg_total += s.matrix().hypergiant_bytes(hg.id);
  }
  EXPECT_NEAR(on_pops, hg_total, hg_total * 1e-6);
}

TEST(TrafficMatrix, ActivityDrivesPrefixBytes) {
  auto& s = shared_tiny_scenario();
  const auto prefixes = s.users().all();
  const auto pb = s.matrix().prefix_bytes();
  std::vector<double> activity;
  std::vector<double> bytes;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    activity.push_back(prefixes[i].activity);
    bytes.push_back(pb[i]);
  }
  EXPECT_GT(pearson(activity, bytes), 0.999);
}

}  // namespace
}  // namespace itm::traffic
