// QuantileHistogram: bucket geometry invariants, quantile estimates against
// exact order statistics on a golden sample (the "within one log-bucket"
// accuracy claim), and thread-count-independent merging.
#include "obs/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/executor.h"
#include "net/rng.h"

namespace itm::obs {
namespace {

TEST(QuantileGeometry, BucketsPartitionTheSampleSpace) {
  // Adjacent buckets tile [0, 2^64) with no gap or overlap.
  for (std::size_t i = 0; i + 1 < QuantileHistogram::bucket_count(); ++i) {
    EXPECT_EQ(QuantileHistogram::bucket_upper(i) + 1,
              QuantileHistogram::bucket_lower(i + 1))
        << "gap after bucket " << i;
  }
  EXPECT_EQ(
      QuantileHistogram::bucket_upper(QuantileHistogram::bucket_count() - 1),
      std::numeric_limits<std::uint64_t>::max());
}

TEST(QuantileGeometry, IndexRoundTripsThroughBounds) {
  const std::uint64_t probes[] = {0,    1,    15,   16,   17,    31,
                                  32,   33,   255,  256,  1000,  1023,
                                  1024, 4095, 4096, 1u << 20,
                                  (1ull << 40) + 12345,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : probes) {
    const std::size_t index = QuantileHistogram::bucket_index(v);
    ASSERT_LT(index, QuantileHistogram::bucket_count());
    EXPECT_LE(QuantileHistogram::bucket_lower(index), v);
    EXPECT_GE(QuantileHistogram::bucket_upper(index), v);
  }
}

TEST(QuantileGeometry, RelativeBucketWidthIsBoundedBySixPercent) {
  // Octave buckets have width lower/16 at most: the quantile estimate's
  // worst-case relative error.
  for (std::size_t i = QuantileHistogram::kLinearLimit;
       i + 1 < QuantileHistogram::bucket_count(); ++i) {
    // Exact integer arithmetic: doubles round these near 2^60.
    const std::uint64_t lower = QuantileHistogram::bucket_lower(i);
    const std::uint64_t width =
        QuantileHistogram::bucket_upper(i) - lower + 1;
    EXPECT_LE(width, lower / 16) << "bucket " << i;
  }
}

TEST(QuantileHistogram, EmptyReportsZeroes) {
  const QuantileHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(QuantileHistogram, CountSumMaxTrackObservations) {
  QuantileHistogram h;
  h.observe(3);
  h.observe(10);
  h.observe(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 513u);
  EXPECT_EQ(h.max(), 500u);
  EXPECT_NEAR(h.mean(), 171.0, 0.5);
}

// The accuracy contract: for every reported quantile, the estimate lies in
// the same log-bucket as the exact nearest-rank order statistic of the
// sample — i.e. within ~6% relative error above the linear range.
TEST(QuantileHistogram, EstimatesMatchExactOrderStatisticsWithinOneBucket) {
  QuantileHistogram h;
  std::vector<std::uint64_t> samples;
  const Rng rng(20260808);
  for (std::size_t i = 0; i < 20000; ++i) {
    const Rng stream = rng.split(i);
    // A latency-shaped mix: a tight body with a long geometric tail.
    std::uint64_t v = 5 + stream.split(1).next_below(40);
    if (stream.split(2).next_below(100) < 10) {
      v += 1ull << (4 + stream.split(3).next_below(16));
    }
    samples.push_back(v);
    h.observe(v);
  }
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    // Nearest-rank: the ceil(q*n)-th smallest, rank at least 1.
    auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
    if (static_cast<double>(rank) < q * static_cast<double>(sorted.size())) {
      ++rank;
    }
    if (rank == 0) rank = 1;
    const std::uint64_t exact = sorted[rank - 1];
    const std::size_t bucket = QuantileHistogram::bucket_index(exact);
    const double estimate = h.quantile(q);
    EXPECT_GE(estimate,
              static_cast<double>(QuantileHistogram::bucket_lower(bucket)))
        << "q=" << q << " exact=" << exact;
    EXPECT_LE(estimate,
              static_cast<double>(QuantileHistogram::bucket_upper(bucket)))
        << "q=" << q << " exact=" << exact;
  }
}

// Observations commute (relaxed atomic increments), so the same sample set
// pushed from any number of executor workers yields identical counts.
TEST(QuantileHistogram, MergeIsThreadCountIndependent) {
  const auto run = [](std::size_t threads) {
    QuantileHistogram h;
    net::Executor executor(threads);
    executor.parallel_for(5000, [&h](const net::Executor::Shard& shard) {
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        h.observe((i * 37) % 4096);
      }
    });
    return h.counts();
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace itm::obs
