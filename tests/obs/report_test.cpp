// `itm obs report` / `itm obs trace` engine: summary rendering, baseline
// diff classification (exact for deterministic metrics, ratio-tolerance for
// wall-clock), and the exit-code contract (0 ok, 1 regression, 4 unreadable
// input).
#include "obs/report.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace itm::obs {
namespace {

class TempFile {
 public:
  TempFile(const char* tag, const std::string& contents) {
    // TempDir() honours TEST_TMPDIR/TMPDIR without a getenv at this layer.
    path_ = ::testing::TempDir();
    path_ += "itm_report_";
    path_ += tag;
    path_ += "_";
    path_ += std::to_string(::getpid());
    path_ += ".json";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// A minimal but representative metrics export: two stages' worth of
// wall-clock gauges, a latency quantile block, and deterministic counters.
std::string metrics_doc(std::uint64_t events, double routing_wall_us) {
  std::ostringstream os;
  os << "{\"metrics\": {\"deterministic\": {"
     << "\"counters\": {\"map.workload_events\": " << events
     << ", \"serve.cache.hits\": 7}, "
     << "\"gauges\": {\"map.client_prefixes\": 128}}, "
     << "\"wall_clock\": {"
     << "\"gauges\": {"
     << "\"map.routing.wall_us\": " << routing_wall_us << ", "
     << "\"map.routing.rss_delta_bytes\": 1048576, "
     << "\"map.routing.imbalance_x1000\": 1250, "
     << "\"map.generate.wall_us\": 2000}, "
     << "\"quantiles\": {\"serve.query_latency_us\": "
     << "{\"p50\": 12.5, \"p90\": 40, \"p99\": 90, \"p999\": 200, "
     << "\"count\": 1000, \"sum\": 20000, \"max\": 400, \"mean\": 20}}"
     << "}}}";
  return os.str();
}

int run(const ObsReportOptions& options, std::string* out_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_obs_report(options, out, err);
  if (out_text != nullptr) *out_text = out.str() + err.str();
  return rc;
}

TEST(ObsReport, SummarizesStagesLatenciesAndCounters) {
  const TempFile metrics("summary", metrics_doc(500, 9000));
  ObsReportOptions options;
  options.metrics_path = metrics.path();
  std::string text;
  EXPECT_EQ(run(options, &text), 0);
  // Stage table names both stages, latency block names the quantile, and
  // the counter top list names the deterministic counter.
  EXPECT_NE(text.find("map.routing"), std::string::npos) << text;
  EXPECT_NE(text.find("map.generate"), std::string::npos) << text;
  EXPECT_NE(text.find("serve.query_latency_us"), std::string::npos) << text;
  EXPECT_NE(text.find("map.workload_events"), std::string::npos) << text;
}

TEST(ObsReport, IdenticalBaselinePasses) {
  const TempFile metrics("same_a", metrics_doc(500, 9000));
  const TempFile baseline("same_b", metrics_doc(500, 9000));
  ObsReportOptions options;
  options.metrics_path = metrics.path();
  options.baseline_path = baseline.path();
  EXPECT_EQ(run(options), 0);
}

TEST(ObsReport, DeterministicDriftIsAlwaysARegression) {
  // One count off in the deterministic section: exact-match class, any
  // difference fails regardless of magnitude.
  const TempFile metrics("det_a", metrics_doc(501, 9000));
  const TempFile baseline("det_b", metrics_doc(500, 9000));
  ObsReportOptions options;
  options.metrics_path = metrics.path();
  options.baseline_path = baseline.path();
  std::string text;
  EXPECT_EQ(run(options, &text), 1);
  EXPECT_NE(text.find("map.workload_events"), std::string::npos) << text;
}

TEST(ObsReport, WallClockWithinToleranceBandPasses) {
  // 9000 vs 2000 us is well inside the default x25 band.
  const TempFile metrics("band_a", metrics_doc(500, 9000));
  const TempFile baseline("band_b", metrics_doc(500, 2000));
  ObsReportOptions options;
  options.metrics_path = metrics.path();
  options.baseline_path = baseline.path();
  EXPECT_EQ(run(options), 0);
}

TEST(ObsReport, WallClockOutsideToleranceBandFails) {
  // Inject a x4 routing slowdown and tighten the band to x2.
  const TempFile metrics("slow_a", metrics_doc(500, 36000));
  const TempFile baseline("slow_b", metrics_doc(500, 9000));
  ObsReportOptions options;
  options.metrics_path = metrics.path();
  options.baseline_path = baseline.path();
  options.wall_tolerance = 2.0;
  std::string text;
  EXPECT_EQ(run(options, &text), 1);
  EXPECT_NE(text.find("map.routing.wall_us"), std::string::npos) << text;
}

TEST(ObsReport, TinyWallClockValuesAreNoise) {
  // Both sides under the 50-unit noise floor: a x10 ratio means nothing at
  // microsecond scale, so the diff must not flag it.
  const TempFile metrics("noise_a", metrics_doc(500, 4));
  const TempFile baseline("noise_b", metrics_doc(500, 40));
  ObsReportOptions options;
  options.metrics_path = metrics.path();
  options.baseline_path = baseline.path();
  options.wall_tolerance = 2.0;
  EXPECT_EQ(run(options), 0);
}

TEST(ObsReport, MissingFileIsARuntimeError) {
  ObsReportOptions options;
  options.metrics_path = "/nonexistent/metrics.json";
  EXPECT_EQ(run(options), 4);
}

TEST(ObsReport, MalformedJsonIsARuntimeError) {
  const TempFile metrics("garbage", "{\"metrics\": ");
  ObsReportOptions options;
  options.metrics_path = metrics.path();
  EXPECT_EQ(run(options), 4);
}

TEST(ObsReport, MissingDeterministicSectionIsARuntimeError) {
  const TempFile metrics("nodet", "{\"metrics\": {\"wall_clock\": {}}}");
  ObsReportOptions options;
  options.metrics_path = metrics.path();
  EXPECT_EQ(run(options), 4);
}

TEST(ObsTrace, SummarizesStagesAndShardImbalance) {
  const TempFile trace(
      "trace",
      "{\"traceEvents\": ["
      "{\"name\": \"map.routing\", \"ph\": \"X\", \"ts\": 0, \"dur\": 1000, "
      "\"pid\": 1, \"tid\": 1, \"args\": {\"depth\": 0}}, "
      "{\"name\": \"executor.shard\", \"ph\": \"X\", \"ts\": 10, "
      "\"dur\": 400, \"pid\": 1, \"tid\": 2, \"args\": {\"depth\": 1}}, "
      "{\"name\": \"executor.shard\", \"ph\": \"X\", \"ts\": 10, "
      "\"dur\": 800, \"pid\": 1, \"tid\": 3, \"args\": {\"depth\": 1}}"
      "]}");
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_obs_trace(trace.path(), out, err), 0);
  const std::string text = out.str() + err.str();
  EXPECT_NE(text.find("map.routing"), std::string::npos) << text;
  EXPECT_NE(text.find("executor.shard"), std::string::npos) << text;
}

TEST(ObsTrace, MissingTraceEventsIsARuntimeError) {
  const TempFile trace("badtrace", "{\"displayTimeUnit\": \"ms\"}");
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_obs_trace(trace.path(), out, err), 4);
}

}  // namespace
}  // namespace itm::obs
