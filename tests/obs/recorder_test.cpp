// Flight recorder and stage scopes: the journal is valid bounded JSONL, an
// over-long payload degrades instead of corrupting its line, the crash-flush
// path survives a real SIGTERM (subprocess fixture — the handler re-raises,
// so the child must actually die by signal), and StageScope maintains the
// signal handler's current-stage tag.
#include "obs/recorder.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace itm::obs {
namespace {

std::string temp_journal_path(const char* tag) {
  // gtest's TempDir() already honours TEST_TMPDIR/TMPDIR, so the test never
  // reads ambient environment itself (keeps banned-nondet-sources clean).
  std::string path = ::testing::TempDir();
  path += "itm_recorder_";
  path += tag;
  path += "_";
  path += std::to_string(::getpid());
  path += ".jsonl";
  return path;
}

std::vector<std::string> journal_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "journal missing: " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(FlightRecorder, JournalIsValidJsonlAndBoundedByRingSize) {
  const std::string path = temp_journal_path("bounded");
  {
    FlightRecorder rec;
    rec.enable(path);
    for (int i = 0; i < 1000; ++i) {
      rec.event("unit.tick", "\"i\": " + std::to_string(i));
    }
    EXPECT_EQ(rec.events_recorded(), 1000u);
    rec.flush();
  }
  const auto lines = journal_lines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_LE(lines.size(), FlightRecorder::kSlots);
  std::uint64_t prev_seq = 0;
  for (const auto& line : lines) {
    std::string error;
    const auto doc = parse_json(line, &error);
    ASSERT_TRUE(doc.has_value()) << error << " in: " << line;
    EXPECT_TRUE(doc->number_at("ts_ms").has_value());
    ASSERT_TRUE(doc->number_at("seq").has_value());
    const JsonValue* event = doc->find("event");
    ASSERT_NE(event, nullptr);
    EXPECT_EQ(event->string(), "unit.tick");
    // The ring keeps the *last* kSlots events, oldest first.
    const auto seq = static_cast<std::uint64_t>(*doc->number_at("seq"));
    EXPECT_GT(seq, prev_seq);
    prev_seq = seq;
  }
  // The final event (seq is 0-based) must have survived the wraparound.
  EXPECT_EQ(prev_seq, 999u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, OverlongPayloadDegradesToFixedKeys) {
  const std::string path = temp_journal_path("overlong");
  {
    FlightRecorder rec;
    rec.enable(path);
    const std::string huge =
        "\"blob\": \"" + std::string(2 * FlightRecorder::kSlotBytes, 'x') +
        "\"";
    rec.event("unit.big", huge);
    rec.flush();
  }
  const auto lines = journal_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_LE(lines[0].size(), FlightRecorder::kSlotBytes);
  std::string error;
  const auto doc = parse_json(lines[0], &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_NE(doc->find("event"), nullptr);
  EXPECT_EQ(doc->find("event")->string(), "unit.big");
  EXPECT_EQ(doc->find("blob"), nullptr);
  std::remove(path.c_str());
}

TEST(FlightRecorder, EventsBeforeEnableAndAfterFlushAreDropped) {
  const std::string path = temp_journal_path("lifecycle");
  FlightRecorder rec;
  rec.event("unit.early");  // no-op: not enabled yet
  EXPECT_FALSE(rec.enabled());
  rec.enable(path);
  EXPECT_TRUE(rec.enabled());
  rec.event("unit.kept");
  rec.flush();
  rec.event("unit.late");  // dropped: already flushed
  rec.flush();             // idempotent
  const auto lines = journal_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("unit.kept"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, EnableRejectsUnwritablePath) {
  FlightRecorder rec;
  EXPECT_THROW(rec.enable("/nonexistent-dir/journal.jsonl"),
               std::runtime_error);
}

// The acceptance scenario: a build killed mid-stage leaves a readable
// journal whose final event names the in-flight stage. The child process
// uses the real process singletons (recorder(), signal handlers) so the
// parent's state is untouched; the crash handler re-raises with default
// disposition, so the child's exit status must still be SIGTERM.
TEST(FlightRecorder, SigtermLeavesPostmortemJournalNamingInflightStage) {
  const std::string path = temp_journal_path("sigterm");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child — no gtest assertions from here on.
    recorder().enable(path);
    install_crash_flush();
    recorder().event("run.begin");
    StageScope stage("map.routing", 4, 5);
    ::raise(SIGTERM);
    ::_exit(97);  // unreachable: the handler re-raises SIGTERM
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited normally: " << status;
  EXPECT_EQ(WTERMSIG(status), SIGTERM);

  const auto lines = journal_lines(path);
  ASSERT_GE(lines.size(), 2u);  // run.begin, stage.begin, signal
  std::string error;
  const auto last = parse_json(lines.back(), &error);
  ASSERT_TRUE(last.has_value()) << error << " in: " << lines.back();
  ASSERT_NE(last->find("event"), nullptr);
  EXPECT_EQ(last->find("event")->string(), "signal");
  EXPECT_EQ(last->number_at("signo").value_or(0), SIGTERM);
  ASSERT_NE(last->find("stage"), nullptr);
  EXPECT_EQ(last->find("stage")->string(), "map.routing");
  // Every earlier line is intact JSONL too.
  for (const auto& line : lines) {
    EXPECT_TRUE(parse_json(line).has_value()) << line;
  }
  std::remove(path.c_str());
}

TEST(StageScope, MaintainsCurrentStageTag) {
  MetricsRegistry local;
  ScopedMetrics isolate(local);  // keep stage gauges out of the global registry
  EXPECT_STREQ(current_stage(), "");
  {
    StageScope outer("map.generate", 1, 5);
    EXPECT_STREQ(current_stage(), "map.generate");
    {
      StageScope inner("map.attribution", 2, 5);
      EXPECT_STREQ(current_stage(), "map.attribution");
    }
    // Restoring the outer name is not required — only that the tag is
    // cleared once no stage is live — but the publishing side effects are.
  }
  EXPECT_STREQ(current_stage(), "");
}

TEST(StageScope, PublishesWallClockStageGauges) {
  MetricsRegistry local;
  ScopedMetrics isolate(local);
  {
    StageScope stage("unit.stage", 1, 1);
    const double seconds = stage.close();
    EXPECT_GE(seconds, 0.0);
  }
  std::ostringstream out;
  local.write_json(out, MetricsRegistry::Export::kAll);
  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* wall = doc->find_path("metrics.wall_clock.gauges");
  ASSERT_NE(wall, nullptr);
  EXPECT_TRUE(wall->number_at("unit.stage.wall_us").has_value());
  EXPECT_TRUE(wall->number_at("unit.stage.rss_bytes").has_value());
  EXPECT_TRUE(wall->number_at("unit.stage.rss_delta_bytes").has_value());
  // Nothing leaked into the deterministic half.
  const JsonValue* det = doc->find_path("metrics.deterministic.gauges");
  if (det != nullptr) {
    EXPECT_FALSE(det->number_at("unit.stage.wall_us").has_value());
  }
}

}  // namespace
}  // namespace itm::obs
