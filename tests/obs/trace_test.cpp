// Tracer/Span: durations, nesting depth and containment, the Chrome
// trace-event export (valid JSON, correct fields), and total_seconds — the
// aggregation MapBuildTimings is a view over.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "net/executor.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace itm::obs {
namespace {

void spin_for_at_least(std::chrono::microseconds d) {
  // Spans measure wall time, so the test needs real elapsed time; Stopwatch
  // is the sanctioned wall-clock reader (banned-nondet-sources would flag a
  // bare steady_clock here, and rightly so).
  const Stopwatch watch;
  const auto target = static_cast<std::uint64_t>(d.count());
  while (watch.elapsed_us() < target) {
  }
}

TEST(Span, RecordsNameAndDuration) {
  Tracer tracer;
  {
    ScopedTracer scope(tracer);
    Span span("work");
    spin_for_at_least(std::chrono::microseconds(200));
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_GE(events[0].duration_ns, 200'000u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_FALSE(events[0].sim_at.has_value());
}

TEST(Span, CloseReturnsSecondsOnceAndIdempotently) {
  Tracer tracer;
  ScopedTracer scope(tracer);
  Span span("once");
  spin_for_at_least(std::chrono::microseconds(100));
  const double first = span.close();
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(span.close(), 0.0);  // already closed
  EXPECT_EQ(tracer.span_count(), 1u);
}

TEST(Span, NestsWithDepthAndContainment) {
  Tracer tracer;
  {
    ScopedTracer scope(tracer);
    Span outer("outer");
    {
      Span inner("inner");
      spin_for_at_least(std::chrono::microseconds(100));
    }
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // events() sorts by start time: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  // The inner span must lie within the outer span's interval.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
}

TEST(Span, CarriesSimulatedTime) {
  Tracer tracer;
  {
    ScopedTracer scope(tracer);
    ITM_SPAN_AT("sweep", SimTime(3600));
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].sim_at.has_value());
  EXPECT_EQ(*events[0].sim_at, SimTime(3600));
}

TEST(Tracer, TotalSecondsAggregatesByName) {
  Tracer tracer;
  {
    ScopedTracer scope(tracer);
    for (int i = 0; i < 3; ++i) {
      Span span("repeated");
      spin_for_at_least(std::chrono::microseconds(100));
    }
    Span other("other");
  }
  EXPECT_GE(tracer.total_seconds("repeated"), 300e-6);
  EXPECT_EQ(tracer.total_seconds("absent"), 0.0);
  EXPECT_EQ(tracer.span_count(), 4u);
}

TEST(Tracer, SpansFromOtherThreadsGetDistinctTids) {
  Tracer tracer;
  {
    ScopedTracer scope(tracer);
    Span main_span("main");
    std::thread worker([] { Span span("worker"); });
    worker.join();
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

// A minimal JSON well-formedness walker — enough to prove the Chrome trace
// export parses (balanced containers, quoted strings, no trailing commas).
bool json_parses(const std::string& text) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' ||
                               text[i] == '\t' || text[i] == '\r')) {
      ++i;
    }
  };
  // NOLINTNEXTLINE(misc-no-recursion)
  const auto parse_value = [&](const auto& self) -> bool {
    skip_ws();
    if (i >= text.size()) return false;
    const char c = text[i];
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == close) {
        ++i;
        return true;
      }
      while (true) {
        if (c == '{') {  // key
          skip_ws();
          if (i >= text.size() || text[i] != '"') return false;
          for (++i; i < text.size() && text[i] != '"'; ++i) {
          }
          if (i++ >= text.size()) return false;
          skip_ws();
          if (i >= text.size() || text[i++] != ':') return false;
        }
        if (!self(self)) return false;
        skip_ws();
        if (i < text.size() && text[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      skip_ws();
      if (i >= text.size() || text[i] != close) return false;
      ++i;
      return true;
    }
    if (c == '"') {
      for (++i; i < text.size() && text[i] != '"'; ++i) {
      }
      if (i >= text.size()) return false;
      ++i;
      return true;
    }
    // number / true / false / null
    const std::size_t start = i;
    while (i < text.size() && text[i] != ',' && text[i] != '}' &&
           text[i] != ']' && text[i] != ' ' && text[i] != '\n') {
      ++i;
    }
    return i > start;
  };
  if (!parse_value(parse_value)) return false;
  skip_ws();
  return i == text.size();
}

TEST(Tracer, ChromeTraceExportIsValidJsonWithExpectedFields) {
  Tracer tracer;
  {
    ScopedTracer scope(tracer);
    Span outer("stage");
    { ITM_SPAN_AT("stage.sweep", SimTime(60)); }
  }
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(json_parses(trace)) << trace;
  EXPECT_NE(trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"stage.sweep\""), std::string::npos);
  EXPECT_NE(trace.find("\"sim_time\": 60"), std::string::npos);
  EXPECT_NE(trace.find("\"depth\": 1"), std::string::npos);
}

TEST(Tracer, EmptyTraceIsStillValidJson) {
  Tracer tracer;
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  EXPECT_TRUE(json_parses(os.str())) << os.str();
}

// Executor workers open an "executor.shard" span per shard. Every one of
// them — across all worker tids — must lie inside the enclosing stage
// span's interval: parallel_for blocks until the batch drains, so a shard
// escaping the window would mean the trace misattributes work.
TEST(Tracer, ExecutorShardSpansAreContainedInEnclosingStage) {
  MetricsRegistry scratch;
  ScopedMetrics isolate(scratch);  // keep batch-health rollups out of global
  Tracer tracer;
  {
    ScopedTracer scope(tracer);
    Span stage("map.batch");
    net::Executor executor(4);
    executor.parallel_for(64, [](const net::Executor::Shard& shard) {
      spin_for_at_least(std::chrono::microseconds(50));
      (void)shard;
    });
  }
  const auto events = tracer.events();
  const TraceEvent* stage_event = nullptr;
  for (const auto& ev : events) {
    if (ev.name == "map.batch") stage_event = &ev;
  }
  ASSERT_NE(stage_event, nullptr);
  std::size_t shards = 0;
  std::size_t distinct_tids = 0;
  std::map<std::uint64_t, std::size_t> by_tid;
  for (const auto& ev : events) {
    if (ev.name != "executor.shard") continue;
    ++shards;
    ++by_tid[ev.tid];
    EXPECT_GE(ev.start_ns, stage_event->start_ns);
    EXPECT_LE(ev.start_ns + ev.duration_ns,
              stage_event->start_ns + stage_event->duration_ns);
  }
  distinct_tids = by_tid.size();
  EXPECT_EQ(shards, net::Executor::shard_count_for(64));
  EXPECT_GE(distinct_tids, 1u);
  // Shards on the stage's own thread nest one level below it.
  for (const auto& ev : events) {
    if (ev.name == "executor.shard" && ev.tid == stage_event->tid) {
      EXPECT_EQ(ev.depth, stage_event->depth + 1);
    }
  }
}

TEST(ScopedTracer, SpanUsesTracerCurrentAtConstruction) {
  Tracer a;
  Tracer b;
  ScopedTracer scope_a(a);
  Span span("landed_in_a");
  {
    // Installing another tracer after the span opened must not steal it.
    ScopedTracer scope_b(b);
  }
  span.close();
  EXPECT_EQ(a.span_count(), 1u);
  EXPECT_EQ(b.span_count(), 0u);
}

}  // namespace
}  // namespace itm::obs
