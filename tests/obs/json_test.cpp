// The strict JSON reader behind `itm obs`: it must accept everything the
// repo's writers emit (nested objects, arrays, escapes, signed/exponent
// numbers) and reject anything malformed rather than guessing.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>

namespace itm::obs {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse_json("42")->number(), 42.0);
  EXPECT_EQ(parse_json("-3.5")->number(), -3.5);
  EXPECT_EQ(parse_json("1e3")->number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"")->string(), "hi");
  EXPECT_TRUE(parse_json("true")->boolean());
  EXPECT_FALSE(parse_json("false")->boolean());
  EXPECT_EQ(parse_json("null")->type(), JsonValue::Type::kNull);
}

TEST(Json, ParsesStringEscapes) {
  const auto doc = parse_json(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string(), "a\"b\\c\n\tA");
}

TEST(Json, ParsesNestedObjectsAndArrays) {
  const auto doc = parse_json(
      R"({"metrics": {"deterministic": {"counters": {"a": 1, "b": 2}},)"
      R"( "list": [1, 2, 3]}})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters =
      doc->find_path("metrics.deterministic.counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_at("a"), 1.0);
  EXPECT_EQ(counters->number_at("b"), 2.0);
  EXPECT_EQ(counters->number_at("absent"), std::nullopt);
  const JsonValue* list = doc->find_path("metrics.list");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->array().size(), 3u);
  EXPECT_EQ(list->array()[2].number(), 3.0);
}

TEST(Json, FindIsNullForMissingOrNonObject) {
  const auto doc = parse_json("{\"a\": [1]}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("b"), nullptr);
  EXPECT_EQ(doc->find("a")->find("x"), nullptr);  // array, not object
  EXPECT_EQ(doc->find_path("a.b.c"), nullptr);
}

TEST(Json, RejectsMalformedDocuments) {
  std::string error;
  for (const char* bad :
       {"", "{", "[1, 2", "{\"a\": }", "{\"a\" 1}", "{'a': 1}",
        "{\"a\": 1} trailing", "[1 2]", "\"unterminated", "nul",
        "{\"a\": 1,}"}) {
    error.clear();
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

}  // namespace
}  // namespace itm::obs
