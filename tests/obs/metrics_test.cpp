// MetricsRegistry: counter/gauge/histogram semantics, the determinism
// contract (merging updates from executor workers in any order yields the
// serial value), exporter golden output, and the current-registry scoping.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/executor.h"

namespace itm::obs {
namespace {

TEST(Counter, AddsAndReads) {
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.counter_value("events"), 42u);
}

TEST(Gauge, SetAndMaximize) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.maximize(3);  // lower value must not win
  EXPECT_EQ(g.value(), 7);
  g.maximize(11);
  EXPECT_EQ(g.value(), 11);
  EXPECT_EQ(reg.gauge_value("depth"), 11);
}

TEST(Histogram, BucketsBySampleWithOverflow) {
  MetricsRegistry reg;
  const std::uint64_t bounds[] = {10, 100};
  Histogram& h = reg.histogram("sizes", bounds);
  h.observe(5);    // <= 10
  h.observe(10);   // <= 10 (inclusive upper bound)
  h.observe(50);   // <= 100
  h.observe(500);  // overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 565u);
}

TEST(MetricsRegistry, FindOrCreateReturnsSameMetric) {
  MetricsRegistry reg;
  reg.counter("x").add(1);
  reg.counter("x").add(2);
  EXPECT_EQ(reg.counter_value("x"), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), std::logic_error);
  const std::uint64_t bounds[] = {1};
  EXPECT_THROW(reg.histogram("name", bounds), std::logic_error);
}

TEST(MetricsRegistry, AccessorsAreTypeChecked) {
  MetricsRegistry reg;
  reg.gauge("g").set(5);
  EXPECT_EQ(reg.counter_value("g"), std::nullopt);
  EXPECT_EQ(reg.counter_value("absent"), std::nullopt);
  EXPECT_EQ(reg.gauge_value("g"), 5);
}

TEST(MetricsRegistry, ClearDropsEverything) {
  MetricsRegistry reg;
  reg.counter("a").add(1);
  reg.gauge("b").set(2);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.counter_value("a"), std::nullopt);
}

// The core contract: accumulating the same set of updates from worker
// threads — in whatever order the scheduler picks — must export
// byte-identically to the serial accumulation. Run the identical update set
// through executors with 1 and 4 threads and diff the JSON.
TEST(MetricsRegistry, MergeIsThreadCountIndependent) {
  const auto run = [](std::size_t threads) {
    MetricsRegistry reg;
    net::Executor executor(threads);
    const std::uint64_t bounds[] = {8, 64, 512};
    executor.parallel_for(1000, [&reg,
                                 &bounds](const net::Executor::Shard& shard) {
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        reg.counter("items").add(i % 7);
        reg.gauge("max_index").maximize(static_cast<std::int64_t>(i));
        reg.histogram("index", bounds).observe(i);
      }
    });
    std::ostringstream os;
    reg.write_json(os, MetricsRegistry::Export::kAll);
    return os.str();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(Export, JsonGolden) {
  MetricsRegistry reg;
  reg.counter("zebra").add(3);
  reg.counter("alpha").add(1);
  reg.gauge("level").set(-2);
  const std::uint64_t bounds[] = {1, 2};
  Histogram& h = reg.histogram("h", bounds);
  h.observe(1);
  h.observe(5);
  std::ostringstream os;
  reg.write_json(os);
  // Keys sorted by name within each kind; histogram on one line.
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"metrics\": {\n"
            "    \"deterministic\": {\n"
            "      \"counters\": {\n"
            "        \"alpha\": 1,\n"
            "        \"zebra\": 3\n"
            "      },\n"
            "      \"gauges\": {\n"
            "        \"level\": -2\n"
            "      },\n"
            "      \"histograms\": {\n"
            "        \"h\": {\"bounds\": [1, 2], \"counts\": [1, 0, 1], "
            "\"count\": 2, \"sum\": 6}\n"
            "      }\n"
            "    }\n"
            "  }\n"
            "}\n");
}

TEST(Export, DeterministicOnlyExcludesWallClock) {
  MetricsRegistry reg;
  reg.counter("events").add(9);
  reg.counter("shard_micros", Determinism::kWallClock).add(12345);
  reg.gauge("hwm", Determinism::kWallClock).set(8);

  std::ostringstream det;
  reg.write_json(det, MetricsRegistry::Export::kDeterministicOnly);
  EXPECT_NE(det.str().find("\"events\": 9"), std::string::npos);
  EXPECT_EQ(det.str().find("shard_micros"), std::string::npos);
  EXPECT_EQ(det.str().find("wall_clock"), std::string::npos);

  std::ostringstream all;
  reg.write_json(all, MetricsRegistry::Export::kAll);
  EXPECT_NE(all.str().find("\"wall_clock\""), std::string::npos);
  EXPECT_NE(all.str().find("\"shard_micros\": 12345"), std::string::npos);
  EXPECT_NE(all.str().find("\"hwm\": 8"), std::string::npos);
}

TEST(Export, TextMarksWallClockMetrics) {
  MetricsRegistry reg;
  reg.counter("det").add(1);
  reg.gauge("wall", Determinism::kWallClock).set(2);
  std::ostringstream os;
  reg.write_text(os);
  EXPECT_NE(os.str().find("det = 1"), std::string::npos);
  EXPECT_NE(os.str().find("wall [wall] = 2"), std::string::npos);
}

// Histogram bounds validation: every malformed spec is a programming error
// caught at registration, not a silently mis-bucketed metric.
TEST(Histogram, RejectsEmptyBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {}), std::logic_error);
}

TEST(Histogram, RejectsDuplicateBounds) {
  MetricsRegistry reg;
  const std::uint64_t bounds[] = {5, 5};
  EXPECT_THROW(reg.histogram("bad", bounds), std::logic_error);
}

TEST(Histogram, RejectsDescendingBounds) {
  MetricsRegistry reg;
  const std::uint64_t bounds[] = {100, 10};
  EXPECT_THROW(reg.histogram("bad", bounds), std::logic_error);
}

TEST(Quantile, DeterministicRegistrationThrows) {
  // Quantile histograms summarize wall-clock samples; letting one into the
  // deterministic half would break the cross-thread-count byte diff.
  MetricsRegistry reg;
  EXPECT_THROW(reg.quantile("latency", Determinism::kDeterministic),
               std::logic_error);
}

TEST(Quantile, ExportsOnlyUnderWallClockSection) {
  MetricsRegistry reg;
  reg.counter("events").add(1);
  QuantileHistogram& q = reg.quantile("serve.query_latency_us");
  q.observe(10);
  q.observe(1000);

  std::ostringstream det;
  reg.write_json(det, MetricsRegistry::Export::kDeterministicOnly);
  EXPECT_EQ(det.str().find("quantiles"), std::string::npos);
  EXPECT_EQ(det.str().find("serve.query_latency_us"), std::string::npos);

  std::ostringstream all;
  reg.write_json(all, MetricsRegistry::Export::kAll);
  const std::string json = all.str();
  const std::size_t wall = json.find("\"wall_clock\"");
  ASSERT_NE(wall, std::string::npos);
  const std::size_t quantiles = json.find("\"quantiles\"");
  ASSERT_NE(quantiles, std::string::npos);
  EXPECT_GT(quantiles, wall);  // nested inside the wall_clock section
  for (const char* key : {"\"p50\"", "\"p90\"", "\"p99\"", "\"p999\"",
                          "\"count\": 2", "\"sum\": 1010", "\"max\": 1000"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(Quantile, RegistryHandleAccumulates) {
  MetricsRegistry reg;
  reg.quantile("q").observe(4);
  reg.quantile("q").observe(6);
  EXPECT_EQ(reg.quantile("q").count(), 2u);
  EXPECT_EQ(reg.quantile("q").sum(), 10u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ScopedMetrics, InstallsAndRestoresCurrentRegistry) {
  MetricsRegistry& global = metrics();
  MetricsRegistry local;
  {
    ScopedMetrics scope(local);
    EXPECT_EQ(&metrics(), &local);
    count("scoped.hits");
    MetricsRegistry inner;
    {
      ScopedMetrics nested(inner);
      EXPECT_EQ(&metrics(), &inner);
      count("scoped.hits");
    }
    EXPECT_EQ(&metrics(), &local);
  }
  EXPECT_EQ(&metrics(), &global);
  EXPECT_EQ(local.counter_value("scoped.hits"), 1u);
}

}  // namespace
}  // namespace itm::obs
