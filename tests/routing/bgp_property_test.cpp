// Further BGP properties, parameterized across seeds: single-origin and
// multi-origin consistency, determinism, and export-rule compliance checked
// against an exhaustive-path oracle on small graphs.
#include <gtest/gtest.h>

#include "net/rng.h"
#include "routing/bgp.h"
#include "topology/generator.h"

namespace itm::routing {
namespace {

topology::TopologyConfig mini_config() {
  topology::TopologyConfig c;
  c.geography.num_countries = 3;
  c.geography.cities_per_country = 3;
  c.num_tier1 = 3;
  c.num_transit = 8;
  c.num_access = 18;
  c.num_content = 8;
  c.num_hypergiants = 2;
  c.num_enterprise = 6;
  return c;
}

class BgpSeedProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  BgpSeedProperty() : rng_(GetParam()) {
    topo_ = topology::generate_topology(mini_config(), rng_);
  }
  Rng rng_;
  topology::Topology topo_;
};

TEST_P(BgpSeedProperty, SingleOriginEqualsSingletonSet) {
  const Bgp bgp(topo_.graph);
  for (const Asn dest :
       {topo_.hypergiants[0], topo_.accesses[0], topo_.tier1s[0]}) {
    const auto single = bgp.routes_to(dest);
    const Asn origins[] = {dest};
    const auto set = bgp.routes_to_set(origins);
    for (std::size_t v = 0; v < topo_.graph.size(); ++v) {
      const Asn asn(static_cast<std::uint32_t>(v));
      EXPECT_EQ(single.at(asn).source, set.at(asn).source);
      EXPECT_EQ(single.at(asn).hops, set.at(asn).hops);
      if (single.at(asn).reachable()) {
        EXPECT_EQ(single.path_from(asn), set.path_from(asn));
      }
    }
  }
}

TEST_P(BgpSeedProperty, PropagationIsDeterministic) {
  const Bgp bgp(topo_.graph);
  const auto t1 = bgp.routes_to(topo_.hypergiants[0]);
  const auto t2 = bgp.routes_to(topo_.hypergiants[0]);
  for (std::size_t v = 0; v < topo_.graph.size(); ++v) {
    const Asn asn(static_cast<std::uint32_t>(v));
    EXPECT_EQ(t1.at(asn).next_hop, t2.at(asn).next_hop);
    EXPECT_EQ(t1.at(asn).hops, t2.at(asn).hops);
  }
}

TEST_P(BgpSeedProperty, AnycastWinnerBeatsOtherOrigins) {
  // The winning origin's route class/hops must weakly dominate what each
  // non-winning origin would have offered (by GR preference, then length).
  const Bgp bgp(topo_.graph);
  std::vector<Asn> origins = {topo_.hypergiants[0], topo_.contents[0],
                              topo_.contents[1]};
  const auto set_table = bgp.routes_to_set(origins);
  std::vector<RouteTable> singles;
  for (const Asn o : origins) singles.push_back(bgp.routes_to(o));

  const auto rank = [](RouteSource s) {
    switch (s) {
      case RouteSource::kOrigin: return 0;
      case RouteSource::kCustomer: return 1;
      case RouteSource::kPeer: return 2;
      case RouteSource::kProvider: return 3;
      case RouteSource::kNone: return 4;
    }
    return 5;
  };
  for (std::size_t v = 0; v < topo_.graph.size(); ++v) {
    const Asn asn(static_cast<std::uint32_t>(v));
    const auto& won = set_table.at(asn);
    if (!won.reachable()) continue;
    for (const auto& single : singles) {
      const auto& alt = single.at(asn);
      if (!alt.reachable()) continue;
      // Winner is at least as preferred as any single-origin alternative.
      EXPECT_LE(rank(won.source), rank(alt.source));
      if (rank(won.source) == rank(alt.source)) {
        EXPECT_LE(won.hops, alt.hops);
      }
    }
  }
}

TEST_P(BgpSeedProperty, NextHopIsStrictlyCloser) {
  const Bgp bgp(topo_.graph);
  const auto table = bgp.routes_to(topo_.accesses[0]);
  for (std::size_t v = 0; v < topo_.graph.size(); ++v) {
    const Asn asn(static_cast<std::uint32_t>(v));
    const auto& entry = table.at(asn);
    if (!entry.reachable() || entry.source == RouteSource::kOrigin) continue;
    EXPECT_EQ(table.at(entry.next_hop).hops + 1, entry.hops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpSeedProperty,
                         ::testing::Values(3, 17, 99, 256, 1024));

}  // namespace
}  // namespace itm::routing
