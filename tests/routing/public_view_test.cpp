#include "routing/public_view.h"

#include <gtest/gtest.h>

#include "routing/prediction.h"
#include "topology/generator.h"

namespace itm::routing {
namespace {

using topology::AsGraph;
using topology::AsInfo;
using topology::Relation;

Asn add(AsGraph& g, const char* name) {
  AsInfo info;
  info.name = name;
  return g.add_as(std::move(info));
}

TEST(PublicView, ObservedIsSymmetric) {
  PublicView view;
  view.add_link(Asn(1), Asn(2));
  EXPECT_TRUE(view.observed(Asn(1), Asn(2)));
  EXPECT_TRUE(view.observed(Asn(2), Asn(1)));
  EXPECT_FALSE(view.observed(Asn(1), Asn(3)));
  EXPECT_EQ(view.link_count(), 1u);
}

TEST(PublicView, CollectSeesFeederPaths) {
  // dest - p (transit), feeder = p: link (dest,p) visible.
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn p = add(g, "p");
  const Asn hidden_peer = add(g, "hp");
  g.add_transit(dest, p);
  g.add_peering(dest, hidden_peer);
  const Bgp bgp(g);
  const Asn feeders[] = {p};
  const Asn dests[] = {dest, p, hidden_peer};
  const auto view = collect_public_view(bgp, feeders, dests);
  EXPECT_TRUE(view.observed(dest, p));
  // The peering is invisible: p never routes through it (valley-free).
  EXPECT_FALSE(view.observed(dest, hidden_peer));
}

TEST(PublicView, CoverageNumbers) {
  AsGraph g;
  const Asn a = add(g, "a");
  const Asn b = add(g, "b");
  const Asn c = add(g, "c");
  g.add_transit(a, b);
  g.add_peering(a, c);
  PublicView view;
  view.add_link(a, b);
  EXPECT_DOUBLE_EQ(view.coverage(g), 0.5);
  EXPECT_DOUBLE_EQ(view.peering_coverage(g), 0.0);
  view.add_link(a, c);
  EXPECT_DOUBLE_EQ(view.peering_coverage(g), 1.0);
}

TEST(PublicView, ObservedSubgraphKeepsAsesDropsLinks) {
  AsGraph g;
  const Asn a = add(g, "a");
  const Asn b = add(g, "b");
  const Asn c = add(g, "c");
  g.add_transit(a, b);
  g.add_peering(a, c);
  PublicView view;
  view.add_link(a, b);
  const auto sub = observed_subgraph(g, view);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.links().size(), 1u);
  EXPECT_EQ(sub.relation(a, b), Relation::kProvider);
  EXPECT_FALSE(sub.adjacent(a, c));
}

TEST(Prediction, PerfectViewPredictsExactly) {
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn mid = add(g, "mid");
  const Asn src = add(g, "src");
  g.add_transit(dest, mid);
  g.add_transit(src, mid);
  PublicView full;
  full.add_link(dest, mid);
  full.add_link(src, mid);
  const auto observed = observed_subgraph(g, full);
  const Asn sources[] = {src};
  const Asn dests[] = {dest};
  const auto stats = evaluate_prediction(g, observed, full, sources, dests);
  EXPECT_EQ(stats.total, 1u);
  EXPECT_EQ(stats.exact, 1u);
  EXPECT_EQ(stats.true_path_missing_link, 0u);
}

TEST(Prediction, MissingPeeringCausesWrongOrUnreachablePath) {
  // src peers directly with dest, but also buys transit that can reach dest.
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn transit = add(g, "tr");
  const Asn src = add(g, "src");
  g.add_peering(src, dest);
  g.add_transit(src, transit);
  g.add_transit(dest, transit);
  PublicView view;  // only transit links observed
  view.add_link(src, transit);
  view.add_link(dest, transit);
  const auto observed = observed_subgraph(g, view);
  const Asn sources[] = {src};
  const Asn dests[] = {dest};
  const auto stats = evaluate_prediction(g, observed, view, sources, dests);
  EXPECT_EQ(stats.total, 1u);
  EXPECT_EQ(stats.exact, 0u);
  EXPECT_EQ(stats.true_path_missing_link, 1u);
  EXPECT_EQ(stats.wrong, 1u);  // predicted via transit instead
}

TEST(Prediction, GeneratedTopologyMissingLinksDominateHypergiantPaths) {
  topology::TopologyConfig config;
  config.geography.num_countries = 4;
  config.num_tier1 = 3;
  config.num_transit = 10;
  config.num_access = 30;
  config.num_content = 10;
  config.num_hypergiants = 2;
  config.num_enterprise = 5;
  Rng rng(11);
  const auto topo = topology::generate_topology(config, rng);
  const Bgp bgp(topo.graph);

  // Feeders: tier1s + transits (route-collector-like).
  std::vector<Asn> feeders = topo.tier1s;
  feeders.insert(feeders.end(), topo.transits.begin(), topo.transits.end());
  std::vector<Asn> all;
  for (const auto& as : topo.graph.ases()) all.push_back(as.asn);
  const auto view = collect_public_view(bgp, feeders, all);
  const auto observed = observed_subgraph(topo.graph, view);

  const auto stats = evaluate_prediction(topo.graph, observed, view,
                                         topo.accesses, topo.hypergiants);
  ASSERT_GT(stats.total, 0u);
  // A large share of eyeball->hypergiant true paths uses invisible peering
  // (the paper's "more than half" holds at default scale; this small
  // topology checks the mechanism with a looser bound).
  EXPECT_GT(stats.missing_link_rate(), 0.3);
  // And transit links alone are broadly visible.
  EXPECT_GT(view.coverage(topo.graph), 0.2);
  EXPECT_LT(view.peering_coverage(topo.graph), 0.5);
}

}  // namespace
}  // namespace itm::routing
