#include "routing/bgp.h"

#include <gtest/gtest.h>

#include "net/rng.h"
#include "topology/generator.h"

namespace itm::routing {
namespace {

using topology::AsGraph;
using topology::AsInfo;
using topology::AsType;
using topology::Relation;

Asn add(AsGraph& g, const char* name) {
  AsInfo info;
  info.name = name;
  return g.add_as(std::move(info));
}

TEST(Bgp, OriginEntry) {
  AsGraph g;
  const Asn a = add(g, "a");
  const Bgp bgp(g);
  const auto table = bgp.routes_to(a);
  EXPECT_EQ(table.at(a).source, RouteSource::kOrigin);
  EXPECT_EQ(table.at(a).hops, 0);
  EXPECT_EQ(table.path_from(a), std::vector<Asn>{a});
  EXPECT_EQ(table.penultimate(a), a);
}

TEST(Bgp, CustomerRoutePropagatsUphill) {
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn p1 = add(g, "p1");
  const Asn p2 = add(g, "p2");
  g.add_transit(dest, p1);  // dest customer of p1
  g.add_transit(p1, p2);    // p1 customer of p2
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_EQ(table.at(p1).source, RouteSource::kCustomer);
  EXPECT_EQ(table.at(p1).hops, 1);
  EXPECT_EQ(table.at(p2).source, RouteSource::kCustomer);
  EXPECT_EQ(table.at(p2).hops, 2);
  EXPECT_EQ(table.path_from(p2), (std::vector<Asn>{p2, p1, dest}));
}

TEST(Bgp, ProviderRoutePropagatsDownhill) {
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn provider = add(g, "prov");
  const Asn sibling = add(g, "sib");
  g.add_transit(dest, provider);
  g.add_transit(sibling, provider);
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_EQ(table.at(sibling).source, RouteSource::kProvider);
  EXPECT_EQ(table.at(sibling).hops, 2);
  EXPECT_EQ(table.path_from(sibling),
            (std::vector<Asn>{sibling, provider, dest}));
}

TEST(Bgp, PeerRouteSingleHopAcross) {
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn peer = add(g, "peer");
  const Asn peer_customer = add(g, "pc");
  g.add_peering(dest, peer);
  g.add_transit(peer_customer, peer);
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_EQ(table.at(peer).source, RouteSource::kPeer);
  EXPECT_EQ(table.at(peer).hops, 1);
  // Peer routes are exported to customers.
  EXPECT_EQ(table.at(peer_customer).source, RouteSource::kProvider);
  EXPECT_EQ(table.at(peer_customer).hops, 2);
}

TEST(Bgp, ValleyFreeNoPeerAfterPeer) {
  // dest -- peer1 -- peer2 (both peering): peer2 must NOT reach dest via
  // peer1 (peer routes are not exported to peers).
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn peer1 = add(g, "peer1");
  const Asn peer2 = add(g, "peer2");
  g.add_peering(dest, peer1);
  g.add_peering(peer1, peer2);
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_FALSE(table.at(peer2).reachable());
}

TEST(Bgp, ValleyFreeNoTransitThroughCustomer) {
  // p1 and p2 are both providers of c. dest hangs off p1. p2 must not reach
  // dest through its customer c.
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn p1 = add(g, "p1");
  const Asn p2 = add(g, "p2");
  const Asn c = add(g, "c");
  g.add_transit(dest, p1);
  g.add_transit(c, p1);
  g.add_transit(c, p2);
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_FALSE(table.at(p2).reachable());
  EXPECT_EQ(table.at(c).source, RouteSource::kProvider);
}

TEST(Bgp, PreferCustomerOverShorterPeerAndProvider) {
  // dest reachable from X via: customer chain of length 3, or direct peer
  // (length 1). X must pick the customer route despite being longer.
  AsGraph g;
  const Asn x = add(g, "x");
  const Asn c1 = add(g, "c1");
  const Asn c2 = add(g, "c2");
  const Asn dest = add(g, "dest");
  g.add_transit(c1, x);    // c1 customer of x
  g.add_transit(c2, c1);   // chain down
  g.add_transit(dest, c2);
  g.add_peering(x, dest);  // direct peering, 1 hop
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_EQ(table.at(x).source, RouteSource::kCustomer);
  EXPECT_EQ(table.at(x).hops, 3);
}

TEST(Bgp, PreferPeerOverProvider) {
  AsGraph g;
  const Asn x = add(g, "x");
  const Asn provider = add(g, "prov");
  const Asn dest = add(g, "dest");
  g.add_transit(x, provider);
  g.add_transit(dest, provider);
  g.add_peering(x, dest);
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_EQ(table.at(x).source, RouteSource::kPeer);
  EXPECT_EQ(table.at(x).hops, 1);
}

TEST(Bgp, ShortestWithinSameClass) {
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn a = add(g, "a");
  const Asn b = add(g, "b");
  const Asn x = add(g, "x");
  // Two customer chains to x: dest->a->x (2 hops) and dest->b... wait:
  // dest customer of a, a customer of x; dest customer of x directly.
  g.add_transit(dest, a);
  g.add_transit(a, x);
  g.add_transit(dest, x);
  (void)b;
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_EQ(table.at(x).hops, 1);  // direct customer route wins
  EXPECT_EQ(table.path_from(x), (std::vector<Asn>{x, dest}));
}

TEST(Bgp, TieBreakLowestNextHopAsn) {
  AsGraph g;
  const Asn dest = add(g, "dest");  // asn 0
  const Asn n1 = add(g, "n1");      // asn 1
  const Asn n2 = add(g, "n2");      // asn 2
  const Asn top = add(g, "top");    // asn 3
  g.add_transit(dest, n1);
  g.add_transit(dest, n2);
  g.add_transit(n1, top);
  g.add_transit(n2, top);
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_EQ(table.at(top).hops, 2);
  EXPECT_EQ(table.at(top).next_hop, n1);  // lower ASN wins the tie
}

TEST(Bgp, UnreachableIsolatedNode) {
  AsGraph g;
  const Asn dest = add(g, "dest");
  const Asn island = add(g, "island");
  const Bgp bgp(g);
  const auto table = bgp.routes_to(dest);
  EXPECT_FALSE(table.at(island).reachable());
  EXPECT_TRUE(table.path_from(island).empty());
}

TEST(Bgp, AnycastPicksPolicyNearestOrigin) {
  // Chain: o1 - m - x - o2. x peers nothing; linear customer chains.
  AsGraph g;
  const Asn o1 = add(g, "o1");
  const Asn m = add(g, "m");
  const Asn x = add(g, "x");
  const Asn o2 = add(g, "o2");
  g.add_transit(o1, m);  // o1 customer of m
  g.add_transit(m, x);   // m customer of x
  g.add_transit(o2, x);  // o2 customer of x
  const Bgp bgp(g);
  const Asn origins[] = {o1, o2};
  const auto table = bgp.routes_to_set(origins);
  EXPECT_EQ(table.at(x).origin_index, 1);      // o2 is 1 hop away
  EXPECT_EQ(table.at(m).origin_index, 0);      // o1 is its customer
  EXPECT_EQ(table.at(o1).source, RouteSource::kOrigin);
  EXPECT_EQ(table.at(o2).source, RouteSource::kOrigin);
  EXPECT_EQ(table.origins().size(), 2u);
}

TEST(Bgp, AnycastDuplicateOriginsIgnored) {
  AsGraph g;
  const Asn o = add(g, "o");
  const Asn p = add(g, "p");
  g.add_transit(o, p);
  const Bgp bgp(g);
  const Asn origins[] = {o, o};
  const auto table = bgp.routes_to_set(origins);
  EXPECT_EQ(table.origins().size(), 1u);
  EXPECT_EQ(table.at(p).origin_index, 0);
}

TEST(Bgp, AnycastDuplicateBeforeDistinctOriginIndexesDedupedList) {
  // {A, A, B}: origin_index must index the deduplicated origins() list,
  // so B's index is 1 (not its input-span position 2).
  AsGraph g;
  const Asn a = add(g, "a");
  const Asn b = add(g, "b");
  const Asn pa = add(g, "pa");
  const Asn pb = add(g, "pb");
  g.add_transit(a, pa);
  g.add_transit(b, pb);
  const Bgp bgp(g);
  const Asn origins[] = {a, a, b};
  const auto table = bgp.routes_to_set(origins);
  ASSERT_EQ(table.origins().size(), 2u);
  EXPECT_LT(table.at(pb).origin_index, table.origins().size());
  EXPECT_EQ(table.origins()[table.at(pb).origin_index], b);
}

// Property: on generated topologies every computed path is valley-free and
// consistent (hops == path length, adjacent ASes really adjacent).
class BgpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpProperty, PathsAreValleyFreeAndConsistent) {
  topology::TopologyConfig config;
  config.geography.num_countries = 4;
  config.num_tier1 = 3;
  config.num_transit = 10;
  config.num_access = 25;
  config.num_content = 10;
  config.num_hypergiants = 2;
  config.num_enterprise = 8;
  Rng rng(GetParam());
  const auto topo = topology::generate_topology(config, rng);
  const Bgp bgp(topo.graph);

  // Check paths toward several destinations.
  std::vector<Asn> dests = {topo.hypergiants[0], topo.accesses[0],
                            topo.contents[0], topo.tier1s[0]};
  for (const Asn dest : dests) {
    const auto table = bgp.routes_to(dest);
    for (const auto& as : topo.graph.ases()) {
      if (!table.at(as.asn).reachable()) continue;
      const auto path = table.path_from(as.asn);
      ASSERT_GE(path.size(), 1u);
      EXPECT_EQ(path.size() - 1, table.at(as.asn).hops);
      EXPECT_EQ(path.back(), dest);
      // Valley-free: relations along src->dest read as
      // (provider)* then at most one peer, then (customer)*.
      // From the traffic direction src->dst, each step is src's view.
      int phase = 0;  // 0=uphill, 1=crossed peer, 2=downhill
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto rel = topo.graph.relation(path[i], path[i + 1]);
        ASSERT_TRUE(rel.has_value()) << "non-adjacent hop";
        switch (*rel) {
          case Relation::kProvider:
            EXPECT_EQ(phase, 0) << "uphill after peak";
            break;
          case Relation::kPeer:
            EXPECT_LT(phase, 1) << "second peer crossing";
            phase = 1;
            break;
          case Relation::kCustomer:
            phase = 2;
            break;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpProperty, ::testing::Values(1, 7, 21, 63));

}  // namespace
}  // namespace itm::routing
