#include <gtest/gtest.h>

#include <unordered_set>

#include "../test_scenario.h"
#include "core/workload.h"
#include "net/ordered.h"
#include "scan/ecs_mapper.h"
#include "scan/root_crawler.h"
#include "scan/tls_scanner.h"

namespace itm::scan {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(RootCrawler, AttributesQueriesToResolverAses) {
  auto scenario = core::Scenario::generate(core::tiny_config(61));
  core::Workload workload(*scenario, core::WorkloadConfig{}, 3);
  workload.finish();
  const auto crawl =
      crawl_root_logs(scenario->dns(), scenario->topo().addresses);
  EXPECT_GT(crawl.total_crawled, 0u);
  EXPECT_EQ(crawl.total_attributed, crawl.total_crawled);
  // Every detected AS hosts a resolver: an access network with its own, a
  // transit/tier-1 provider hosting outsourced resolvers, or the public
  // resolver operator's AS.
  const Asn public_as = scenario->topo().hypergiants.front();
  for (const Asn asn : crawl.detected_ases()) {
    const auto type = scenario->topo().graph.info(asn).type;
    EXPECT_TRUE(type == topology::AsType::kAccess ||
                type == topology::AsType::kTransit ||
                type == topology::AsType::kTier1 || asn == public_as)
        << scenario->topo().graph.info(asn).name;
  }
  // A substantial share of access networks is detected — but not all: the
  // resolver-outsourcing blind spot caps this technique's coverage.
  std::size_t detected_access = 0;
  for (const Asn asn : crawl.detected_ases()) {
    if (scenario->topo().graph.info(asn).type == topology::AsType::kAccess) {
      ++detected_access;
    }
  }
  EXPECT_GT(detected_access, scenario->topo().accesses.size() / 4);
  EXPECT_LT(detected_access, scenario->topo().accesses.size());
}

TEST(TlsScanner, FindsAllEndpointsAndClassifiesOperators) {
  auto& s = shared_tiny_scenario();
  const TlsScanner scanner(s.tls(), s.topo().addresses);
  std::vector<std::string> names;
  for (const auto& hg : s.deployment().hypergiants()) names.push_back(hg.name);
  const auto result = scanner.sweep(names);
  EXPECT_EQ(result.endpoints.size(), s.tls().size());
  EXPECT_EQ(result.addresses_probed,
            s.topo().addresses.total_slash24_count() * 256);

  // Every hypergiant front end classified to its operator.
  std::unordered_set<Ipv4Addr> classified;
  for (const auto& ep : result.endpoints) {
    if (!ep.inferred_operator.empty()) classified.insert(ep.address);
  }
  for (const auto& fe : s.deployment().front_ends()) {
    EXPECT_TRUE(classified.contains(fe.address));
  }
}

TEST(TlsScanner, OffnetInferenceMatchesGroundTruth) {
  auto& s = shared_tiny_scenario();
  const TlsScanner scanner(s.tls(), s.topo().addresses);
  std::vector<std::string> names;
  for (const auto& hg : s.deployment().hypergiants()) names.push_back(hg.name);
  const auto result = scanner.sweep(names);
  std::size_t checked = 0;
  for (const auto& ep : result.endpoints) {
    const auto* truth = s.tls().endpoint_at(ep.address);
    ASSERT_NE(truth, nullptr);
    if (!truth->hypergiant.has_value() ||
        truth->default_cert_names.size() < 2) {
      continue;  // dedicated service addresses, not CDN front ends
    }
    EXPECT_EQ(ep.inferred_offnet, truth->offnet) << ep.address;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(TlsScanner, SniScanFindsFootprint) {
  auto& s = shared_tiny_scenario();
  const TlsScanner scanner(s.tls(), s.topo().addresses);
  // Pick a DNS-redirected hypergiant service; its footprint is its
  // hypergiant's front ends.
  const cdn::Service* svc = nullptr;
  for (const auto& candidate : s.catalog().services()) {
    if (candidate.redirection == cdn::RedirectionKind::kDnsRedirection) {
      svc = &candidate;
      break;
    }
  }
  ASSERT_NE(svc, nullptr);
  std::vector<Ipv4Addr> addresses;
  for (const auto& fe : s.deployment().front_ends()) {
    addresses.push_back(fe.address);
  }
  const auto footprint = scanner.sni_scan(svc->hostname, addresses);
  std::size_t expected = 0;
  for (const auto& fe : s.deployment().front_ends()) {
    if (fe.owner == *svc->hypergiant) ++expected;
  }
  EXPECT_EQ(footprint.size(), expected);
}

TEST(EcsMapper, SweepMatchesAuthoritativeAnswers) {
  auto& s = shared_tiny_scenario();
  const EcsMapper mapper(s.dns().authoritative(),
                         s.topo().geography.cities().front().id);
  const cdn::Service* svc = nullptr;
  for (const auto& candidate : s.catalog().services()) {
    if (candidate.supports_ecs) {
      svc = &candidate;
      break;
    }
  }
  ASSERT_NE(svc, nullptr);
  const auto user24s = s.topo().addresses.user_slash24s();
  const auto sweep = mapper.sweep(*svc, user24s);
  EXPECT_EQ(sweep.size(), user24s.size());
  for (const auto& [prefix, address] : net::sorted_items(sweep)) {
    const auto ans =
        s.dns().authoritative().answer(*svc, prefix, CityId(0));
    EXPECT_EQ(address, ans.address);
  }
}

}  // namespace
}  // namespace itm::scan
