#include <gtest/gtest.h>

#include "../test_scenario.h"
#include "scan/catchment.h"
#include "scan/cloud_prober.h"

namespace itm::scan {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(CloudProber, RevealsTheCloudsOwnPeeringLinks) {
  auto& s = shared_tiny_scenario();
  const Asn cloud = s.topo().hypergiants.front();
  const auto cloud_view = probe_from_cloud(s.topo(), cloud);

  // Every peering link of the cloud that its best paths actually use is
  // observed; in particular, direct cloud<->eyeball links are on the
  // one-hop best path and must all appear.
  std::size_t direct_total = 0, direct_seen = 0;
  for (const auto& link : s.topo().graph.links()) {
    if (link.a != cloud && link.b != cloud) continue;
    if (link.a_to_b != topology::Relation::kPeer) continue;
    ++direct_total;
    if (cloud_view.observed(link.a, link.b)) ++direct_seen;
  }
  ASSERT_GT(direct_total, 0u);
  EXPECT_EQ(direct_seen, direct_total);
}

TEST(CloudProber, MergingImprovesViewCoverage) {
  auto& s = shared_tiny_scenario();
  const routing::Bgp bgp(s.topo().graph);
  std::vector<Asn> dests;
  for (const auto& as : s.topo().graph.ases()) dests.push_back(as.asn);
  auto view = routing::collect_public_view(bgp, s.topo().tier1s, dests);
  const double before = view.peering_coverage(s.topo().graph);
  view.merge(probe_from_cloud(s.topo(), s.topo().hypergiants.front()));
  const double after = view.peering_coverage(s.topo().graph);
  EXPECT_GT(after, before);
}

TEST(CatchmentMapper, MeasurementMatchesActualCatchments) {
  auto& s = shared_tiny_scenario();
  const HypergiantId hg(0);
  const auto map = measure_catchments(s.mapper(), hg, s.topo().accesses);
  EXPECT_EQ(map.catchment.size(), s.topo().accesses.size());
  for (const Asn client : s.topo().accesses) {
    const auto site = map.site_of(client);
    ASSERT_TRUE(site.has_value());
    EXPECT_EQ(*site, s.mapper().anycast_site(hg, client));
    EXPECT_FALSE(s.deployment().pop(*site).offnet);
  }
  EXPECT_FALSE(map.site_of(s.topo().tier1s.front()).has_value());
}

TEST(CatchmentMapper, BeatsTheOptimalityAssumption) {
  auto& s = shared_tiny_scenario();
  const HypergiantId hg(0);
  const auto map = measure_catchments(s.mapper(), hg, s.topo().accesses);
  // The "assume optimal site" heuristic mis-assigns some ASes; measured
  // catchments are exact by construction.
  std::size_t heuristic_right = 0;
  for (const Asn client : s.topo().accesses) {
    const auto optimal = s.mapper().optimal_site(
        hg, s.topo().graph.info(client).home_city);
    if (optimal == *map.site_of(client)) ++heuristic_right;
  }
  EXPECT_LT(heuristic_right, s.topo().accesses.size());
}

}  // namespace
}  // namespace itm::scan
