#include "scan/ipid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "../test_scenario.h"
#include "net/stats.h"
#include "scan/traceroute.h"

namespace itm::scan {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(RouterModel, CounterIsMonotoneModulo16Bits) {
  RouterModel r;
  r.base_ips = 2.0;
  r.traffic_ips = 10.0;
  std::uint64_t unwrapped = 0;
  std::uint16_t prev = r.id_at(0);
  for (SimTime t = 30; t <= 3600; t += 30) {
    const std::uint16_t cur = r.id_at(t);
    unwrapped += static_cast<std::uint16_t>(cur - prev);
    prev = cur;
  }
  // Mean rate 12/s for an hour ~= 43200 increments (diurnal-modulated).
  EXPECT_GT(unwrapped, 3600u * 3);
  EXPECT_LT(unwrapped, 3600u * 25);
}

TEST(RouterModel, MeanRateRecoveredOverFullDay) {
  RouterModel r;
  r.base_ips = 1.0;
  r.traffic_ips = 50.0;
  r.lon_deg = 45.0;
  // Integrate over a full day: diurnal term integrates out.
  const std::uint64_t total =
      [&] {
        std::uint64_t sum = 0;
        std::uint16_t prev = r.id_at(0);
        for (SimTime t = 30; t <= kSecondsPerDay; t += 30) {
          const std::uint16_t cur = r.id_at(t);
          sum += static_cast<std::uint16_t>(cur - prev);
          prev = cur;
        }
        return sum;
      }();
  EXPECT_NEAR(static_cast<double>(total) / kSecondsPerDay, r.mean_rate(),
              r.mean_rate() * 0.02);
}

TEST(RouterFleet, OneRouterPerAsWithUniqueInterfaces) {
  auto& s = shared_tiny_scenario();
  EXPECT_EQ(s.routers().routers().size(), s.topo().graph.size());
  std::unordered_set<Ipv4Addr> seen;
  for (const auto& r : s.routers().routers()) {
    EXPECT_TRUE(seen.insert(r.interface).second);
    EXPECT_EQ(s.routers().at(r.interface), &s.routers().of(r.asn));
    // Interface is in the AS's infra /24.
    EXPECT_TRUE(
        s.topo().addresses.of(r.asn).infra_slash24.contains(r.interface));
  }
  EXPECT_EQ(s.routers().at(Ipv4Addr(12345)), nullptr);
}

TEST(RouterFleet, VelocityTracksForwardedBytes) {
  auto& s = shared_tiny_scenario();
  std::vector<double> velocity, bytes;
  for (const auto& r : s.routers().routers()) {
    velocity.push_back(r.traffic_ips);
    bytes.push_back(s.routers().forwarded_bytes(r.asn));
  }
  EXPECT_GT(pearson(velocity, bytes), 0.98);
}

TEST(IpIdProber, EstimateMatchesTrueMeanRate) {
  auto& s = shared_tiny_scenario();
  const IpIdProber prober(s.routers());
  const auto& r = s.routers().of(s.topo().tier1s.front());
  const auto estimate =
      prober.estimate_velocity(r.interface, 0, kSecondsPerDay, 30);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(*estimate, r.mean_rate(), r.mean_rate() * 0.05 + 0.2);
}

TEST(IpIdProber, PingUnknownAddressFails) {
  auto& s = shared_tiny_scenario();
  const IpIdProber prober(s.routers());
  EXPECT_FALSE(prober.ping(Ipv4Addr(99), 0).has_value());
  EXPECT_FALSE(
      prober.estimate_velocity(Ipv4Addr(99), 0, 3600, 30).has_value());
}

TEST(IpIdProber, ProfilePeaksNearLocalEvening) {
  auto& s = shared_tiny_scenario();
  const IpIdProber prober(s.routers());
  // Pick a busy router so the diurnal component dominates the base rate.
  const RouterModel* busy = &s.routers().routers().front();
  for (const auto& r : s.routers().routers()) {
    if (r.traffic_ips > busy->traffic_ips) busy = &r;
  }
  const auto profile = prober.velocity_profile(busy->interface, 0, 24, 60);
  ASSERT_EQ(profile.size(), 24u);
  const auto peak_hour = static_cast<double>(
      std::max_element(profile.begin(), profile.end()) - profile.begin());
  // Expected UTC peak hour: 21 - lon/15 (mod 24), +-2h tolerance
  double expected = std::fmod(21.0 - busy->lon_deg / 15.0 + 48.0, 24.0);
  double diff = std::abs(peak_hour + 0.5 - expected);
  diff = std::min(diff, 24.0 - diff);
  EXPECT_LE(diff, 2.5);
  // And the profile is genuinely diurnal: max/min ratio is large.
  const double lo = *std::min_element(profile.begin(), profile.end());
  const double hi = *std::max_element(profile.begin(), profile.end());
  EXPECT_GT(hi, 2.0 * std::max(lo, 1e-9));
}

TEST(IpIdProber, DegenerateWindows) {
  auto& s = shared_tiny_scenario();
  const IpIdProber prober(s.routers());
  const auto& r = s.routers().routers().front();
  EXPECT_FALSE(prober.estimate_velocity(r.interface, 100, 100, 30).has_value());
  EXPECT_FALSE(prober.estimate_velocity(r.interface, 100, 50, 30).has_value());
  EXPECT_FALSE(prober.estimate_velocity(r.interface, 0, 3600, 0).has_value());
}

TEST(Traceroute, FollowsBgpPathWithMonotoneRtt) {
  auto& s = shared_tiny_scenario();
  const Traceroute tracer(s.topo(), s.routers());
  const Asn src = s.topo().accesses.front();
  const Asn dst_as = s.topo().hypergiants.front();
  const auto dst = s.topo().addresses.of(dst_as).infra_slash24.address_at(1);
  const auto hops = tracer.trace(src, dst);
  ASSERT_FALSE(hops.empty());
  EXPECT_EQ(hops.front().asn, src);
  EXPECT_EQ(hops.back().asn, dst_as);
  for (std::size_t i = 1; i < hops.size(); ++i) {
    EXPECT_GE(hops[i].rtt_ms, hops[i - 1].rtt_ms);
  }
  // Unroutable destination yields an empty trace.
  EXPECT_TRUE(tracer.trace(src, Ipv4Addr(3)).empty());
}

}  // namespace
}  // namespace itm::scan
