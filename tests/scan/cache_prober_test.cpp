#include "scan/cache_prober.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"
#include "core/workload.h"
#include "net/ordered.h"
#include "net/stats.h"

namespace itm::scan {
namespace {

// Fixture with a small workload already driven through half a day.
class CacheProberTest : public ::testing::Test {
 protected:
  CacheProberTest()
      : scenario_(core::Scenario::generate(core::tiny_config(31))),
        workload_(*scenario_, core::WorkloadConfig{}, 5) {}

  std::unique_ptr<core::Scenario> scenario_;
  core::Workload workload_;
};

TEST_F(CacheProberTest, ProbeListIsPopularEcsDnsServices) {
  const CacheProber prober(scenario_->dns(), scenario_->catalog());
  ASSERT_FALSE(prober.probed_services().empty());
  for (const ServiceId sid : prober.probed_services()) {
    const auto& svc = scenario_->catalog().service(sid);
    EXPECT_EQ(svc.redirection, cdn::RedirectionKind::kDnsRedirection);
    EXPECT_TRUE(svc.supports_ecs);
  }
}

TEST_F(CacheProberTest, DetectsActivePrefixesNotIdleSpace) {
  CacheProber prober(scenario_->dns(), scenario_->catalog());
  const auto routable = scenario_->topo().addresses.routable_slash24s();
  for (int round = 0; round < 8; ++round) {
    const SimTime at = (round + 1) * kSecondsPerDay / 9;
    workload_.advance_to(at);
    prober.sweep(routable, at);
  }
  const auto detected = prober.detected_prefixes();
  ASSERT_FALSE(detected.empty());
  // Every detected prefix hosts users (no false positives possible here:
  // only user prefixes generate queries).
  for (const auto& p : detected) {
    EXPECT_NE(scenario_->users().find(p), nullptr) << p;
  }
  // A decent share of user traffic is detected even in the tiny world.
  std::size_t user_detected = 0;
  for (const auto& p : detected) {
    if (scenario_->users().find(p)) ++user_detected;
  }
  EXPECT_GT(user_detected, scenario_->users().size() / 4);
}

TEST_F(CacheProberTest, HitsRequireWorkload) {
  // Probing before any client activity yields nothing.
  auto fresh = core::Scenario::generate(core::tiny_config(32));
  CacheProber prober(fresh->dns(), fresh->catalog());
  const auto routable = fresh->topo().addresses.routable_slash24s();
  prober.sweep(routable, 1000);
  EXPECT_TRUE(prober.detected_prefixes().empty());
  EXPECT_GT(prober.total_probes(), 0u);
}

TEST_F(CacheProberTest, PrefixesPerPopSumsConsistent) {
  CacheProber prober(scenario_->dns(), scenario_->catalog());
  const auto routable = scenario_->topo().addresses.routable_slash24s();
  workload_.advance_to(kSecondsPerDay / 2);
  prober.sweep(routable, kSecondsPerDay / 2);
  const auto per_pop = prober.prefixes_per_pop();
  EXPECT_EQ(per_pop.size(), scenario_->dns().public_pops().size());
  std::size_t total_pop_detections = 0;
  for (const auto c : per_pop) total_pop_detections += c;
  // Each detected prefix was seen at >= 1 PoP.
  EXPECT_GE(total_pop_detections, prober.detected_prefixes().size());
}

TEST_F(CacheProberTest, HitRateByAsTracksActivity) {
  CacheProber prober(scenario_->dns(), scenario_->catalog());
  const auto routable = scenario_->topo().addresses.routable_slash24s();
  for (int round = 0; round < 8; ++round) {
    const SimTime at = (round + 1) * kSecondsPerDay / 9;
    workload_.advance_to(at);
    prober.sweep(routable, at);
  }
  const auto rates = prober.hit_rate_by_as(scenario_->topo().addresses);
  // Rank correlation with true AS activity should be clearly positive.
  std::vector<double> rate, truth;
  for (const Asn a : scenario_->topo().accesses) {
    const auto it = rates.find(a.value());
    if (it == rates.end()) continue;
    rate.push_back(it->second);
    truth.push_back(scenario_->users().as_activity(a));
  }
  ASSERT_GT(rate.size(), 5u);
  EXPECT_GT(spearman(rate, truth), 0.4);
}

TEST_F(CacheProberTest, StopAfterFirstHitReducesProbes) {
  auto s1 = core::Scenario::generate(core::tiny_config(33));
  auto s2 = core::Scenario::generate(core::tiny_config(33));
  core::Workload w1(*s1, core::WorkloadConfig{}, 5);
  core::Workload w2(*s2, core::WorkloadConfig{}, 5);
  w1.advance_to(kSecondsPerDay / 2);
  w2.advance_to(kSecondsPerDay / 2);
  CacheProbeConfig full;
  CacheProbeConfig lazy;
  lazy.stop_after_first_hit = true;
  CacheProber p1(s1->dns(), s1->catalog(), full);
  CacheProber p2(s2->dns(), s2->catalog(), lazy);
  const auto routable = s1->topo().addresses.routable_slash24s();
  p1.sweep(routable, kSecondsPerDay / 2);
  p2.sweep(routable, kSecondsPerDay / 2);
  EXPECT_LT(p2.total_probes(), p1.total_probes());
  // Detection sets are identical (first hit suffices to detect).
  EXPECT_EQ(p1.detected_prefixes(), p2.detected_prefixes());
}

TEST_F(CacheProberTest, ProbeLossReducesHitsNotProbes) {
  auto s1 = core::Scenario::generate(core::tiny_config(34));
  auto s2 = core::Scenario::generate(core::tiny_config(34));
  core::Workload w1(*s1, core::WorkloadConfig{}, 5);
  core::Workload w2(*s2, core::WorkloadConfig{}, 5);
  w1.advance_to(kSecondsPerDay / 2);
  w2.advance_to(kSecondsPerDay / 2);
  CacheProbeConfig lossless;
  CacheProbeConfig lossy;
  lossy.probe_loss = 0.5;
  CacheProber p1(s1->dns(), s1->catalog(), lossless);
  CacheProber p2(s2->dns(), s2->catalog(), lossy);
  const auto routable = s1->topo().addresses.routable_slash24s();
  p1.sweep(routable, kSecondsPerDay / 2);
  p2.sweep(routable, kSecondsPerDay / 2);
  EXPECT_EQ(p1.total_probes(), p2.total_probes());
  std::uint64_t hits1 = 0, hits2 = 0;
  for (const auto& [prefix, stats] : net::sorted_items(p1.results())) {
    hits1 += stats.hits;
  }
  for (const auto& [prefix, stats] : net::sorted_items(p2.results())) {
    hits2 += stats.hits;
  }
  ASSERT_GT(hits1, 100u);
  EXPECT_NEAR(static_cast<double>(hits2), 0.5 * static_cast<double>(hits1),
              0.1 * static_cast<double>(hits1));
}

}  // namespace
}  // namespace itm::scan
