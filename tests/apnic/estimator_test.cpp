#include "apnic/estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_scenario.h"
#include "net/stats.h"

namespace itm::apnic {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(ApnicEstimates, CoversMostLargeAses) {
  auto& s = shared_tiny_scenario();
  for (const Asn a : s.topo().accesses) {
    if (s.users().as_users(a) > 5000) {
      EXPECT_TRUE(s.apnic().covered(a))
          << s.topo().graph.info(a).name << " with "
          << s.users().as_users(a) << " users missing from APNIC";
    }
  }
}

TEST(ApnicEstimates, EstimatesWithinNoiseForBigAses) {
  auto& s = shared_tiny_scenario();
  for (const Asn a : s.topo().accesses) {
    const double truth = s.users().as_users(a);
    if (truth < 2000 || !s.apnic().covered(a)) continue;
    const double ratio = s.apnic().users(a) / truth;
    EXPECT_GT(ratio, 0.4) << s.topo().graph.info(a).name;
    EXPECT_LT(ratio, 3.0) << s.topo().graph.info(a).name;
  }
}

TEST(ApnicEstimates, RankCorrelatesWithTruth) {
  auto& s = shared_tiny_scenario();
  std::vector<double> est, truth;
  for (const Asn a : s.topo().accesses) {
    if (!s.apnic().covered(a)) continue;
    est.push_back(s.apnic().users(a));
    truth.push_back(s.users().as_users(a));
  }
  ASSERT_GT(est.size(), 5u);
  EXPECT_GT(spearman(est, truth), 0.7);
}

TEST(ApnicEstimates, NonAccessAsesNotCovered) {
  auto& s = shared_tiny_scenario();
  EXPECT_FALSE(s.apnic().covered(s.topo().tier1s.front()));
  EXPECT_FALSE(s.apnic().covered(s.topo().hypergiants.front()));
  EXPECT_DOUBLE_EQ(s.apnic().users(s.topo().tier1s.front()), 0.0);
}

TEST(ApnicEstimates, CountryTotalsSumToTotal) {
  auto& s = shared_tiny_scenario();
  double sum = 0;
  for (const auto& country : s.topo().geography.countries()) {
    sum += s.apnic().country_users(s.topo(), country.id);
  }
  EXPECT_NEAR(sum, s.apnic().total_users(), s.apnic().total_users() * 1e-9);
}

TEST(ApnicEstimates, ThresholdDropsTinyAses) {
  // With a very high reporting threshold nothing is covered.
  auto& s = shared_tiny_scenario();
  ApnicConfig config;
  config.sample_rate = 1e-7;  // samples ~0 users everywhere
  Rng rng(5);
  const auto sparse = ApnicEstimates::build(s.topo(), s.users(), config, rng);
  EXPECT_LT(sparse.by_as().size(), s.apnic().by_as().size());
}

}  // namespace
}  // namespace itm::apnic
