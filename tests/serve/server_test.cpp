// Session-protocol tests for the resident server: batches answer in order
// and byte-identically to a standalone QueryEngine, control verbs swap
// epochs mid-session with clean sequencing, bad inputs produce in-band
// errors without killing the session, and the graceful-shutdown flag
// drains instead of dropping work.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/traffic_map.h"
#include "serve/delta.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace itm::serve {
namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto scenario = core::Scenario::generate(core::tiny_config(808));
    core::MapBuilder builder(*scenario);
    core::MapBuildOptions options;
    options.probe_rounds = 6;
    const auto map = builder.build(options);
    std::ostringstream os;
    write_snapshot(map, *scenario, os);
    base_bytes_ = new std::string(os.str());

    std::string error;
    Snapshot target = *read_snapshot(std::string_view(*base_bytes_), &error);
    target.addresses_probed += 777;
    target.ases.front().activity += 1.0;
    std::ostringstream tos;
    write_snapshot(target, tos);
    target_bytes_ = new std::string(tos.str());
    delta_bytes_ = new std::string(
        *diff_snapshots(*base_bytes_, *target_bytes_, &error));

    base_path_ = new std::string(write_temp(*base_bytes_, "base.itms"));
    target_path_ = new std::string(write_temp(*target_bytes_, "target.itms"));
    delta_path_ = new std::string(write_temp(*delta_bytes_, "delta.itmsd"));
  }
  static void TearDownTestSuite() {
    std::remove(base_path_->c_str());
    std::remove(target_path_->c_str());
    std::remove(delta_path_->c_str());
    delete delta_path_;
    delete target_path_;
    delete base_path_;
    delete delta_bytes_;
    delete target_bytes_;
    delete base_bytes_;
  }

  void SetUp() override { Server::clear_shutdown(); }
  void TearDown() override { Server::clear_shutdown(); }

  static std::string write_temp(const std::string& bytes, const char* name) {
    std::string path = ::testing::TempDir() + "server_test_" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  // A reference answer computed outside the server.
  static std::string expect_answer(const std::string& snapshot_bytes,
                                   const std::string& query) {
    std::string error;
    const auto view = borrow_snapshot(snapshot_bytes, &error);
    EXPECT_TRUE(view.has_value()) << error;
    return QueryEngine(*view, 0).answer(query);
  }

  // Runs one stdio-style session over string streams and returns the
  // response lines.
  static std::vector<std::string> run_session(Server& server,
                                              const std::string& input) {
    std::istringstream in(input);
    std::ostringstream out;
    server.serve_session(in, out);
    return lines_of(out.str());
  }

  static std::string* base_bytes_;
  static std::string* target_bytes_;
  static std::string* delta_bytes_;
  static std::string* base_path_;
  static std::string* target_path_;
  static std::string* delta_path_;
};

std::string* ServerTest::base_bytes_ = nullptr;
std::string* ServerTest::target_bytes_ = nullptr;
std::string* ServerTest::delta_bytes_ = nullptr;
std::string* ServerTest::base_path_ = nullptr;
std::string* ServerTest::target_path_ = nullptr;
std::string* ServerTest::delta_path_ = nullptr;

TEST_F(ServerTest, StartRejectsBadSnapshots) {
  net::Executor executor(1);
  ServedOptions options;
  options.snapshot_path = "/no/such/file.itms";
  Server missing(options, executor);
  std::string error;
  EXPECT_FALSE(missing.start(&error));
  EXPECT_FALSE(error.empty());

  const std::string garbage = write_temp("not a snapshot", "garbage.itms");
  options.snapshot_path = garbage;
  Server invalid(options, executor);
  error.clear();
  EXPECT_FALSE(invalid.start(&error));
  EXPECT_FALSE(error.empty());
  std::remove(garbage.c_str());
}

TEST_F(ServerTest, SessionAnswersMatchEngineInOrder) {
  net::Executor executor(2);
  ServedOptions options;
  options.snapshot_path = *base_path_;
  options.max_batch = 2;  // force several multi-query executor batches
  Server server(options, executor);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::vector<std::string> queries = {
      "stats",       "top-as 3",       "lookup 10.0.0.1",
      "top-country 2", "bogus line",   "outage 4808",
  };
  std::string input;
  for (const auto& q : queries) input += q + "\n";
  input += "quit\n";
  const auto responses = run_session(server, input);
  ASSERT_EQ(responses.size(), queries.size() + 1);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(responses[i], expect_answer(*base_bytes_, queries[i]))
        << queries[i];
  }
  EXPECT_EQ(responses.back(), "ok bye");
}

TEST_F(ServerTest, EpochVerbReportsStateAndSessionsResume) {
  net::Executor executor(1);
  ServedOptions options;
  options.snapshot_path = *base_path_;
  Server server(options, executor);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const auto responses = run_session(server, "stats\nepoch\nquit\n");
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0], expect_answer(*base_bytes_, "stats"));
  const std::string prefix =
      "epoch 0 checksum=" + hex64(snapshot_checksum(*base_bytes_));
  EXPECT_EQ(responses[1].rfind(prefix, 0), 0u) << responses[1];
  EXPECT_NE(responses[1].find(" swaps=1 "), std::string::npos);
  EXPECT_NE(responses[1].find(" p99_us="), std::string::npos);
  EXPECT_EQ(responses[2], "ok bye");

  // The server survives the session; a second one answers afresh.
  const auto again = run_session(server, "stats\n");
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], expect_answer(*base_bytes_, "stats"));
}

TEST_F(ServerTest, SwapSnapshotIsASequencingPoint) {
  net::Executor executor(2);
  ServedOptions options;
  options.snapshot_path = *base_path_;
  Server server(options, executor);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const auto responses = run_session(
      server, "stats\nswap-snapshot " + *target_path_ + "\nstats\nquit\n");
  ASSERT_EQ(responses.size(), 4u);
  // The query before the verb answers against the old epoch, the one after
  // against the new — and the two stats lines must actually differ.
  EXPECT_EQ(responses[0], expect_answer(*base_bytes_, "stats"));
  EXPECT_EQ(responses[1], "ok epoch=1 checksum=" +
                              hex64(snapshot_checksum(*target_bytes_)));
  EXPECT_EQ(responses[2], expect_answer(*target_bytes_, "stats"));
  EXPECT_NE(responses[2], responses[0]);
  EXPECT_EQ(responses[3], "ok bye");
}

TEST_F(ServerTest, ApplyDeltaSwapsToByteIdenticalTarget) {
  net::Executor executor(1);
  ServedOptions options;
  options.snapshot_path = *base_path_;
  Server server(options, executor);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const auto responses = run_session(
      server, "apply-delta " + *delta_path_ + "\nstats\nepoch\nquit\n");
  ASSERT_EQ(responses.size(), 4u);
  // The post-apply checksum equals the fresh target snapshot's checksum —
  // the wire-visible form of the byte-identity guarantee.
  EXPECT_EQ(responses[0], "ok epoch=1 checksum=" +
                              hex64(snapshot_checksum(*target_bytes_)));
  EXPECT_EQ(responses[1], expect_answer(*target_bytes_, "stats"));
  EXPECT_EQ(responses[2].rfind("epoch 1 checksum=", 0), 0u) << responses[2];
  EXPECT_EQ(responses[3], "ok bye");
  EXPECT_EQ(server.epochs().current()->bytes(),
            std::string_view(*target_bytes_));
}

TEST_F(ServerTest, ControlErrorsStayInBand) {
  net::Executor executor(1);
  ServedOptions options;
  options.snapshot_path = *base_path_;
  Server server(options, executor);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const auto responses = run_session(server,
                                     "swap-snapshot /no/such.itms\n"
                                     "apply-delta\n"
                                     "apply-delta " + *base_path_ + "\n"
                                     "stats\nquit\n");
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses[0].rfind("error: ", 0), 0u) << responses[0];
  EXPECT_EQ(responses[1], "error: apply-delta needs a path");
  EXPECT_EQ(responses[2].rfind("error: ", 0), 0u) << responses[2];
  // The epoch is untouched and the session keeps serving.
  EXPECT_EQ(responses[3], expect_answer(*base_bytes_, "stats"));
  EXPECT_EQ(responses[4], "ok bye");
  EXPECT_EQ(server.epochs().current()->id(), 0u);
}

TEST_F(ServerTest, ShutdownFlagEndsSessionsAndClears) {
  net::Executor executor(1);
  ServedOptions options;
  options.snapshot_path = *base_path_;
  Server server(options, executor);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  EXPECT_FALSE(Server::shutdown_requested());
  Server::request_shutdown();
  EXPECT_TRUE(Server::shutdown_requested());
  // A session started after the flag is set stops before reading input.
  const auto responses = run_session(server, "stats\nstats\n");
  EXPECT_TRUE(responses.empty());

  Server::clear_shutdown();
  const auto after = run_session(server, "stats\n");
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], expect_answer(*base_bytes_, "stats"));
}

}  // namespace
}  // namespace itm::serve
