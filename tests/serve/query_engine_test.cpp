// Query-engine correctness: every answer served from the compiled snapshot
// must exactly equal the corresponding in-memory TrafficMap answer — that
// equality is the contract that makes `.itms` a faithful serving artifact.
#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/scenario.h"
#include "core/traffic_map.h"
#include "net/ordered.h"
#include "serve/lru_cache.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace itm::serve {
namespace {

// Build once: tiny map -> snapshot bytes -> validated reload (the exact
// production path of `itm serve`).
class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = core::Scenario::generate(core::tiny_config(808)).release();
    core::MapBuilder builder(*scenario_);
    core::MapBuildOptions options;
    options.probe_rounds = 6;
    map_ = new core::TrafficMap(builder.build(options));
    std::ostringstream os;
    write_snapshot(*map_, *scenario_, os);
    std::string error;
    auto snap = read_snapshot(std::string_view(os.str()), &error);
    ASSERT_TRUE(snap.has_value()) << error;
    snapshot_ = new Snapshot(std::move(*snap));
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete map_;
    delete scenario_;
  }
  static core::Scenario* scenario_;
  static core::TrafficMap* map_;
  static Snapshot* snapshot_;
};

core::Scenario* QueryEngineTest::scenario_ = nullptr;
core::TrafficMap* QueryEngineTest::map_ = nullptr;
Snapshot* QueryEngineTest::snapshot_ = nullptr;

TEST_F(QueryEngineTest, TotalActivityEqualsMapExactly) {
  const QueryEngine engine(*snapshot_);
  EXPECT_EQ(engine.total_activity(), map_->total_activity());
}

TEST_F(QueryEngineTest, PerAsActivityEqualsMapExactly) {
  const QueryEngine engine(*snapshot_);
  for (const auto& as : scenario_->topo().graph.ases()) {
    const auto answer = engine.as_answer(as.asn);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(answer->activity, map_->activity.score(as.asn));
    EXPECT_EQ(answer->name, as.name);
    EXPECT_EQ(answer->country, as.country);
    const bool is_client =
        std::find(map_->client_ases.begin(), map_->client_ases.end(),
                  as.asn) != map_->client_ases.end();
    EXPECT_EQ(answer->is_client, is_client);
  }
  EXPECT_FALSE(engine.as_answer(Asn(1u << 30)).has_value());
}

TEST_F(QueryEngineTest, OutageImpactEqualsMapForEveryAs) {
  const QueryEngine engine(*snapshot_);
  const auto& plan = scenario_->topo().addresses;
  for (const auto& as : scenario_->topo().graph.ases()) {
    const auto served = engine.outage(as.asn);
    ASSERT_TRUE(served.has_value());
    const auto expected = map_->outage_impact(as.asn, plan);
    EXPECT_EQ(served->activity_share, expected.activity_share)
        << "AS " << as.asn.value();
    EXPECT_EQ(served->client_prefixes, expected.client_prefixes)
        << "AS " << as.asn.value();
    EXPECT_EQ(served->servers_inside, expected.servers_inside)
        << "AS " << as.asn.value();
    EXPECT_EQ(served->services_served_from, expected.services_served_from)
        << "AS " << as.asn.value();
  }
}

TEST_F(QueryEngineTest, PointLookupFindsEveryClientPrefix) {
  const QueryEngine engine(*snapshot_);
  const auto& plan = scenario_->topo().addresses;
  for (const Ipv4Prefix& prefix : map_->client_prefixes) {
    // Probe the base and the last address of each detected prefix.
    for (const auto addr : {prefix.base(), prefix.address_at(prefix.size() - 1)}) {
      const auto answer = engine.lookup(addr);
      ASSERT_TRUE(answer.client_prefix.has_value())
          << addr.to_string() << " not covered";
      EXPECT_EQ(*answer.client_prefix, prefix);
      EXPECT_EQ(answer.origin, plan.origin_of(prefix));
      if (answer.origin) {
        EXPECT_EQ(answer.activity, map_->activity.score(*answer.origin));
      }
    }
  }
}

TEST_F(QueryEngineTest, ServingEndpointsEqualUserMapping) {
  const QueryEngine engine(*snapshot_);
  for (const auto service : net::sorted_keys(map_->user_mapping)) {
    const auto& sweep = map_->user_mapping.at(service);
    for (const auto& [prefix, front_end] : net::sorted_items(sweep)) {
      const auto answer = engine.lookup(prefix.base());
      const auto it = std::find_if(
          answer.serving.begin(), answer.serving.end(),
          [service](const auto& pair) { return pair.first == service; });
      ASSERT_NE(it, answer.serving.end())
          << "service " << service << " missing for " << prefix.to_string();
      EXPECT_EQ(it->second, front_end);
    }
  }
}

TEST_F(QueryEngineTest, LookupAgreesWithLinearScanOnArbitraryAddresses) {
  const QueryEngine engine(*snapshot_);
  // Addresses around prefix boundaries plus far-off ones: the binary-search
  // lookup must agree with a brute-force scan of the map's prefix list.
  std::vector<Ipv4Addr> probes = {Ipv4Addr(0), Ipv4Addr(0xffffffffu),
                                  Ipv4Addr::from_octets(127, 0, 0, 1)};
  for (std::size_t i = 0; i < map_->client_prefixes.size(); i += 7) {
    const auto& p = map_->client_prefixes[i];
    probes.push_back(Ipv4Addr(p.base().bits() - 1));
    probes.push_back(
        Ipv4Addr(p.base().bits() + static_cast<std::uint32_t>(p.size())));
  }
  for (const auto addr : probes) {
    const auto answer = engine.lookup(addr);
    const auto covering = std::find_if(
        map_->client_prefixes.begin(), map_->client_prefixes.end(),
        [addr](const Ipv4Prefix& p) { return p.contains(addr); });
    if (covering == map_->client_prefixes.end()) {
      EXPECT_FALSE(answer.client_prefix.has_value()) << addr.to_string();
    } else {
      ASSERT_TRUE(answer.client_prefix.has_value()) << addr.to_string();
      EXPECT_EQ(*answer.client_prefix, *covering);
    }
  }
}

TEST_F(QueryEngineTest, ExactPrefixLookupRejectsNonMatchingLength) {
  const QueryEngine engine(*snapshot_);
  ASSERT_FALSE(map_->client_prefixes.empty());
  const Ipv4Prefix known = map_->client_prefixes.front();
  EXPECT_TRUE(engine.lookup(known).client_prefix.has_value());
  const Ipv4Prefix wider(known.base(), known.length() - 1);
  EXPECT_FALSE(engine.lookup(wider).client_prefix.has_value());
}

TEST_F(QueryEngineTest, TopAsesMatchesActivityRanking) {
  const QueryEngine engine(*snapshot_);
  std::vector<std::pair<Asn, double>> expected;
  for (const auto& [asn, score] : net::sorted_items(map_->activity.by_as)) {
    if (score > 0) expected.emplace_back(Asn(asn), score);
  }
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (expected.size() > 10) expected.resize(10);
  EXPECT_EQ(engine.top_ases(10), expected);
}

TEST_F(QueryEngineTest, CountryRollupMatchesRecordOrderSum) {
  const QueryEngine engine(*snapshot_);
  for (const auto& rec : snapshot_->countries) {
    const auto answer = engine.country(CountryId(rec.country));
    ASSERT_TRUE(answer.has_value());
    double expected = 0.0;
    std::size_t clients = 0;
    for (const auto& as : snapshot_->ases) {
      if (as.country != rec.country) continue;
      expected += as.activity;
      if (as.is_client()) ++clients;
    }
    EXPECT_EQ(answer->activity, expected);
    EXPECT_EQ(answer->client_ases, clients);
  }
  EXPECT_FALSE(engine.country(CountryId(1u << 30)).has_value());
}

TEST_F(QueryEngineTest, BatchProtocolIsDeterministicAndCached) {
  QueryEngine engine(*snapshot_, 16);
  const std::string first = engine.execute("stats");
  const std::string second = engine.execute("stats");
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.cache_hits(), 1u);
  EXPECT_EQ(engine.queries_executed(), 2u);
  EXPECT_EQ(engine.execute("nonsense").rfind("error:", 0), 0u);
  EXPECT_EQ(engine.execute("lookup not-an-ip").rfind("error:", 0), 0u);
  EXPECT_EQ(engine.execute("as 99999999").rfind("error:", 0), 0u);
}

TEST_F(QueryEngineTest, CacheEvictionsAreCounted) {
  // Capacity 2 with three distinct cacheable queries: the third insert must
  // evict exactly one entry, and the counter feeds `itm serve`'s
  // serve.cache.evictions metric.
  QueryEngine engine(*snapshot_, 2);
  engine.execute("stats");
  engine.execute("top-as 5");
  EXPECT_EQ(engine.cache_evictions(), 0u);
  engine.execute("top-as 7");
  EXPECT_EQ(engine.cache_evictions(), 1u);
  EXPECT_EQ(engine.cache_hits(), 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  EXPECT_TRUE(cache.get("a").has_value());  // a becomes most recent
  cache.put("c", 3);                        // evicts b
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.get("a"), 1);
  EXPECT_EQ(cache.get("c"), 3);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache<int> cache(0);
  cache.put("a", 1);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, PutUpdatesExistingKey) {
  LruCache<int> cache(2);
  cache.put("a", 1);
  cache.put("a", 7);
  EXPECT_EQ(cache.get("a"), 7);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace itm::serve
