// Snapshot format tests: lossless round-trip (write -> read -> re-write is
// byte-identical) and rejection of every corrupted variant we can mint —
// truncations, trailing bytes, and single-bit flips anywhere in the file.
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/scenario.h"
#include "core/traffic_map.h"

namespace itm::serve {
namespace {

// One tiny map compiled once for every test in the suite.
class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = core::Scenario::generate(core::tiny_config(808)).release();
    core::MapBuilder builder(*scenario_);
    core::MapBuildOptions options;
    options.probe_rounds = 6;
    map_ = new core::TrafficMap(builder.build(options));
    std::ostringstream os;
    write_snapshot(*map_, *scenario_, os);
    blob_ = new std::string(os.str());
  }
  static void TearDownTestSuite() {
    delete blob_;
    delete map_;
    delete scenario_;
  }
  static core::Scenario* scenario_;
  static core::TrafficMap* map_;
  static std::string* blob_;
};

core::Scenario* SnapshotTest::scenario_ = nullptr;
core::TrafficMap* SnapshotTest::map_ = nullptr;
std::string* SnapshotTest::blob_ = nullptr;

TEST_F(SnapshotTest, ReaderAcceptsWriterOutput) {
  std::string error;
  const auto snap = read_snapshot(std::string_view(*blob_), &error);
  ASSERT_TRUE(snap.has_value()) << error;
  EXPECT_EQ(snap->seed, scenario_->config().seed);
  EXPECT_EQ(snap->prefixes.size(), map_->client_prefixes.size());
  EXPECT_EQ(snap->endpoints.size(), map_->tls.endpoints.size());
  EXPECT_EQ(snap->mappings.size(), map_->user_mapping.size());
  EXPECT_EQ(snap->links.size(), map_->recommended_links.size());
  EXPECT_EQ(snap->ases.size(), scenario_->topo().graph.size());
  EXPECT_EQ(snap->observed_links, map_->public_view.link_count());
}

TEST_F(SnapshotTest, RoundTripIsByteIdentical) {
  std::string error;
  const auto snap = read_snapshot(std::string_view(*blob_), &error);
  ASSERT_TRUE(snap.has_value()) << error;
  std::ostringstream again;
  write_snapshot(*snap, again);
  EXPECT_EQ(again.str(), *blob_);
}

TEST_F(SnapshotTest, SortInvariantsHoldAfterLoad) {
  std::string error;
  const auto snap = read_snapshot(std::string_view(*blob_), &error);
  ASSERT_TRUE(snap.has_value()) << error;
  for (std::size_t i = 1; i < snap->ases.size(); ++i) {
    EXPECT_LT(snap->ases[i - 1].asn, snap->ases[i].asn);
  }
  for (std::size_t i = 1; i < snap->prefixes.size(); ++i) {
    const auto& a = snap->prefixes[i - 1];
    const auto& b = snap->prefixes[i];
    EXPECT_LT((std::pair{a.base, a.length}), (std::pair{b.base, b.length}));
    EXPECT_FALSE(a.prefix().contains(b.prefix()));
  }
  for (std::size_t i = 1; i < snap->endpoints.size(); ++i) {
    EXPECT_LT(snap->endpoints[i - 1].address, snap->endpoints[i].address);
  }
  for (std::size_t i = 1; i < snap->mappings.size(); ++i) {
    EXPECT_LT(snap->mappings[i - 1].service, snap->mappings[i].service);
  }
}

TEST_F(SnapshotTest, TruncationsAreRejected) {
  const std::size_t cuts[] = {0,
                              4,
                              8,
                              16,
                              23,
                              24,
                              blob_->size() / 3,
                              blob_->size() / 2,
                              blob_->size() - 1};
  for (const std::size_t cut : cuts) {
    std::string error;
    const auto snap =
        read_snapshot(std::string_view(blob_->data(), cut), &error);
    EXPECT_FALSE(snap.has_value()) << "accepted a truncation to " << cut
                                   << " bytes";
    EXPECT_FALSE(error.empty());
  }
}

TEST_F(SnapshotTest, TrailingBytesAreRejected) {
  std::string padded = *blob_ + '\0';
  std::string error;
  EXPECT_FALSE(read_snapshot(std::string_view(padded), &error).has_value());
  padded = *blob_ + "extra";
  EXPECT_FALSE(read_snapshot(std::string_view(padded), &error).has_value());
}

TEST_F(SnapshotTest, SingleBitFlipsAreRejected) {
  // Every bit of the header and section table region, then a sampled sweep
  // across the payloads (a prime stride so all bit positions get exercised).
  std::string mutated = *blob_;
  const auto check_flip = [&mutated](std::size_t byte, unsigned bit) {
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ (1u << bit));
    std::string error;
    const bool accepted =
        read_snapshot(std::string_view(mutated), &error).has_value();
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ (1u << bit));  // restore
    EXPECT_FALSE(accepted) << "accepted a bit flip at byte " << byte
                           << " bit " << bit;
  };
  const std::size_t dense_region = std::min<std::size_t>(blob_->size(), 256);
  for (std::size_t byte = 0; byte < dense_region; ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) check_flip(byte, bit);
  }
  for (std::size_t byte = dense_region; byte < blob_->size(); byte += 997) {
    check_flip(byte, static_cast<unsigned>(byte % 8));
  }
}

TEST_F(SnapshotTest, GarbageIsRejected) {
  std::string error;
  EXPECT_FALSE(read_snapshot(std::string_view("not a snapshot"), &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  const std::string zeros(1024, '\0');
  EXPECT_FALSE(read_snapshot(std::string_view(zeros), &error).has_value());
}

TEST_F(SnapshotTest, StreamReaderMatchesBufferReader) {
  std::istringstream is(*blob_);
  std::string error;
  const auto snap = read_snapshot(is, &error);
  ASSERT_TRUE(snap.has_value()) << error;
  EXPECT_EQ(snap->prefixes.size(), map_->client_prefixes.size());
}

}  // namespace
}  // namespace itm::serve
