// Hot-swap stress tests (labeled `tsan` so tools/check_tsan.sh runs them
// under ThreadSanitizer): reader threads hammer queries through the
// EpochManager hazard slots while a writer applies a chain of deltas and
// installs the resulting epochs. Every answer tuple taken under a single
// pin must match exactly one snapshot version — pre- or post-swap, never a
// blend — and versions observed by one reader never go backwards.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "core/traffic_map.h"
#include "serve/delta.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace itm::serve {
namespace {

// The probe queries answered under one pin. "stats" embeds
// addresses_probed and the seed, so every version below answers it
// differently — a blended tuple cannot match any single version.
const char* const kProbes[] = {"stats", "top-as 3"};
constexpr std::size_t kProbeCount = 2;
constexpr std::size_t kVersions = 5;  // version 0 + 4 delta steps

class HotSwapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto scenario = core::Scenario::generate(core::tiny_config(808));
    core::MapBuilder builder(*scenario);
    core::MapBuildOptions options;
    options.probe_rounds = 6;
    const auto map = builder.build(options);
    std::ostringstream os;
    write_snapshot(map, *scenario, os);

    versions_ = new std::vector<std::string>;
    deltas_ = new std::vector<std::string>;
    expected_ = new std::vector<std::vector<std::string>>;
    versions_->push_back(os.str());

    std::string error;
    Snapshot snap = *read_snapshot(std::string_view(versions_->front()),
                                   &error);
    for (std::size_t k = 1; k < kVersions; ++k) {
      // Each step changes the stats line and the activity ranking.
      snap.addresses_probed += 1000 + k;
      snap.ases.front().activity += static_cast<double>(k);
      std::ostringstream vos;
      write_snapshot(snap, vos);
      versions_->push_back(vos.str());
      const auto delta = diff_snapshots((*versions_)[k - 1], (*versions_)[k],
                                        &error);
      ASSERT_TRUE(delta.has_value()) << error;
      deltas_->push_back(*delta);
    }
    for (const std::string& bytes : *versions_) {
      const auto view = borrow_snapshot(bytes, &error);
      ASSERT_TRUE(view.has_value()) << error;
      const QueryEngine engine(*view, 0);
      std::vector<std::string> answers;
      for (const char* q : kProbes) answers.push_back(engine.answer(q));
      expected_->push_back(std::move(answers));
    }
    // The versions must be distinguishable or the blend assertion is vacuous.
    for (std::size_t k = 1; k < kVersions; ++k) {
      ASSERT_NE((*expected_)[k][0], (*expected_)[k - 1][0]);
    }
  }
  static void TearDownTestSuite() {
    delete expected_;
    delete deltas_;
    delete versions_;
  }

  static std::unique_ptr<const Epoch> make_epoch(std::uint64_t id,
                                                 const std::string& bytes) {
    std::string error;
    auto epoch = Epoch::from_bytes(id, bytes, /*cache_capacity=*/64, &error);
    EXPECT_NE(epoch, nullptr) << error;
    return epoch;
  }

  static std::vector<std::string>* versions_;
  static std::vector<std::string>* deltas_;
  static std::vector<std::vector<std::string>>* expected_;
};

std::vector<std::string>* HotSwapTest::versions_ = nullptr;
std::vector<std::string>* HotSwapTest::deltas_ = nullptr;
std::vector<std::vector<std::string>>* HotSwapTest::expected_ = nullptr;

TEST_F(HotSwapTest, EpochAnswersAndCounts) {
  const auto epoch = make_epoch(0, versions_->front());
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->checksum(), snapshot_checksum(versions_->front()));
  EXPECT_EQ(epoch->bytes(), std::string_view(versions_->front()));
  const std::string first = epoch->answer(0, "stats");
  const std::string again = epoch->answer(0, "stats");  // cache hit
  EXPECT_EQ(first, (*expected_)[0][0]);
  EXPECT_EQ(again, first);
  EXPECT_EQ(epoch->queries(), 2u);
}

TEST_F(HotSwapTest, InstallWaitsForPinnedReaders) {
  EpochManager manager;
  ASSERT_EQ(manager.install(make_epoch(0, (*versions_)[0])), nullptr);
  const Epoch* pinned = manager.pin(0);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->id(), 0u);

  std::atomic<bool> writer_done{false};
  std::unique_ptr<const Epoch> retired;
  std::thread writer([&] {
    retired = manager.install(make_epoch(1, (*versions_)[1]));
    writer_done.store(true, std::memory_order_release);
  });
  // The writer cannot finish its grace wait while slot 0 still pins the
  // old epoch — `writer_done` is provably false until we unpin.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_done.load(std::memory_order_acquire));
  // The pinned epoch stays fully usable throughout the writer's wait.
  EXPECT_EQ(pinned->answer(0, "stats"), (*expected_)[0][0]);
  manager.unpin(0);
  writer.join();
  ASSERT_NE(retired, nullptr);
  EXPECT_EQ(retired->id(), 0u);
  EXPECT_EQ(manager.current()->id(), 1u);
  EXPECT_EQ(manager.swaps(), 2u);

  // A fresh pin after the swap sees the new epoch.
  const EpochPin pin(manager, 0);
  EXPECT_EQ(pin->id(), 1u);
  EXPECT_EQ(pin->answer(0, "stats"), (*expected_)[1][0]);
}

TEST_F(HotSwapTest, ReadersNeverObserveABlend) {
  EpochManager manager;
  ASSERT_EQ(manager.install(make_epoch(0, (*versions_)[0])), nullptr);

  constexpr std::size_t kReaders = 3;
  constexpr std::uint64_t kMinIterations = 40;
  std::atomic<bool> done{false};
  std::vector<std::string> failures(kReaders);
  std::vector<std::uint64_t> iterations(kReaders, 0);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // Slot r+1: the writer never pins, readers never share a slot.
      const std::size_t slot = r + 1;
      std::size_t last_version = 0;
      while (!done.load(std::memory_order_acquire) ||
             iterations[r] < kMinIterations) {
        std::vector<std::string> got(kProbeCount);
        {
          const EpochPin pin(manager, slot);
          for (std::size_t q = 0; q < kProbeCount; ++q) {
            got[q] = pin->answer(slot, kProbes[q]);
          }
        }
        std::size_t version = kVersions;
        for (std::size_t v = 0; v < kVersions; ++v) {
          if (got == (*expected_)[v]) {
            version = v;
            break;
          }
        }
        if (version == kVersions) {
          failures[r] = "answer tuple matches no version: " + got[0];
          break;
        }
        if (version < last_version) {
          failures[r] = "epoch went backwards: " +
                        std::to_string(last_version) + " -> " +
                        std::to_string(version);
          break;
        }
        last_version = version;
        ++iterations[r];
      }
    });
  }

  // Writer: chase the version chain by applying each delta to the live
  // epoch's bytes — exactly what `apply-delta` does in the server.
  std::vector<std::unique_ptr<const Epoch>> retired;
  for (std::size_t k = 1; k < kVersions; ++k) {
    std::string error;
    const auto applied = apply_delta(manager.current()->bytes(),
                                     (*deltas_)[k - 1], &error);
    ASSERT_TRUE(applied.has_value()) << error;
    ASSERT_EQ(*applied, (*versions_)[k]);  // byte-identical to the target
    auto next = make_epoch(k, *applied);
    ASSERT_NE(next, nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto old = manager.install(std::move(next));
    ASSERT_NE(old, nullptr);
    EXPECT_EQ(old->id(), k - 1);
    retired.push_back(std::move(old));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  for (std::size_t r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(failures[r].empty()) << "reader " << r << ": " << failures[r];
    EXPECT_GE(iterations[r], kMinIterations);
  }
  EXPECT_EQ(manager.swaps(), kVersions);
  EXPECT_EQ(manager.current()->id(), kVersions - 1);
  EXPECT_EQ(retired.size(), kVersions - 1);
}

}  // namespace
}  // namespace itm::serve
