// `.itmsd` delta tests: diff -> apply reproduces the target snapshot *byte
// for byte* across every mutation kind, self-diffs are empty, and corrupted
// deltas (bit flips, truncations, wrong base) are always rejected —
// mirroring the `.itms` property tests.
#include "serve/delta.h"

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/traffic_map.h"
#include "serve/format.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace itm::serve {
namespace {

std::string serialize(const Snapshot& snap) {
  std::ostringstream os;
  write_snapshot(snap, os);
  return os.str();
}

// One tiny map compiled once for every test in the suite.
class DeltaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto scenario = core::Scenario::generate(core::tiny_config(808));
    core::MapBuilder builder(*scenario);
    core::MapBuildOptions options;
    options.probe_rounds = 6;
    const auto map = builder.build(options);
    std::ostringstream os;
    write_snapshot(map, *scenario, os);
    base_bytes_ = new std::string(os.str());
    std::string error;
    base_ = new Snapshot(
        *read_snapshot(std::string_view(*base_bytes_), &error));
  }
  static void TearDownTestSuite() {
    delete base_;
    delete base_bytes_;
  }

  // Round-trip property for one mutated target: diff(base, target) applied
  // to base must reproduce target exactly.
  static void expect_round_trip(const Snapshot& target) {
    const std::string target_bytes = serialize(target);
    std::string error;
    const auto delta = diff_snapshots(*base_bytes_, target_bytes, &error);
    ASSERT_TRUE(delta.has_value()) << error;
    const auto applied = apply_delta(*base_bytes_, *delta, &error);
    ASSERT_TRUE(applied.has_value()) << error;
    EXPECT_EQ(*applied, target_bytes);
  }

  static Snapshot* base_;
  static std::string* base_bytes_;
};

Snapshot* DeltaTest::base_ = nullptr;
std::string* DeltaTest::base_bytes_ = nullptr;

TEST_F(DeltaTest, SelfDiffIsEmptyAndApplies) {
  std::string error;
  const auto delta = diff_snapshots(*base_bytes_, *base_bytes_, &error);
  ASSERT_TRUE(delta.has_value()) << error;
  const auto info = read_delta_info(*delta, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->ops, 0u);
  EXPECT_FALSE(info->replaces_strings);
  EXPECT_FALSE(info->replaces_links);
  EXPECT_EQ(info->base_checksum, info->target_checksum);
  const auto applied = apply_delta(*base_bytes_, *delta, &error);
  ASSERT_TRUE(applied.has_value()) << error;
  EXPECT_EQ(*applied, *base_bytes_);
}

TEST_F(DeltaTest, EveryMutationKindRoundTrips) {
  ASSERT_FALSE(base_->ases.empty());
  ASSERT_FALSE(base_->prefixes.empty());
  ASSERT_FALSE(base_->endpoints.empty());
  ASSERT_FALSE(base_->mappings.empty());

  const std::vector<std::function<void(Snapshot&)>> mutations = {
      // Meta scalars travel wholesale.
      [](Snapshot& s) { s.addresses_probed += 12345; },
      [](Snapshot& s) { s.seed ^= 0xdeadbeef; },
      // Replace: in-place record edits.
      [](Snapshot& s) { s.ases.front().activity *= 2.0; },
      [](Snapshot& s) { s.ases.back().flags ^= 1u; },
      [](Snapshot& s) { s.prefixes.front().origin_asn = kNoRef; },
      [](Snapshot& s) { s.endpoints.front().flags ^= 1u; },
      // Remove: drop keyed records.
      [](Snapshot& s) { s.ases.pop_back(); },
      [](Snapshot& s) { s.prefixes.erase(s.prefixes.begin()); },
      [](Snapshot& s) { s.endpoints.pop_back(); },
      [](Snapshot& s) { s.mappings.pop_back(); },
      // Add: new keyed records (keys above the current maximum keep the
      // sort invariants).
      [](Snapshot& s) {
        AsRecord as = s.ases.back();
        as.asn += 7;
        s.ases.push_back(as);
      },
      [](Snapshot& s) {
        EndpointRecord ep = s.endpoints.back();
        ep.address += 256;
        s.endpoints.push_back(ep);
      },
      [](Snapshot& s) {
        ServiceMapping mapping = s.mappings.back();
        mapping.service += 3;
        s.mappings.push_back(mapping);
      },
      // Mapping contents swap as a unit (replace of the whole service).
      [](Snapshot& s) {
        auto& entries = s.mappings.front().entries;
        if (!entries.empty()) entries.front().address ^= 1u;
      },
      // Order-sensitive sections travel as full replacements.
      [](Snapshot& s) { s.strings.push_back("delta-test-string"); },
      [](Snapshot& s) {
        LinkRecord link;
        link.a = 1;
        link.b = 2;
        link.score = 0.5;
        s.links.insert(s.links.begin(), link);
      },
      [](Snapshot& s) { s.links.clear(); },
  };
  for (std::size_t i = 0; i < mutations.size(); ++i) {
    Snapshot target = *base_;
    mutations[i](target);
    SCOPED_TRACE("mutation " + std::to_string(i));
    expect_round_trip(target);
  }
}

TEST_F(DeltaTest, CompoundMutationRoundTripsAndStaysSmall) {
  Snapshot target = *base_;
  target.addresses_probed += 1;
  target.ases.front().activity += 1.0;
  target.ases.pop_back();
  target.endpoints.front().flags ^= 2u;
  const std::string target_bytes = serialize(target);
  std::string error;
  const auto delta = diff_snapshots(*base_bytes_, target_bytes, &error);
  ASSERT_TRUE(delta.has_value()) << error;
  // A handful of record edits must not cost anywhere near a full snapshot.
  EXPECT_LT(delta->size(), target_bytes.size() / 4);
  const auto info = read_delta_info(*delta, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->ops, 3u);
  const auto applied = apply_delta(*base_bytes_, *delta, &error);
  ASSERT_TRUE(applied.has_value()) << error;
  EXPECT_EQ(*applied, target_bytes);
}

TEST_F(DeltaTest, AppliedSnapshotAnswersIdentically) {
  Snapshot target = *base_;
  target.ases.front().activity *= 3.0;
  target.endpoints.pop_back();
  const std::string target_bytes = serialize(target);
  std::string error;
  const auto delta = diff_snapshots(*base_bytes_, target_bytes, &error);
  ASSERT_TRUE(delta.has_value()) << error;
  const auto applied = apply_delta(*base_bytes_, *delta, &error);
  ASSERT_TRUE(applied.has_value()) << error;

  const auto applied_view = borrow_snapshot(*applied, &error);
  ASSERT_TRUE(applied_view.has_value()) << error;
  const auto target_view = borrow_snapshot(target_bytes, &error);
  ASSERT_TRUE(target_view.has_value()) << error;
  QueryEngine applied_engine(*applied_view, 0);
  QueryEngine target_engine(*target_view, 0);
  for (const char* q : {"stats", "top-as 10", "top-country 5",
                        "lookup 10.0.0.1", "outage 4808"}) {
    EXPECT_EQ(applied_engine.answer(q), target_engine.answer(q)) << q;
  }
}

TEST_F(DeltaTest, ApplyRejectsWrongBase) {
  Snapshot target = *base_;
  target.addresses_probed += 1;
  const std::string target_bytes = serialize(target);
  std::string error;
  const auto delta = diff_snapshots(*base_bytes_, target_bytes, &error);
  ASSERT_TRUE(delta.has_value()) << error;
  // Applying to the target (instead of the base) must fail the base check.
  EXPECT_FALSE(apply_delta(target_bytes, *delta, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(DeltaTest, SingleBitFlipsAreRejected) {
  Snapshot target = *base_;
  target.ases.front().activity += 1.0;
  target.strings.push_back("flip target");
  const std::string target_bytes = serialize(target);
  std::string error;
  const auto delta = diff_snapshots(*base_bytes_, target_bytes, &error);
  ASSERT_TRUE(delta.has_value()) << error;

  std::string mutated = *delta;
  const auto check_flip = [&](std::size_t byte, unsigned bit) {
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ (1u << bit));
    std::string flip_error;
    const bool accepted =
        apply_delta(*base_bytes_, mutated, &flip_error).has_value();
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ (1u << bit));  // restore
    EXPECT_FALSE(accepted) << "accepted a delta bit flip at byte " << byte
                           << " bit " << bit;
  };
  for (std::size_t byte = 0; byte < mutated.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) check_flip(byte, bit);
  }
}

TEST_F(DeltaTest, TruncationsAndGarbageAreRejected) {
  Snapshot target = *base_;
  target.addresses_probed += 1;
  const std::string target_bytes = serialize(target);
  std::string error;
  const auto delta = diff_snapshots(*base_bytes_, target_bytes, &error);
  ASSERT_TRUE(delta.has_value()) << error;

  const std::size_t cuts[] = {0, 4, 8, 16, 23, 24, delta->size() / 2,
                              delta->size() - 1};
  for (const std::size_t cut : cuts) {
    std::string cut_error;
    EXPECT_FALSE(apply_delta(*base_bytes_,
                             std::string_view(delta->data(), cut), &cut_error)
                     .has_value())
        << "accepted a truncation to " << cut << " bytes";
    EXPECT_FALSE(cut_error.empty());
  }
  std::string padded = *delta + "extra";
  EXPECT_FALSE(apply_delta(*base_bytes_, padded, &error).has_value());
  EXPECT_FALSE(apply_delta(*base_bytes_, "not a delta", &error).has_value());
  EXPECT_FALSE(read_delta_info("not a delta", &error).has_value());
  // A full snapshot is not a delta.
  EXPECT_FALSE(apply_delta(*base_bytes_, *base_bytes_, &error).has_value());
}

}  // namespace
}  // namespace itm::serve
