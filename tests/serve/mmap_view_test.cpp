// Zero-copy loading tests: the borrowed SnapshotView over raw bytes must be
// observationally identical to the owned Snapshot — section for section,
// record for record, and through the QueryEngine answer protocol — and
// MmapSnapshot must reject every corrupted file the buffer reader rejects.
#include "serve/mmap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/scenario.h"
#include "core/traffic_map.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace itm::serve {
namespace {

// One tiny map compiled once for every test in the suite.
class MmapViewTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = core::Scenario::generate(core::tiny_config(808)).release();
    core::MapBuilder builder(*scenario_);
    core::MapBuildOptions options;
    options.probe_rounds = 6;
    map_ = new core::TrafficMap(builder.build(options));
    std::ostringstream os;
    write_snapshot(*map_, *scenario_, os);
    blob_ = new std::string(os.str());
  }
  static void TearDownTestSuite() {
    delete blob_;
    delete map_;
    delete scenario_;
  }

  // Writes `bytes` to a fresh temp file and returns its path.
  static std::string write_temp(const std::string& bytes, const char* tag) {
    std::string path = ::testing::TempDir() + "mmap_view_test_" + tag +
                       ".itms";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    return path;
  }

  static core::Scenario* scenario_;
  static core::TrafficMap* map_;
  static std::string* blob_;
};

core::Scenario* MmapViewTest::scenario_ = nullptr;
core::TrafficMap* MmapViewTest::map_ = nullptr;
std::string* MmapViewTest::blob_ = nullptr;

TEST_F(MmapViewTest, BorrowedViewMatchesOwnedSnapshot) {
  std::string error;
  const auto owned = read_snapshot(std::string_view(*blob_), &error);
  ASSERT_TRUE(owned.has_value()) << error;
  const auto borrowed = borrow_snapshot(std::string_view(*blob_), &error);
  ASSERT_TRUE(borrowed.has_value()) << error;

  EXPECT_EQ(borrowed->seed, owned->seed);
  EXPECT_EQ(borrowed->addresses_probed, owned->addresses_probed);
  EXPECT_EQ(borrowed->observed_links, owned->observed_links);

  ASSERT_EQ(borrowed->strings.size(), owned->strings.size());
  for (std::size_t i = 0; i < owned->strings.size(); ++i) {
    EXPECT_EQ(borrowed->strings[i], owned->strings[i]);
  }
  ASSERT_EQ(borrowed->countries.size(), owned->countries.size());
  for (std::size_t i = 0; i < owned->countries.size(); ++i) {
    EXPECT_EQ(borrowed->countries[i].country, owned->countries[i].country);
    EXPECT_EQ(borrowed->countries[i].name_ref, owned->countries[i].name_ref);
  }
  ASSERT_EQ(borrowed->ases.size(), owned->ases.size());
  for (std::size_t i = 0; i < owned->ases.size(); ++i) {
    const AsRecord a = borrowed->ases[i];
    const AsRecord& b = owned->ases[i];
    EXPECT_EQ(a.asn, b.asn);
    EXPECT_EQ(a.name_ref, b.name_ref);
    EXPECT_EQ(a.country, b.country);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.flags, b.flags);
    EXPECT_EQ(a.activity, b.activity);
  }
  ASSERT_EQ(borrowed->prefixes.size(), owned->prefixes.size());
  for (std::size_t i = 0; i < owned->prefixes.size(); ++i) {
    const PrefixRecord a = borrowed->prefixes[i];
    const PrefixRecord& b = owned->prefixes[i];
    EXPECT_EQ(a.base, b.base);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.origin_asn, b.origin_asn);
  }
  ASSERT_EQ(borrowed->endpoints.size(), owned->endpoints.size());
  for (std::size_t i = 0; i < owned->endpoints.size(); ++i) {
    const EndpointRecord a = borrowed->endpoints[i];
    const EndpointRecord& b = owned->endpoints[i];
    EXPECT_EQ(a.address, b.address);
    EXPECT_EQ(a.origin_asn, b.origin_asn);
    EXPECT_EQ(a.operator_ref, b.operator_ref);
    EXPECT_EQ(a.flags, b.flags);
    EXPECT_EQ(a.lat_deg, b.lat_deg);
    EXPECT_EQ(a.lon_deg, b.lon_deg);
  }
  ASSERT_EQ(borrowed->mappings.size(), owned->mappings.size());
  for (std::size_t m = 0; m < owned->mappings.size(); ++m) {
    const ServiceMappingView a = borrowed->mappings[m];
    const ServiceMapping& b = owned->mappings[m];
    EXPECT_EQ(a.service, b.service);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t e = 0; e < b.entries.size(); ++e) {
      EXPECT_EQ(a.entries[e].prefix_base, b.entries[e].prefix_base);
      EXPECT_EQ(a.entries[e].prefix_length, b.entries[e].prefix_length);
      EXPECT_EQ(a.entries[e].address, b.entries[e].address);
    }
  }
  ASSERT_EQ(borrowed->links.size(), owned->links.size());
  for (std::size_t i = 0; i < owned->links.size(); ++i) {
    EXPECT_EQ(borrowed->links[i].a, owned->links[i].a);
    EXPECT_EQ(borrowed->links[i].b, owned->links[i].b);
    EXPECT_EQ(borrowed->links[i].score, owned->links[i].score);
  }
}

TEST_F(MmapViewTest, EngineAnswersMatchAcrossBackends) {
  std::string error;
  const auto owned = read_snapshot(std::string_view(*blob_), &error);
  ASSERT_TRUE(owned.has_value()) << error;
  const auto borrowed = borrow_snapshot(std::string_view(*blob_), &error);
  ASSERT_TRUE(borrowed.has_value()) << error;

  QueryEngine decoded_engine(*owned, 0);
  QueryEngine wire_engine(*borrowed, 0);
  const std::string queries[] = {
      "stats",
      "top-as 10",
      "top-country 5",
      "lookup 10.0.0.1",
      "lookup 100.64.9.1",
      "prefix 10.0.0.0/24",
      "as 4808",
      "outage 4808",
      "country 3",
      "bogus line",
  };
  for (const auto& q : queries) {
    EXPECT_EQ(wire_engine.answer(q), decoded_engine.answer(q)) << q;
  }
  // Sweep every AS so find_as and the per-AS indexes get full coverage.
  for (std::size_t i = 0; i < owned->ases.size(); ++i) {
    const std::string q = "as " + std::to_string(owned->ases[i].asn);
    EXPECT_EQ(wire_engine.answer(q), decoded_engine.answer(q)) << q;
    const std::string o = "outage " + std::to_string(owned->ases[i].asn);
    EXPECT_EQ(wire_engine.answer(o), decoded_engine.answer(o)) << o;
  }
  // And every detected prefix base, exercising the covering-prefix search.
  for (std::size_t i = 0; i < owned->prefixes.size(); ++i) {
    const std::string q =
        "lookup " + owned->prefixes[i].prefix().base().to_string();
    EXPECT_EQ(wire_engine.answer(q), decoded_engine.answer(q)) << q;
  }
}

TEST_F(MmapViewTest, MmapLoadsValidSnapshot) {
  const std::string path = write_temp(*blob_, "valid");
  std::string error;
  const auto mapped = MmapSnapshot::open(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  EXPECT_EQ(mapped->size(), blob_->size());
  EXPECT_EQ(mapped->bytes(), std::string_view(*blob_));
  EXPECT_EQ(mapped->view().prefixes.size(), map_->client_prefixes.size());
  std::remove(path.c_str());
}

TEST_F(MmapViewTest, MmapRejectsMissingTruncatedAndCorrupted) {
  std::string error;
  EXPECT_FALSE(MmapSnapshot::open("/no/such/file.itms", &error).has_value());
  EXPECT_FALSE(error.empty());

  const std::string truncated_path =
      write_temp(blob_->substr(0, blob_->size() / 2), "truncated");
  EXPECT_FALSE(MmapSnapshot::open(truncated_path, &error).has_value());
  std::remove(truncated_path.c_str());

  std::string flipped = *blob_;
  flipped[flipped.size() / 2] =
      static_cast<char>(static_cast<unsigned char>(flipped[flipped.size() / 2]) ^
                        0x40);
  const std::string flipped_path = write_temp(flipped, "flipped");
  EXPECT_FALSE(MmapSnapshot::open(flipped_path, &error).has_value());
  std::remove(flipped_path.c_str());

  const std::string garbage_path = write_temp("not a snapshot", "garbage");
  EXPECT_FALSE(MmapSnapshot::open(garbage_path, &error).has_value());
  std::remove(garbage_path.c_str());

  const std::string empty_path = write_temp("", "empty");
  EXPECT_FALSE(MmapSnapshot::open(empty_path, &error).has_value());
  std::remove(empty_path.c_str());
}

TEST_F(MmapViewTest, MoveTransfersOwnership) {
  const std::string path = write_temp(*blob_, "move");
  std::string error;
  auto mapped = MmapSnapshot::open(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  MmapSnapshot moved = std::move(*mapped);
  EXPECT_EQ(moved.size(), blob_->size());
  EXPECT_EQ(moved.view().ases.size(), scenario_->topo().graph.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace itm::serve
