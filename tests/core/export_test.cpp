#include "core/export.h"

#include <gtest/gtest.h>

#include <sstream>

namespace itm::core {
namespace {

// Build one small map for all export tests.
class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = Scenario::generate(tiny_config(808)).release();
    MapBuilder builder(*scenario_);
    MapBuildOptions options;
    options.probe_rounds = 6;
    map_ = new TrafficMap(builder.build(options));
  }
  static void TearDownTestSuite() {
    delete map_;
    delete scenario_;
  }
  static Scenario* scenario_;
  static TrafficMap* map_;
};

Scenario* ExportTest::scenario_ = nullptr;
TrafficMap* ExportTest::map_ = nullptr;

// A tiny structural JSON validator: balanced containers outside strings.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST_F(ExportTest, JsonIsStructurallySound) {
  std::ostringstream os;
  export_map_json(*map_, *scenario_, os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"client_prefixes\""), std::string::npos);
  EXPECT_NE(json.find("\"client_ases\""), std::string::npos);
  EXPECT_NE(json.find("\"servers\""), std::string::npos);
  EXPECT_NE(json.find("\"recommended_links\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 808"), std::string::npos);
}

TEST_F(ExportTest, ActivityCsvHasOneRowPerClientAs) {
  std::ostringstream os;
  export_activity_csv(*map_, *scenario_, os);
  const std::string csv = os.str();
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows),
            map_->client_ases.size() + 1);  // header
  EXPECT_EQ(csv.rfind("asn,name,activity_score\n", 0), 0u);
}

TEST_F(ExportTest, ServersCsvHasOneRowPerEndpoint) {
  std::ostringstream os;
  export_servers_csv(*map_, *scenario_, os);
  const std::string csv = os.str();
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows), map_->tls.endpoints.size() + 1);
}

TEST_F(ExportTest, LinksCsvMatchesRecommendations) {
  std::ostringstream os;
  export_recommended_links_csv(*map_, *scenario_, os);
  const std::string csv = os.str();
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows),
            map_->recommended_links.size() + 1);
}

}  // namespace
}  // namespace itm::core
