#include "core/export.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace itm::core {
namespace {

// Build one small map for all export tests.
class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = Scenario::generate(tiny_config(808)).release();
    MapBuilder builder(*scenario_);
    MapBuildOptions options;
    options.probe_rounds = 6;
    map_ = new TrafficMap(builder.build(options));
  }
  static void TearDownTestSuite() {
    delete map_;
    delete scenario_;
  }
  static Scenario* scenario_;
  static TrafficMap* map_;
};

Scenario* ExportTest::scenario_ = nullptr;
TrafficMap* ExportTest::map_ = nullptr;

// A tiny structural JSON validator: balanced containers outside strings.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST_F(ExportTest, JsonIsStructurallySound) {
  std::ostringstream os;
  export_map_json(*map_, *scenario_, os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"client_prefixes\""), std::string::npos);
  EXPECT_NE(json.find("\"client_ases\""), std::string::npos);
  EXPECT_NE(json.find("\"servers\""), std::string::npos);
  EXPECT_NE(json.find("\"recommended_links\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 808"), std::string::npos);
}

TEST_F(ExportTest, ActivityCsvHasOneRowPerClientAs) {
  std::ostringstream os;
  export_activity_csv(*map_, *scenario_, os);
  const std::string csv = os.str();
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows),
            map_->client_ases.size() + 1);  // header
  EXPECT_EQ(csv.rfind("asn,name,activity_score\n", 0), 0u);
}

TEST_F(ExportTest, ServersCsvHasOneRowPerEndpoint) {
  std::ostringstream os;
  export_servers_csv(*map_, *scenario_, os);
  const std::string csv = os.str();
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows), map_->tls.endpoints.size() + 1);
}

TEST_F(ExportTest, LinksCsvMatchesRecommendations) {
  std::ostringstream os;
  export_recommended_links_csv(*map_, *scenario_, os);
  const std::string csv = os.str();
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows),
            map_->recommended_links.size() + 1);
}

// The JSON export is a published artifact: any byte-level drift is an
// intentional format change and must come with a golden refresh
// (ITM_REGEN_GOLDEN=1 ctest -R JsonMatchesGoldenFile) and a review of the
// diff. This pins export_map_json for the fixture map (tiny scale, seed
// 808, 6 probe rounds).
TEST_F(ExportTest, JsonMatchesGoldenFile) {
  std::ostringstream os;
  export_map_json(*map_, *scenario_, os);
  const std::string path = std::string(ITM_GOLDEN_DIR) + "/map_tiny808.json";
  // Golden refresh is an operator action, opted into from the shell; an
  // env probe is the only sane trigger. itm-lint: allow(banned-nondet-sources)
  if (std::getenv("ITM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << os.str();
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (run with ITM_REGEN_GOLDEN=1 to create it)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(os.str(), golden.str())
      << "export_map_json output drifted from the golden file; if the "
         "change is intentional, regenerate with ITM_REGEN_GOLDEN=1";
}

TEST(CsvEscapeTest, PlainFieldsPassThroughUnchanged) {
  EXPECT_EQ(csv_escape("Orange"), "Orange");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("HG-Search"), "HG-Search");
}

TEST(CsvEscapeTest, SeparatorsAndQuotesAreQuoted) {
  EXPECT_EQ(csv_escape("Acme, Inc."), "\"Acme, Inc.\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvEscapeTest, EscapedNamesKeepCsvRowsParseable) {
  // A one-field-per-cell parse of an escaped row must recover the original
  // name even when it contains the separator.
  const std::string name = "Tele, \"Nord\" AS";
  const std::string row = "12," + csv_escape(name) + ",0.5";
  // Split respecting quotes.
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const char c = row[i];
    if (quoted) {
      if (c == '"' && i + 1 < row.size() && row[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(field);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "12");
  EXPECT_EQ(fields[1], name);
  EXPECT_EQ(fields[2], "0.5");
}

}  // namespace
}  // namespace itm::core
