#include "core/workload.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"

namespace itm::core {
namespace {

TEST(Workload, EventCountScalesWithQueryRate) {
  auto s1 = Scenario::generate(tiny_config(44));
  auto s2 = Scenario::generate(tiny_config(44));
  WorkloadConfig low;
  low.queries_per_activity = 2.0;
  WorkloadConfig high;
  high.queries_per_activity = 8.0;
  Workload wl(*s1, low, 1);
  Workload wh(*s2, high, 1);
  EXPECT_GT(wh.total_events(), wl.total_events() * 2);
}

TEST(Workload, AdvanceIsMonotoneAndIdempotent) {
  auto s = Scenario::generate(tiny_config(45));
  Workload w(*s, WorkloadConfig{}, 2);
  w.advance_to(1000);
  const auto after_first = w.processed_events();
  w.advance_to(1000);
  EXPECT_EQ(w.processed_events(), after_first);
  w.advance_to(500);  // going backwards is a no-op
  EXPECT_EQ(w.processed_events(), after_first);
  w.advance_to(kSecondsPerDay / 4);
  EXPECT_GE(w.processed_events(), after_first);
  EXPECT_EQ(w.now(), kSecondsPerDay / 4);
}

TEST(Workload, FinishProcessesEverything) {
  auto s = Scenario::generate(tiny_config(46));
  Workload w(*s, WorkloadConfig{}, 3);
  EXPECT_GT(w.total_events(), 0u);
  w.finish();
  EXPECT_EQ(w.processed_events(), w.total_events());
  // DNS saw the queries; roots saw Chromium probes.
  EXPECT_GT(s->dns().stats().queries, 0u);
  EXPECT_GT(s->dns().roots().total_queries(), 0u);
}

TEST(Workload, PublicShareRoughlyMatchesConfigured) {
  auto s = Scenario::generate(tiny_config(47));
  Workload w(*s, WorkloadConfig{}, 4);
  w.finish();
  const auto& stats = s->dns().stats();
  ASSERT_GT(stats.queries, 1000u);
  const double share =
      static_cast<double>(stats.public_queries) / stats.queries;
  // Mean adoption is ~0.32 with country-level spread; very loose bounds.
  EXPECT_GT(share, 0.1);
  EXPECT_LT(share, 0.6);
}

TEST(Workload, QueriesFollowDiurnalPattern) {
  auto s = Scenario::generate(tiny_config(48));
  Workload w(*s, WorkloadConfig{}, 5);
  // Compare query volume in two 6h windows; with most users concentrated
  // in a few longitudes, volumes must differ noticeably.
  w.advance_to(6 * kSecondsPerHour);
  const auto q1 = w.processed_events();
  w.advance_to(12 * kSecondsPerHour);
  const auto q2 = w.processed_events() - q1;
  w.advance_to(18 * kSecondsPerHour);
  const auto q3 = w.processed_events() - q1 - q2;
  w.finish();
  const auto q4 = w.processed_events() - q1 - q2 - q3;
  const auto lo = std::min({q1, q2, q3, q4});
  const auto hi = std::max({q1, q2, q3, q4});
  EXPECT_GT(hi, lo + lo / 4);
}

TEST(Workload, DeterministicForSeed) {
  auto s1 = Scenario::generate(tiny_config(49));
  auto s2 = Scenario::generate(tiny_config(49));
  Workload w1(*s1, WorkloadConfig{}, 6);
  Workload w2(*s2, WorkloadConfig{}, 6);
  EXPECT_EQ(w1.total_events(), w2.total_events());
  w1.finish();
  w2.finish();
  EXPECT_EQ(s1->dns().stats().public_hits, s2->dns().stats().public_hits);
}

}  // namespace
}  // namespace itm::core
