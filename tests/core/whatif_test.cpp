#include "core/whatif.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"

namespace itm::core {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(WhatIf, AccessFailureLosesItsClientBytes) {
  auto& s = shared_tiny_scenario();
  const Asn failed = s.topo().accesses_in(CountryId(0)).front();
  const auto report = simulate_as_failure(s, failed);
  EXPECT_EQ(report.failed, failed);
  EXPECT_NEAR(report.client_bytes_lost,
              s.matrix().as_client_bytes(failed) / s.matrix().total_bytes(),
              1e-9);
  EXPECT_GT(report.client_bytes_lost, 0.0);
  // Surviving traffic = baseline minus the failed AS's client bytes (access
  // networks host no origins, so no service bytes vanish).
  EXPECT_DOUBLE_EQ(report.service_bytes_lost, 0.0);
  EXPECT_NEAR(report.surviving_bytes,
              report.baseline_bytes * (1.0 - report.client_bytes_lost),
              report.baseline_bytes * 1e-6);
}

TEST(WhatIf, ContentFailureLosesItsServices) {
  auto& s = shared_tiny_scenario();
  // Find a content AS hosting at least one long-tail service.
  for (const Asn content : s.topo().contents) {
    double expected = 0;
    for (const auto& svc : s.catalog().services()) {
      if (svc.origin_as == content && !svc.hypergiant) {
        expected += s.matrix().service_bytes(svc.id);
      }
    }
    if (expected <= 0) continue;
    const auto report = simulate_as_failure(s, content);
    EXPECT_NEAR(report.service_bytes_lost,
                expected / s.matrix().total_bytes(), 1e-9);
    EXPECT_DOUBLE_EQ(report.client_bytes_lost, 0.0);
    return;
  }
  GTEST_SKIP() << "no content AS with services in tiny scenario";
}

TEST(WhatIf, TransitFailureShiftsLoadNotVolume) {
  auto& s = shared_tiny_scenario();
  const Asn transit = s.topo().transits.front();
  const auto report = simulate_as_failure(s, transit);
  EXPECT_DOUBLE_EQ(report.client_bytes_lost, 0.0);
  // No clients or origins are inside a transit AS, but customers that were
  // single-homed behind it lose connectivity, so surviving traffic can only
  // shrink — and most of it survives in a redundantly connected mesh.
  EXPECT_LE(report.surviving_bytes, report.baseline_bytes);
  EXPECT_GT(report.surviving_bytes, report.baseline_bytes * 0.5);
  // Some load moved to other links.
  EXPECT_GT(report.link_load_shifted, 0.0);
  // The failed AS's own links all went to zero.
  for (std::size_t li = 0; li < s.topo().graph.links().size(); ++li) {
    const auto& link = s.topo().graph.links()[li];
    if (link.a == transit || link.b == transit) {
      EXPECT_LE(report.link_delta[li], 0.0);
    }
  }
}

TEST(WhatIf, TopGainingLinksAreSorted) {
  auto& s = shared_tiny_scenario();
  const auto report = simulate_as_failure(s, s.topo().transits.front());
  const auto top = report.top_gaining_links(s.topo().graph, 5);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].delta_bytes, top[i].delta_bytes);
  }
  for (const auto& shift : top) {
    EXPECT_GT(shift.delta_bytes, 0.0);
    EXPECT_NE(shift.a, report.failed);
    EXPECT_NE(shift.b, report.failed);
  }
}

TEST(WhatIf, OffnetDisplacementOnlyWhenHostFails) {
  auto& s = shared_tiny_scenario();
  // An AS hosting an off-net reports displaced off-net bytes; one without
  // reports zero.
  bool tested_host = false, tested_nonhost = false;
  for (const Asn a : s.topo().accesses) {
    bool hosts = false;
    for (const auto& hg : s.deployment().hypergiants()) {
      if (s.deployment().offnet_in(hg.id, a) != nullptr) hosts = true;
    }
    if (hosts && !tested_host) {
      const auto report = simulate_as_failure(s, a);
      EXPECT_GT(report.offnet_bytes_displaced, 0.0);
      tested_host = true;
    }
    if (!hosts && !tested_nonhost) {
      const auto report = simulate_as_failure(s, a);
      EXPECT_DOUBLE_EQ(report.offnet_bytes_displaced, 0.0);
      tested_nonhost = true;
    }
    if (tested_host && tested_nonhost) break;
  }
  EXPECT_TRUE(tested_host);
}

TEST(WhatIf, DeploymentWithoutAsDropsOnlyItsPops) {
  auto& s = shared_tiny_scenario();
  // Use an access AS hosting an off-net.
  for (const Asn a : s.topo().accesses) {
    std::size_t hosted = 0;
    for (const auto& pop : s.deployment().pops()) {
      if (pop.asn == a) ++hosted;
    }
    if (hosted == 0) continue;
    const auto filtered = s.deployment().without_as(a);
    EXPECT_EQ(filtered.pops().size(), s.deployment().pops().size() - hosted);
    for (const auto& pop : filtered.pops()) {
      EXPECT_NE(pop.asn, a);
      // Ids are dense and self-consistent.
      EXPECT_EQ(filtered.pop(pop.id).city, pop.city);
    }
    for (const auto& fe : filtered.front_ends()) {
      EXPECT_NE(filtered.pop(fe.pop).asn, a);
    }
    return;
  }
  GTEST_SKIP();
}

TEST(WhatIf, UserBaseWithoutAs) {
  auto& s = shared_tiny_scenario();
  const Asn excluded = s.topo().accesses.front();
  const auto masked = s.users().without_as(excluded);
  EXPECT_DOUBLE_EQ(masked.as_users(excluded), 0.0);
  EXPECT_NEAR(masked.total_users(),
              s.users().total_users() - s.users().as_users(excluded), 1e-6);
  // Other ASes unchanged.
  const Asn other = s.topo().accesses.back();
  ASSERT_NE(other, excluded);
  EXPECT_DOUBLE_EQ(masked.as_users(other), s.users().as_users(other));
  // Index rebuilt correctly. (all() is an ordered span; the local binding
  // keeps it clear of the unordered all() in cdn/tls.h.)
  const auto masked_prefixes = masked.all();
  for (const auto& up : masked_prefixes) {
    EXPECT_EQ(masked.find(up.prefix)->prefix, up.prefix);
  }
}

}  // namespace
}  // namespace itm::core
