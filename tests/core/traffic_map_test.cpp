#include "core/traffic_map.h"

#include <gtest/gtest.h>

#include "inference/client_detection.h"
#include "net/ordered.h"

namespace itm::core {
namespace {

// Building a map is the expensive end-to-end path; do it once.
class TrafficMapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = Scenario::generate(tiny_config(2024)).release();
    builder_ = new MapBuilder(*scenario_);
    MapBuildOptions options;
    options.probe_rounds = 10;
    map_ = new TrafficMap(builder_->build(options));
  }
  static void TearDownTestSuite() {
    delete map_;
    delete builder_;
    delete scenario_;
  }

  static Scenario* scenario_;
  static MapBuilder* builder_;
  static TrafficMap* map_;
};

Scenario* TrafficMapTest::scenario_ = nullptr;
MapBuilder* TrafficMapTest::builder_ = nullptr;
TrafficMap* TrafficMapTest::map_ = nullptr;

TEST_F(TrafficMapTest, DetectsMostTraffic) {
  const auto cov = inference::evaluate_prefixes(
      map_->client_prefixes, scenario_->users(), scenario_->matrix(),
      HypergiantId(0));
  EXPECT_GT(cov.traffic_coverage, 0.6);
  EXPECT_LT(cov.false_positive_rate, 0.01);
}

TEST_F(TrafficMapTest, CombinedAsesBeatEitherTechnique) {
  const auto combined_cov = inference::evaluate_ases(
      map_->client_ases, scenario_->users(), scenario_->matrix(),
      HypergiantId(0), scenario_->topo());
  const auto root_ases = builder_->last_crawl().detected_ases();
  const auto root_cov = inference::evaluate_ases(
      root_ases, scenario_->users(), scenario_->matrix(), HypergiantId(0),
      scenario_->topo());
  EXPECT_GE(combined_cov.traffic_coverage, root_cov.traffic_coverage);
  EXPECT_GT(combined_cov.traffic_coverage, 0.8);
}

TEST_F(TrafficMapTest, ActivityScoresPresentForDetectedAses) {
  EXPECT_FALSE(map_->activity.by_as.empty());
  EXPECT_GT(map_->total_activity(), 0.0);
}

TEST_F(TrafficMapTest, TlsComponentFindsOffnets) {
  std::size_t offnets = 0;
  for (const auto& ep : map_->tls.endpoints) {
    if (ep.inferred_offnet) ++offnets;
  }
  EXPECT_GT(offnets, 0u);
}

TEST_F(TrafficMapTest, UserMappingOnlyEcsServices) {
  EXPECT_FALSE(map_->user_mapping.empty());
  for (const auto& [sid, mapping] : net::sorted_items(map_->user_mapping)) {
    const auto& svc = scenario_->catalog().service(ServiceId(sid));
    EXPECT_TRUE(svc.supports_ecs);
    EXPECT_FALSE(mapping.empty());
  }
}

TEST_F(TrafficMapTest, RoutesComponentHidesPeering) {
  EXPECT_GT(map_->public_view.link_count(), 0u);
  EXPECT_LT(map_->public_view.peering_coverage(scenario_->topo().graph),
            0.5);
  EXPECT_GT(map_->augmented_graph.links().size(),
            map_->observed_graph.links().size());
}

TEST_F(TrafficMapTest, OutageImpactOfBigEyeball) {
  // The biggest eyeball should have a larger estimated activity share than
  // a tiny one.
  const auto in_country =
      scenario_->topo().accesses_in(CountryId(0));
  if (in_country.size() < 2) GTEST_SKIP();
  const auto big = map_->outage_impact(in_country.front(),
                                       scenario_->topo().addresses);
  const auto small = map_->outage_impact(in_country.back(),
                                         scenario_->topo().addresses);
  EXPECT_GE(big.activity_share, small.activity_share);
  EXPECT_GT(big.client_prefixes, 0u);
}

TEST_F(TrafficMapTest, OutageImpactCountsOffnetServers) {
  // Find an eyeball hosting an off-net; its outage impact lists servers.
  for (const Asn a : scenario_->topo().accesses) {
    bool hosts = false;
    for (const auto& hg : scenario_->deployment().hypergiants()) {
      if (scenario_->deployment().offnet_in(hg.id, a) != nullptr) hosts = true;
    }
    if (!hosts) continue;
    const auto impact = map_->outage_impact(a, scenario_->topo().addresses);
    EXPECT_GT(impact.servers_inside, 0u);
    return;
  }
  GTEST_SKIP() << "no off-net host in tiny scenario";
}

}  // namespace
}  // namespace itm::core
