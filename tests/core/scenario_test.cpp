#include "core/scenario.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"

namespace itm::core {
namespace {

TEST(Scenario, DeterministicForSeed) {
  auto a = Scenario::generate(tiny_config(5));
  auto b = Scenario::generate(tiny_config(5));
  EXPECT_EQ(a->topo().graph.size(), b->topo().graph.size());
  EXPECT_EQ(a->topo().graph.links().size(), b->topo().graph.links().size());
  EXPECT_EQ(a->users().size(), b->users().size());
  EXPECT_DOUBLE_EQ(a->users().total_users(), b->users().total_users());
  EXPECT_DOUBLE_EQ(a->matrix().total_bytes(), b->matrix().total_bytes());
  // Spot-check a deep value.
  EXPECT_EQ(a->deployment().front_ends().size(),
            b->deployment().front_ends().size());
  if (!a->deployment().front_ends().empty()) {
    EXPECT_EQ(a->deployment().front_ends().back().address,
              b->deployment().front_ends().back().address);
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  auto a = Scenario::generate(tiny_config(5));
  auto b = Scenario::generate(tiny_config(6));
  EXPECT_NE(a->users().total_users(), b->users().total_users());
}

TEST(Scenario, ComponentsAreConsistent) {
  auto& s = itm::testing::shared_tiny_scenario();
  // DNS pops exist and matrix is non-trivial.
  EXPECT_GT(s.dns().public_pops().size(), 0u);
  EXPECT_GT(s.matrix().total_bytes(), 0.0);
  EXPECT_GT(s.apnic().total_users(), 0.0);
  EXPECT_FALSE(s.peeringdb().records().empty());
  EXPECT_GT(s.tls().size(), 0u);
  EXPECT_EQ(s.routers().routers().size(), s.topo().graph.size());
}

TEST(Scenario, ForkRngIsStablePerPurpose) {
  auto& s = itm::testing::shared_tiny_scenario();
  auto r1 = s.fork_rng(3);
  auto r2 = s.fork_rng(3);
  EXPECT_EQ(r1.next_u64(), r2.next_u64());
  auto r3 = s.fork_rng(4);
  EXPECT_NE(s.fork_rng(3).next_u64(), r3.next_u64());
}

TEST(Scenario, ConfigPresetsScale) {
  const auto tiny = tiny_config();
  const auto def = default_config();
  const auto large = large_config();
  EXPECT_LT(tiny.topology.num_access, def.topology.num_access);
  EXPECT_LT(def.topology.num_access, large.topology.num_access);
}

}  // namespace
}  // namespace itm::core
