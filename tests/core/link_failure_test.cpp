#include <gtest/gtest.h>

#include <algorithm>

#include "../test_scenario.h"
#include "core/whatif.h"

namespace itm::core {
namespace {

using itm::testing::shared_tiny_scenario;

std::size_t find_link(const topology::Topology& topo,
                      topology::Relation kind) {
  for (std::size_t li = 0; li < topo.graph.links().size(); ++li) {
    if (topo.graph.links()[li].a_to_b == kind) return li;
  }
  ADD_FAILURE() << "no such link";
  return 0;
}

TEST(LinkFailure, BaselineHasNoUnreachableBytes) {
  auto& s = shared_tiny_scenario();
  EXPECT_DOUBLE_EQ(s.matrix().unreachable_bytes(), 0.0);
}

TEST(LinkFailure, CutPeeringRedistributesLoad) {
  auto& s = shared_tiny_scenario();
  // Find a loaded peering link below the tier-1 mesh (tier-1 mesh links
  // are irreplaceable under valley-free routing: cutting one genuinely
  // disconnects transit-free pairs).
  std::size_t target = s.topo().graph.links().size();
  for (std::size_t li = 0; li < s.topo().graph.links().size(); ++li) {
    const auto& link = s.topo().graph.links()[li];
    if (link.a_to_b != topology::Relation::kPeer) continue;
    if (s.topo().graph.info(link.a).type == topology::AsType::kTier1 ||
        s.topo().graph.info(link.b).type == topology::AsType::kTier1) {
      continue;
    }
    if (s.matrix().link_bytes()[li] > 0) {
      target = li;
      break;
    }
  }
  ASSERT_LT(target, s.topo().graph.links().size());
  const auto report = simulate_link_failure(s, target);
  EXPECT_GT(report.link_bytes_before, 0.0);
  // The cut link's delta is exactly its previous load, negated.
  EXPECT_DOUBLE_EQ(report.link_delta[target], -report.link_bytes_before);
  // A redundant mesh: nothing disconnects, load moves elsewhere.
  EXPECT_NEAR(report.bytes_disconnected, 0.0, 1e-9);
  EXPECT_GT(report.link_load_shifted, 0.0);
  const auto top = report.top_gaining_links(s.topo().graph, 3);
  for (const auto& shift : top) {
    EXPECT_GT(shift.delta_bytes, 0.0);
  }
}

TEST(LinkFailure, CutSingleHomedTransitDisconnects) {
  auto& s = shared_tiny_scenario();
  // Find an access AS with exactly one provider and no peers: cutting its
  // only transit link strands its clients.
  for (const Asn a : s.topo().accesses) {
    const auto degree = s.topo().graph.degree(a);
    if (degree.providers != 1 || degree.peers != 0) continue;
    std::size_t target = s.topo().graph.links().size();
    for (std::size_t li = 0; li < s.topo().graph.links().size(); ++li) {
      const auto& link = s.topo().graph.links()[li];
      if ((link.a == a || link.b == a) &&
          link.a_to_b == topology::Relation::kCustomer) {
        target = li;
        break;
      }
    }
    ASSERT_LT(target, s.topo().graph.links().size());
    const auto report = simulate_link_failure(s, target);
    // All of this AS's externally-served bytes become unreachable (its
    // off-net-served bytes, if any, survive intra-AS).
    EXPECT_GT(report.bytes_disconnected, 0.0);
    EXPECT_LE(report.bytes_disconnected,
              s.matrix().as_client_bytes(a) / s.matrix().total_bytes() + 1e-9);
    return;
  }
  GTEST_SKIP() << "no single-homed eyeball in tiny scenario";
}

TEST(LinkFailure, ImpactIsHeavyTailed) {
  auto& s = shared_tiny_scenario();
  // The paper's point about congested interconnects: most links carry
  // almost nothing, a few carry a lot. Verify via the baseline loads that
  // what-if would report (cheap proxy for running N simulations).
  std::vector<double> loads(s.matrix().link_bytes().begin(),
                            s.matrix().link_bytes().end());
  ASSERT_FALSE(loads.empty());
  std::sort(loads.begin(), loads.end());
  const double median = loads[loads.size() / 2];
  const double max_load = loads.back();
  // The busiest link dwarfs the median one.
  EXPECT_GT(max_load, 10.0 * std::max(median, 1.0));
}

}  // namespace
}  // namespace itm::core
