// Unit tests for the itm-lint lexer: the literal forms most likely to
// desynchronise a token scanner — raw strings (including prefixed ones),
// digit separators, and user-defined literal suffixes — must each come back
// as one token, so rule keywords hiding inside them never look like code.
#include "lexer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace itm::lint {
namespace {

std::vector<Token> code_tokens(std::string_view src,
                               const std::vector<Token>& all) {
  (void)src;
  std::vector<Token> out;
  for (const Token& t : all) {
    if (is_code(t)) out.push_back(t);
  }
  return out;
}

TEST(Lexer, RawStringIsOneTokenEvenWithQuotesAndParens) {
  const std::string src = "auto s = R\"(no \"escape\" needed)\";";
  const auto toks = tokenize(src);
  const auto code = code_tokens(src, toks);
  ASSERT_EQ(code.size(), 5u);  // auto s = <raw> ;
  EXPECT_EQ(code[3].kind, TokKind::kString);
  EXPECT_EQ(code[3].text, "R\"(no \"escape\" needed)\"");
}

TEST(Lexer, RawStringWithDelimiterStopsAtMatchingCloser) {
  const std::string src = "auto s = R\"x()\" not the end()x\";";
  const auto code = code_tokens(src, tokenize(src));
  ASSERT_EQ(code.size(), 5u);
  EXPECT_EQ(code[3].kind, TokKind::kString);
  EXPECT_EQ(code[3].text, "R\"x()\" not the end()x\"");
}

TEST(Lexer, PrefixedRawStringsAreStrings) {
  for (const char* prefix : {"u8", "u", "U", "L"}) {
    const std::string src = std::string(prefix) + "R\"(steady_clock)\";";
    const auto code = code_tokens(src, tokenize(src));
    ASSERT_EQ(code.size(), 2u) << "prefix " << prefix;
    EXPECT_EQ(code[0].kind, TokKind::kString) << "prefix " << prefix;
  }
}

TEST(Lexer, BannedNameInsideRawStringIsNotAnIdentifier) {
  const std::string src = R"src(const char* doc = R"(use random_device)";)src";
  for (const Token& t : tokenize(src)) {
    EXPECT_FALSE(t.kind == TokKind::kIdentifier &&
                 t.text == "random_device")
        << "raw string content leaked into the identifier stream";
  }
}

TEST(Lexer, DigitSeparatorsStayInOneNumberToken) {
  const std::string src = "auto n = 1'000'000; auto h = 0xFF'FFu;";
  const auto code = code_tokens(src, tokenize(src));
  ASSERT_GE(code.size(), 9u);
  EXPECT_EQ(code[3].kind, TokKind::kNumber);
  EXPECT_EQ(code[3].text, "1'000'000");
  EXPECT_EQ(code[8].kind, TokKind::kNumber);
  EXPECT_EQ(code[8].text, "0xFF'FFu");
}

TEST(Lexer, UdlSuffixSticksToItsLiteral) {
  const std::string src = "auto d = 250ms; auto s = \"x\"sv;";
  const auto code = code_tokens(src, tokenize(src));
  // 250ms must be one number token, not number + identifier.
  ASSERT_GE(code.size(), 5u);
  EXPECT_EQ(code[3].kind, TokKind::kNumber);
  EXPECT_EQ(code[3].text, "250ms");
  // "x"sv must be one string token.
  EXPECT_EQ(code[8].kind, TokKind::kString);
  EXPECT_EQ(code[8].text, "\"x\"sv");
}

TEST(Lexer, FloatExponentsAndHexFloats) {
  const std::string src = "auto a = 1.5e-3; auto b = 0x1.8p3;";
  const auto code = code_tokens(src, tokenize(src));
  ASSERT_GE(code.size(), 5u);
  EXPECT_EQ(code[3].kind, TokKind::kNumber);
  EXPECT_EQ(code[3].text, "1.5e-3");
  EXPECT_EQ(code[8].kind, TokKind::kNumber);
  EXPECT_EQ(code[8].text, "0x1.8p3");
}

TEST(Lexer, CommentsAreKeptButNotCode) {
  const std::string src = "int a; // itm-lint: allow(nondet-iteration)\n"
                          "/* block */ int b;";
  const auto toks = tokenize(src);
  std::size_t comments = 0;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kComment) ++comments;
  }
  EXPECT_EQ(comments, 2u);
  const auto code = code_tokens(src, toks);
  ASSERT_EQ(code.size(), 6u);  // int a ; int b ;
  EXPECT_EQ(code[4].text, "b");
}

TEST(Lexer, LineNumbersSurviveMultilineLiterals) {
  const std::string src = "auto s = R\"(line one\nline two)\";\nint after;";
  const auto code = code_tokens(src, tokenize(src));
  ASSERT_EQ(code.size(), 8u);
  EXPECT_EQ(code[3].kind, TokKind::kString);
  EXPECT_EQ(code[3].line, 1u);
  // `int` opens line 3: the raw string consumed one embedded newline.
  EXPECT_EQ(code[5].text, "int");
  EXPECT_EQ(code[5].line, 3u);
}

}  // namespace
}  // namespace itm::lint
