// Golden tests for every itm-lint rule: each bad_<rule>.cpp fixture must
// reproduce its .expected diagnostics byte for byte, and each good_*.cpp
// must lint clean. The fixtures double as documentation of what the rules
// catch and of the sanctioned alternatives.
#include "lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace itm::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kFixtureDir = ITM_LINT_FIXTURE_DIR;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << "missing fixture: " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Lints one fixture in isolation (its own file-local name table, exactly as
// a .cpp in the real tree) and returns the formatted diagnostics.
LintResult lint_fixture(const std::string& name) {
  return lint_sources({SourceFile{name, slurp(kFixtureDir / name)}});
}

std::string formatted(const LintResult& result) {
  std::string out;
  for (const auto& d : result.diagnostics) {
    out += format_diagnostic(d);
    out += '\n';
  }
  return out;
}

class GoldenFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenFixture, MatchesExpectedDiagnostics) {
  const std::string name = std::string("bad_") + GetParam() + ".cpp";
  const std::string expected =
      slurp(kFixtureDir / (std::string("bad_") + GetParam() + ".expected"));
  const auto result = lint_fixture(name);
  EXPECT_FALSE(result.diagnostics.empty())
      << name << " must trip its rule — it is the failing fixture";
  EXPECT_EQ(formatted(result), expected) << "golden mismatch for " << name;
}

INSTANTIATE_TEST_SUITE_P(Rules, GoldenFixture,
                         ::testing::Values("nondet_iteration", "banned_sources",
                                           "rng_discipline", "executor_capture",
                                           "float_reduction",
                                           "stale_suppression", "metric_name",
                                           "signal_safety", "determinism_taint",
                                           "executor_reentrancy",
                                           "format_pairing"));

class CleanFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(CleanFixture, LintsClean) {
  const std::string name = std::string("good_") + GetParam() + ".cpp";
  const auto result = lint_fixture(name);
  EXPECT_TRUE(result.diagnostics.empty())
      << name << " must be clean, got:\n"
      << formatted(result);
}

INSTANTIATE_TEST_SUITE_P(Rules, CleanFixture,
                         ::testing::Values("nondet_iteration", "banned_sources",
                                           "rng_discipline", "executor_capture",
                                           "float_reduction", "suppression",
                                           "metric_name", "signal_safety",
                                           "determinism_taint",
                                           "executor_reentrancy",
                                           "format_pairing"));

TEST(Suppression, LiveAllowIsCountedAgainstTheBudget) {
  const auto result = lint_fixture("good_suppression.cpp");
  ASSERT_TRUE(result.diagnostics.empty());
  ASSERT_EQ(result.suppressions_used.size(), 1u);
  EXPECT_EQ(result.suppressions_used.at("nondet-iteration"), 1u);

  EXPECT_TRUE(check_budget(result, {{"nondet-iteration", 1}}).empty());
  const auto over = check_budget(result, {{"nondet-iteration", 0}});
  ASSERT_EQ(over.size(), 1u);
  EXPECT_NE(over[0].find("nondet-iteration"), std::string::npos);
  // A rule absent from the budget defaults to a cap of zero.
  EXPECT_EQ(check_budget(result, {}).size(), 1u);
}

TEST(Budget, ParsesRulesCommentsAndBlanks) {
  const auto budget = parse_budget(
      "# per-rule caps\n"
      "nondet-iteration 3\n"
      "\n"
      "banned-nondet-sources 8  # wall timers\n");
  ASSERT_EQ(budget.size(), 2u);
  EXPECT_EQ(budget.at("nondet-iteration"), 3u);
  EXPECT_EQ(budget.at("banned-nondet-sources"), 8u);
  EXPECT_THROW(parse_budget("nondet-iteration\n"), std::runtime_error);
  EXPECT_THROW(parse_budget("nondet-iteration -2\n"), std::runtime_error);
}

TEST(Budget, RejectsUnknownRules) {
  // A typo in a budget line must fail loudly, not silently cap nothing.
  try {
    (void)parse_budget("nondet-itration 3\n");
    FAIL() << "unknown rule accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nondet-itration"),
              std::string::npos);
  }
  // stale-suppression is a meta-finding: it cannot be suppressed, so it
  // cannot be budgeted either.
  EXPECT_THROW(parse_budget("stale-suppression 1\n"), std::runtime_error);
}

TEST(Budget, RejectsDuplicatedRules) {
  try {
    (void)parse_budget("signal-safety 1\nsignal-safety 2\n");
    FAIL() << "duplicate rule accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("signal-safety"), std::string::npos);
  }
}

TEST(Budget, EveryNewRuleIsBudgetable) {
  for (const std::string_view rule :
       {"signal-safety", "determinism-taint", "executor-reentrancy",
        "format-pairing"}) {
    EXPECT_EQ(known_rules().count(rule), 1u) << rule;
  }
}

// The JSON report is consumed by CI annotation tooling: its shape is part of
// the contract and must stay byte-stable for a given tree.
TEST(Json, DiagnosticsReportMatchesGolden) {
  const auto result = lint_fixture("bad_metric_name.cpp");
  EXPECT_EQ(to_json(result, {}),
            slurp(kFixtureDir / "json_diagnostics.expected"));
}

TEST(Json, SuppressionsAndBudgetErrorsMatchGolden) {
  const auto result = lint_fixture("good_suppression.cpp");
  const auto errors = check_budget(result, {{"nondet-iteration", 0}});
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(to_json(result, errors),
            slurp(kFixtureDir / "json_report.expected"));
}

// Header declarations are visible to every file; .cpp declarations only to
// their own file. This is the cross-file half of the name table.
TEST(NameTable, HeaderDeclarationsApplyAcrossFiles) {
  const SourceFile header{
      "src/x/registry.h",
      "#pragma once\n#include <unordered_map>\n"
      "struct Registry { std::unordered_map<int, int> live_entries; };\n"};
  const SourceFile user{
      "src/x/user.cpp",
      "#include \"x/registry.h\"\n"
      "int f(const Registry& r) {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : live_entries) { (void)k; (void)v; ++n; }\n"
      "  return n;\n"
      "}\n"};
  const auto result = lint_sources({header, user});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "nondet-iteration");
  EXPECT_EQ(result.diagnostics[0].path, "src/x/user.cpp");
  EXPECT_EQ(result.diagnostics[0].line, 4u);
}

TEST(NameTable, CppDeclarationsStayFileLocal) {
  const SourceFile declarer{
      "src/x/a.cpp",
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> private_index;\n"};
  const SourceFile other{
      "src/x/b.cpp",
      "#include <map>\n"
      "int g(const std::map<int, int>& private_index) {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : private_index) { (void)k; (void)v; ++n; }\n"
      "  return n;\n"
      "}\n"};
  const auto result = lint_sources({declarer, other});
  EXPECT_TRUE(result.diagnostics.empty()) << formatted(result);
}

}  // namespace
}  // namespace itm::lint
