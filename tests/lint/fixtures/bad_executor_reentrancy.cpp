// bad: a parallel_for callback re-enters the executor through a helper —
// nested submission deadlocks the pool, and the rule must find the chain.
#include <cstddef>

struct Shard {
  std::size_t begin;
  std::size_t end;
};

struct Executor {
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn);
};

void rescan_block(Executor& executor, std::size_t n) {
  executor.parallel_for(n, [](const Shard&) {});
}

void build_all(Executor& executor) {
  executor.parallel_for(64, [&executor](const Shard&) {
    rescan_block(executor, 8);
  });
}
