// Fixture: range-for directly over an unordered_map feeding a float sum —
// the hash-layout-ordered accumulation itm-lint must flag.
#include <string>
#include <unordered_map>

double total_bytes(const std::unordered_map<int, double>& by_as) {
  double total = 0;
  for (const auto& [asn, bytes] : by_as) {
    (void)asn;
    total += bytes;
  }
  return total;
}
