// bad: the writer emits [u32 u64] for kMeta but the reader consumes only
// [u32], and kLinks is written but never parsed — both are .itms ABI drift.
#include <cstdint>

struct ByteWriter {
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
};

struct ByteReader {
  std::uint32_t u32();
  std::uint64_t u64();
};

enum class SectionId { kMeta, kLinks };

struct SectionTable {};
void write_section(SectionTable& table, SectionId id, ByteWriter& payload);

struct Snapshot {
  ByteReader payload(SectionId id) const;
};

void parse_meta(ByteReader r) {
  (void)r.u32();
}

void write_snapshot(SectionTable& table) {
  {
    ByteWriter s;
    s.u32(1);
    s.u64(2);
    write_section(table, SectionId::kMeta, s);
  }
  {
    ByteWriter s;
    s.u32(3);
    write_section(table, SectionId::kLinks, s);
  }
}

void read_snapshot(const Snapshot& snap) {
  parse_meta(snap.payload(SectionId::kMeta));
}
