// good: the handler path sticks to the async-signal-safe allowlist (write,
// signal, raise) even through a helper.
#include <csignal>
#include <unistd.h>

namespace {

void write_marker(int fd) {
  const char msg[] = "crash: ring flushed\n";
  ::write(fd, msg, sizeof msg - 1);
}

void crash_handler(int signo) {
  write_marker(2);
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void install_handler() {
  struct sigaction action {};
  action.sa_handler = crash_handler;
  ::sigaction(SIGSEGV, &action, nullptr);
}
