// Fixture: the sanctioned executor pattern — explicit captures and
// per-index slot writes, merged serially after the parallel region.
#include <cstddef>
#include <vector>

#include "net/executor.h"

long tally(itm::net::Executor& exec, const std::vector<int>& xs) {
  std::vector<long> per_item(xs.size(), 0);
  exec.parallel_for(xs.size(), [&per_item, &xs](std::size_t i) {
    per_item[i] = xs[i];
  });
  long total = 0;
  for (const long v : per_item) total += v;
  return total;
}
