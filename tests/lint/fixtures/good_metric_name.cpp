// Fixture: well-formed metric/span names, plus the shapes the rule must
// NOT match — unqualified count()/observe() (std methods), non-literal
// first arguments, and numeric quantile() calls.
#include <set>
#include <string>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

std::size_t lookups(const std::set<int>& index, double q) {
  itm::obs::count("map.workload_events", 1);
  itm::obs::gauge_set("map.client_prefixes", 2);
  itm::obs::observe_quantile("executor.shard_us", 3);
  itm::obs::metrics().counter("serve.cache.hits").add(1);
  itm::obs::metrics().quantile("serve.query_latency_us").observe(4);
  itm::obs::Span span("map.tls_scan");
  itm::obs::StageScope stage("map.inference", 5, 5);
  const std::string dynamic = "run.time_Q";  // not a call-site literal
  itm::obs::count(dynamic, 1);
  (void)itm::obs::metrics().quantile("serve.query_latency_us").quantile(q);
  return index.count(42);  // std::set::count is not an obs site
}
