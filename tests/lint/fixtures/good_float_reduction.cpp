// Fixture: the sanctioned float reduction — per-index partials written in
// parallel, summed serially in index order afterwards.
#include <cstddef>
#include <vector>

#include "net/executor.h"

double sum(itm::net::Executor& exec, const std::vector<double>& xs) {
  std::vector<double> partial(xs.size(), 0.0);
  exec.parallel_for(xs.size(), [&partial, &xs](std::size_t i) {
    partial[i] = xs[i] * 2.0;
  });
  double total = 0;
  for (const double v : partial) total += v;
  return total;
}
