// Fixture: a live, reasoned suppression — the loop is a pure count, order
// cannot reach the output, and the allow comment sits directly above it.
#include <unordered_map>

int count_keys(const std::unordered_map<int, int>& m) {
  int n = 0;
  // Pure count over the map; visit order cannot reach the output.
  // itm-lint: allow(nondet-iteration)
  for (const auto& [k, v] : m) {
    (void)k;
    (void)v;
    ++n;
  }
  return n;
}
