// Fixture: a floating-point += into by-ref captured state inside an
// executor lambda — float addition is not associative, so the total
// depends on scheduling even if the race itself were benign.
#include <cstddef>
#include <vector>

#include "net/executor.h"

double sum(itm::net::Executor& exec, const std::vector<double>& xs) {
  double total = 0;
  exec.parallel_for(xs.size(), [&total, &xs](std::size_t i) {
    total += xs[i];
  });
  return total;
}
