// Fixture: metric and span names outside the [a-z0-9_.]+ namespace —
// uppercase, spaces, dashes — at every checked obs call-site shape.
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

void publish(itm::obs::MetricsRegistry& registry) {
  itm::obs::count("Map.WorkloadEvents", 1);
  itm::obs::gauge_set("map client prefixes", 2);
  registry.counter("serve-cache-hits").add(1);
  registry.quantile("Serve.LatencyUs").observe(3);
  itm::obs::Span span("Routing Stage");
  itm::obs::StageScope stage("map.Inference", 5, 5);
}
