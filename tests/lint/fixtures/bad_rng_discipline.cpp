// Fixture: a shared Rng consumed by reference inside an executor lambda —
// draw order follows shard interleaving, so results depend on --threads.
#include <cstddef>
#include <vector>

#include "net/executor.h"
#include "net/rng.h"

void fill(itm::net::Executor& exec, itm::Rng& rng, std::vector<double>& out) {
  exec.parallel_for(out.size(), [&rng, &out](std::size_t i) {
    out[i] = rng.uniform();
  });
}
