// Fixture: suppressions that excuse nothing — a stale allow on clean code
// and an allow naming a rule that does not exist. Both must be errors so
// suppressions cannot outlive the code they excused.
// itm-lint: allow(nondet-iteration)
int answer() { return 42; }

// itm-lint: allow(no-such-rule)
int other() { return 7; }
