// Fixture: the two sanctioned ways to iterate an unordered container —
// a key-sorted snapshot (net/ordered.h) and sort-what-the-loop-builds.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "net/ordered.h"

double total_bytes(const std::unordered_map<int, double>& by_as) {
  double total = 0;
  for (const auto& [asn, bytes] : itm::net::sorted_items(by_as)) {
    (void)asn;
    total += bytes;
  }
  return total;
}

std::vector<int> detected(const std::unordered_map<int, double>& by_as) {
  std::vector<int> out;
  for (const auto& [asn, bytes] : by_as) {
    if (bytes > 1.0) out.push_back(asn);
  }
  std::sort(out.begin(), out.end());
  return out;
}
