// bad: the registered crash handler reaches malloc two calls deep — the
// rule must walk the call graph, not just scan the handler body.
#include <csignal>
#include <cstdlib>

namespace {

char* format_crash_line(int signo) {
  char* buf = static_cast<char*>(std::malloc(64));
  buf[0] = static_cast<char>('0' + signo % 10);
  buf[1] = '\n';
  return buf;
}

void emit_crash_report(int signo) {
  char* line = format_crash_line(signo);
  (void)line;
}

void crash_handler(int signo) { emit_crash_report(signo); }

}  // namespace

void install_handler() {
  struct sigaction action {};
  action.sa_handler = crash_handler;
  ::sigaction(SIGSEGV, &action, nullptr);
}
