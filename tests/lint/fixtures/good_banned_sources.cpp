// Fixture: the sanctioned patterns — all randomness through itm::Rng
// streams derived from the scenario seed, ids hashed by value.
#include <cstdint>
#include <functional>

#include "net/rng.h"

double jitter(itm::Rng& gen) { return gen.uniform(0.0, 1.0); }

std::uint64_t draw(const itm::Rng& parent, std::uint64_t item) {
  itm::Rng local = parent.split(item);
  return local.next_u64();
}

std::size_t id_key(std::uint32_t asn) {
  return std::hash<std::uint32_t>{}(asn);
}
