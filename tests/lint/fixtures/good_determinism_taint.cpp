// good: wall-clock values are either registered kWallClock or reduced to a
// reproducible value through the sanctioned obs::deterministic_cast.
#include <cstdint>

struct Stopwatch {
  std::uint64_t elapsed_ns() const;
};

namespace obs {
enum class Determinism { kDeterministic, kWallClock };
void count(const char* name, std::uint64_t n);
void gauge_set(const char* name, std::int64_t v, Determinism det);
template <typename T>
T deterministic_cast(T value);
}  // namespace obs

constexpr std::uint64_t kSlowNs = 1000000;

std::uint64_t slow_probe_flag(const Stopwatch& watch) {
  // The comparison collapses the wall-clock reading to a threshold bit the
  // caller treats as configuration; the cast is the written-down claim.
  return obs::deterministic_cast(
      static_cast<std::uint64_t>(watch.elapsed_ns() > kSlowNs ? 1 : 0));
}

void record(const Stopwatch& watch, std::uint64_t items) {
  obs::count("build.items", items);
  obs::gauge_set("build.elapsed_ns",
                 static_cast<std::int64_t>(watch.elapsed_ns()),
                 obs::Determinism::kWallClock);
}
