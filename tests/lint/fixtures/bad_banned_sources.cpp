// Fixture: every banned nondeterminism source in one file — <random>
// machinery, std::rand, wall clocks, environment reads, pointer hashing.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <random>

unsigned roll() {
  std::mt19937 gen(std::random_device{}());
  return gen() + static_cast<unsigned>(std::rand());
}

long long now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* metrics_dir() { return std::getenv("ITM_METRICS_DIR"); }

std::size_t ptr_key(const int* p) { return std::hash<const int*>{}(p); }
