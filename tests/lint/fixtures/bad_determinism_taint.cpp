// bad: wall-clock readings flow into kDeterministic metrics — directly,
// through a local, and through a tainted-returning helper.
#include <cstdint>

struct Stopwatch {
  std::uint64_t elapsed_ns() const;
};

struct Counter {
  void add(std::uint64_t n);
};

struct MetricsRegistry {
  Counter& counter(const char* name);
};

namespace obs {
void gauge_set(const char* name, std::int64_t v);
}  // namespace obs

std::uint64_t stage_nanos(const Stopwatch& watch) {
  return watch.elapsed_ns();
}

void record_direct(const Stopwatch& watch, MetricsRegistry& reg) {
  reg.counter("build.duration_ns").add(watch.elapsed_ns());
}

void record_through_local(const Stopwatch& watch) {
  std::int64_t elapsed = 0;
  elapsed = static_cast<std::int64_t>(watch.elapsed_ns());
  obs::gauge_set("build.elapsed_ns", elapsed);
}

void record_through_call(const Stopwatch& watch) {
  obs::gauge_set("build.stage_ns",
                 static_cast<std::int64_t>(stage_nanos(watch)));
}
