// good: the helper that submits parallel work runs before/after the
// callback, never from inside it; the callback writes per-index slots.
#include <cstddef>
#include <vector>

struct Shard {
  std::size_t begin;
  std::size_t end;
};

struct Executor {
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn);
};

void rescan_block(Executor& executor, std::size_t n) {
  executor.parallel_for(n, [](const Shard&) {});
}

void build_all(Executor& executor, std::vector<int>& out) {
  executor.parallel_for(out.size(), [&out](const Shard& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) out[i] += 1;
  });
  rescan_block(executor, 8);
}
