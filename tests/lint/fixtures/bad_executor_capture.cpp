// Fixture: the capture sins inside an executor lambda — a default [&]
// capture, a scalar += on shared state, and a container mutation.
#include <cstddef>
#include <vector>

#include "net/executor.h"

void tally(itm::net::Executor& exec, const std::vector<int>& xs) {
  long total = 0;
  std::vector<int> hits;
  exec.parallel_for(xs.size(), [&](std::size_t i) {
    total += xs[i];
    hits.push_back(xs[i]);
  });
}
