// Fixture: the sanctioned parallel-randomness pattern — one split() per
// work item, so every draw is independent of shard boundaries.
#include <cstddef>
#include <vector>

#include "net/executor.h"
#include "net/rng.h"

void fill(itm::net::Executor& exec, const itm::Rng& rng,
          std::vector<double>& out) {
  exec.parallel_for(out.size(), [&rng, &out](std::size_t i) {
    itm::Rng local = rng.split(i);
    out[i] = local.uniform();
  });
}
