// The determinism contract of the sharded executor, checked end to end:
// every pipeline output must be byte-identical whether built with
// threads=1 (the legacy serial path) or threads=4. The comparisons go
// through the exporters, so even hash-map iteration order and float
// accumulation order are covered — not just set equality.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/export.h"
#include "core/scenario.h"
#include "core/traffic_map.h"
#include "core/workload.h"
#include "net/executor.h"
#include "net/ordered.h"
#include "scan/cache_prober.h"
#include "scan/ecs_mapper.h"
#include "scan/tls_scanner.h"

namespace itm {
namespace {

core::MapBuildOptions tiny_build_options(std::size_t threads) {
  core::MapBuildOptions options;
  options.probe_rounds = 4;
  options.ecs_map_services = 2;
  options.recommend_links = 40;
  options.threads = threads;
  return options;
}

struct Exports {
  std::string map_json;
  std::string activity_csv;
  std::string servers_csv;
  std::string links_csv;
};

Exports build_and_export(std::size_t threads) {
  // Each build gets its own scenario (same seed, deterministic generation):
  // the workload stage mutates DNS caches, so the two builds must start
  // from identical virgin state.
  auto scenario = core::Scenario::generate(core::tiny_config(4242));
  core::MapBuilder builder(*scenario);
  const auto map = builder.build(tiny_build_options(threads));
  Exports out;
  std::ostringstream os;
  core::export_map_json(map, *scenario, os);
  out.map_json = os.str();
  os.str("");
  core::export_activity_csv(map, *scenario, os);
  out.activity_csv = os.str();
  os.str("");
  core::export_servers_csv(map, *scenario, os);
  out.servers_csv = os.str();
  os.str("");
  core::export_recommended_links_csv(map, *scenario, os);
  out.links_csv = os.str();
  return out;
}

TEST(ParallelEquivalence, FullMapBuildIsByteIdenticalAcrossThreadCounts) {
  const auto serial = build_and_export(1);
  const auto parallel = build_and_export(4);
  EXPECT_EQ(serial.map_json, parallel.map_json);
  EXPECT_EQ(serial.activity_csv, parallel.activity_csv);
  EXPECT_EQ(serial.servers_csv, parallel.servers_csv);
  EXPECT_EQ(serial.links_csv, parallel.links_csv);
  EXPECT_FALSE(serial.map_json.empty());
}

TEST(ParallelEquivalence, TlsSweepIdenticalSerialVsParallel) {
  auto scenario = core::Scenario::generate(core::tiny_config(77));
  const scan::TlsScanner scanner(scenario->tls(), scenario->topo().addresses);
  std::vector<std::string> names;
  for (const auto& hg : scenario->deployment().hypergiants()) {
    names.push_back(hg.name);
  }
  const auto serial = scanner.sweep(names);  // Executor::serial()
  net::Executor executor(4);
  const auto parallel = scanner.sweep(names, executor);
  EXPECT_EQ(serial.addresses_probed, parallel.addresses_probed);
  ASSERT_EQ(serial.endpoints.size(), parallel.endpoints.size());
  for (std::size_t i = 0; i < serial.endpoints.size(); ++i) {
    const auto& a = serial.endpoints[i];
    const auto& b = parallel.endpoints[i];
    EXPECT_EQ(a.address, b.address);
    EXPECT_EQ(a.cert_names, b.cert_names);
    EXPECT_EQ(a.origin_as, b.origin_as);
    EXPECT_EQ(a.inferred_operator, b.inferred_operator);
    EXPECT_EQ(a.inferred_offnet, b.inferred_offnet);
  }
  EXPECT_FALSE(serial.endpoints.empty());
}

TEST(ParallelEquivalence, CacheProbeSweepIdenticalSerialVsParallel) {
  // One scenario, one day of workload to warm the resolver caches; the
  // probers only read DNS state, so both see the same world. Loss is on
  // and sweeps are recorded to exercise every merged field, including the
  // per-(sweep, prefix) loss streams split from the master seed.
  auto scenario = core::Scenario::generate(core::tiny_config(909));
  core::WorkloadConfig wl;
  core::Workload workload(*scenario, wl, 99);
  workload.advance_to(wl.duration / 2);

  scan::CacheProbeConfig config;
  config.probe_loss = 0.2;
  config.record_sweeps = true;
  const auto routable = scenario->topo().addresses.routable_slash24s();

  scan::CacheProber serial(scenario->dns(), scenario->catalog(), config,
                           &scenario->topo().addresses);
  net::Executor executor(4);
  scan::CacheProber parallel(scenario->dns(), scenario->catalog(), config,
                             &scenario->topo().addresses, &executor);
  for (SimTime at : {wl.duration / 4, wl.duration / 2}) {
    serial.sweep(routable, at);
    parallel.sweep(routable, at);
  }

  EXPECT_EQ(serial.total_probes(), parallel.total_probes());
  EXPECT_EQ(serial.detected_prefixes(), parallel.detected_prefixes());
  EXPECT_EQ(serial.prefixes_per_pop(), parallel.prefixes_per_pop());
  ASSERT_EQ(serial.results().size(), parallel.results().size());
  for (const auto& [prefix, stats] : net::sorted_items(serial.results())) {
    const auto it = parallel.results().find(prefix);
    ASSERT_NE(it, parallel.results().end());
    EXPECT_EQ(stats.hits, it->second.hits);
    EXPECT_EQ(stats.probes, it->second.probes);
    EXPECT_EQ(stats.pops_seen, it->second.pops_seen);
  }
  ASSERT_EQ(serial.sweep_records().size(), parallel.sweep_records().size());
  for (std::size_t i = 0; i < serial.sweep_records().size(); ++i) {
    EXPECT_EQ(serial.sweep_records()[i].at, parallel.sweep_records()[i].at);
    EXPECT_EQ(serial.sweep_records()[i].by_as,
              parallel.sweep_records()[i].by_as);
  }
  EXPECT_GT(serial.total_probes(), 0u);
}

TEST(ParallelEquivalence, EcsMapperSweepIdenticalSerialVsParallel) {
  auto scenario = core::Scenario::generate(core::tiny_config(313));
  const auto routable = scenario->topo().addresses.routable_slash24s();
  const scan::EcsMapper mapper(scenario->dns().authoritative(),
                               scenario->topo().geography.cities().front().id);
  net::Executor executor(4);
  std::size_t compared = 0;
  for (const auto& service : scenario->catalog().services()) {
    const auto serial = mapper.sweep(service, routable);
    const auto parallel = mapper.sweep(service, routable, executor);
    EXPECT_EQ(serial, parallel);
    if (++compared >= 3) break;
  }
  EXPECT_GT(compared, 0u);
}

}  // namespace
}  // namespace itm
