// The data-layout half of the determinism contract: a map built through the
// SoA access path (topology::AsTable columns + interned strings) must
// produce byte-identical exports, deterministic metrics and `.itms`
// snapshot bytes as one built through the legacy AoS path
// (AsGraph/AsInfo) — at every thread count. The comparisons go through the
// exporters and the snapshot writer, so string-table order, hash-map
// iteration and float formatting are all covered (DESIGN.md decision #10).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/export.h"
#include "core/scenario.h"
#include "core/traffic_map.h"
#include "obs/metrics.h"
#include "serve/snapshot_writer.h"

namespace itm {
namespace {

core::MapBuildOptions build_options(core::DataLayout layout,
                                    std::size_t threads) {
  core::MapBuildOptions options;
  options.layout = layout;
  options.threads = threads;
  options.probe_rounds = 4;
  options.ecs_map_services = 2;
  options.recommend_links = 40;
  return options;
}

struct Artifacts {
  std::string map_json;
  std::string activity_csv;
  std::string links_csv;
  std::string metrics_json;
  std::string snapshot;
};

// Fresh scenario per build: the workload stage mutates DNS caches, so both
// layouts must start from identical virgin state.
Artifacts build_artifacts(core::DataLayout layout, std::size_t threads) {
  obs::MetricsRegistry registry;
  obs::ScopedMetrics metrics_scope(registry);
  auto scenario = core::Scenario::generate(core::tiny_config(4242));
  core::MapBuilder builder(*scenario);
  const auto map = builder.build(build_options(layout, threads));
  EXPECT_EQ(map.layout, layout);
  Artifacts out;
  std::ostringstream os;
  core::export_map_json(map, *scenario, os);
  out.map_json = os.str();
  os.str("");
  core::export_activity_csv(map, *scenario, os);
  out.activity_csv = os.str();
  os.str("");
  core::export_recommended_links_csv(map, *scenario, os);
  out.links_csv = os.str();
  os.str("");
  registry.write_json(os, obs::MetricsRegistry::Export::kDeterministicOnly);
  out.metrics_json = os.str();
  os.str("");
  serve::write_snapshot(map, *scenario, os);
  out.snapshot = os.str();
  return out;
}

void expect_identical(const Artifacts& a, const Artifacts& b) {
  EXPECT_EQ(a.map_json, b.map_json);
  EXPECT_EQ(a.activity_csv, b.activity_csv);
  EXPECT_EQ(a.links_csv, b.links_csv);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_FALSE(a.map_json.empty());
  EXPECT_FALSE(a.snapshot.empty());
}

TEST(LayoutEquivalence, LegacyAndSoaProduceByteIdenticalArtifacts) {
  const auto legacy = build_artifacts(core::DataLayout::kLegacy, 1);
  const auto soa = build_artifacts(core::DataLayout::kSoa, 1);
  expect_identical(legacy, soa);
  // The AS-name JSON really exercised the two name paths (non-trivial
  // content, not two empty exports agreeing by accident).
  EXPECT_NE(soa.map_json.find("\"name\": \""), std::string::npos);
}

TEST(LayoutEquivalence, SoaLayoutIsByteIdenticalAcrossThreadCounts) {
  const auto serial = build_artifacts(core::DataLayout::kSoa, 1);
  const auto four = build_artifacts(core::DataLayout::kSoa, 4);
  const auto eight = build_artifacts(core::DataLayout::kSoa, 8);
  expect_identical(serial, four);
  expect_identical(serial, eight);
}

TEST(LayoutEquivalence, LayoutAndThreadsComposeIdentically) {
  // The cross term: serial legacy vs parallel SoA — the exact pairing the
  // old and new pipelines run in production.
  const auto legacy_serial = build_artifacts(core::DataLayout::kLegacy, 1);
  const auto soa_eight = build_artifacts(core::DataLayout::kSoa, 8);
  expect_identical(legacy_serial, soa_eight);
}

}  // namespace
}  // namespace itm
