// The observability half of the determinism contract: a full map build must
// produce a byte-identical deterministic metrics export whether it ran with
// threads=1 (the legacy serial path) or threads=4, and the tracer must hold
// a span for every pipeline stage. This is the in-process twin of the
// cli_metrics_determinism ctest (tools/metrics_determinism_test.cmake).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/traffic_map.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itm {
namespace {

core::MapBuildOptions tiny_build_options(std::size_t threads) {
  core::MapBuildOptions options;
  options.probe_rounds = 4;
  options.ecs_map_services = 2;
  options.recommend_links = 40;
  options.threads = threads;
  return options;
}

struct BuildObservations {
  std::string metrics_json;
  std::vector<obs::TraceEvent> spans;
  core::MapBuildTimings timings;
};

BuildObservations build_and_observe(std::size_t threads) {
  obs::MetricsRegistry registry;
  obs::Tracer trace;
  obs::ScopedMetrics metrics_scope(registry);
  obs::ScopedTracer trace_scope(trace);
  // Scenario generation happens inside the scope too, so topology metrics
  // land in this registry for both builds equally.
  auto scenario = core::Scenario::generate(core::tiny_config(4242));
  core::MapBuilder builder(*scenario);
  (void)builder.build(tiny_build_options(threads));
  BuildObservations out;
  std::ostringstream os;
  registry.write_json(os, obs::MetricsRegistry::Export::kDeterministicOnly);
  out.metrics_json = os.str();
  out.spans = trace.events();
  out.timings = builder.last_timings();
  return out;
}

TEST(MetricsEquivalence, DeterministicExportIsByteIdenticalAcrossThreads) {
  const auto serial = build_and_observe(1);
  const auto parallel = build_and_observe(4);
  EXPECT_EQ(serial.metrics_json, parallel.metrics_json);
  // Sanity: the export actually contains pipeline metrics, not just braces.
  EXPECT_NE(serial.metrics_json.find("scan.cache_probe.probes_sent"),
            std::string::npos);
  EXPECT_NE(serial.metrics_json.find("dns.queries"), std::string::npos);
  EXPECT_NE(serial.metrics_json.find("topology.ases"), std::string::npos);
}

TEST(MetricsEquivalence, TracerCoversEveryPipelineStage) {
  const auto run = build_and_observe(4);
  for (const char* stage : core::kMapStageNames) {
    const bool present =
        std::any_of(run.spans.begin(), run.spans.end(),
                    [&](const obs::TraceEvent& e) { return e.name == stage; });
    EXPECT_TRUE(present) << "missing stage span " << stage;
  }
  // Stage spans are top-level; sweep spans nest under their stage.
  for (const auto& e : run.spans) {
    if (e.name == "scan.cache_probe.sweep") {
      EXPECT_EQ(e.depth, 1u);
      EXPECT_TRUE(e.sim_at.has_value());
    }
  }
}

TEST(MetricsEquivalence, TimingsViewMatchesTracerTotals) {
  obs::MetricsRegistry registry;
  obs::Tracer trace;
  obs::ScopedMetrics metrics_scope(registry);
  obs::ScopedTracer trace_scope(trace);
  auto scenario = core::Scenario::generate(core::tiny_config(4242));
  core::MapBuilder builder(*scenario);
  (void)builder.build(tiny_build_options(2));
  const auto& t = builder.last_timings();
  EXPECT_DOUBLE_EQ(t.workload_probe_s,
                   trace.total_seconds("map.workload_probe"));
  EXPECT_DOUBLE_EQ(t.tls_scan_s, trace.total_seconds("map.tls_scan"));
  EXPECT_DOUBLE_EQ(t.ecs_map_s, trace.total_seconds("map.ecs_map"));
  EXPECT_DOUBLE_EQ(t.routing_s, trace.total_seconds("map.routing"));
  EXPECT_DOUBLE_EQ(t.inference_s, trace.total_seconds("map.inference"));
  EXPECT_GT(t.total_s(), 0.0);
}

TEST(MetricsEquivalence, OnStageHookFiresInPipelineOrder) {
  obs::MetricsRegistry registry;
  obs::ScopedMetrics metrics_scope(registry);
  auto scenario = core::Scenario::generate(core::tiny_config(4242));
  core::MapBuilder builder(*scenario);
  auto options = tiny_build_options(1);
  std::vector<std::string> seen;
  options.on_stage = [&seen](const char* stage) { seen.push_back(stage); };
  (void)builder.build(options);
  const std::vector<std::string> want(std::begin(core::kMapStageNames),
                                      std::end(core::kMapStageNames));
  EXPECT_EQ(seen, want);
}

}  // namespace
}  // namespace itm
