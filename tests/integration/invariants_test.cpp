// Cross-module invariants checked over multiple generated worlds: whatever
// the seed, a scenario must satisfy these structural and conservation
// properties end to end.
#include <gtest/gtest.h>

#include <numeric>

#include "core/scenario.h"
#include "net/ordered.h"
#include "net/stats.h"
#include "routing/bgp.h"

namespace itm {
namespace {

class ScenarioInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ScenarioInvariants()
      : scenario_(core::Scenario::generate(core::tiny_config(GetParam()))) {}
  std::unique_ptr<core::Scenario> scenario_;
};

TEST_P(ScenarioInvariants, FullReachability) {
  const routing::Bgp bgp(scenario_->topo().graph);
  const auto table = bgp.routes_to(scenario_->topo().tier1s.front());
  for (const auto& as : scenario_->topo().graph.ases()) {
    EXPECT_TRUE(table.at(as.asn).reachable()) << as.name;
  }
}

TEST_P(ScenarioInvariants, TrafficConservation) {
  const auto& m = scenario_->matrix();
  const auto pb = m.prefix_bytes();
  const double prefix_sum = std::accumulate(pb.begin(), pb.end(), 0.0);
  EXPECT_NEAR(prefix_sum, m.total_bytes(), m.total_bytes() * 1e-9);
  double service_sum = 0;
  for (const auto& svc : scenario_->catalog().services()) {
    service_sum += m.service_bytes(svc.id);
  }
  EXPECT_NEAR(service_sum, m.total_bytes(), m.total_bytes() * 1e-9);
  EXPECT_DOUBLE_EQ(m.unreachable_bytes(), 0.0);
}

TEST_P(ScenarioInvariants, HypergiantShareMatchesCatalog) {
  const auto& m = scenario_->matrix();
  double hg_bytes = 0;
  for (const auto& hg : scenario_->deployment().hypergiants()) {
    hg_bytes += m.hypergiant_bytes(hg.id);
  }
  EXPECT_NEAR(hg_bytes / m.total_bytes(),
              scenario_->config().services.hypergiant_traffic_share, 1e-6);
}

TEST_P(ScenarioInvariants, AddressingDisjointAndResolvable) {
  const auto& plan = scenario_->topo().addresses;
  const auto routable = plan.routable_slash24s();
  for (std::size_t i = 0; i < routable.size(); i += 13) {
    EXPECT_TRUE(plan.origin_of(routable[i]).has_value());
  }
  // Every TLS endpoint address resolves to its hosting AS.
  for (const auto& [addr, ep] : net::sorted_items(scenario_->tls().all())) {
    const auto origin = plan.origin_of(addr);
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(*origin, ep.asn);
  }
}

TEST_P(ScenarioInvariants, UsersSitInAccessNetworks) {
  // users().all() is an ordered span; the local binding keeps the name clear
  // of cdn/tls.h's unordered all().
  const auto user_prefixes = scenario_->users().all();
  for (const auto& up : user_prefixes) {
    EXPECT_EQ(scenario_->topo().graph.info(up.asn).type,
              topology::AsType::kAccess);
  }
}

TEST_P(ScenarioInvariants, ApnicRanksTrackTruth) {
  std::vector<double> est, truth;
  for (const Asn a : scenario_->topo().accesses) {
    if (!scenario_->apnic().covered(a)) continue;
    est.push_back(scenario_->apnic().users(a));
    truth.push_back(scenario_->users().as_users(a));
  }
  if (est.size() >= 8) {
    EXPECT_GT(spearman(est, truth), 0.6);
  }
}

TEST_P(ScenarioInvariants, MappingAlwaysReturnsReachableServer) {
  const routing::Bgp bgp(scenario_->topo().graph);
  const auto& catalog = scenario_->catalog();
  const auto prefixes = scenario_->users().all();
  // Sample a few (prefix, service) pairs.
  for (std::size_t pi = 0; pi < prefixes.size(); pi += 37) {
    const auto& up = prefixes[pi];
    for (std::size_t si = 0; si < catalog.size(); si += 11) {
      const auto& svc = catalog.service(
          ServiceId(static_cast<std::uint32_t>(si)));
      const auto result =
          scenario_->mapper().map(svc, up.asn, up.city, up.city, pi ^ si);
      const auto origin = scenario_->topo().addresses.origin_of(result.address);
      ASSERT_TRUE(origin.has_value());
      EXPECT_EQ(*origin, result.server_as);
      const auto table = bgp.routes_to(result.server_as);
      EXPECT_TRUE(table.at(up.asn).reachable());
    }
  }
}

TEST_P(ScenarioInvariants, DiurnalTrafficIsConcentrated) {
  const auto hist = scenario_->matrix().bytes_by_hops();
  const double total = std::accumulate(hist.begin(), hist.end(), 0.0);
  EXPECT_GT((hist[0] + hist[1] + hist[2]) / total, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioInvariants,
                         ::testing::Values(11, 222, 3333, 44444));

}  // namespace
}  // namespace itm
