// `ctest -L scale`: the medium-tier smoke — generates the pinned medium
// world (>= 10k ASes, >= 100k routable /24s), runs the full measurement
// pipeline through the tier's build options, and checks the invariants that
// must survive scale: address-plan disjointness, activity mass
// conservation, SoA/AoS column agreement, and snapshot self-validation.
// This is the one test where the Internet-scale substrate actually carries
// Internet-shaped cardinalities; everything is built once and shared across
// the suite (the build is the expensive part, the checks are cheap).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <sstream>

#include "core/scale.h"
#include "core/scenario.h"
#include "core/traffic_map.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace itm {
namespace {

class ScaleSmoke : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ =
        core::Scenario::generate(core::tier_config(core::ScaleTier::kMedium))
            .release();
    core::MapBuilder builder(*scenario_);
    map_ = new core::TrafficMap(
        builder.build(core::tier_build_options(core::ScaleTier::kMedium)));
  }

  static void TearDownTestSuite() {
    delete map_;
    map_ = nullptr;
    delete scenario_;
    scenario_ = nullptr;
  }

  static core::Scenario* scenario_;
  static core::TrafficMap* map_;
};

core::Scenario* ScaleSmoke::scenario_ = nullptr;
core::TrafficMap* ScaleSmoke::map_ = nullptr;

TEST_F(ScaleSmoke, SubstrateMeetsTierFloor) {
  const auto& topo = scenario_->topo();
  EXPECT_GE(topo.graph.size(), 10'000u);
  EXPECT_GE(topo.addresses.routable_slash24s().size(), 100'000u);
  EXPECT_EQ(topo.table.size(), topo.graph.size());
}

TEST_F(ScaleSmoke, AddressAggregatesAreDisjointAndResolvable) {
  const auto& topo = scenario_->topo();
  std::vector<Ipv4Prefix> aggregates;
  aggregates.reserve(topo.graph.size());
  for (const auto& as : topo.graph.ases()) {
    aggregates.push_back(topo.addresses.of(as.asn).aggregate);
  }
  std::sort(aggregates.begin(), aggregates.end(),
            [](const Ipv4Prefix& a, const Ipv4Prefix& b) {
              return a.base().bits() < b.base().bits();
            });
  for (std::size_t i = 1; i < aggregates.size(); ++i) {
    const auto& prev = aggregates[i - 1];
    // No overlap: the next aggregate starts at or after the previous end.
    EXPECT_GE(aggregates[i].base().bits(), prev.base().bits() + prev.size())
        << "aggregate " << aggregates[i].to_string() << " overlaps "
        << prev.to_string();
  }
  // Every routable /24 resolves to exactly the AS whose aggregate covers
  // it (sampled: the full sweep is 200k lookups — cheap, but the point is
  // the trie, so a stride keeps the failure output readable).
  const auto routable = topo.addresses.routable_slash24s();
  for (std::size_t i = 0; i < routable.size(); i += 97) {
    const auto origin = topo.addresses.origin_of(routable[i]);
    ASSERT_TRUE(origin.has_value()) << routable[i].to_string();
    const auto& addressing = topo.addresses.of(*origin);
    EXPECT_TRUE(addressing.aggregate.contains(routable[i].base()));
  }
}

TEST_F(ScaleSmoke, ActivityMassIsConserved) {
  // Ground truth: per-prefix activity sums to the user base total, and the
  // per-AS aggregate column agrees with the same sum.
  const auto& users = scenario_->users();
  double prefix_sum = 0;
  // all() is an ordered span (local binding dodges cdn/tls.h's unordered
  // all() in the linter's name table).
  const auto user_prefixes = users.all();
  for (const auto& up : user_prefixes) prefix_sum += up.activity;
  EXPECT_NEAR(prefix_sum, users.total_activity(),
              users.total_activity() * 1e-9);
  double as_sum = 0;
  for (const auto& as : scenario_->topo().graph.ases()) {
    as_sum += users.as_activity(as.asn);
  }
  EXPECT_NEAR(as_sum, users.total_activity(), users.total_activity() * 1e-9);

  // Map estimate: the total is exactly the sum of its per-AS scores (no
  // mass invented or lost between the estimate and its consumers).
  double score_sum = 0;
  for (const auto& as : scenario_->topo().graph.ases()) {
    score_sum += map_->activity.score(as.asn);
  }
  EXPECT_GT(map_->total_activity(), 0.0);
  EXPECT_NEAR(score_sum, map_->total_activity(),
              map_->total_activity() * 1e-6);
}

TEST_F(ScaleSmoke, SoaColumnsAgreeWithGraphAtScale) {
  const auto& topo = scenario_->topo();
  const auto& table = topo.table;
  // Sampled column agreement (the full check is as_table_test's job at
  // tiny scale; here the point is that nothing decayed at 12k ASes).
  for (std::size_t i = 0; i < topo.graph.size(); i += 131) {
    const Asn asn(static_cast<std::uint32_t>(i));
    const auto& info = topo.graph.info(asn);
    EXPECT_EQ(table.type(asn), info.type);
    EXPECT_EQ(table.country(asn), info.country);
    EXPECT_EQ(table.name(asn), info.name);
    EXPECT_EQ(table.cone_size(asn), topo.graph.customer_cone_size(asn));
    EXPECT_EQ(table.degree(asn), topo.graph.neighbors(asn).size());
  }
  // The rank CSR partitions the AS set exactly once.
  std::size_t ranked = 0;
  for (std::uint32_t r = 0; r < table.num_ranks(); ++r) {
    ranked += table.ases_at_rank(r).size();
  }
  EXPECT_EQ(ranked, table.size());
}

TEST_F(ScaleSmoke, MapDetectedMeaningfulCoverage) {
  EXPECT_GE(map_->client_prefixes.size(), 10'000u);
  EXPECT_GE(map_->client_ases.size(), 1'000u);
  EXPECT_FALSE(map_->tls.endpoints.empty());
  EXPECT_GT(map_->public_view.link_count(), 0u);
}

TEST_F(ScaleSmoke, SnapshotSelfValidatesAndRoundTrips) {
  std::ostringstream blob_out;
  serve::write_snapshot(*map_, *scenario_, blob_out);
  const std::string blob = blob_out.str();
  std::string error;
  const auto snapshot = serve::read_snapshot(std::string_view(blob), &error);
  ASSERT_TRUE(snapshot) << error;
  EXPECT_EQ(snapshot->ases.size(), scenario_->topo().graph.size());
  std::ostringstream blob_again;
  serve::write_snapshot(*snapshot, blob_again);
  EXPECT_EQ(blob_again.str(), blob);
}

}  // namespace
}  // namespace itm
