#include "dns/system.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"
#include "net/ordered.h"

namespace itm::dns {
namespace {

using itm::testing::shared_tiny_scenario;

// These tests need virgin cache state, so they build their own scenario.
class DnsSystemTest : public ::testing::Test {
 protected:
  DnsSystemTest()
      : scenario_(core::Scenario::generate(core::tiny_config(777))),
        rng_(9) {}

  const traffic::UserPrefix& prefix_with(double min_public_share,
                                         double max_public_share) {
    for (const auto& up : scenario_->users().all()) {
      if (up.public_dns_share >= min_public_share &&
          up.public_dns_share <= max_public_share) {
        return up;
      }
    }
    return scenario_->users().all().front();
  }

  const cdn::Service& ecs_service() {
    for (const auto& svc : scenario_->catalog().services()) {
      if (svc.supports_ecs) return svc;
    }
    ADD_FAILURE() << "no ECS service";
    return scenario_->catalog().services().front();
  }

  std::unique_ptr<core::Scenario> scenario_;
  Rng rng_;
};

TEST_F(DnsSystemTest, PublicResolutionPopulatesProbeableCache) {
  auto& dns = scenario_->dns();
  const auto& svc = ecs_service();
  const auto& up = prefix_with(0.15, 0.9);
  // Force the public path by retrying the resolver coin-flip.
  DnsSystem::ResolveResult result;
  SimTime t = 100;
  do {
    result = dns.resolve(up, svc, t, rng_);
  } while (!result.used_public);
  // The cache at the client's PoP now answers an ECS probe for its /24.
  const auto pop = dns.pop_for_city(up.city);
  const auto probed = dns.probe_cache(pop, svc, up.prefix, t + 1);
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(*probed, result.answer);
  // A different prefix gets no hit.
  const auto& other = scenario_->users().all().back();
  ASSERT_NE(other.prefix, up.prefix);
  EXPECT_FALSE(dns.probe_cache(pop, svc, other.prefix, t + 1).has_value());
  // After TTL expiry the probe misses.
  EXPECT_FALSE(
      dns.probe_cache(pop, svc, up.prefix, t + svc.dns_ttl_s + 10)
          .has_value());
}

TEST_F(DnsSystemTest, SecondPublicResolveIsCacheHit) {
  auto& dns = scenario_->dns();
  const auto& svc = ecs_service();
  const auto& up = prefix_with(0.15, 0.9);
  DnsSystem::ResolveResult first;
  do {
    first = dns.resolve(up, svc, 200, rng_);
  } while (!first.used_public);
  DnsSystem::ResolveResult second;
  do {
    second = dns.resolve(up, svc, 201, rng_);
  } while (!second.used_public);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.answer, first.answer);
}

TEST_F(DnsSystemTest, IspResolutionDoesNotPopulatePublicCache) {
  auto& dns = scenario_->dns();
  const auto& svc = ecs_service();
  // Prefixes with low public-DNS share usually resolve via their ISP on the
  // first try; find one whose first resolve is the ISP path so no public
  // resolution has touched the PoP cache for this (service, prefix).
  const auto pop_of = [&](const traffic::UserPrefix& up) {
    return dns.pop_for_city(up.city);
  };
  for (const auto& up : scenario_->users().all()) {
    if (up.public_dns_share > 0.5) continue;
    const auto result = dns.resolve(up, svc, 300, rng_);
    if (result.used_public) continue;  // try another prefix
    EXPECT_FALSE(result.cache_hit);
    EXPECT_FALSE(
        dns.probe_cache(pop_of(up), svc, up.prefix, 301).has_value());
    return;
  }
  FAIL() << "no prefix resolved via its ISP resolver";
}

TEST_F(DnsSystemTest, NonEcsServiceSharesCacheAcrossPrefixes) {
  auto& dns = scenario_->dns();
  const cdn::Service* svc = nullptr;
  for (const auto& candidate : scenario_->catalog().services()) {
    if (candidate.redirection == cdn::RedirectionKind::kDnsRedirection &&
        !candidate.supports_ecs) {
      svc = &candidate;
      break;
    }
  }
  if (svc == nullptr) GTEST_SKIP() << "no non-ECS DNS service";
  // Two prefixes in the same public PoP catchment share the global entry.
  const auto& prefixes = scenario_->users().all();
  const auto& a = prefix_with(0.15, 0.9);
  const traffic::UserPrefix* b = nullptr;
  for (const auto& up : prefixes) {
    if (up.prefix != a.prefix && up.public_dns_share >= 0.15 &&
        dns.pop_for_city(up.city) == dns.pop_for_city(a.city)) {
      b = &up;
      break;
    }
  }
  if (b == nullptr) GTEST_SKIP() << "no co-catchment prefix";
  DnsSystem::ResolveResult ra;
  do {
    ra = dns.resolve(a, *svc, 400, rng_);
  } while (!ra.used_public);
  DnsSystem::ResolveResult rb;
  do {
    rb = dns.resolve(*b, *svc, 401, rng_);
  } while (!rb.used_public);
  EXPECT_TRUE(rb.cache_hit);
  EXPECT_EQ(rb.answer, ra.answer);
}

TEST_F(DnsSystemTest, ChromiumProbesReachRootsByResolverAddress) {
  auto& dns = scenario_->dns();
  const auto& up = scenario_->users().all().front();
  const auto before = dns.roots().total_queries();
  dns.chromium_probe(up, 30, 500, rng_);
  EXPECT_EQ(dns.roots().total_queries(), before + 30);
  // The crawl sees some of them, attributed to resolver addresses.
  const auto crawl = dns.roots().crawl();
  std::uint64_t seen = 0;
  for (const auto& [addr, count] : net::sorted_items(crawl)) seen += count;
  EXPECT_GT(seen, 0u);
  EXPECT_LE(seen, dns.roots().total_queries());
}

TEST_F(DnsSystemTest, IspResolverAddressInSomeInfraRange) {
  const auto& dns = scenario_->dns();
  std::size_t own = 0, outsourced = 0;
  for (const Asn asn : scenario_->topo().accesses) {
    const auto addr = dns.isp_resolver_address(asn);
    // The resolver lives in the infrastructure /24 of its hosting AS.
    const auto host = scenario_->topo().addresses.origin_of(addr);
    ASSERT_TRUE(host.has_value());
    EXPECT_TRUE(
        scenario_->topo().addresses.of(*host).infra_slash24.contains(addr));
    if (dns.runs_own_resolver(asn)) {
      EXPECT_EQ(*host, asn);
      ++own;
    } else {
      EXPECT_NE(*host, asn);
      // Outsourced to a provider of the AS.
      EXPECT_EQ(scenario_->topo().graph.relation(asn, *host),
                topology::Relation::kProvider);
      ++outsourced;
    }
  }
  // Both populations exist (resolver outsourcing is modeled).
  EXPECT_GT(own, 0u);
  EXPECT_GT(outsourced, 0u);
}

TEST_F(DnsSystemTest, PopForCityIsNearest) {
  const auto& dns = scenario_->dns();
  const auto& geo = scenario_->topo().geography;
  for (const auto& city : geo.cities()) {
    const auto chosen = dns.pop_for_city(city.id);
    const double chosen_km =
        geo.distance_km(dns.public_pops()[chosen].city, city.id);
    for (std::size_t p = 0; p < dns.public_pops().size(); ++p) {
      EXPECT_LE(chosen_km,
                geo.distance_km(dns.public_pops()[p].city, city.id) + 1e-9);
    }
  }
}

TEST_F(DnsSystemTest, StatsAccumulate) {
  auto& dns = scenario_->dns();
  const auto before = dns.stats().queries;
  dns.resolve(scenario_->users().all().front(), ecs_service(), 600, rng_);
  EXPECT_EQ(dns.stats().queries, before + 1);
}

TEST_F(DnsSystemTest, PurgeKeepsFreshEntries) {
  auto& dns = scenario_->dns();
  const auto& svc = ecs_service();
  const auto& up = prefix_with(0.15, 0.9);
  DnsSystem::ResolveResult result;
  do {
    result = dns.resolve(up, svc, 700, rng_);
  } while (!result.used_public);
  dns.purge(701);  // nothing expired yet
  const auto pop = dns.pop_for_city(up.city);
  EXPECT_TRUE(dns.probe_cache(pop, svc, up.prefix, 702).has_value());
  dns.purge(700 + svc.dns_ttl_s + 1);
  EXPECT_FALSE(
      dns.probe_cache(pop, svc, up.prefix, 700 + svc.dns_ttl_s + 2)
          .has_value());
}

TEST(RootSystem, AnonymizationLimitsCrawl) {
  RootConfig config;
  config.letters = 10;
  config.open_letters = 0;  // nothing crawlable
  RootSystem roots(config);
  Rng rng(1);
  roots.record(Ipv4Addr(42), 100, rng);
  EXPECT_EQ(roots.total_queries(), 100u);
  EXPECT_TRUE(roots.crawl().empty());
}

TEST(RootSystem, OpenLettersSampleRoughlyProportionally) {
  RootConfig config;
  config.letters = 13;
  config.open_letters = 13;
  config.anonymized_fraction = 0.0;
  RootSystem roots(config);
  Rng rng(1);
  roots.record(Ipv4Addr(42), 13000, rng);
  const auto crawl = roots.crawl();
  ASSERT_EQ(crawl.size(), 1u);
  EXPECT_EQ(crawl.begin()->second, 13000u);  // all letters crawlable
}

}  // namespace
}  // namespace itm::dns
