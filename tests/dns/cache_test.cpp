#include "dns/cache.h"

#include <gtest/gtest.h>

namespace itm::dns {
namespace {

const Ipv4Prefix kPrefix = *Ipv4Prefix::parse("10.1.2.0/24");

TEST(DnsCache, HitWithinTtlMissAfter) {
  DnsCache cache;
  const ServiceId svc(1);
  const auto scope = DnsCache::scope_of(kPrefix);
  cache.insert(svc, scope, Ipv4Addr(0xaa), /*expiry=*/100);
  EXPECT_TRUE(cache.lookup(svc, scope, 50).has_value());
  EXPECT_EQ(cache.lookup(svc, scope, 50)->bits(), 0xaau);
  EXPECT_FALSE(cache.lookup(svc, scope, 100).has_value());  // expiry exact
  EXPECT_FALSE(cache.lookup(svc, scope, 200).has_value());
}

TEST(DnsCache, ScopesAreIsolated) {
  DnsCache cache;
  const ServiceId svc(1);
  const auto other = DnsCache::scope_of(*Ipv4Prefix::parse("10.1.3.0/24"));
  cache.insert(svc, DnsCache::scope_of(kPrefix), Ipv4Addr(1), 100);
  EXPECT_TRUE(cache.lookup(svc, DnsCache::scope_of(kPrefix), 10).has_value());
  EXPECT_FALSE(cache.lookup(svc, other, 10).has_value());
  EXPECT_FALSE(cache.lookup(svc, DnsCache::kGlobalScope, 10).has_value());
}

TEST(DnsCache, ServicesAreIsolated) {
  DnsCache cache;
  const auto scope = DnsCache::scope_of(kPrefix);
  cache.insert(ServiceId(1), scope, Ipv4Addr(1), 100);
  EXPECT_FALSE(cache.lookup(ServiceId(2), scope, 10).has_value());
}

TEST(DnsCache, InsertOverwrites) {
  DnsCache cache;
  const ServiceId svc(1);
  cache.insert(svc, DnsCache::kGlobalScope, Ipv4Addr(1), 100);
  cache.insert(svc, DnsCache::kGlobalScope, Ipv4Addr(2), 200);
  EXPECT_EQ(cache.lookup(svc, DnsCache::kGlobalScope, 150)->bits(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsCache, PurgeRemovesOnlyExpired) {
  DnsCache cache;
  cache.insert(ServiceId(1), DnsCache::kGlobalScope, Ipv4Addr(1), 100);
  cache.insert(ServiceId(2), DnsCache::kGlobalScope, Ipv4Addr(2), 300);
  cache.purge(200);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(
      cache.lookup(ServiceId(2), DnsCache::kGlobalScope, 200).has_value());
}

TEST(DnsCache, ScopeOfUsesTop24Bits) {
  EXPECT_EQ(DnsCache::scope_of(*Ipv4Prefix::parse("1.2.3.0/24")),
            (1u << 16) | (2u << 8) | 3u);
  // Global scope sentinel cannot collide with real /24s below 224.0.0.0.
  EXPECT_GT(DnsCache::kGlobalScope, DnsCache::scope_of(*Ipv4Prefix::parse(
                                        "223.255.255.0/24")));
}

}  // namespace
}  // namespace itm::dns
