#include "dns/authoritative.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "../test_scenario.h"
#include "dns/cache.h"

namespace itm::dns {
namespace {

using itm::testing::shared_tiny_scenario;

const cdn::Service& service_of_kind(const core::Scenario& s,
                                    cdn::RedirectionKind kind, bool ecs) {
  for (const auto& svc : s.catalog().services()) {
    if (svc.redirection == kind && svc.supports_ecs == ecs) return svc;
  }
  ADD_FAILURE() << "service kind not found";
  return s.catalog().services().front();
}

TEST(AuthoritativeDns, StaticAnswerForNonDnsServices) {
  auto& s = shared_tiny_scenario();
  const auto& authoritative = s.dns().authoritative();
  for (const auto& svc : s.catalog().services()) {
    if (svc.redirection == cdn::RedirectionKind::kDnsRedirection) continue;
    const auto ans = authoritative.answer(svc, std::nullopt, CityId(0));
    EXPECT_EQ(ans.address, svc.service_address);
    EXPECT_EQ(ans.cache_scope, DnsCache::kGlobalScope);
    EXPECT_EQ(ans.ttl_s, svc.dns_ttl_s);
  }
}

TEST(AuthoritativeDns, EcsAnswerScopedToClientSlash24) {
  auto& s = shared_tiny_scenario();
  const auto& authoritative = s.dns().authoritative();
  const auto& svc =
      service_of_kind(s, cdn::RedirectionKind::kDnsRedirection, true);
  const auto& up = s.users().all().front();
  const auto ans = authoritative.answer(svc, up.prefix, CityId(0));
  EXPECT_EQ(ans.cache_scope, DnsCache::scope_of(up.prefix));
  // The answer is a front end of the service's hypergiant.
  const auto* ep = s.tls().endpoint_at(ans.address);
  ASSERT_NE(ep, nullptr);
  EXPECT_EQ(ep->hypergiant, svc.hypergiant);
}

TEST(AuthoritativeDns, NonEcsAnswerGlobalScopeByResolverCity) {
  auto& s = shared_tiny_scenario();
  const auto& authoritative = s.dns().authoritative();
  const auto& svc =
      service_of_kind(s, cdn::RedirectionKind::kDnsRedirection, true);
  const auto& up = s.users().all().front();
  // Even an ECS service answers globally when the resolver sends no ECS.
  const auto ans = authoritative.answer(svc, std::nullopt, up.city);
  EXPECT_EQ(ans.cache_scope, DnsCache::kGlobalScope);
}

TEST(AuthoritativeDns, AnswerDeterministicPerLocation) {
  auto& s = shared_tiny_scenario();
  const auto& authoritative = s.dns().authoritative();
  const auto& svc =
      service_of_kind(s, cdn::RedirectionKind::kDnsRedirection, true);
  const auto& up = s.users().all().front();
  const auto a1 = authoritative.answer(svc, up.prefix, CityId(0));
  const auto a2 = authoritative.answer(svc, up.prefix, CityId(1));
  EXPECT_EQ(a1.address, a2.address);  // ECS dominates resolver city
}

TEST(AuthoritativeDns, LocatePrefixUsesGroundTruthForUsers) {
  auto& s = shared_tiny_scenario();
  const auto& authoritative = s.dns().authoritative();
  const auto& up = s.users().all().front();
  EXPECT_EQ(authoritative.locate_prefix(up.prefix), up.city);
  // Infrastructure prefixes fall back to the origin AS's home city.
  const Asn asn = s.topo().accesses.front();
  const auto infra = s.topo().addresses.of(asn).infra_slash24;
  EXPECT_EQ(authoritative.locate_prefix(infra),
            s.topo().graph.info(asn).home_city);
}

TEST(AuthoritativeDns, EcsAnswersVaryAcrossDistantPrefixes) {
  auto& s = shared_tiny_scenario();
  const auto& authoritative = s.dns().authoritative();
  const auto& svc =
      service_of_kind(s, cdn::RedirectionKind::kDnsRedirection, true);
  // Over all user prefixes there should be at least two distinct answers
  // (redirection actually redirects).
  std::unordered_set<Ipv4Addr> answers;
  for (const auto& up : s.users().all()) {
    answers.insert(authoritative.answer(svc, up.prefix, CityId(0)).address);
  }
  EXPECT_GT(answers.size(), 1u);
}

}  // namespace
}  // namespace itm::dns
