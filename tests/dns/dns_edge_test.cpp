// DNS edge cases: TTL capping, root-deployment anycast, cache behavior
// around expiry boundaries.
#include <gtest/gtest.h>

#include <unordered_set>

#include "../test_scenario.h"
#include "dns/root_deployment.h"

namespace itm::dns {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(DnsEdge, PublicResolverCapsLongTtls) {
  // A long-tail service can carry a TTL of up to an hour; the public
  // resolver caps cached entries at max_cache_ttl_s.
  auto scenario = core::Scenario::generate(core::tiny_config(4242));
  auto& dns = scenario->dns();
  const auto& config = scenario->config().dns;

  // Find a single-site service with TTL above the cap... the generator caps
  // hypergiant TTLs at 600s and the public cap is 21600s, so craft the
  // check the other way: cached entries must expire no later than
  // now + min(ttl, cap).
  const auto& users = scenario->users().all();
  const traffic::UserPrefix* up = nullptr;
  for (const auto& candidate : users) {
    if (candidate.public_dns_share > 0.2) {
      up = &candidate;
      break;
    }
  }
  ASSERT_NE(up, nullptr);
  const cdn::Service* svc = nullptr;
  for (const auto& candidate : scenario->catalog().services()) {
    if (candidate.supports_ecs) {
      svc = &candidate;
      break;
    }
  }
  ASSERT_NE(svc, nullptr);
  Rng rng(7);
  DnsSystem::ResolveResult result;
  do {
    result = dns.resolve(*up, *svc, 1000, rng);
  } while (!result.used_public);
  const auto pop = dns.pop_for_city(up->city);
  const SimTime bound =
      1000 + std::min<std::uint32_t>(svc->dns_ttl_s, config.max_cache_ttl_s);
  EXPECT_TRUE(dns.probe_cache(pop, *svc, up->prefix, bound - 1).has_value());
  EXPECT_FALSE(dns.probe_cache(pop, *svc, up->prefix, bound).has_value());
}

TEST(DnsEdge, RootDeploymentSitesAreDistinctAndRouted) {
  auto& s = shared_tiny_scenario();
  Rng rng(99);
  const auto deployment =
      RootDeployment::build(s.topo(), RootDeploymentConfig{}, rng);
  ASSERT_EQ(deployment.letters().size(), 13u);
  for (const auto& letter : deployment.letters()) {
    ASSERT_FALSE(letter.site_hosts.empty());
    std::unordered_set<std::uint32_t> distinct;
    for (const Asn host : letter.site_hosts) {
      EXPECT_TRUE(distinct.insert(host.value()).second);
    }
    // Every AS can reach the letter.
    const auto table = deployment.catchment(s.topo(), letter.index);
    for (const auto& as : s.topo().graph.ases()) {
      EXPECT_TRUE(table.at(as.asn).reachable()) << letter.name;
      EXPECT_LT(table.at(as.asn).origin_index, letter.site_hosts.size());
    }
  }
}

TEST(DnsEdge, RootCatchmentSplitsAcrossSites) {
  auto& s = shared_tiny_scenario();
  Rng rng(100);
  RootDeploymentConfig config;
  config.min_sites = 6;
  config.max_sites = 10;
  const auto deployment = RootDeployment::build(s.topo(), config, rng);
  // For a letter with several sites, the catchment should use more than one.
  bool multi = false;
  for (const auto& letter : deployment.letters()) {
    if (letter.site_hosts.size() < 3) continue;
    const auto table = deployment.catchment(s.topo(), letter.index);
    std::unordered_set<std::uint16_t> used;
    for (const Asn vp : s.topo().accesses) {
      used.insert(table.at(vp).origin_index);
    }
    if (used.size() > 1) multi = true;
  }
  EXPECT_TRUE(multi);
}

TEST(DnsEdge, ChromiumBatchCountsAccumulate) {
  auto scenario = core::Scenario::generate(core::tiny_config(4343));
  auto& dns = scenario->dns();
  Rng rng(1);
  const auto& up = scenario->users().all().front();
  dns.chromium_probe(up, 9, 100, rng);
  dns.chromium_probe(up, 6, 200, rng);
  EXPECT_EQ(dns.roots().total_queries(), 15u);
}

TEST(DnsEdge, AssociationSamplingRateZeroDisables) {
  auto config = core::tiny_config(4444);
  config.dns.association_sample_rate = 0.0;
  auto scenario = core::Scenario::generate(config);
  Rng rng(2);
  auto& dns = scenario->dns();
  const auto& svc = scenario->catalog().services().front();
  for (int i = 0; i < 200; ++i) {
    dns.resolve(scenario->users().all().front(), svc, 100 + i, rng);
  }
  EXPECT_TRUE(dns.resolver_associations().empty());
}

}  // namespace
}  // namespace itm::dns
