#include <gtest/gtest.h>

#include "../test_scenario.h"
#include "inference/geolocation.h"
#include "inference/mapping_eval.h"
#include "scan/ecs_mapper.h"

namespace itm::inference {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(Geolocation, SyntheticClusterRecovered) {
  // One server, clients at known locations around (10, 10).
  std::unordered_map<Ipv4Prefix, Ipv4Addr> sweep;
  const Ipv4Addr server(0xABCD);
  std::vector<GeoPoint> points{{9, 9}, {10, 10}, {11, 11}, {10, 9}, {9, 11}};
  std::vector<Ipv4Prefix> prefixes;
  for (std::size_t i = 0; i < points.size(); ++i) {
    prefixes.push_back(
        Ipv4Prefix(Ipv4Addr(static_cast<std::uint32_t>(i) << 8), 24));
    sweep.emplace(prefixes.back(), server);
  }
  const PrefixLocator locator =
      [&](const Ipv4Prefix& p) -> std::optional<GeoPoint> {
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      if (prefixes[i] == p) return points[i];
    }
    return std::nullopt;
  };
  const auto located = geolocate_servers({sweep}, locator);
  ASSERT_EQ(located.size(), 1u);
  EXPECT_EQ(located[0].supporting_prefixes, 5u);
  EXPECT_LT(haversine_km(located[0].location, GeoPoint{10, 10}), 100.0);
}

TEST(Geolocation, OutlierRobustness) {
  // Geometric median resists one wildly wrong client location.
  std::unordered_map<Ipv4Prefix, Ipv4Addr> sweep;
  const Ipv4Addr server(0x1);
  std::vector<GeoPoint> points{{0, 0}, {0.5, 0.5}, {-0.5, 0.2},
                               {0.2, -0.4}, {60, 150}};  // last is an outlier
  std::vector<Ipv4Prefix> prefixes;
  for (std::size_t i = 0; i < points.size(); ++i) {
    prefixes.push_back(
        Ipv4Prefix(Ipv4Addr(static_cast<std::uint32_t>(i + 1) << 8), 24));
    sweep.emplace(prefixes.back(), server);
  }
  const PrefixLocator locator =
      [&](const Ipv4Prefix& p) -> std::optional<GeoPoint> {
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      if (prefixes[i] == p) return points[i];
    }
    return std::nullopt;
  };
  const auto located = geolocate_servers({sweep}, locator);
  ASSERT_EQ(located.size(), 1u);
  EXPECT_LT(haversine_km(located[0].location, GeoPoint{0, 0}), 500.0);
}

TEST(Geolocation, EndToEndServerErrorsAreCityScale) {
  auto& s = shared_tiny_scenario();
  const scan::EcsMapper mapper(s.dns().authoritative(),
                               s.topo().geography.cities().front().id);
  std::vector<std::unordered_map<Ipv4Prefix, Ipv4Addr>> sweeps;
  std::size_t used = 0;
  for (const ServiceId sid : s.catalog().by_popularity()) {
    const auto& svc = s.catalog().service(sid);
    if (svc.redirection != cdn::RedirectionKind::kDnsRedirection ||
        !svc.supports_ecs) {
      continue;
    }
    sweeps.push_back(mapper.sweep(svc, s.topo().addresses.user_slash24s()));
    if (++used >= 4) break;
  }
  ASSERT_GT(used, 0u);
  const auto& topo = s.topo();
  const PrefixLocator locator =
      [&topo](const Ipv4Prefix& prefix) -> std::optional<GeoPoint> {
    const auto asn = topo.addresses.origin_of(prefix);
    if (!asn) return std::nullopt;
    return topo.geography.city(topo.graph.info(*asn).home_city).location;
  };
  const auto located = geolocate_servers(sweeps, locator);
  ASSERT_FALSE(located.empty());

  const auto truth = [&](Ipv4Addr addr) -> std::optional<GeoPoint> {
    const auto* ep = s.tls().endpoint_at(addr);
    if (ep == nullptr) return std::nullopt;
    return topo.geography.city(ep->city).location;
  };
  const auto score = score_geolocation(located, truth);
  EXPECT_EQ(score.located, located.size());
  // Client-centric geolocation should mostly land near the right city.
  EXPECT_GT(score.frac_within_500km, 0.5);
}

TEST(MappingEval, CoverageSharesSumToOne) {
  auto& s = shared_tiny_scenario();
  const auto cov = mapping_coverage(s.catalog(), s.matrix());
  const double sum = cov.ecs_dns_share + cov.non_ecs_dns_share +
                     cov.anycast_share + cov.custom_url_share +
                     cov.single_site_share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(cov.ecs_dns_share, 0.0);
  EXPECT_GT(cov.single_site_share, 0.0);
}

TEST(MappingEval, AnycastOptimalityShape) {
  auto& s = shared_tiny_scenario();
  const auto result =
      anycast_optimality(s.topo(), s.users(), s.mapper(), HypergiantId(0));
  EXPECT_EQ(result.ases_considered, s.topo().accesses.size());
  EXPECT_GE(result.routes_optimal, 0.0);
  EXPECT_LE(result.routes_optimal, 1.0);
  // The paper's key shape: user-weighted optimality >= route-weighted
  // (big eyeballs peer directly and ingress near home).
  EXPECT_GE(result.users_optimal + 0.05, result.routes_optimal);
  // Within-500km share dominates exact-optimal share.
  EXPECT_GE(result.users_within_500km, result.users_optimal - 1e-9);
}

}  // namespace
}  // namespace itm::inference
