#include "inference/client_detection.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"

namespace itm::inference {
namespace {

using itm::testing::shared_tiny_scenario;

TEST(ClientDetection, FullUniverseGivesFullCoverage) {
  auto& s = shared_tiny_scenario();
  std::vector<Ipv4Prefix> all;
  for (const auto& up : s.users().all()) all.push_back(up.prefix);
  const auto cov =
      evaluate_prefixes(all, s.users(), s.matrix(), HypergiantId(0));
  EXPECT_NEAR(cov.traffic_coverage, 1.0, 1e-9);
  EXPECT_NEAR(cov.user_coverage, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(cov.false_positive_rate, 0.0);
  EXPECT_EQ(cov.detected, s.users().size());
}

TEST(ClientDetection, EmptyDetectionGivesZero) {
  auto& s = shared_tiny_scenario();
  const auto cov = evaluate_prefixes({}, s.users(), s.matrix(),
                                     HypergiantId(0));
  EXPECT_DOUBLE_EQ(cov.traffic_coverage, 0.0);
  EXPECT_DOUBLE_EQ(cov.user_coverage, 0.0);
  EXPECT_DOUBLE_EQ(cov.false_positive_rate, 0.0);
}

TEST(ClientDetection, FalsePositivesCounted) {
  auto& s = shared_tiny_scenario();
  // Detect one real prefix plus one infrastructure prefix.
  const auto real = s.users().all().front().prefix;
  const auto fake =
      s.topo().addresses.of(s.topo().accesses.front()).infra_slash24;
  const std::vector<Ipv4Prefix> detected{real, fake};
  const auto cov =
      evaluate_prefixes(detected, s.users(), s.matrix(), HypergiantId(0));
  EXPECT_DOUBLE_EQ(cov.false_positive_rate, 0.5);
}

TEST(ClientDetection, HighActivityPrefixesCoverDisproportionateTraffic) {
  auto& s = shared_tiny_scenario();
  // Detect the top half of prefixes by activity: traffic coverage should
  // exceed the 50% prefix count (heavy-tailed activity).
  auto prefixes = std::vector<traffic::UserPrefix>(
      s.users().all().begin(), s.users().all().end());
  std::sort(prefixes.begin(), prefixes.end(),
            [](const auto& a, const auto& b) { return a.activity > b.activity; });
  std::vector<Ipv4Prefix> top_half;
  for (std::size_t i = 0; i < prefixes.size() / 2; ++i) {
    top_half.push_back(prefixes[i].prefix);
  }
  const auto cov =
      evaluate_prefixes(top_half, s.users(), s.matrix(), HypergiantId(0));
  EXPECT_GT(cov.traffic_coverage, 0.6);
}

TEST(ClientDetection, AsGranularityEvaluation) {
  auto& s = shared_tiny_scenario();
  const auto cov = evaluate_ases(s.topo().accesses, s.users(), s.matrix(),
                                 HypergiantId(0), s.topo());
  EXPECT_NEAR(cov.traffic_coverage, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(cov.false_positive_rate, 0.0);
  // Detecting a user-less AS counts as a false positive.
  const std::vector<Asn> bogus{s.topo().tier1s.front()};
  const auto bad = evaluate_ases(bogus, s.users(), s.matrix(),
                                 HypergiantId(0), s.topo());
  EXPECT_DOUBLE_EQ(bad.false_positive_rate, 1.0);
}

TEST(ClientDetection, CombineDeduplicates) {
  auto& s = shared_tiny_scenario();
  const Asn a0 = s.topo().accesses.front();
  const auto p = s.users().all().front();  // prefix in some access AS
  const std::vector<Ipv4Prefix> prefixes{p.prefix};
  const std::vector<Asn> ases{a0, p.asn};
  const auto combined = combine_detected(prefixes, ases, s.topo().addresses);
  // No duplicates and contains both ASes.
  std::unordered_set<std::uint32_t> set;
  for (const Asn asn : combined) {
    EXPECT_TRUE(set.insert(asn.value()).second);
  }
  EXPECT_TRUE(set.contains(a0.value()));
  EXPECT_TRUE(set.contains(p.asn.value()));
}

TEST(ClientDetection, ApnicCoverageByCountryBounds) {
  auto& s = shared_tiny_scenario();
  const auto full = apnic_coverage_by_country(s.topo().accesses, s.apnic(),
                                              s.topo());
  for (const double f : full) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0 + 1e-9);
  }
  // Full detection covers all APNIC users everywhere.
  for (std::size_t c = 0; c < full.size(); ++c) {
    if (s.apnic().country_users(s.topo(),
                                CountryId(static_cast<std::uint32_t>(c))) > 0) {
      EXPECT_NEAR(full[c], 1.0, 1e-9);
    }
  }
  const auto none = apnic_coverage_by_country({}, s.apnic(), s.topo());
  for (const double f : none) EXPECT_DOUBLE_EQ(f, 0.0);
}

}  // namespace
}  // namespace itm::inference
