#include <gtest/gtest.h>

#include "../test_scenario.h"
#include "core/workload.h"
#include "inference/activity.h"
#include "inference/temporal.h"
#include "net/ordered.h"

namespace itm::inference {
namespace {

class TemporalAssocTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = core::Scenario::generate(core::tiny_config(555)).release();
    core::Workload workload(*scenario_, {}, 9);
    scan::CacheProbeConfig config;
    config.record_sweeps = true;
    prober_ = new scan::CacheProber(scenario_->dns(), scenario_->catalog(),
                                    config, &scenario_->topo().addresses);
    const auto routable = scenario_->topo().addresses.routable_slash24s();
    for (std::size_t hour = 0; hour < 24; hour += 2) {
      const SimTime at = hour * kSecondsPerHour + 1800;
      workload.advance_to(at);
      prober_->sweep(routable, at);
    }
    workload.finish();
  }
  static void TearDownTestSuite() {
    delete prober_;
    delete scenario_;
  }

  static core::Scenario* scenario_;
  static scan::CacheProber* prober_;
};

core::Scenario* TemporalAssocTest::scenario_ = nullptr;
scan::CacheProber* TemporalAssocTest::prober_ = nullptr;

TEST_F(TemporalAssocTest, SweepRecordsMatchSweepCount) {
  EXPECT_EQ(prober_->sweep_records().size(), 12u);
  for (const auto& record : prober_->sweep_records()) {
    for (const auto& [asn, counts] : net::sorted_items(record.by_as)) {
      EXPECT_LE(counts.first, counts.second);  // hits <= probes
    }
  }
}

TEST_F(TemporalAssocTest, SeriesAlignedWithSweeps) {
  const auto activity = temporal_activity(*prober_);
  EXPECT_EQ(activity.sweep_times.size(), 12u);
  for (const auto& [asn, series] : net::sorted_items(activity.series)) {
    EXPECT_EQ(series.size(), 12u);
  }
  EXPECT_FALSE(activity.series.empty());
}

TEST_F(TemporalAssocTest, DiurnalShapeRecovered) {
  const auto activity = temporal_activity(*prober_);
  const auto score = score_temporal(activity, scenario_->topo());
  EXPECT_GT(score.ases_scored, 5u);
  EXPECT_GT(score.mean_shape_correlation, 0.4);
  EXPECT_LT(score.mean_peak_error_h, 4.0);
}

TEST_F(TemporalAssocTest, PeakHourOnlyWithSignal) {
  const auto activity = temporal_activity(*prober_);
  // An AS absent from the series yields nullopt.
  EXPECT_FALSE(
      estimated_peak_hour_utc(activity, scenario_->topo().tier1s.front())
          .has_value());
}

TEST_F(TemporalAssocTest, AssociationsRecorded) {
  const auto& assoc = scenario_->dns().resolver_associations();
  EXPECT_FALSE(assoc.empty());
  // Associated client ASes are access networks.
  for (const auto& [resolver, clients] : assoc) {
    for (const auto& [asn, count] : clients) {
      EXPECT_EQ(scenario_->topo().graph.info(Asn(asn)).type,
                topology::AsType::kAccess);
      EXPECT_GT(count, 0u);
    }
  }
}

TEST_F(TemporalAssocTest, AssociationsImproveRootCoverage) {
  const auto crawl = scan::crawl_root_logs(scenario_->dns(),
                                           scenario_->topo().addresses);
  const auto plain = activity_from_root_logs(crawl);
  const auto refined = activity_from_root_logs_with_associations(
      scenario_->dns(), scenario_->topo().addresses);

  // Count access ASes detected by each.
  const auto count_access = [&](const ActivityEstimate& est) {
    std::size_t n = 0;
    for (const auto& [asn, score] : net::sorted_items(est.by_as)) {
      if (score > 0 && scenario_->topo().graph.info(Asn(asn)).type ==
                           topology::AsType::kAccess) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GT(count_access(refined), count_access(plain));
  // And the refined rank agreement is at least as good.
  const auto plain_score =
      score_activity(plain, scenario_->users(), scenario_->topo());
  const auto refined_score =
      score_activity(refined, scenario_->users(), scenario_->topo());
  EXPECT_GE(refined_score.compared, plain_score.compared);
}

}  // namespace
}  // namespace itm::inference
