#include "inference/activity.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"
#include "core/workload.h"

namespace itm::inference {
namespace {

TEST(Activity, CombinePrefersGeometricMeanOnOverlap) {
  ActivityEstimate a, b;
  a.by_as = {{1, 4.0}, {2, 1.0}};
  b.by_as = {{1, 1.0}, {3, 9.0}};
  const auto combined = combine_activity(a, b);
  // After per-signal mean normalization (a-mean 2.5, b-mean 5):
  // asn1: sqrt((4/2.5)*(1/5)), asn2: 1/2.5 only, asn3: 9/5 only.
  EXPECT_NEAR(combined.score(Asn(1)), std::sqrt(1.6 * 0.2), 1e-9);
  EXPECT_NEAR(combined.score(Asn(2)), 0.4, 1e-9);
  EXPECT_NEAR(combined.score(Asn(3)), 1.8, 1e-9);
  EXPECT_DOUBLE_EQ(combined.score(Asn(9)), 0.0);
}

TEST(Activity, CombineWithEmptySignalKeepsOther) {
  ActivityEstimate a, empty;
  a.by_as = {{1, 2.0}, {2, 4.0}};
  const auto combined = combine_activity(a, empty);
  EXPECT_GT(combined.score(Asn(1)), 0.0);
  EXPECT_GT(combined.score(Asn(2)), combined.score(Asn(1)));
}

TEST(Activity, EndToEndRankAgreement) {
  auto scenario = core::Scenario::generate(core::tiny_config(91));
  core::Workload workload(*scenario, core::WorkloadConfig{}, 4);
  scan::CacheProber prober(scenario->dns(), scenario->catalog());
  const auto routable = scenario->topo().addresses.routable_slash24s();
  for (int round = 0; round < 10; ++round) {
    const SimTime at = (round + 1) * kSecondsPerDay / 11;
    workload.advance_to(at);
    prober.sweep(routable, at);
  }
  workload.finish();
  const auto crawl =
      scan::crawl_root_logs(scenario->dns(), scenario->topo().addresses);

  const auto cache_est =
      activity_from_cache_hits(prober, scenario->topo().addresses);
  const auto root_est = activity_from_root_logs(crawl);
  const auto combined = combine_activity(cache_est, root_est);

  const auto cache_score =
      score_activity(cache_est, scenario->users(), scenario->topo());
  const auto root_score =
      score_activity(root_est, scenario->users(), scenario->topo());
  const auto combined_score =
      score_activity(combined, scenario->users(), scenario->topo());

  EXPECT_GT(cache_score.compared, 5u);
  EXPECT_GT(root_score.compared, 5u);
  EXPECT_GT(cache_score.spearman, 0.3);
  EXPECT_GT(root_score.spearman, 0.5);
  EXPECT_GT(combined_score.spearman, 0.5);
  EXPECT_GT(combined_score.kendall_tau, 0.3);
}

}  // namespace
}  // namespace itm::inference
