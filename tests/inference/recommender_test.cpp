#include "inference/recommender.h"

#include <gtest/gtest.h>

#include "../test_scenario.h"
#include "routing/prediction.h"
#include "routing/public_view.h"

namespace itm::inference {
namespace {

using itm::testing::shared_tiny_scenario;

// Builds the collector view and observed graph once for the fixture.
class RecommenderTest : public ::testing::Test {
 protected:
  RecommenderTest() {
    auto& s = shared_tiny_scenario();
    const routing::Bgp bgp(s.topo().graph);
    std::vector<Asn> feeders = s.topo().tier1s;
    feeders.insert(feeders.end(), s.topo().transits.begin(),
                   s.topo().transits.end());
    std::vector<Asn> dests;
    for (const auto& as : s.topo().graph.ases()) dests.push_back(as.asn);
    view_ = routing::collect_public_view(bgp, feeders, dests);
    observed_ = routing::observed_subgraph(s.topo().graph, view_);
  }

  routing::PublicView view_;
  topology::AsGraph observed_;
};

TEST_F(RecommenderTest, RecommendsOnlyColocatedUnobservedPairs) {
  auto& s = shared_tiny_scenario();
  const PeeringRecommender rec(s.peeringdb(), observed_);
  const auto candidates = rec.recommend(100);
  for (const auto& c : candidates) {
    EXPECT_FALSE(observed_.adjacent(c.a, c.b));
    EXPECT_NE(s.peeringdb().lookup(c.a), nullptr);
    EXPECT_NE(s.peeringdb().lookup(c.b), nullptr);
    EXPECT_GT(c.score, 0.0);
  }
  // Scores are sorted descending.
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].score, candidates[i].score);
  }
}

TEST_F(RecommenderTest, BeatsRandomBaseline) {
  auto& s = shared_tiny_scenario();
  const PeeringRecommender rec(s.peeringdb(), observed_);
  const auto candidates = rec.recommend(60);
  ASSERT_FALSE(candidates.empty());
  const auto score = score_recommendations(candidates, s.topo().graph, view_);
  EXPECT_GT(score.missing_total, 0u);

  // Random baseline: precision of uniformly chosen co-located unobserved
  // pairs equals the base rate of true links among them.
  std::size_t universe = 0, universe_links = 0;
  const auto& pdb = s.peeringdb();
  for (const auto& ra : pdb.records()) {
    for (const auto& rb : pdb.records()) {
      if (ra.asn >= rb.asn) continue;
      bool shared = false;
      for (const auto fa : ra.facilities) {
        for (const auto fb : rb.facilities) {
          if (fa == fb) shared = true;
        }
      }
      if (!shared || observed_.adjacent(ra.asn, rb.asn)) continue;
      ++universe;
      if (s.topo().graph.adjacent(ra.asn, rb.asn)) ++universe_links;
    }
  }
  ASSERT_GT(universe, 0u);
  const double base_rate =
      static_cast<double>(universe_links) / static_cast<double>(universe);
  EXPECT_GT(score.precision(), base_rate * 1.3)
      << "precision " << score.precision() << " vs base " << base_rate;
}

TEST_F(RecommenderTest, ScoreZeroForUnregisteredOrNonColocated) {
  auto& s = shared_tiny_scenario();
  const PeeringRecommender rec(s.peeringdb(), observed_);
  // Find an unregistered AS.
  for (const auto& as : s.topo().graph.ases()) {
    if (s.peeringdb().lookup(as.asn) == nullptr) {
      EXPECT_DOUBLE_EQ(rec.score(as.asn, s.topo().hypergiants.front()), 0.0);
      break;
    }
  }
}

TEST_F(RecommenderTest, AugmentGraphAddsCandidatesAsPeerings) {
  auto& s = shared_tiny_scenario();
  const PeeringRecommender rec(s.peeringdb(), observed_);
  const auto candidates = rec.recommend(20);
  ASSERT_FALSE(candidates.empty());
  const auto augmented = augment_graph(observed_, candidates);
  EXPECT_EQ(augmented.size(), observed_.size());
  EXPECT_GE(augmented.links().size(),
            observed_.links().size() + candidates.size() - 3);
  for (const auto& c : candidates) {
    EXPECT_EQ(augmented.relation(c.a, c.b), topology::Relation::kPeer);
  }
}

TEST_F(RecommenderTest, AugmentedGraphImprovesPathPrediction) {
  auto& s = shared_tiny_scenario();
  const PeeringRecommender rec(s.peeringdb(), observed_);
  // Only the highest-scored candidates: augmentation helps when precision
  // is high; flooding the graph with low-score guesses can reroute
  // predictions wrongly (BGP prefers peer routes).
  const auto candidates = rec.recommend(40);
  const auto augmented = augment_graph(observed_, candidates);
  const auto before = routing::evaluate_prediction(
      s.topo().graph, observed_, view_, s.topo().accesses,
      s.topo().hypergiants);
  const auto after = routing::evaluate_prediction(
      s.topo().graph, augmented, view_, s.topo().accesses,
      s.topo().hypergiants);
  EXPECT_GE(after.exact_rate(), before.exact_rate());
}

}  // namespace
}  // namespace itm::inference
