// APNIC-style per-AS Internet user estimates.
//
// APNIC Labs estimates network populations from ad-impression sampling. The
// estimates are AS-granular (too coarse for many ITM use cases), noisy, and
// unvalidated — the paper uses them only as a broad comparator (Figures 1b
// and 2). This module reproduces that data product from the ground truth:
// a sampled, noised, thresholded per-AS user count.
#pragma once

#include <unordered_map>

#include "net/ids.h"
#include "net/rng.h"
#include "topology/generator.h"
#include "traffic/user_base.h"

namespace itm::apnic {

struct ApnicConfig {
  // Fraction of users the ad campaign samples.
  double sample_rate = 0.02;
  // Multiplicative lognormal noise sigma on per-AS estimates.
  double noise_sigma = 0.25;
  // ASes with fewer sampled users than this are not reported.
  double min_sampled = 3.0;
  // Systematic scale bias of the population model.
  double scale_bias = 1.08;
};

class ApnicEstimates {
 public:
  static ApnicEstimates build(const topology::Topology& topo,
                              const traffic::UserBase& users,
                              const ApnicConfig& config, Rng& rng);

  // Estimated users of an AS (0 when APNIC has no data for it).
  [[nodiscard]] double users(Asn asn) const;
  [[nodiscard]] bool covered(Asn asn) const { return users(asn) > 0; }

  [[nodiscard]] const std::unordered_map<std::uint32_t, double>& by_as()
      const {
    return by_as_;
  }

  // Estimated users summed over a country's ASes.
  [[nodiscard]] double country_users(const topology::Topology& topo,
                                     CountryId country) const;

  [[nodiscard]] double total_users() const { return total_; }

 private:
  std::unordered_map<std::uint32_t, double> by_as_;
  double total_ = 0.0;
};

}  // namespace itm::apnic
