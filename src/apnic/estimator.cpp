#include "apnic/estimator.h"

#include "net/ordered.h"

namespace itm::apnic {

ApnicEstimates ApnicEstimates::build(const topology::Topology& topo,
                                     const traffic::UserBase& users,
                                     const ApnicConfig& config, Rng& rng) {
  ApnicEstimates est;
  for (const Asn asn : topo.accesses) {
    const double truth = users.as_users(asn);
    if (truth <= 0) continue;
    const double sampled =
        static_cast<double>(rng.poisson(truth * config.sample_rate));
    if (sampled < config.min_sampled) continue;
    const double estimate = sampled / config.sample_rate *
                            config.scale_bias *
                            rng.lognormal(0.0, config.noise_sigma);
    est.by_as_.emplace(asn.value(), estimate);
    est.total_ += estimate;
  }
  return est;
}

double ApnicEstimates::users(Asn asn) const {
  const auto it = by_as_.find(asn.value());
  return it == by_as_.end() ? 0.0 : it->second;
}

double ApnicEstimates::country_users(const topology::Topology& topo,
                                     CountryId country) const {
  double total = 0;
  // Key-sorted iteration: float accumulation order must not depend on hash
  // layout (itm-lint: nondet-iteration).
  for (const auto& [asn, estimate] : net::sorted_items(by_as_)) {
    if (topo.graph.info(Asn(asn)).country == country) total += estimate;
  }
  return total;
}

}  // namespace itm::apnic
