// Ground-truth traffic matrix: expected daily bytes between every user /24
// and every service, attributed to serving PoPs, hosting ASes and AS-level
// links.
//
// This is the quantity the Internet traffic map estimates; the benchmarks
// score every inference technique against it. Demand for a (prefix, service)
// pair is activity x popularity; the serving side comes from ClientMapper,
// including the resolver-dependent effective location for DNS-redirected
// services (ECS vs. resolver-located answers) and the off-net hit/miss byte
// split.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cdn/mapping.h"
#include "cdn/services.h"
#include "traffic/user_base.h"

namespace itm::traffic {

struct DemandConfig {
  // Bytes per unit of (activity x popularity) per day; sets absolute scale.
  double bytes_scale = 1e9;
};

class TrafficMatrix {
 public:
  // `public_dns_pop_cities`: locations of the public resolver's PoPs (used
  // as the authoritative-visible location for non-ECS services resolved via
  // public DNS).
  static TrafficMatrix build(const topology::Topology& topo,
                             const UserBase& users,
                             const cdn::ServiceCatalog& catalog,
                             const cdn::ClientMapper& mapper,
                             std::span<const CityId> public_dns_pop_cities,
                             const DemandConfig& config = {});

  [[nodiscard]] double total_bytes() const { return total_bytes_; }

  // Per client /24 (indexed in the same order as UserBase::all()).
  [[nodiscard]] std::span<const double> prefix_bytes() const {
    return prefix_bytes_;
  }
  // Bytes of one hypergiant's traffic into a client prefix.
  [[nodiscard]] double prefix_hypergiant_bytes(std::size_t prefix_index,
                                               HypergiantId hg) const {
    return prefix_hg_bytes_[prefix_index * num_hypergiants_ + hg.value()];
  }
  [[nodiscard]] double hypergiant_bytes(HypergiantId hg) const {
    return hg_bytes_[hg.value()];
  }
  [[nodiscard]] double service_bytes(ServiceId service) const {
    return service_bytes_[service.value()];
  }
  [[nodiscard]] double as_client_bytes(Asn asn) const {
    return as_client_bytes_[asn.value()];
  }
  [[nodiscard]] double as_service_bytes(Asn asn, ServiceId service) const {
    return as_service_bytes_[asn.value() * num_services_ + service.value()];
  }
  // Bytes served from off-net caches, per hypergiant.
  [[nodiscard]] double offnet_bytes(HypergiantId hg) const {
    return offnet_bytes_[hg.value()];
  }
  // Bytes crossing each AS-level link (indexed by AsGraph link index).
  [[nodiscard]] std::span<const double> link_bytes() const {
    return link_bytes_;
  }
  // Bytes by AS-path length (histogram index = hops; intra-AS traffic,
  // e.g. off-net hits, lands in bucket 0).
  [[nodiscard]] std::span<const double> bytes_by_hops() const {
    return bytes_by_hops_;
  }
  // Bytes landing on each serving PoP.
  [[nodiscard]] std::span<const double> pop_bytes() const {
    return pop_bytes_;
  }

  // Bytes whose client had no route to the serving AS (0 on intact
  // topologies; nonzero in what-if scenarios with cut links).
  [[nodiscard]] double unreachable_bytes() const { return unreachable_bytes_; }

  [[nodiscard]] std::size_t num_services() const { return num_services_; }

 private:
  std::size_t num_services_ = 0;
  std::size_t num_hypergiants_ = 0;
  double total_bytes_ = 0.0;
  double unreachable_bytes_ = 0.0;
  std::vector<double> prefix_bytes_;
  std::vector<double> prefix_hg_bytes_;
  std::vector<double> hg_bytes_;
  std::vector<double> service_bytes_;
  std::vector<double> as_client_bytes_;
  std::vector<double> as_service_bytes_;
  std::vector<double> offnet_bytes_;
  std::vector<double> link_bytes_;
  std::vector<double> bytes_by_hops_;
  std::vector<double> pop_bytes_;
};

}  // namespace itm::traffic
