#include "traffic/demand.h"

#include <cassert>
#include <optional>
#include <limits>

#include "net/geo.h"
#include "routing/bgp.h"

namespace itm::traffic {

namespace {

// Nearest public-resolver PoP city to a client city (anycast approximation).
CityId nearest_pop_city(const topology::Geography& geo, CityId client,
                        std::span<const CityId> pop_cities) {
  assert(!pop_cities.empty());
  CityId best = pop_cities.front();
  double best_km = std::numeric_limits<double>::max();
  for (const CityId c : pop_cities) {
    const double km = geo.distance_km(c, client);
    if (km < best_km) {
      best_km = km;
      best = c;
    }
  }
  return best;
}

}  // namespace

TrafficMatrix TrafficMatrix::build(const topology::Topology& topo,
                                   const UserBase& users,
                                   const cdn::ServiceCatalog& catalog,
                                   const cdn::ClientMapper& mapper,
                                   std::span<const CityId> public_dns_pop_cities,
                                   const DemandConfig& config) {
  TrafficMatrix tm;
  const auto& graph = topo.graph;
  const std::size_t num_as = graph.size();
  tm.num_services_ = catalog.size();
  tm.num_hypergiants_ = mapper.deployment().hypergiants().size();
  tm.prefix_bytes_.assign(users.size(), 0.0);
  tm.prefix_hg_bytes_.assign(users.size() * tm.num_hypergiants_, 0.0);
  tm.hg_bytes_.assign(tm.num_hypergiants_, 0.0);
  tm.service_bytes_.assign(tm.num_services_, 0.0);
  tm.as_client_bytes_.assign(num_as, 0.0);
  tm.as_service_bytes_.assign(num_as * tm.num_services_, 0.0);
  tm.offnet_bytes_.assign(tm.num_hypergiants_, 0.0);
  tm.link_bytes_.assign(graph.links().size(), 0.0);
  tm.bytes_by_hops_.assign(24, 0.0);
  tm.pop_bytes_.assign(mapper.deployment().pops().size(), 0.0);

  const routing::Bgp bgp(graph);
  // Route tables toward every distinct serving AS, built on demand.
  std::unordered_map<std::uint32_t, routing::RouteTable> tables;
  const auto table_for = [&](Asn server_as) -> const routing::RouteTable& {
    auto it = tables.find(server_as.value());
    if (it == tables.end()) {
      it = tables.emplace(server_as.value(), bgp.routes_to(server_as)).first;
    }
    return it->second;
  };
  // Map from (smaller asn, larger asn) handled via neighbor scan; paths are
  // short so a linear scan per hop is fine.
  const auto link_index_between = [&](Asn a, Asn b) -> std::uint32_t {
    for (const auto& nb : graph.neighbors(a)) {
      if (nb.asn == b) return nb.link_index;
    }
    assert(false && "consecutive path ASes must be adjacent");
    return 0;
  };

  // Memoized per-(service, effective city) DNS sites are already cheap via
  // ClientMapper's internal structures; the expensive part is path walking,
  // memoized per (client_as, server_as).
  struct PathInfo {
    std::vector<std::uint32_t> links;
    std::uint16_t hops = 0;
    bool reachable = false;
  };
  std::unordered_map<std::uint64_t, PathInfo> path_cache;
  static const PathInfo kSelfPath{{}, 0, true};
  const auto path_between = [&](Asn client, Asn server) -> const PathInfo& {
    // Intra-AS traffic (off-net cache hits) never needs a route table.
    if (client == server) return kSelfPath;
    const std::uint64_t key =
        (std::uint64_t{client.value()} << 32) | server.value();
    auto it = path_cache.find(key);
    if (it != path_cache.end()) return it->second;
    PathInfo info;
    const auto& table = table_for(server);
    if (table.at(client).reachable()) {
      const auto path = table.path_from(client);
      info.reachable = true;
      info.hops = static_cast<std::uint16_t>(path.size() - 1);
      info.links.reserve(info.hops);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        info.links.push_back(link_index_between(path[i], path[i + 1]));
      }
    }
    return path_cache.emplace(key, std::move(info)).first->second;
  };

  const auto account = [&](std::size_t prefix_index, const UserPrefix& up,
                           const cdn::Service& service,
                           const cdn::MappingResult& result, double bytes) {
    if (bytes <= 0) return;
    tm.total_bytes_ += bytes;
    tm.prefix_bytes_[prefix_index] += bytes;
    tm.service_bytes_[service.id.value()] += bytes;
    tm.as_client_bytes_[up.asn.value()] += bytes;
    tm.as_service_bytes_[up.asn.value() * tm.num_services_ +
                         service.id.value()] += bytes;
    if (service.hypergiant) {
      const auto hg = service.hypergiant->value();
      tm.hg_bytes_[hg] += bytes;
      tm.prefix_hg_bytes_[prefix_index * tm.num_hypergiants_ + hg] += bytes;
      if (result.offnet) tm.offnet_bytes_[hg] += bytes;
    }
    if (result.pop) tm.pop_bytes_[result.pop->value()] += bytes;
    const auto& path = path_between(up.asn, result.server_as);
    if (!path.reachable) tm.unreachable_bytes_ += bytes;
    if (path.reachable) {
      tm.bytes_by_hops_[std::min<std::size_t>(path.hops,
                                              tm.bytes_by_hops_.size() - 1)] +=
          bytes;
      for (const std::uint32_t link : path.links) {
        tm.link_bytes_[link] += bytes;
      }
    }
  };

  const auto& geo = topo.geography;
  // The nearest public PoP depends only on the client's city; memoize.
  std::vector<std::optional<CityId>> pop_city_cache(geo.cities().size());
  const auto nonecs_city_of = [&](CityId client_city) {
    if (public_dns_pop_cities.empty()) return client_city;
    auto& slot = pop_city_cache[client_city.value()];
    if (!slot) {
      slot = nearest_pop_city(geo, client_city, public_dns_pop_cities);
    }
    return *slot;
  };
  const auto prefixes = users.all();
  for (std::size_t pi = 0; pi < prefixes.size(); ++pi) {
    const UserPrefix& up = prefixes[pi];
    // Approximation: the ISP-resolver path answers by the client AS's home
    // city even when the resolver is outsourced to a provider (providers
    // are in-country, usually the same main city).
    const CityId isp_resolver_city = graph.info(up.asn).home_city;
    const CityId public_nonecs_city = nonecs_city_of(up.city);
    const std::uint64_t base_hash = up.prefix.base().bits();

    for (const auto& service : catalog.services()) {
      const double bytes =
          up.activity * service.popularity * config.bytes_scale;
      if (bytes <= 0) continue;

      if (service.redirection != cdn::RedirectionKind::kDnsRedirection) {
        const auto result = mapper.map(service, up.asn, up.city, up.city,
                                       base_hash ^ service.id.value());
        if (result.offnet && service.hypergiant) {
          const double hit = mapper.deployment()
                                 .hypergiant(*service.hypergiant)
                                 .offnet_hit_ratio;
          account(pi, up, service, result, bytes * hit);
          const auto fallback =
              mapper.map(service, up.asn, up.city, up.city,
                         base_hash ^ service.id.value(), /*allow_offnet=*/false);
          account(pi, up, service, fallback, bytes * (1.0 - hit));
        } else {
          account(pi, up, service, result, bytes);
        }
        continue;
      }

      // DNS-redirected: split by resolver population.
      const double shares[2] = {1.0 - up.public_dns_share,
                                up.public_dns_share};
      const CityId effective[2] = {
          // ISP resolver: authoritative sees the resolver's city.
          isp_resolver_city,
          // Public resolver: the client's own city with ECS, else the PoP.
          service.supports_ecs ? up.city : public_nonecs_city};
      for (int r = 0; r < 2; ++r) {
        const double part = bytes * shares[r];
        if (part <= 0) continue;
        // Off-net caches are handed out by DNS only when the authoritative
        // can identify the client's ISP: always for the ISP-resolver path
        // (resolver address), but on the public path only with ECS.
        const bool offnet_possible = r == 0 || service.supports_ecs;
        const auto result = mapper.map(service, up.asn, up.city, effective[r],
                                       base_hash ^ service.id.value(),
                                       offnet_possible);
        if (result.offnet && service.hypergiant) {
          const double hit = mapper.deployment()
                                 .hypergiant(*service.hypergiant)
                                 .offnet_hit_ratio;
          account(pi, up, service, result, part * hit);
          const auto fallback = mapper.map(service, up.asn, up.city,
                                           effective[r],
                                           base_hash ^ service.id.value(),
                                           /*allow_offnet=*/false);
          account(pi, up, service, fallback, part * (1.0 - hit));
        } else {
          account(pi, up, service, result, part);
        }
      }
    }
  }
  return tm;
}

}  // namespace itm::traffic
