#include "traffic/user_base.h"

#include <algorithm>
#include <cmath>

namespace itm::traffic {

UserBase UserBase::build(const topology::Topology& topo,
                         const UserBaseConfig& config, Rng& rng) {
  UserBase ub;
  const auto& graph = topo.graph;
  const auto& geo = topo.geography;
  ub.as_users_.assign(graph.size(), 0.0);
  ub.as_activity_.assign(graph.size(), 0.0);

  // Country-level public-DNS adoption (clamped logit-ish spread).
  ub.country_public_dns_.reserve(geo.countries().size());
  for (std::size_t c = 0; c < geo.countries().size(); ++c) {
    ub.country_public_dns_.push_back(std::clamp(
        config.public_dns_mean +
            rng.normal(0.0, config.public_dns_country_spread),
        0.05, 0.8));
  }

  for (const Asn asn : topo.accesses) {
    // Scalar reads through the SoA table: the per-AS loop touches only the
    // columns it needs instead of whole AsInfo structs.
    const topology::AsTable& table = topo.table;
    const auto& addressing = topo.addresses.of(asn);
    const double country_adoption =
        ub.country_public_dns_[table.country(asn).value()];

    // Users cluster in the AS's presence cities, weighted by city size.
    const auto presence = table.presence_cities(asn);
    std::vector<double> city_weights;
    city_weights.reserve(presence.size());
    for (const CityId city : presence) {
      city_weights.push_back(geo.city(city).population_weight + 0.01);
    }

    const double density = std::pow(std::max(0.05, table.size_factor(asn)),
                                    config.density_exponent);
    for (std::uint32_t i = 0; i < addressing.user_slash24s; ++i) {
      UserPrefix up;
      up.prefix = topo.addresses.user_slash24(asn, i);
      up.asn = asn;
      up.city = presence[rng.weighted_index(city_weights)];
      up.users = std::min(
          250.0,
          density * rng.lognormal(config.users_mu, config.users_sigma));
      up.activity =
          up.users * rng.lognormal(0.0, config.intensity_sigma);
      up.public_dns_share = std::clamp(
          country_adoption + rng.normal(0.0, 0.05), 0.0, 0.95);
      up.chromium_share = std::clamp(
          config.chromium_mean + rng.normal(0.0, config.chromium_spread),
          0.2, 0.95);

      ub.total_users_ += up.users;
      ub.total_activity_ += up.activity;
      ub.as_users_[asn.value()] += up.users;
      ub.as_activity_[asn.value()] += up.activity;
      ub.prefixes_.push_back(up);
    }
  }
  ub.finalize_index();
  return ub;
}

UserBase UserBase::without_as(Asn excluded) const {
  UserBase out;
  out.as_users_.assign(as_users_.size(), 0.0);
  out.as_activity_.assign(as_activity_.size(), 0.0);
  out.country_public_dns_ = country_public_dns_;
  for (const auto& up : prefixes_) {
    if (up.asn == excluded) continue;
    out.prefixes_.push_back(up);
    out.total_users_ += up.users;
    out.total_activity_ += up.activity;
    out.as_users_[up.asn.value()] += up.users;
    out.as_activity_[up.asn.value()] += up.activity;
  }
  out.finalize_index();
  return out;
}

void UserBase::finalize_index() {
  index_.clear();
  index_.reserve(prefixes_.size());
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    index_.emplace_back(prefixes_[i].prefix.base().bits(),
                        static_cast<std::uint32_t>(i));
  }
  std::sort(index_.begin(), index_.end());
}

const UserPrefix* UserBase::find(const Ipv4Prefix& slash24) const {
  // User prefixes are exactly the /24s the generator allocated; any other
  // mask length cannot be a user prefix.
  if (slash24.length() != 24) return nullptr;
  const auto it = std::lower_bound(
      index_.begin(), index_.end(),
      std::pair<std::uint32_t, std::uint32_t>{slash24.base().bits(), 0});
  if (it == index_.end() || it->first != slash24.base().bits()) return nullptr;
  return &prefixes_[it->second];
}

std::size_t UserBase::memory_bytes() const {
  return prefixes_.capacity() * sizeof(UserPrefix) +
         index_.capacity() * sizeof(index_[0]) +
         (as_users_.capacity() + as_activity_.capacity() +
          country_public_dns_.capacity()) *
             sizeof(double);
}

}  // namespace itm::traffic
