// Ground-truth user population: who is behind every user /24.
//
// This is the hidden variable every measurement technique in the paper tries
// to recover: which prefixes host users, how many, where they are, and how
// active they are. It also carries per-prefix behavioral attributes that
// bias measurements in realistic ways (public-DNS adoption varies by
// country, Chromium browser share varies by prefix).
#pragma once

#include <span>
#include <vector>

#include "net/ids.h"
#include "net/ipv4.h"
#include "net/rng.h"
#include "topology/generator.h"

namespace itm::traffic {

struct UserPrefix {
  Ipv4Prefix prefix;
  Asn asn{0};
  CityId city{0};
  // Number of users in the /24.
  double users = 0.0;
  // Relative traffic-activity weight (users x per-capita intensity).
  double activity = 0.0;
  // Fraction of the prefix's DNS queries sent to the public resolver.
  double public_dns_share = 0.0;
  // Fraction of browser sessions that are Chromium-based.
  double chromium_share = 0.0;
};

struct UserBaseConfig {
  // Lognormal parameters for users per /24 (median ~= e^mu).
  double users_mu = 4.6;  // ~100 users median
  double users_sigma = 0.45;
  // Larger ISPs utilize their address space more densely (CGNAT, tighter
  // allocation): per-/24 users scale with size_factor^density_exponent.
  // This is what makes per-AS cache-hit *rates* track subscriber counts
  // (Figure 2), not just hit counts.
  double density_exponent = 0.75;
  // Lognormal sigma of per-capita activity intensity.
  double intensity_sigma = 0.35;
  // Mean public-DNS adoption; actual adoption varies by country.
  double public_dns_mean = 0.32;
  double public_dns_country_spread = 0.15;
  // Mean Chromium share and per-prefix spread.
  double chromium_mean = 0.7;
  double chromium_spread = 0.1;
};

class UserBase {
 public:
  static UserBase build(const topology::Topology& topo,
                        const UserBaseConfig& config, Rng& rng);

  [[nodiscard]] std::span<const UserPrefix> all() const { return prefixes_; }
  [[nodiscard]] std::size_t size() const { return prefixes_.size(); }

  // Lookup by exact /24 (nullptr when the prefix hosts no users).
  [[nodiscard]] const UserPrefix* find(const Ipv4Prefix& slash24) const;

  [[nodiscard]] double total_users() const { return total_users_; }
  [[nodiscard]] double total_activity() const { return total_activity_; }

  // Per-AS aggregates (zero for ASes without users).
  [[nodiscard]] double as_users(Asn asn) const {
    return as_users_[asn.value()];
  }
  [[nodiscard]] double as_activity(Asn asn) const {
    return as_activity_[asn.value()];
  }

  // Country-level public DNS adoption actually generated.
  [[nodiscard]] double country_public_dns(CountryId country) const {
    return country_public_dns_.at(country.value());
  }

  // A copy with every prefix of `excluded` removed (aggregates rebuilt);
  // used for what-if analysis. All other prefixes keep their exact values.
  [[nodiscard]] UserBase without_as(Asn excluded) const;

  // Heap bytes of the prefix rows, flat index and per-AS aggregates.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  // Rebuilds index_ from prefixes_ (call after the prefix list stops
  // changing).
  void finalize_index();

  std::vector<UserPrefix> prefixes_;
  // Flat /24-base -> prefixes_ slot, sorted by base for binary search: one
  // contiguous allocation instead of a node-per-entry hash map (user /24s
  // are the largest substrate collection; DESIGN.md decision #10).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> index_;
  std::vector<double> as_users_;
  std::vector<double> as_activity_;
  std::vector<double> country_public_dns_;
  double total_users_ = 0.0;
  double total_activity_ = 0.0;
};

}  // namespace itm::traffic
