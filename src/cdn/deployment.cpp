#include "cdn/deployment.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "net/geo.h"

namespace itm::cdn {

using topology::AsType;
using topology::Topology;

Deployment Deployment::build(const Topology& topo,
                             const DeploymentConfig& config, Rng& rng) {
  Deployment d;
  const auto& graph = topo.graph;
  const auto& plan = topo.addresses;

  // Hard capacity checks (asserts vanish in release builds): every off-net
  // deployment strides 16 addresses per hypergiant inside the host's first
  // misc /24.
  if (config.servers_per_offnet > 16 ||
      2 + config.offnet_heavy_hypergiants * 16 > 256) {
    throw std::invalid_argument(
        "DeploymentConfig: servers_per_offnet must be <= 16 and "
        "offnet_heavy_hypergiants <= 15 (off-net /24 capacity)");
  }

  for (std::size_t gi = 0; gi < topo.hypergiants.size(); ++gi) {
    const Asn asn = topo.hypergiants[gi];
    const auto& info = graph.info(asn);
    Hypergiant hg;
    hg.id = HypergiantId(static_cast<std::uint32_t>(gi));
    hg.asn = asn;
    hg.name = info.name;
    const bool deploys_offnets = gi < config.offnet_heavy_hypergiants;
    hg.offnet_hit_ratio = deploys_offnets ? config.offnet_hit_ratio : 0.0;

    // On-net PoPs in every presence city, front ends from the hypergiant's
    // content /24s (round-robin across its range).
    std::uint32_t addr_cursor = 0;
    const auto& addressing = plan.of(asn);
    const auto next_onnet_address = [&]() {
      const std::uint32_t slot = addr_cursor++;
      const std::uint32_t block = slot / 200;  // keep clear of .0/.255 zone
      const std::uint32_t offset = 2 + slot % 200;
      // Trailing content /24s are reserved for service VIPs (services.cpp).
      if (block + kVipReservedSlash24s >= addressing.content_slash24s) {
        throw std::length_error(
            "hypergiant content space exhausted; raise "
            "content_24s_per_hypergiant");
      }
      return plan.content_slash24(asn, block).address_at(offset);
    };
    for (const CityId city : info.presence_cities) {
      Pop pop;
      pop.id = PopId(static_cast<std::uint32_t>(d.pops_.size()));
      pop.owner = hg.id;
      pop.asn = asn;
      pop.city = city;
      pop.offnet = false;
      hg.pops.push_back(pop.id);
      const std::size_t servers =
          std::max<std::size_t>(1, static_cast<std::size_t>(
              config.servers_per_pop * info.size_factor / 4.0));
      for (std::size_t s = 0; s < servers; ++s) {
        FrontEnd fe;
        fe.id = ServerId(static_cast<std::uint32_t>(d.front_ends_.size()));
        fe.owner = hg.id;
        fe.pop = pop.id;
        fe.address = next_onnet_address();
        d.front_ends_.push_back(fe);
      }
      d.pops_.push_back(pop);
    }

    // Off-net caches inside eyeballs, probability growing with eyeball size.
    if (deploys_offnets) {
      for (const Asn access : topo.accesses) {
        const auto& access_info = graph.info(access);
        const double p = std::clamp(
            config.offnet_base * (0.3 + access_info.size_factor), 0.0, 0.95);
        if (!rng.bernoulli(p)) continue;
        Pop pop;
        pop.id = PopId(static_cast<std::uint32_t>(d.pops_.size()));
        pop.owner = hg.id;
        pop.asn = access;
        pop.city = access_info.home_city;
        pop.offnet = true;
        hg.pops.push_back(pop.id);
        const auto& host_addressing = plan.of(access);
        for (std::size_t s = 0; s < config.servers_per_offnet; ++s) {
          FrontEnd fe;
          fe.id = ServerId(static_cast<std::uint32_t>(d.front_ends_.size()));
          fe.owner = hg.id;
          fe.pop = pop.id;
          // Off-net appliances live in the host's misc space; stride by
          // hypergiant so co-resident deployments do not collide.
          const std::uint32_t offset = static_cast<std::uint32_t>(
              2 + gi * 16 + s);
          assert(host_addressing.misc_slash24s > 0);
          (void)host_addressing;
          fe.address = plan.misc_slash24(access, 0).address_at(offset);
          d.front_ends_.push_back(fe);
        }
        d.pops_.push_back(pop);
      }
    }
    d.hypergiants_.push_back(std::move(hg));
  }
  d.build_indexes();
  return d;
}

void Deployment::build_indexes() {
  pop_front_ends_.assign(pops_.size(), {});
  for (const auto& fe : front_ends_) {
    pop_front_ends_[fe.pop.value()].push_back(fe.address);
  }
  offnet_index_.clear();
  for (const auto& pop : pops_) {
    if (pop.offnet) {
      offnet_index_.emplace(
          (std::uint64_t{pop.owner.value()} << 32) | pop.asn.value(),
          pop.id.value());
    }
  }
}

const Hypergiant* Deployment::by_asn(Asn asn) const {
  for (const auto& hg : hypergiants_) {
    if (hg.asn == asn) return &hg;
  }
  return nullptr;
}

const Pop* Deployment::offnet_in(HypergiantId owner, Asn host_as) const {
  const auto it = offnet_index_.find(
      (std::uint64_t{owner.value()} << 32) | host_as.value());
  return it == offnet_index_.end() ? nullptr : &pops_[it->second];
}

PopId Deployment::nearest_onnet_pop(HypergiantId owner, CityId city,
                                    const topology::Geography& geo) const {
  const auto& hg = hypergiants_[owner.value()];
  PopId best{0};
  double best_km = std::numeric_limits<double>::max();
  for (const PopId pid : hg.pops) {
    const Pop& pop = pops_[pid.value()];
    if (pop.offnet) continue;
    const double km = geo.distance_km(pop.city, city);
    if (km < best_km) {
      best_km = km;
      best = pid;
    }
  }
  assert(best_km < std::numeric_limits<double>::max() &&
         "hypergiant has no on-net PoPs");
  return best;
}

Deployment Deployment::without_as(Asn failed) const {
  Deployment out;
  out.hypergiants_ = hypergiants_;
  for (auto& hg : out.hypergiants_) hg.pops.clear();
  std::vector<std::optional<PopId>> remap(pops_.size());
  for (const auto& pop : pops_) {
    if (pop.asn == failed) continue;
    Pop copy = pop;
    copy.id = PopId(static_cast<std::uint32_t>(out.pops_.size()));
    remap[pop.id.value()] = copy.id;
    out.hypergiants_[copy.owner.value()].pops.push_back(copy.id);
    out.pops_.push_back(copy);
  }
  for (const auto& fe : front_ends_) {
    const auto mapped = remap[fe.pop.value()];
    if (!mapped) continue;
    FrontEnd copy = fe;
    copy.id = ServerId(static_cast<std::uint32_t>(out.front_ends_.size()));
    copy.pop = *mapped;
    out.front_ends_.push_back(copy);
  }
  out.build_indexes();
  return out;
}

std::vector<const FrontEnd*> Deployment::front_ends_of(PopId pop) const {
  std::vector<const FrontEnd*> out;
  for (const auto& fe : front_ends_) {
    if (fe.pop == pop) out.push_back(&fe);
  }
  return out;
}

}  // namespace itm::cdn
