// TLS endpoint inventory: which addresses answer TLS, and with which
// certificates.
//
// This is the ground truth an Internet-wide TLS/SNI scanner (§3.2.2)
// observes. Hypergiant front ends — including off-net caches inside eyeball
// networks — present the hypergiant's infrastructure certificate, which is
// exactly the signal [25] used to map serving infrastructure. Endpoints also
// answer SNI handshakes for hostnames they actually serve.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdn/deployment.h"
#include "cdn/services.h"

namespace itm::cdn {

struct TlsEndpoint {
  Ipv4Addr address;
  // Hosting AS of the endpoint.
  Asn asn{0};
  CityId city{0};
  // Operating hypergiant, when the endpoint is CDN infrastructure.
  std::optional<HypergiantId> hypergiant;
  bool offnet = false;
  // Subject names on the default (no-SNI) certificate.
  std::vector<std::string> default_cert_names;
};

class TlsInventory {
 public:
  static TlsInventory build(const topology::Topology& topo,
                            const Deployment& deployment,
                            const ServiceCatalog& catalog);

  // The endpoint at an address, if a TLS server listens there.
  [[nodiscard]] const TlsEndpoint* endpoint_at(Ipv4Addr address) const;

  // Whether the endpoint at `address` completes a handshake for `sni` —
  // i.e., actually serves that hostname.
  [[nodiscard]] bool serves(Ipv4Addr address, std::string_view sni) const;

  [[nodiscard]] std::size_t size() const { return endpoints_.size(); }
  [[nodiscard]] const std::unordered_map<Ipv4Addr, TlsEndpoint>& all() const {
    return endpoints_;
  }

 private:
  std::unordered_map<Ipv4Addr, TlsEndpoint> endpoints_;
  // hostname -> hypergiant (for SNI checks on CDN front ends).
  std::unordered_map<std::string, std::uint32_t> hostname_to_hg_;
  // hostname -> dedicated service address (VIPs, single-site origins).
  std::unordered_map<std::string, Ipv4Addr> hostname_to_address_;
};

}  // namespace itm::cdn
