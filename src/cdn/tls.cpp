#include "cdn/tls.h"

namespace itm::cdn {

TlsInventory TlsInventory::build(const topology::Topology& topo,
                                 const Deployment& deployment,
                                 const ServiceCatalog& catalog) {
  TlsInventory inv;

  // Hypergiant front ends (on-net and off-net) present the operator's
  // infrastructure certificate.
  for (const auto& fe : deployment.front_ends()) {
    const Pop& pop = deployment.pop(fe.pop);
    const auto& hg = deployment.hypergiant(fe.owner);
    TlsEndpoint ep;
    ep.address = fe.address;
    ep.asn = pop.asn;
    ep.city = pop.city;
    ep.hypergiant = fe.owner;
    ep.offnet = pop.offnet;
    ep.default_cert_names = {hg.name + ".example", "*.cdn." + hg.name + ".example"};
    inv.endpoints_.emplace(fe.address, std::move(ep));
  }

  // Service VIPs and single-site origins.
  for (const auto& s : catalog.services()) {
    if (s.redirection == RedirectionKind::kDnsRedirection) {
      if (s.hypergiant) {
        inv.hostname_to_hg_.emplace(s.hostname, s.hypergiant->value());
      }
      continue;
    }
    TlsEndpoint ep;
    ep.address = s.service_address;
    ep.asn = s.origin_as;
    ep.city = topo.graph.info(s.origin_as).home_city;
    ep.hypergiant = s.hypergiant;
    ep.default_cert_names = {s.hostname};
    if (s.hypergiant) {
      const auto& hg = deployment.hypergiant(*s.hypergiant);
      ep.city = deployment.pop(hg.pops.front()).city;
      ep.default_cert_names.push_back(hg.name + ".example");
      inv.hostname_to_hg_.emplace(s.hostname, s.hypergiant->value());
    }
    inv.hostname_to_address_.emplace(s.hostname, s.service_address);
    inv.endpoints_.emplace(s.service_address, std::move(ep));
  }
  return inv;
}

const TlsEndpoint* TlsInventory::endpoint_at(Ipv4Addr address) const {
  const auto it = endpoints_.find(address);
  return it == endpoints_.end() ? nullptr : &it->second;
}

bool TlsInventory::serves(Ipv4Addr address, std::string_view sni) const {
  const TlsEndpoint* ep = endpoint_at(address);
  if (ep == nullptr) return false;
  // Dedicated service address?
  const auto addr_it = hostname_to_address_.find(std::string(sni));
  if (addr_it != hostname_to_address_.end() && addr_it->second == address) {
    return true;
  }
  // CDN front ends serve every hostname their operator hosts.
  if (ep->hypergiant) {
    const auto hg_it = hostname_to_hg_.find(std::string(sni));
    if (hg_it != hostname_to_hg_.end() &&
        hg_it->second == ep->hypergiant->value()) {
      return true;
    }
  }
  return false;
}

}  // namespace itm::cdn
