#include "cdn/services.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace itm::cdn {

const char* to_string(RedirectionKind kind) {
  switch (kind) {
    case RedirectionKind::kDnsRedirection: return "dns-redirection";
    case RedirectionKind::kAnycast: return "anycast";
    case RedirectionKind::kCustomUrl: return "custom-url";
    case RedirectionKind::kSingleSite: return "single-site";
  }
  return "unknown";
}

ServiceCatalog ServiceCatalog::generate(const topology::Topology& topo,
                                        const Deployment& deployment,
                                        const ServiceCatalogConfig& config,
                                        Rng& rng) {
  assert(!deployment.hypergiants().empty());
  assert(config.p_dns_redirection + config.p_anycast <= 1.0);
  ServiceCatalog catalog;
  auto& services = catalog.services_;
  services.reserve(config.num_hypergiant_services +
                   config.num_longtail_services);

  // Zipf masses within each class, scaled to the class's traffic share.
  const auto zipf_weights = [](std::size_t n, double s, double share) {
    std::vector<double> w(n);
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
      total += w[k];
    }
    for (auto& x : w) x *= share / total;
    return w;
  };
  const auto hg_weights =
      zipf_weights(config.num_hypergiant_services, config.hypergiant_zipf,
                   config.hypergiant_traffic_share);
  const auto lt_weights =
      zipf_weights(config.num_longtail_services, config.longtail_zipf,
                   1.0 - config.hypergiant_traffic_share);

  // Hypergiant-hosted popular services. Bigger hypergiants host the more
  // popular services (rank-weighted round robin over hypergiants).
  const std::size_t num_hg = deployment.hypergiants().size();
  // VIPs are carved from the trailing kVipReservedSlash24s content /24s of
  // each hypergiant (front-end unicast addresses fill earlier blocks; see
  // Deployment::build).
  constexpr std::uint32_t kVipSlotsPerBlock = 250;
  std::vector<std::uint32_t> vip_cursor(num_hg, 0);
  const auto next_vip = [&](HypergiantId hg) {
    const Asn asn = deployment.hypergiant(hg).asn;
    const auto& addressing = topo.addresses.of(asn);
    const std::uint32_t slot = vip_cursor[hg.value()]++;
    const std::uint32_t block_back = slot / kVipSlotsPerBlock;
    if (block_back >= kVipReservedSlash24s ||
        addressing.content_slash24s <= block_back + 1) {
      throw std::length_error(
          "hypergiant VIP space exhausted; lower num_hypergiant_services or "
          "raise kVipReservedSlash24s");
    }
    return topo.addresses
        .content_slash24(asn, addressing.content_slash24s - 1 - block_back)
        .address_at(2 + slot % kVipSlotsPerBlock);
  };
  std::vector<std::uint32_t> origin_cursor(topo.graph.size(), 0);
  for (std::size_t rank = 0; rank < config.num_hypergiant_services; ++rank) {
    Service s;
    s.id = ServiceId(static_cast<std::uint32_t>(services.size()));
    s.name = "svc-" + std::to_string(rank);
    s.hostname = s.name + ".example";
    const auto hg_index = HypergiantId(
        static_cast<std::uint32_t>(rank % num_hg));
    s.hypergiant = hg_index;
    s.origin_as = deployment.hypergiant(hg_index).asn;
    s.popularity = hg_weights[rank];

    // The very top sites skew toward ECS-supporting DNS redirection (the
    // paper: 15 of the top-20 support ECS); the broader catalog mixes in
    // more anycast and custom-URL services.
    const bool top20 = rank < 20;
    // The top handful of sites all support ECS in practice (Google,
    // Facebook, ... per the paper's SimilarWeb analysis).
    const bool top5 = rank < 5;
    const double p_dns = top5 ? 1.0 : top20 ? 0.9 : config.p_dns_redirection;
    const double p_anycast = top20 ? 0.05 : config.p_anycast;
    const double kind_roll = rng.uniform();
    if (kind_roll < p_dns) {
      s.redirection = RedirectionKind::kDnsRedirection;
    } else if (kind_roll < p_dns + p_anycast) {
      s.redirection = RedirectionKind::kAnycast;
    } else {
      s.redirection = RedirectionKind::kCustomUrl;
      s.offnet_cacheable = true;  // custom URLs: long-lived video/static
    }
    if (s.redirection == RedirectionKind::kDnsRedirection) {
      // Ranks 0-4 always support ECS, so ranks 5-19 must average
      // (20*frac - 5)/15 unconditionally; conditioning on the 0.9
      // DNS-redirection draw divides that out. Clamped for frac near 1.
      const double p_rest = std::clamp(
          (20.0 * config.top20_ecs_fraction - 5.0) / (15.0 * 0.9), 0.0, 1.0);
      const double p_ecs = top5 ? 1.0 : top20 ? p_rest : config.p_ecs_other;
      s.supports_ecs = rng.bernoulli(p_ecs);
      s.offnet_cacheable = rng.bernoulli(0.5);
    } else {
      s.service_address = next_vip(*s.hypergiant);
    }
    s.dns_ttl_s = static_cast<std::uint32_t>(
        rng.uniform_int(config.min_ttl_s, config.max_ttl_s));
    services.push_back(std::move(s));
  }

  // Long tail hosted at content networks.
  for (std::size_t rank = 0; rank < config.num_longtail_services; ++rank) {
    Service s;
    s.id = ServiceId(static_cast<std::uint32_t>(services.size()));
    s.name = "tail-" + std::to_string(rank);
    s.hostname = s.name + ".example";
    s.origin_as =
        topo.contents.empty()
            ? topo.hypergiants.front()
            : topo.contents[rng.next_below(topo.contents.size())];
    s.redirection = RedirectionKind::kSingleSite;
    s.popularity = lt_weights[rank];
    // Origin server address in the content network's space. A hard check:
    // clamping would silently assign the same address to two services.
    const auto& addressing = topo.addresses.of(s.origin_as);
    const std::uint32_t slot = origin_cursor[s.origin_as.value()]++;
    const std::uint32_t block = slot / 200;
    if (block >= addressing.content_slash24s) {
      throw std::length_error(
          "content AS origin space exhausted; raise "
          "content_24s_per_content_as or spread the long tail wider");
    }
    s.service_address = topo.addresses.content_slash24(s.origin_as, block)
                            .address_at(2 + slot % 200);
    s.dns_ttl_s = static_cast<std::uint32_t>(
        rng.uniform_int(config.min_ttl_s, 3600));
    services.push_back(std::move(s));
  }
  return catalog;
}

const Service* ServiceCatalog::by_hostname(std::string_view hostname) const {
  for (const auto& s : services_) {
    if (s.hostname == hostname) return &s;
  }
  return nullptr;
}

std::vector<ServiceId> ServiceCatalog::by_popularity() const {
  std::vector<ServiceId> ids;
  ids.reserve(services_.size());
  for (const auto& s : services_) ids.push_back(s.id);
  std::sort(ids.begin(), ids.end(), [this](ServiceId a, ServiceId b) {
    return service(a).popularity > service(b).popularity;
  });
  return ids;
}

}  // namespace itm::cdn
