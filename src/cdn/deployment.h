// Hypergiant serving infrastructure: on-net PoPs and off-net caches.
//
// Each hypergiant operates points of presence (PoPs) in the cities where it
// has facility presence, with front-end servers addressed from its own
// space; it additionally deploys off-net cache servers *inside* eyeball
// networks (addressed from the eyeball's space) — the deployments uncovered
// in "Seven years in the life of hypergiants' off-nets" [25], which TLS
// scanning can identify because off-nets present the hypergiant's
// certificates.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/ids.h"
#include "net/ipv4.h"
#include "net/rng.h"
#include "topology/generator.h"

namespace itm::cdn {

// Trailing content /24s of each hypergiant reserved for service VIPs
// (anycast and custom-URL bootstrap addresses); front ends fill earlier
// blocks. See ServiceCatalog::generate and Deployment::build.
inline constexpr std::uint32_t kVipReservedSlash24s = 2;

struct Pop {
  PopId id;
  HypergiantId owner;
  // AS the PoP's front ends live in: the hypergiant's own AS for on-net
  // PoPs, the hosting eyeball AS for off-net deployments.
  Asn asn;
  CityId city;
  bool offnet = false;
};

struct FrontEnd {
  ServerId id;
  HypergiantId owner;
  PopId pop;
  Ipv4Addr address;
};

struct Hypergiant {
  HypergiantId id;
  Asn asn;
  std::string name;
  std::vector<PopId> pops;
  // Fraction of this hypergiant's bytes served from off-net caches when the
  // client's AS hosts one (cache hit ratio of the off-net tier).
  double offnet_hit_ratio = 0.0;
};

struct DeploymentConfig {
  // Front-end servers per on-net PoP (before size scaling).
  std::size_t servers_per_pop = 4;
  // Probability scale for deploying an off-net cache in an access AS;
  // effective probability grows with the eyeball's size factor.
  double offnet_base = 0.25;
  // Hypergiants with index < this count deploy off-nets aggressively
  // (CDN/video-like); the rest deploy none (cloud-like).
  std::size_t offnet_heavy_hypergiants = 3;
  double offnet_hit_ratio = 0.75;
  std::size_t servers_per_offnet = 2;
};

class Deployment {
 public:
  static Deployment build(const topology::Topology& topo,
                          const DeploymentConfig& config, Rng& rng);

  [[nodiscard]] const std::vector<Hypergiant>& hypergiants() const {
    return hypergiants_;
  }
  [[nodiscard]] const Hypergiant& hypergiant(HypergiantId id) const {
    return hypergiants_[id.value()];
  }
  [[nodiscard]] const std::vector<Pop>& pops() const { return pops_; }
  [[nodiscard]] const Pop& pop(PopId id) const { return pops_[id.value()]; }
  [[nodiscard]] const std::vector<FrontEnd>& front_ends() const {
    return front_ends_;
  }

  // The hypergiant operating in a given AS number, if any.
  [[nodiscard]] const Hypergiant* by_asn(Asn asn) const;

  // Off-net PoP of `owner` inside `host_as`, or nullptr (O(1)).
  [[nodiscard]] const Pop* offnet_in(HypergiantId owner, Asn host_as) const;

  // Front-end addresses of a PoP (precomputed; hot path for DNS answers
  // and client mapping).
  [[nodiscard]] const std::vector<Ipv4Addr>& front_end_addresses(
      PopId pop) const {
    return pop_front_ends_[pop.value()];
  }

  // PoP of `owner` geographically nearest to `city` (on-net only).
  [[nodiscard]] PopId nearest_onnet_pop(HypergiantId owner, CityId city,
                                        const topology::Geography& geo) const;

  // All front ends of a PoP.
  [[nodiscard]] std::vector<const FrontEnd*> front_ends_of(PopId pop) const;

  // A copy of the deployment with every PoP hosted in `failed` removed
  // (PoP/front-end ids are re-assigned densely). Used for what-if analysis.
  [[nodiscard]] Deployment without_as(Asn failed) const;

 private:
  void build_indexes();

  std::vector<Hypergiant> hypergiants_;
  std::vector<Pop> pops_;
  std::vector<FrontEnd> front_ends_;
  // pop id -> front-end addresses.
  std::vector<std::vector<Ipv4Addr>> pop_front_ends_;
  // (hypergiant, host asn) -> pop index, for off-net lookup.
  std::unordered_map<std::uint64_t, std::size_t> offnet_index_;
};

}  // namespace itm::cdn
