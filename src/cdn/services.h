// The catalog of web services users access, with popularity and redirection
// metadata.
//
// Popular services are hosted by hypergiants and redirected to nearby front
// ends by DNS (often with ECS), by anycast, or by per-client custom URLs;
// a long tail of services is hosted at single content networks. Popularity
// follows a Zipf law calibrated so a handful of hypergiants carry ~90% of
// traffic and the top-20 services ~35% (§1, §3.2.3 of the paper).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/ids.h"
#include "net/rng.h"
#include "cdn/deployment.h"
#include "topology/generator.h"

namespace itm::cdn {

enum class RedirectionKind : std::uint8_t {
  kDnsRedirection,  // authoritative returns a nearby front end
  kAnycast,         // one address everywhere; BGP picks the site
  kCustomUrl,       // per-client URLs after an initial bootstrap fetch
  kSingleSite,      // long-tail: one origin server, no redirection
};

[[nodiscard]] const char* to_string(RedirectionKind kind);

struct Service {
  ServiceId id;
  std::string name;
  std::string hostname;
  // Hosting: either a hypergiant or (for the long tail) a content AS.
  std::optional<HypergiantId> hypergiant;
  Asn origin_as{0};
  RedirectionKind redirection = RedirectionKind::kSingleSite;
  // Whether the service's authoritative DNS honors EDNS0 Client Subnet.
  bool supports_ecs = false;
  // Relative traffic weight (catalog weights sum to 1).
  double popularity = 0.0;
  // TTL of the service's A records, seconds.
  std::uint32_t dns_ttl_s = 60;
  // Whether the content is cacheable at off-net caches (video/static).
  bool offnet_cacheable = false;
  // Stable service address: the anycast VIP (kAnycast), the bootstrap VIP
  // (kCustomUrl), or the origin server (kSingleSite). Unused for
  // kDnsRedirection, whose answers vary per client.
  Ipv4Addr service_address;
};

struct ServiceCatalogConfig {
  std::size_t num_hypergiant_services = 120;
  std::size_t num_longtail_services = 200;
  // Zipf exponents within each class.
  double hypergiant_zipf = 0.6;
  double longtail_zipf = 0.8;
  // Share of total traffic carried by hypergiant-hosted services.
  double hypergiant_traffic_share = 0.9;
  // Among the top-20 services, fraction supporting ECS (paper: 15/20).
  double top20_ecs_fraction = 0.75;
  // Redirection mix for hypergiant services (must sum to <= 1; remainder
  // is custom-URL).
  double p_dns_redirection = 0.6;
  double p_anycast = 0.25;
  // ECS adoption among non-top-20 DNS-redirection services.
  double p_ecs_other = 0.6;
  std::uint32_t min_ttl_s = 60;
  std::uint32_t max_ttl_s = 600;
};

class ServiceCatalog {
 public:
  static ServiceCatalog generate(const topology::Topology& topo,
                                 const Deployment& deployment,
                                 const ServiceCatalogConfig& config, Rng& rng);

  [[nodiscard]] const std::vector<Service>& services() const {
    return services_;
  }
  [[nodiscard]] const Service& service(ServiceId id) const {
    return services_[id.value()];
  }
  [[nodiscard]] std::size_t size() const { return services_.size(); }

  [[nodiscard]] const Service* by_hostname(std::string_view hostname) const;

  // Services sorted by popularity, most popular first.
  [[nodiscard]] std::vector<ServiceId> by_popularity() const;

  // Sum of popularity over services satisfying a predicate.
  template <typename Pred>
  [[nodiscard]] double popularity_share(Pred&& pred) const {
    double share = 0;
    for (const auto& s : services_) {
      if (pred(s)) share += s.popularity;
    }
    return share;
  }

 private:
  std::vector<Service> services_;
};

}  // namespace itm::cdn
