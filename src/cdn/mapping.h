// Client-to-front-end mapping: which serving site handles a client's bytes.
//
// This is the ground-truth "mapping from users to hosts" component of the
// traffic map (§3.2). Four mechanisms are modeled:
//   * DNS redirection — the authoritative picks the PoP nearest to the
//     location it can see: the client's own prefix with ECS, otherwise the
//     recursive resolver's location (the classic public-resolver mismatch);
//   * anycast — BGP delivers the client to the site nearest its ingress
//     point into the hypergiant's network;
//   * custom URLs — per-client URLs are precise, so bytes come from the
//     optimal site (the paper's §3.2.3 argument);
//   * single-site — long-tail services served from their origin.
// When the client's AS hosts an off-net cache of the service's hypergiant
// and the content is cacheable, the off-net serves the connection.
#pragma once

#include <optional>
#include <vector>

#include "cdn/deployment.h"
#include "cdn/services.h"
#include "routing/bgp.h"
#include "topology/generator.h"

namespace itm::cdn {

struct MappingResult {
  // Serving PoP; empty for single-site services.
  std::optional<PopId> pop;
  Asn server_as{0};
  CityId server_city{0};
  Ipv4Addr address;
  bool offnet = false;
};

struct MappingConfig {
  // Probability that DNS geo-mapping picks the true nearest PoP; otherwise
  // the second nearest is returned (deterministic per service+city).
  double geo_mapping_accuracy = 0.9;
};

class ClientMapper {
 public:
  ClientMapper(const topology::Topology& topo, const Deployment& deployment,
               MappingConfig config = {});

  // Destination of the client's bytes for `service`. `effective_city` is
  // what the service's DNS can see: the client's city when ECS applies, the
  // resolver's city otherwise (callers decide; irrelevant for non-DNS
  // services). `flow_hash` spreads clients across a PoP's front ends.
  // `allow_offnet=false` computes the fallback on-net mapping, used to
  // attribute the off-net cache-miss fraction of the bytes.
  [[nodiscard]] MappingResult map(const Service& service, Asn client_as,
                                  CityId client_city, CityId effective_city,
                                  std::uint64_t flow_hash,
                                  bool allow_offnet = true) const;

  // Pure anycast catchment of a hypergiant for a client AS (ignores
  // off-nets): the on-net PoP nearest the client's BGP ingress.
  [[nodiscard]] PopId anycast_site(HypergiantId hg, Asn client_as) const;

  // Geographically optimal on-net PoP for a client city.
  [[nodiscard]] PopId optimal_site(HypergiantId hg, CityId client_city) const;

  // The PoP a DNS-redirection authoritative would return for an effective
  // city (includes the deterministic geo-mapping error).
  [[nodiscard]] PopId dns_site(const Service& service, CityId effective_city)
      const;

  [[nodiscard]] const Deployment& deployment() const { return *deployment_; }

 private:
  [[nodiscard]] MappingResult finish(PopId pop, std::uint64_t flow_hash) const;
  [[nodiscard]] PopId compute_anycast_site(HypergiantId hg,
                                           Asn client_as) const;
  [[nodiscard]] std::optional<PopId> offnet_override(const Service& service,
                                                     Asn client_as) const;

  const topology::Topology* topo_;
  const Deployment* deployment_;
  MappingConfig config_;
  // Per-hypergiant route table toward its ASN (for anycast ingress).
  std::vector<routing::RouteTable> routes_to_hg_;
  // Precomputed anycast catchments: [hypergiant][client asn] -> PoP.
  std::vector<std::vector<PopId>> anycast_catchment_;
  // On-net PoPs per hypergiant (dns_site/optimal_site scan these instead
  // of every off-net deployment).
  std::vector<std::vector<PopId>> onnet_pops_;
};

}  // namespace itm::cdn
