#include "cdn/mapping.h"

#include <cassert>
#include <limits>

#include "net/geo.h"

namespace itm::cdn {

namespace {

// Deterministic 64-bit mix (splitmix finalizer) for stable pseudo-random
// decisions keyed on ids.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

ClientMapper::ClientMapper(const topology::Topology& topo,
                           const Deployment& deployment, MappingConfig config)
    : topo_(&topo), deployment_(&deployment), config_(config) {
  const routing::Bgp bgp(topo.graph);
  routes_to_hg_.reserve(deployment.hypergiants().size());
  for (const auto& hg : deployment.hypergiants()) {
    routes_to_hg_.push_back(bgp.routes_to(hg.asn));
  }
  onnet_pops_.resize(deployment.hypergiants().size());
  for (const auto& hg : deployment.hypergiants()) {
    for (const PopId pid : hg.pops) {
      if (!deployment.pop(pid).offnet) {
        onnet_pops_[hg.id.value()].push_back(pid);
      }
    }
  }
  // Precompute anycast catchments (hot path for the traffic matrix).
  anycast_catchment_.resize(deployment.hypergiants().size());
  for (std::size_t g = 0; g < deployment.hypergiants().size(); ++g) {
    auto& table = anycast_catchment_[g];
    table.reserve(topo.graph.size());
    for (std::size_t a = 0; a < topo.graph.size(); ++a) {
      table.push_back(compute_anycast_site(
          HypergiantId(static_cast<std::uint32_t>(g)),
          Asn(static_cast<std::uint32_t>(a))));
    }
  }
}

std::optional<PopId> ClientMapper::offnet_override(const Service& service,
                                                   Asn client_as) const {
  if (!service.hypergiant || !service.offnet_cacheable) return std::nullopt;
  const Pop* offnet = deployment_->offnet_in(*service.hypergiant, client_as);
  if (offnet == nullptr) return std::nullopt;
  return offnet->id;
}

MappingResult ClientMapper::finish(PopId pop, std::uint64_t flow_hash) const {
  const Pop& p = deployment_->pop(pop);
  MappingResult result;
  result.pop = pop;
  result.server_as = p.asn;
  result.server_city = p.city;
  result.offnet = p.offnet;
  const auto& fes = deployment_->front_end_addresses(pop);
  assert(!fes.empty() && "PoP has no front ends");
  result.address = fes[mix(flow_hash) % fes.size()];
  return result;
}

PopId ClientMapper::dns_site(const Service& service,
                             CityId effective_city) const {
  assert(service.hypergiant.has_value());
  const auto& geo = topo_->geography;
  // Find the two nearest on-net PoPs.
  PopId best{0}, second{0};
  double best_km = std::numeric_limits<double>::max();
  double second_km = std::numeric_limits<double>::max();
  bool have_best = false, have_second = false;
  for (const PopId pid : onnet_pops_[service.hypergiant->value()]) {
    const Pop& pop = deployment_->pop(pid);
    const double km = geo.distance_km(pop.city, effective_city);
    if (km < best_km) {
      second = best;
      second_km = best_km;
      have_second = have_best;
      best = pid;
      best_km = km;
      have_best = true;
    } else if (km < second_km) {
      second = pid;
      second_km = km;
      have_second = true;
    }
  }
  assert(have_best && "hypergiant has no on-net PoPs");
  if (!have_second) return best;
  // Deterministic geo-mapping error: a stable fraction of (service, city)
  // pairs map to the second-nearest site.
  const double roll =
      static_cast<double>(
          mix((std::uint64_t{service.id.value()} << 32) |
              effective_city.value()) >>
          11) *
      0x1.0p-53;
  return roll < config_.geo_mapping_accuracy ? best : second;
}

PopId ClientMapper::anycast_site(HypergiantId hg, Asn client_as) const {
  return anycast_catchment_[hg.value()][client_as.value()];
}

PopId ClientMapper::compute_anycast_site(HypergiantId hg, Asn client_as) const {
  const auto& geo = topo_->geography;
  const auto& graph = topo_->graph;
  const auto& table = routes_to_hg_[hg.value()];
  const Asn hg_asn = deployment_->hypergiant(hg).asn;

  CityId ingress_city = graph.info(client_as).home_city;
  if (client_as != hg_asn && table.at(client_as).reachable()) {
    const Asn penultimate = table.penultimate(client_as);
    // Where does the penultimate AS hand traffic to the hypergiant? At the
    // interconnection facility when the link declares one, else at the
    // penultimate's home city.
    ingress_city = graph.info(penultimate).home_city;
    for (const auto& nb : graph.neighbors(penultimate)) {
      if (nb.asn != hg_asn) continue;
      const auto& link = graph.links()[nb.link_index];
      if (!link.facilities.empty()) {
        ingress_city = geo.facility(link.facilities.front()).city;
      }
      break;
    }
  }
  return deployment_->nearest_onnet_pop(hg, ingress_city, geo);
}

PopId ClientMapper::optimal_site(HypergiantId hg, CityId client_city) const {
  return deployment_->nearest_onnet_pop(hg, client_city, topo_->geography);
}

MappingResult ClientMapper::map(const Service& service, Asn client_as,
                                CityId client_city, CityId effective_city,
                                std::uint64_t flow_hash,
                                bool allow_offnet) const {
  if (service.redirection == RedirectionKind::kSingleSite) {
    MappingResult result;
    result.server_as = service.origin_as;
    result.server_city = topo_->graph.info(service.origin_as).home_city;
    result.address = service.service_address;
    return result;
  }
  if (allow_offnet) {
    if (const auto offnet = offnet_override(service, client_as)) {
      return finish(*offnet, flow_hash);
    }
  }
  switch (service.redirection) {
    case RedirectionKind::kDnsRedirection:
      return finish(dns_site(service, effective_city), flow_hash);
    case RedirectionKind::kAnycast: {
      MappingResult result =
          finish(anycast_site(*service.hypergiant, client_as), flow_hash);
      result.address = service.service_address;  // data plane uses the VIP
      return result;
    }
    case RedirectionKind::kCustomUrl:
      return finish(optimal_site(*service.hypergiant, client_city),
                    flow_hash);
    case RedirectionKind::kSingleSite:
      break;  // handled above
  }
  assert(false && "unreachable");
  return {};
}

}  // namespace itm::cdn
