// IPv4 address allocation for the synthetic Internet.
//
// Every AS receives one contiguous power-of-two aggregate sized to its needs:
// a run of user /24s (for access networks), a run of content /24s (for
// content networks and hypergiant on-net ranges), and one infrastructure /24
// holding routers, name servers and other service addresses. The plan also
// exposes the global routable-/24 iteration that measurement tools (ECS
// probing, TLS scanning) sweep over — the synthetic analogue of "all routable
// prefixes" in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.h"
#include "net/ipv4.h"
#include "net/prefix_trie.h"
#include "topology/as_graph.h"

namespace itm::topology {

struct AsAddressing {
  Asn asn;
  // The announced BGP aggregate (one per AS in this plan).
  Ipv4Prefix aggregate;
  // Number of leading /24s that host end users (access networks only).
  std::uint32_t user_slash24s = 0;
  // Number of /24s after the user range that host content servers.
  std::uint32_t content_slash24s = 0;
  // Number of miscellaneous /24s after the content range (hosting, off-net
  // cache appliances, idle space).
  std::uint32_t misc_slash24s = 0;
  // /24s actually announced (user + content + misc + infra); the aggregate
  // is power-of-two sized for alignment, but the tail beyond this count is
  // dark space a scanner never sees routed.
  std::uint32_t announced_slash24s = 0;
  // The single infrastructure /24 (the last announced /24).
  Ipv4Prefix infra_slash24;
};

struct AddressPlanConfig {
  // User /24s for an access AS: round(base * size_factor), at least 1.
  double user_24s_per_access_as = 64.0;
  // Content /24s for content/hypergiant ASes.
  double content_24s_per_content_as = 8.0;
  double content_24s_per_hypergiant = 64.0;
  // Enterprises and others get a couple of /24s of (mostly idle) space.
  std::uint32_t misc_24s = 2;
};

class AddressPlan {
 public:
  // Allocates addresses for every AS in the graph, starting at 1.0.0.0.
  static AddressPlan build(const AsGraph& graph,
                           const AddressPlanConfig& config);

  [[nodiscard]] const AsAddressing& of(Asn asn) const {
    return per_as_[asn.value()];
  }

  // Origin AS of an address / most-specific covering aggregate of a prefix.
  [[nodiscard]] std::optional<Asn> origin_of(Ipv4Addr addr) const;
  [[nodiscard]] std::optional<Asn> origin_of(const Ipv4Prefix& prefix) const;

  // The i-th user /24 of an AS (i < user_slash24s).
  [[nodiscard]] Ipv4Prefix user_slash24(Asn asn, std::uint32_t i) const;
  // The i-th content /24 of an AS (i < content_slash24s).
  [[nodiscard]] Ipv4Prefix content_slash24(Asn asn, std::uint32_t i) const;
  // The i-th miscellaneous /24 of an AS (i < misc_slash24s).
  [[nodiscard]] Ipv4Prefix misc_slash24(Asn asn, std::uint32_t i) const;

  // Every routable /24 across all ASes, in address order. This is what an
  // Internet-wide sweep iterates over.
  [[nodiscard]] std::vector<Ipv4Prefix> routable_slash24s() const;

  // Every user /24 (the ground-truth "prefixes with users" universe).
  [[nodiscard]] std::vector<Ipv4Prefix> user_slash24s() const;

  [[nodiscard]] std::uint64_t total_slash24_count() const {
    return total_slash24s_;
  }

  [[nodiscard]] const std::vector<AsAddressing>& all() const {
    return per_as_;
  }

  // The origin-lookup radix tree, exposed for arena/allocation gauges (node
  // count, bytes) in the run-analysis layer.
  [[nodiscard]] const PrefixTrie<Asn>& origin_trie() const { return origins_; }

 private:
  std::vector<AsAddressing> per_as_;
  PrefixTrie<Asn> origins_;
  std::uint64_t total_slash24s_ = 0;
};

}  // namespace itm::topology
