#include "topology/serialization.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>

namespace itm::topology {

void write_as_rel(const AsGraph& graph, std::ostream& os) {
  os << "# itm as-rel export: <a>|<b>|<rel>, rel -1 = a is provider of b, "
        "0 = peers\n";
  for (const auto& link : graph.links()) {
    if (link.a_to_b == Relation::kPeer) {
      os << link.a.value() << "|" << link.b.value() << "|0\n";
    } else {
      // Stored as (customer=a, provider=b): emit provider first.
      os << link.b.value() << "|" << link.a.value() << "|-1\n";
    }
  }
}

std::optional<AsRelParseError> read_as_rel(std::istream& is, AsGraph& graph) {
  std::unordered_map<std::uint64_t, Asn> densify;
  const auto intern = [&](std::uint64_t external) {
    const auto it = densify.find(external);
    if (it != densify.end()) return it->second;
    AsInfo info;
    info.name = "AS" + std::to_string(external);
    const Asn asn = graph.add_as(std::move(info));
    densify.emplace(external, asn);
    return asn;
  };

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    std::uint64_t a = 0, b = 0;
    std::int64_t rel = 0;
    auto r1 = std::from_chars(p, end, a);
    if (r1.ec != std::errc{} || r1.ptr == end || *r1.ptr != '|') {
      return AsRelParseError{line_number, "expected '<a>|'"};
    }
    auto r2 = std::from_chars(r1.ptr + 1, end, b);
    if (r2.ec != std::errc{} || r2.ptr == end || *r2.ptr != '|') {
      return AsRelParseError{line_number, "expected '<b>|'"};
    }
    auto r3 = std::from_chars(r2.ptr + 1, end, rel);
    if (r3.ec != std::errc{}) {
      return AsRelParseError{line_number, "expected relationship"};
    }
    const Asn asn_a = intern(a);
    const Asn asn_b = intern(b);
    if (asn_a == asn_b) {
      return AsRelParseError{line_number, "self link"};
    }
    if (graph.adjacent(asn_a, asn_b)) {
      continue;  // duplicate lines appear in real files; keep the first
    }
    if (rel == 0) {
      graph.add_peering(asn_a, asn_b);
    } else if (rel == -1) {
      graph.add_transit(/*customer=*/asn_b, /*provider=*/asn_a);
    } else {
      return AsRelParseError{line_number, "relationship must be -1 or 0"};
    }
  }
  return std::nullopt;
}

}  // namespace itm::topology
