// AS-level graph: autonomous systems, their business relationships
// (customer-provider / settlement-free peering), and the facilities where
// links are realized.
//
// ASNs are dense indices (Asn(i) is the i-th AS), which keeps routing and
// traffic computations array-based and cache-friendly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ids.h"
#include "topology/geography.h"

namespace itm::topology {

enum class AsType : std::uint8_t {
  kTier1,       // transit-free backbone, peers with all other tier-1s
  kTransit,     // regional/national transit provider
  kAccess,      // eyeball/access network hosting end users
  kContent,     // ordinary content/hosting network
  kHypergiant,  // large content provider with global serving infrastructure
  kEnterprise,  // stub business network, few users, little content
};

[[nodiscard]] const char* to_string(AsType type);

enum class PeeringPolicy : std::uint8_t { kOpen, kSelective, kRestrictive };

[[nodiscard]] const char* to_string(PeeringPolicy policy);

// PeeringDB-style self-declared traffic direction.
enum class TrafficProfile : std::uint8_t {
  kHeavyOutbound,  // content-heavy
  kMostlyOutbound,
  kBalanced,
  kMostlyInbound,
  kHeavyInbound,  // eyeball-heavy
};

[[nodiscard]] const char* to_string(TrafficProfile profile);

// Relationship of a neighbor as seen from a given AS.
enum class Relation : std::uint8_t { kCustomer, kPeer, kProvider };

struct AsInfo {
  Asn asn;
  AsType type = AsType::kEnterprise;
  std::string name;
  CountryId country;
  CityId home_city;
  // Cities where the AS has network presence (includes home city).
  std::vector<CityId> presence_cities;
  // Facilities where the AS can interconnect.
  std::vector<FacilityId> facilities;
  PeeringPolicy policy = PeeringPolicy::kSelective;
  TrafficProfile profile = TrafficProfile::kBalanced;
  // Relative size within its class (1.0 = typical); drives user counts,
  // prefix counts and attractiveness as a peer.
  double size_factor = 1.0;
};

struct Neighbor {
  Asn asn;
  Relation relation;
  std::uint32_t link_index;  // index into AsGraph::links()
};

struct Link {
  // For transit links `a` is the customer and `b` the provider; for peering
  // the order carries no meaning.
  Asn a;
  Asn b;
  Relation a_to_b;  // kProvider is never stored here; a_to_b is kCustomer
                    // ("a is b's customer") or kPeer.
  std::vector<FacilityId> facilities;
  // Multilateral peering established via an IXP route server (the kind of
  // link [4] found >90% invisible in public topologies).
  bool via_route_server = false;
};

class AsGraph {
 public:
  // Adds an AS; its `asn` field is assigned densely and returned.
  Asn add_as(AsInfo info);

  // Declares `customer` to be a customer of `provider`.
  void add_transit(Asn customer, Asn provider,
                   std::vector<FacilityId> facilities = {});

  // Declares a settlement-free peering between a and b.
  void add_peering(Asn a, Asn b, std::vector<FacilityId> facilities = {},
                   bool via_route_server = false);

  [[nodiscard]] std::size_t size() const { return ases_.size(); }
  [[nodiscard]] const AsInfo& info(Asn asn) const {
    return ases_[asn.value()];
  }
  [[nodiscard]] AsInfo& info(Asn asn) { return ases_[asn.value()]; }
  [[nodiscard]] const std::vector<AsInfo>& ases() const { return ases_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const std::vector<Neighbor>& neighbors(Asn asn) const {
    return adjacency_[asn.value()];
  }

  // True when a direct link (either kind) exists.
  [[nodiscard]] bool adjacent(Asn a, Asn b) const;

  // Relationship of `b` from `a`'s point of view, if adjacent.
  [[nodiscard]] std::optional<Relation> relation(Asn a, Asn b) const;

  // All ASes of a given type.
  [[nodiscard]] std::vector<Asn> ases_of_type(AsType type) const;

  // Customer cone: the AS itself plus all ASes reachable by repeatedly
  // following provider->customer edges (CAIDA-style, by count).
  [[nodiscard]] std::vector<Asn> customer_cone(Asn asn) const;
  [[nodiscard]] std::size_t customer_cone_size(Asn asn) const {
    return customer_cone(asn).size();
  }

  // Degree counts by relation, for reporting.
  struct Degree {
    std::size_t customers = 0;
    std::size_t peers = 0;
    std::size_t providers = 0;
    [[nodiscard]] std::size_t total() const {
      return customers + peers + providers;
    }
  };
  [[nodiscard]] Degree degree(Asn asn) const;

  // Approximate heap bytes of the AoS layout (per-AS structs, per-AS
  // neighbor vectors, link records). The substrate-scale bench reports this
  // as the legacy bytes/AS baseline against AsTable's SoA columns.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::vector<AsInfo> ases_;
  std::vector<Link> links_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

// Copies `src` keeping every AS and only the links for which `keep_link`
// returns true (relationship kinds and route-server flags preserved).
// Shared by the public-view subgraph, recommender augmentation and what-if
// rebuilds.
template <typename KeepLink>
[[nodiscard]] AsGraph copy_graph(const AsGraph& src, KeepLink&& keep_link) {
  AsGraph out;
  for (const auto& as : src.ases()) {
    AsInfo copy = as;
    out.add_as(std::move(copy));  // dense ASNs preserved by insertion order
  }
  for (const auto& link : src.links()) {
    if (!keep_link(link)) continue;
    if (link.a_to_b == Relation::kPeer) {
      out.add_peering(link.a, link.b, link.facilities, link.via_route_server);
    } else {
      out.add_transit(link.a, link.b, link.facilities);
    }
  }
  return out;
}

}  // namespace itm::topology
