#include "topology/geography.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace itm::topology {

namespace {

// Stable synthetic country names; extended with numeric suffixes beyond 12.
const char* kCountryNames[] = {"Francia",  "Nipponia", "Koreana", "Albion",
                               "Columbia", "Teutonia", "Brasilia", "Indica",
                               "Sinica",   "Rossiya",  "Iberia",   "Italia"};

std::string country_name(std::size_t i) {
  constexpr std::size_t n = std::size(kCountryNames);
  if (i < n) return kCountryNames[i];
  return std::string(kCountryNames[i % n]) + "-" + std::to_string(i / n);
}

}  // namespace

Geography Geography::generate(const GeographyConfig& config, Rng& rng) {
  assert(config.num_countries > 0 && config.cities_per_country > 0);
  Geography geo;
  geo.countries_.reserve(config.num_countries);

  // Country user shares follow a Zipf over a random permutation so the
  // biggest country is not always country 0.
  std::vector<double> shares(config.num_countries);
  double total = 0;
  for (std::size_t i = 0; i < config.num_countries; ++i) {
    shares[i] = 1.0 / std::pow(static_cast<double>(i + 1),
                               config.country_share_exponent);
    total += shares[i];
  }
  for (auto& s : shares) s /= total;
  rng.shuffle(shares);

  for (std::size_t i = 0; i < config.num_countries; ++i) {
    Country country;
    country.id = CountryId(static_cast<std::uint32_t>(i));
    country.name = country_name(i);
    // Spread country centers over temperate latitudes and all longitudes.
    country.center = GeoPoint{rng.uniform(-50.0, 60.0),
                              rng.uniform(-180.0, 180.0)};
    country.user_share = shares[i];
    geo.countries_.push_back(country);
  }

  // Cities: Zipf population weights within the country, clustered around
  // the country center (roughly a 10-degree box).
  for (auto& country : geo.countries_) {
    std::vector<double> weights(config.cities_per_country);
    double wtotal = 0;
    for (std::size_t c = 0; c < config.cities_per_country; ++c) {
      weights[c] = 1.0 / std::pow(static_cast<double>(c + 1),
                                  config.city_population_exponent);
      wtotal += weights[c];
    }
    for (std::size_t c = 0; c < config.cities_per_country; ++c) {
      City city;
      city.id = CityId(static_cast<std::uint32_t>(geo.cities_.size()));
      city.country = country.id;
      city.name = country.name + "-city" + std::to_string(c);
      double lon = country.center.lon_deg + rng.uniform(-5.0, 5.0);
      if (lon > 180.0) lon -= 360.0;
      if (lon < -180.0) lon += 360.0;
      city.location = GeoPoint{
          std::clamp(country.center.lat_deg + rng.uniform(-5.0, 5.0), -85.0,
                     85.0),
          lon};
      city.population_weight = weights[c] / wtotal;
      country.cities.push_back(city.id);
      geo.cities_.push_back(city);
    }
  }

  // Facilities: the top half of each country's cities (by weight) get
  // facilities; the largest city gets an extra one.
  for (const auto& country : geo.countries_) {
    const std::size_t large = std::max<std::size_t>(1, country.cities.size() / 2);
    for (std::size_t c = 0; c < large; ++c) {
      const CityId city = country.cities[c];
      const std::size_t count =
          config.facilities_per_large_city + (c == 0 ? 1 : 0);
      for (std::size_t f = 0; f < count; ++f) {
        Facility facility;
        facility.id = FacilityId(static_cast<std::uint32_t>(geo.facilities_.size()));
        facility.city = city;
        facility.name = geo.city(city).name + "-colo" + std::to_string(f);
        geo.facilities_.push_back(facility);
      }
    }
  }
  return geo;
}

std::vector<FacilityId> Geography::facilities_in(CityId city) const {
  std::vector<FacilityId> out;
  for (const auto& f : facilities_) {
    if (f.city == city) out.push_back(f.id);
  }
  return out;
}

CityId Geography::sample_city(CountryId country, Rng& rng) const {
  const auto& c = this->country(country);
  assert(!c.cities.empty());
  std::vector<double> weights;
  weights.reserve(c.cities.size());
  for (const CityId id : c.cities) {
    weights.push_back(city(id).population_weight);
  }
  return c.cities[rng.weighted_index(weights)];
}

CountryId Geography::sample_country(Rng& rng) const {
  assert(!countries_.empty());
  std::vector<double> weights;
  weights.reserve(countries_.size());
  for (const auto& c : countries_) weights.push_back(c.user_share);
  return countries_[rng.weighted_index(weights)].id;
}

}  // namespace itm::topology
