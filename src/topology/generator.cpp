#include "topology/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "net/ordered.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itm::topology {

namespace {

struct NamedIsp {
  std::size_t country;
  const char* name;
  double size_factor;
};

// Stand-in names for large eyeballs in the first five countries so the
// Figure 2 reproduction prints recognizable rows (synthetic networks).
constexpr NamedIsp kNamedIsps[] = {
    {0, "Orange", 3.2},  {0, "SFR", 2.4},     {0, "Free", 1.9},
    {0, "Bouygues", 1.3},{0, "Free_M", 0.8},  {0, "El_tele", 0.2},
    {1, "NTT_E", 4.5},   {1, "KDDI_J", 2.8},  {1, "SoftB_J", 2.4},
    {2, "KT_K", 2.2},    {2, "SKB_K", 1.7},   {2, "LGU_K", 1.2},
    {3, "BT_A", 2.6},    {3, "Sky_A", 1.8},   {3, "VirginM", 1.5},
    {4, "Comca", 6.0},   {4, "Chart", 4.0},   {4, "ATT_C", 3.5},
    {4, "Verz", 2.5},
};

const char* kHypergiantNames[] = {"HG-Search", "HG-Social", "HG-Video",
                                  "HG-Cloud",  "HG-Shop",   "HG-CDN",
                                  "HG-Games",  "HG-News"};

// Facilities of the geographically largest city of a country.
std::vector<FacilityId> main_facilities(const Geography& geo,
                                        CountryId country) {
  const auto& c = geo.country(country);
  return geo.facilities_in(c.cities.front());
}

std::vector<FacilityId> some_facilities(const Geography& geo, CityId city,
                                        std::size_t max_count, Rng& rng) {
  auto all = geo.facilities_in(city);
  if (all.size() > max_count) {
    rng.shuffle(all);
    all.resize(max_count);
  }
  return all;
}

std::size_t shared_facility_count(const AsInfo& a, const AsInfo& b) {
  std::size_t shared = 0;
  for (const auto fa : a.facilities) {
    for (const auto fb : b.facilities) {
      if (fa == fb) {
        ++shared;
        break;
      }
    }
  }
  return shared;
}

std::vector<FacilityId> shared_facilities(const AsInfo& a, const AsInfo& b) {
  std::vector<FacilityId> shared;
  for (const auto fa : a.facilities) {
    for (const auto fb : b.facilities) {
      if (fa == fb) {
        shared.push_back(fa);
        break;
      }
    }
  }
  return shared;
}

double policy_scale(PeeringPolicy a, PeeringPolicy b, double peer_size) {
  const bool a_restrictive = a == PeeringPolicy::kRestrictive;
  const bool b_restrictive = b == PeeringPolicy::kRestrictive;
  if (a_restrictive || b_restrictive) {
    // Restrictive networks only entertain very large peers.
    return peer_size > 2.5 ? 0.25 : 0.02;
  }
  const int open_count = (a == PeeringPolicy::kOpen ? 1 : 0) +
                         (b == PeeringPolicy::kOpen ? 1 : 0);
  switch (open_count) {
    case 2: return 0.9;
    case 1: return 0.5;
    default: return 0.3;
  }
}

double profile_scale(TrafficProfile a, TrafficProfile b) {
  const auto outboundness = [](TrafficProfile p) {
    switch (p) {
      case TrafficProfile::kHeavyOutbound: return 2;
      case TrafficProfile::kMostlyOutbound: return 1;
      case TrafficProfile::kBalanced: return 0;
      case TrafficProfile::kMostlyInbound: return -1;
      case TrafficProfile::kHeavyInbound: return -2;
    }
    return 0;
  };
  const int ab = outboundness(a) * outboundness(b);
  if (ab < 0) return 1.5;   // complementary: content <-> eyeball
  if (ab > 1) return 0.7;   // both strongly same-direction
  return 1.0;
}

}  // namespace

double peering_affinity(const AsInfo& a, const AsInfo& b,
                        std::size_t shared, const TopologyConfig& config) {
  if (shared == 0) return 0.0;
  if (a.type == AsType::kTier1 || b.type == AsType::kTier1) return 0.0;
  if (a.type == AsType::kEnterprise || b.type == AsType::kEnterprise)
    return 0.0;
  double p = config.peering_base;
  p *= policy_scale(a.policy, b.policy, std::min(a.size_factor, b.size_factor));
  p *= profile_scale(a.profile, b.profile);
  p *= std::min(1.5, std::sqrt(static_cast<double>(shared)));
  if (a.type == AsType::kTransit && b.type == AsType::kTransit) p *= 0.5;
  return std::clamp(p, 0.0, 0.95);
}

std::vector<Asn> Topology::accesses_in(CountryId country) const {
  std::vector<Asn> out;
  for (const Asn asn : accesses) {
    if (graph.info(asn).country == country) out.push_back(asn);
  }
  std::sort(out.begin(), out.end(), [&](Asn a, Asn b) {
    return graph.info(a).size_factor > graph.info(b).size_factor;
  });
  return out;
}

Topology generate_topology(const TopologyConfig& config, Rng& rng) {
  ITM_SPAN("topology.generate");
  Topology topo;
  topo.geography = Geography::generate(config.geography, rng);
  const Geography& geo = topo.geography;
  AsGraph& graph = topo.graph;

  const std::size_t num_countries = geo.countries().size();

  // ---- Tier-1 backbones: present at the main facility of every country.
  for (std::size_t i = 0; i < config.num_tier1; ++i) {
    AsInfo info;
    info.type = AsType::kTier1;
    info.name = "T1-" + std::to_string(i);
    info.country = CountryId(static_cast<std::uint32_t>(i % num_countries));
    info.home_city = geo.country(info.country).cities.front();
    info.policy = PeeringPolicy::kRestrictive;
    info.profile = TrafficProfile::kBalanced;
    info.size_factor = rng.uniform(2.0, 4.0);
    for (const auto& country : geo.countries()) {
      info.presence_cities.push_back(country.cities.front());
      for (const auto f : main_facilities(geo, country.id)) {
        info.facilities.push_back(f);
      }
    }
    topo.tier1s.push_back(graph.add_as(std::move(info)));
  }

  // ---- Transit providers: national, present in the country's top cities.
  for (std::size_t i = 0; i < config.num_transit; ++i) {
    AsInfo info;
    info.type = AsType::kTransit;
    info.country = geo.sample_country(rng);
    info.name = "TR-" + geo.country(info.country).name + "-" +
                std::to_string(i);
    const auto& cities = geo.country(info.country).cities;
    info.home_city = cities.front();
    info.policy = rng.bernoulli(0.3) ? PeeringPolicy::kOpen
                                     : PeeringPolicy::kSelective;
    info.profile = TrafficProfile::kBalanced;
    info.size_factor = rng.pareto(0.5, 1.4);
    const std::size_t span = std::min<std::size_t>(cities.size(), 3);
    for (std::size_t c = 0; c < span; ++c) {
      info.presence_cities.push_back(cities[c]);
      for (const auto f : some_facilities(geo, cities[c], 2, rng)) {
        info.facilities.push_back(f);
      }
    }
    topo.transits.push_back(graph.add_as(std::move(info)));
  }

  // ---- Access (eyeball) networks, heavy-tailed sizes; named stand-ins
  // first so the Figure 2 case-study rows exist at any scale.
  std::unordered_map<std::uint32_t, std::size_t> named_used;  // country -> next
  for (std::size_t i = 0; i < config.num_access; ++i) {
    AsInfo info;
    info.type = AsType::kAccess;
    info.country = geo.sample_country(rng);
    bool named = false;
    const auto used = named_used[info.country.value()];
    std::size_t seen = 0;
    for (const auto& isp : kNamedIsps) {
      if (isp.country == info.country.value()) {
        if (seen == used) {
          info.name = isp.name;
          info.size_factor = isp.size_factor;
          named = true;
          ++named_used[info.country.value()];
          break;
        }
        ++seen;
      }
    }
    if (!named) {
      info.name = "ISP-" + geo.country(info.country).name + "-" +
                  std::to_string(i);
      info.size_factor = std::min(8.0, rng.pareto(0.3, config.access_size_alpha));
    }
    info.home_city = geo.sample_city(info.country, rng);
    info.policy = info.size_factor > 2.0
                      ? PeeringPolicy::kSelective
                      : (rng.bernoulli(0.5) ? PeeringPolicy::kOpen
                                            : PeeringPolicy::kSelective);
    info.profile = info.size_factor > 1.0 ? TrafficProfile::kHeavyInbound
                                          : TrafficProfile::kMostlyInbound;
    // Bigger eyeballs colocate: home-city facilities plus the national hub.
    if (info.size_factor > 0.6) {
      for (const auto f : some_facilities(geo, info.home_city, 2, rng)) {
        info.facilities.push_back(f);
      }
      for (const auto f : main_facilities(geo, info.country)) {
        if (std::find(info.facilities.begin(), info.facilities.end(), f) ==
            info.facilities.end()) {
          info.facilities.push_back(f);
        }
      }
    }
    topo.accesses.push_back(graph.add_as(std::move(info)));
  }

  // ---- Content networks.
  for (std::size_t i = 0; i < config.num_content; ++i) {
    AsInfo info;
    info.type = AsType::kContent;
    info.country = geo.sample_country(rng);
    info.name = "CT-" + std::to_string(i);
    info.home_city = geo.sample_city(info.country, rng);
    info.policy = PeeringPolicy::kOpen;
    info.profile = rng.bernoulli(0.7) ? TrafficProfile::kHeavyOutbound
                                      : TrafficProfile::kMostlyOutbound;
    info.size_factor = std::min(4.0, rng.pareto(0.4, 1.3));
    for (const auto f : some_facilities(geo, info.home_city, 2, rng)) {
      info.facilities.push_back(f);
    }
    topo.contents.push_back(graph.add_as(std::move(info)));
  }

  // ---- Hypergiants: global facility presence.
  for (std::size_t i = 0; i < config.num_hypergiants; ++i) {
    AsInfo info;
    info.type = AsType::kHypergiant;
    info.country = CountryId(static_cast<std::uint32_t>(i % num_countries));
    info.name = i < std::size(kHypergiantNames)
                    ? kHypergiantNames[i]
                    : "HG-" + std::to_string(i);
    info.home_city = geo.country(info.country).cities.front();
    info.policy = PeeringPolicy::kSelective;
    info.profile = TrafficProfile::kHeavyOutbound;
    info.size_factor = rng.uniform(4.0, 8.0);
    // Hypergiants build out the large markets (top 70% of countries by user
    // share) and only sometimes the small ones, so some users are served
    // cross-border (this drives the anycast-suboptimality experiment).
    std::vector<double> shares;
    for (const auto& country : geo.countries()) {
      shares.push_back(country.user_share);
    }
    std::sort(shares.begin(), shares.end(), std::greater<>());
    const std::size_t guaranteed = std::max<std::size_t>(
        1, static_cast<std::size_t>(0.7 * static_cast<double>(shares.size())));
    const double share_floor = shares[guaranteed - 1];
    for (const auto& country : geo.countries()) {
      const bool home = country.id == info.country;
      if (!home && country.user_share < share_floor && !rng.bernoulli(0.3)) {
        continue;
      }
      info.presence_cities.push_back(country.cities.front());
      for (const auto f : main_facilities(geo, country.id)) {
        info.facilities.push_back(f);
      }
      if (country.cities.size() > 1 && country.user_share > 0.1) {
        info.presence_cities.push_back(country.cities[1]);
        for (const auto f : geo.facilities_in(country.cities[1])) {
          info.facilities.push_back(f);
        }
      }
    }
    topo.hypergiants.push_back(graph.add_as(std::move(info)));
  }

  // ---- Enterprise stubs.
  for (std::size_t i = 0; i < config.num_enterprise; ++i) {
    AsInfo info;
    info.type = AsType::kEnterprise;
    info.country = geo.sample_country(rng);
    info.name = "EN-" + std::to_string(i);
    info.home_city = geo.sample_city(info.country, rng);
    info.policy = PeeringPolicy::kRestrictive;
    info.profile = TrafficProfile::kMostlyInbound;
    info.size_factor = rng.uniform(0.1, 0.5);
    topo.enterprises.push_back(graph.add_as(std::move(info)));
  }

  // ================= Links =================

  // Tier-1 full mesh (settlement-free).
  for (std::size_t i = 0; i < topo.tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1s.size(); ++j) {
      graph.add_peering(topo.tier1s[i], topo.tier1s[j],
                        shared_facilities(graph.info(topo.tier1s[i]),
                                          graph.info(topo.tier1s[j])));
    }
  }

  // Transit providers buy from 1-2 tier-1s.
  for (const Asn t : topo.transits) {
    const std::size_t count = 1 + (rng.bernoulli(0.6) ? 1 : 0);
    for (const std::size_t idx :
         rng.sample_indices(topo.tier1s.size(), std::min(count, topo.tier1s.size()))) {
      if (!graph.adjacent(t, topo.tier1s[idx])) {
        graph.add_transit(t, topo.tier1s[idx]);
      }
    }
  }

  // Helper: transit providers serving a country (by presence), largest first.
  const auto transits_in = [&](CountryId country) {
    std::vector<Asn> in_country;
    for (const Asn t : topo.transits) {
      if (graph.info(t).country == country) in_country.push_back(t);
    }
    std::sort(in_country.begin(), in_country.end(), [&](Asn a, Asn b) {
      return graph.info(a).size_factor > graph.info(b).size_factor;
    });
    return in_country;
  };

  // Access networks buy transit from national providers (falling back to
  // tier-1s for countries with no transit provider).
  for (const Asn a : topo.accesses) {
    auto candidates = transits_in(graph.info(a).country);
    if (candidates.empty()) candidates = topo.tier1s;
    const std::size_t want =
        1 + rng.next_below(std::min(config.max_access_providers,
                                    candidates.size()));
    for (const std::size_t idx :
         rng.sample_indices(candidates.size(), std::min(want, candidates.size()))) {
      if (!graph.adjacent(a, candidates[idx])) {
        graph.add_transit(a, candidates[idx]);
      }
    }
  }

  // Content networks buy 1-2 transits (anywhere; hosting follows price).
  for (const Asn c : topo.contents) {
    const std::size_t want = 1 + (rng.bernoulli(0.4) ? 1 : 0);
    for (const std::size_t idx :
         rng.sample_indices(topo.transits.size(),
                            std::min(want, topo.transits.size()))) {
      if (!graph.adjacent(c, topo.transits[idx])) {
        graph.add_transit(c, topo.transits[idx]);
      }
    }
  }

  // Hypergiants buy from several tier-1s for universal reach.
  for (const Asn h : topo.hypergiants) {
    for (const std::size_t idx :
         rng.sample_indices(topo.tier1s.size(),
                            std::min<std::size_t>(3, topo.tier1s.size()))) {
      if (!graph.adjacent(h, topo.tier1s[idx])) {
        graph.add_transit(h, topo.tier1s[idx]);
      }
    }
  }

  // Enterprises single-home to an access or transit network in-country.
  for (const Asn e : topo.enterprises) {
    std::vector<Asn> candidates;
    for (const Asn a : topo.accesses) {
      if (graph.info(a).country == graph.info(e).country) {
        candidates.push_back(a);
      }
    }
    if (candidates.empty()) candidates = transits_in(graph.info(e).country);
    if (candidates.empty()) candidates = topo.tier1s;
    graph.add_transit(e, candidates[rng.next_below(candidates.size())]);
  }

  // Facility-based peering among transit/access/content ASes, following the
  // ground-truth affinity model.
  std::unordered_map<std::uint32_t, std::vector<Asn>> facility_members;
  for (const auto& as : graph.ases()) {
    if (as.type == AsType::kTier1 || as.type == AsType::kEnterprise ||
        as.type == AsType::kHypergiant) {
      continue;  // tier-1s already meshed; hypergiants handled below
    }
    for (const auto f : as.facilities) {
      facility_members[f.value()].push_back(as.asn);
    }
  }
  std::unordered_set<std::uint64_t> considered;
  // Facility-sorted iteration: each candidate pair consumes rng.bernoulli
  // draws, so the visit order decides which pairs see which draws
  // (itm-lint: nondet-iteration).
  for (const auto& [facility, members] : net::sorted_items(facility_members)) {
    (void)facility;
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        const Asn a = members[i];
        const Asn b = members[j];
        if (!considered.insert(asn_pair_key(a, b)).second) continue;
        if (graph.adjacent(a, b)) continue;
        const auto& ia = graph.info(a);
        const auto& ib = graph.info(b);
        const auto shared = shared_facility_count(ia, ib);
        if (rng.bernoulli(peering_affinity(ia, ib, shared, config))) {
          graph.add_peering(a, b, shared_facilities(ia, ib));
        }
      }
    }
  }

  // Hypergiant flattening: direct (often PNI) peering with eyeballs, with
  // probability strongly superlinear in eyeball size — so most *users* end
  // up one hop away while most *routes* (small ASes) still go via transit,
  // the route/user contrast of §2.1.
  for (const Asn h : topo.hypergiants) {
    for (const Asn a : topo.accesses) {
      if (graph.adjacent(h, a)) continue;
      const double size = graph.info(a).size_factor;
      const double p = std::clamp(
          config.hypergiant_peering_base *
              (0.2 + 0.7 * std::pow(size, 1.4)),
          0.0, 0.97);
      if (rng.bernoulli(p)) {
        graph.add_peering(h, a,
                          shared_facilities(graph.info(h), graph.info(a)));
      }
    }
    // Hypergiants peer with some transit networks at shared colos; kept
    // rare so that many small-eyeball routes ingress via a tier-1 far from
    // home (the anycast route-suboptimality the paper reports).
    for (const Asn t : topo.transits) {
      if (graph.adjacent(h, t)) continue;
      const auto shared =
          shared_facility_count(graph.info(h), graph.info(t));
      if (shared > 0 && rng.bernoulli(0.2)) {
        graph.add_peering(h, t,
                          shared_facilities(graph.info(h), graph.info(t)));
      }
    }
  }

  // IXPs with route servers at the main facility of larger countries.
  if (config.build_ixps) {
    std::vector<double> country_shares;
    for (const auto& country : geo.countries()) {
      country_shares.push_back(country.user_share);
    }
    std::sort(country_shares.begin(), country_shares.end());
    const double ixp_share_floor = country_shares[country_shares.size() / 2];
    for (const auto& country : geo.countries()) {
      if (country.user_share < ixp_share_floor) continue;
      const auto facilities = main_facilities(geo, country.id);
      if (facilities.empty()) continue;
      Ixp ixp;
      ixp.id = IxpId(static_cast<std::uint32_t>(topo.ixps.size()));
      ixp.name = country.name + "-IX";
      ixp.facility = facilities.front();
      for (const auto& as : graph.ases()) {
        if (as.type == AsType::kTier1 || as.type == AsType::kEnterprise ||
            as.type == AsType::kHypergiant) {
          continue;  // tier-1s/hypergiants use PNIs; enterprises don't peer
        }
        if (std::find(as.facilities.begin(), as.facilities.end(),
                      ixp.facility) == as.facilities.end()) {
          continue;
        }
        const double p_join = as.policy == PeeringPolicy::kOpen
                                  ? config.ixp_join_open
                                  : config.ixp_join_selective;
        if (!rng.bernoulli(p_join)) continue;
        ixp.members.push_back(as.asn);
        const double p_rs = as.policy == PeeringPolicy::kOpen
                                ? config.ixp_route_server_rate
                                : config.ixp_route_server_selective;
        if (rng.bernoulli(p_rs)) {
          ixp.route_server_participants.push_back(as.asn);
        }
      }
      // Multilateral mesh among route-server participants.
      for (std::size_t i = 0; i < ixp.route_server_participants.size(); ++i) {
        for (std::size_t j = i + 1; j < ixp.route_server_participants.size();
             ++j) {
          const Asn a = ixp.route_server_participants[i];
          const Asn b = ixp.route_server_participants[j];
          if (!graph.adjacent(a, b)) {
            graph.add_peering(a, b, {ixp.facility},
                              /*via_route_server=*/true);
          }
        }
      }
      if (!ixp.members.empty()) topo.ixps.push_back(std::move(ixp));
    }
  }

  topo.addresses = AddressPlan::build(graph, config.addressing);
  topo.table = AsTable::build(graph, geo);

  // Inventory gauges: seed-deterministic, idempotent across regenerations
  // within one registry scope.
  obs::gauge_set("topology.ases", static_cast<std::int64_t>(graph.size()));
  obs::gauge_set("topology.links",
                 static_cast<std::int64_t>(graph.links().size()));
  obs::gauge_set("topology.ixps", static_cast<std::int64_t>(topo.ixps.size()));
  obs::gauge_set("topology.facilities",
                 static_cast<std::int64_t>(geo.facilities().size()));
  obs::gauge_set("topology.routable_slash24s",
                 static_cast<std::int64_t>(
                     topo.addresses.total_slash24_count()));
  return topo;
}

}  // namespace itm::topology
