#include "topology/as_graph.h"

#include <cassert>
#include <deque>

namespace itm::topology {

const char* to_string(AsType type) {
  switch (type) {
    case AsType::kTier1: return "tier1";
    case AsType::kTransit: return "transit";
    case AsType::kAccess: return "access";
    case AsType::kContent: return "content";
    case AsType::kHypergiant: return "hypergiant";
    case AsType::kEnterprise: return "enterprise";
  }
  return "unknown";
}

const char* to_string(PeeringPolicy policy) {
  switch (policy) {
    case PeeringPolicy::kOpen: return "open";
    case PeeringPolicy::kSelective: return "selective";
    case PeeringPolicy::kRestrictive: return "restrictive";
  }
  return "unknown";
}

const char* to_string(TrafficProfile profile) {
  switch (profile) {
    case TrafficProfile::kHeavyOutbound: return "heavy-outbound";
    case TrafficProfile::kMostlyOutbound: return "mostly-outbound";
    case TrafficProfile::kBalanced: return "balanced";
    case TrafficProfile::kMostlyInbound: return "mostly-inbound";
    case TrafficProfile::kHeavyInbound: return "heavy-inbound";
  }
  return "unknown";
}

Asn AsGraph::add_as(AsInfo info) {
  const Asn asn(static_cast<std::uint32_t>(ases_.size()));
  info.asn = asn;
  if (info.presence_cities.empty()) {
    info.presence_cities.push_back(info.home_city);
  }
  ases_.push_back(std::move(info));
  adjacency_.emplace_back();
  return asn;
}

void AsGraph::add_transit(Asn customer, Asn provider,
                          std::vector<FacilityId> facilities) {
  assert(customer.value() < ases_.size() && provider.value() < ases_.size());
  assert(customer != provider);
  assert(!adjacent(customer, provider));
  const auto link_index = static_cast<std::uint32_t>(links_.size());
  links_.push_back(
      Link{customer, provider, Relation::kCustomer, std::move(facilities)});
  adjacency_[customer.value()].push_back(
      Neighbor{provider, Relation::kProvider, link_index});
  adjacency_[provider.value()].push_back(
      Neighbor{customer, Relation::kCustomer, link_index});
}

void AsGraph::add_peering(Asn a, Asn b, std::vector<FacilityId> facilities,
                          bool via_route_server) {
  assert(a.value() < ases_.size() && b.value() < ases_.size());
  assert(a != b);
  assert(!adjacent(a, b));
  const auto link_index = static_cast<std::uint32_t>(links_.size());
  links_.push_back(Link{a, b, Relation::kPeer, std::move(facilities),
                        via_route_server});
  adjacency_[a.value()].push_back(Neighbor{b, Relation::kPeer, link_index});
  adjacency_[b.value()].push_back(Neighbor{a, Relation::kPeer, link_index});
}

bool AsGraph::adjacent(Asn a, Asn b) const {
  return relation(a, b).has_value();
}

std::optional<Relation> AsGraph::relation(Asn a, Asn b) const {
  for (const auto& n : adjacency_[a.value()]) {
    if (n.asn == b) return n.relation;
  }
  return std::nullopt;
}

std::vector<Asn> AsGraph::ases_of_type(AsType type) const {
  std::vector<Asn> out;
  for (const auto& as : ases_) {
    if (as.type == type) out.push_back(as.asn);
  }
  return out;
}

std::vector<Asn> AsGraph::customer_cone(Asn asn) const {
  std::vector<bool> seen(ases_.size(), false);
  std::vector<Asn> cone;
  std::deque<Asn> frontier{asn};
  seen[asn.value()] = true;
  while (!frontier.empty()) {
    const Asn current = frontier.front();
    frontier.pop_front();
    cone.push_back(current);
    for (const auto& n : adjacency_[current.value()]) {
      if (n.relation == Relation::kCustomer && !seen[n.asn.value()]) {
        seen[n.asn.value()] = true;
        frontier.push_back(n.asn);
      }
    }
  }
  return cone;
}

std::size_t AsGraph::memory_bytes() const {
  std::size_t total = ases_.capacity() * sizeof(AsInfo) +
                      links_.capacity() * sizeof(Link) +
                      adjacency_.capacity() * sizeof(adjacency_[0]);
  for (const auto& as : ases_) {
    if (as.name.size() >= sizeof(std::string)) total += as.name.capacity() + 1;
    total += as.presence_cities.capacity() * sizeof(CityId) +
             as.facilities.capacity() * sizeof(FacilityId);
  }
  // links_ here is the std::vector<Link> member, not routing::PublicView's
  // unordered set of the same name; include-closure scoping keeps the two
  // apart now that the linter resolves names per translation unit.
  for (const auto& link : links_) {
    total += link.facilities.capacity() * sizeof(FacilityId);
  }
  for (const auto& adj : adjacency_) {
    total += adj.capacity() * sizeof(Neighbor);
  }
  return total;
}

AsGraph::Degree AsGraph::degree(Asn asn) const {
  Degree d;
  for (const auto& n : adjacency_[asn.value()]) {
    switch (n.relation) {
      case Relation::kCustomer: ++d.customers; break;
      case Relation::kPeer: ++d.peers; break;
      case Relation::kProvider: ++d.providers; break;
    }
  }
  return d;
}

}  // namespace itm::topology
