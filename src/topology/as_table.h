// Struct-of-arrays view of the AS graph: the Internet-scale substrate layout
// (DESIGN.md decision #10).
//
// AsGraph stores one AsInfo struct per AS — convenient to build, but every
// per-AS field lookup drags a whole cache line of unrelated fields (and a
// heap-allocated name) along, and per-AS vectors (presence cities,
// facilities, adjacency) scatter across the heap. AsTable flattens all of it
// once after generation:
//
//   * one dense column per scalar attribute (type, country, rank, cone, ...),
//     indexed by ASN — a column scan touches only the bytes it needs;
//   * CSR (offset + flat array) storage for adjacency, presence cities and
//     facilities — one allocation each, no pointer chasing;
//   * AS and country names interned into a net::StringTable whose order
//     matches the `.itms` snapshot's string section (AS names in dense ASN
//     order, then country names), so the snapshot writer reuses the table
//     instead of re-interning;
//   * the asn_to_rank / rank_to_asns flattening the related BGP simulators
//     use: rank 0 = ASes with no customers, rank(as) = 1 + max rank of its
//     customers. Rank sweeps are the substrate for staged parallel
//     propagation (ROADMAP) and give a cheap DAG-order iteration.
//
// The table is a *derived, immutable* view: build it after the graph stops
// changing. AsGraph remains the mutable builder API (and the legacy layout
// the equivalence tests compare against).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ids.h"
#include "net/interner.h"
#include "topology/as_graph.h"
#include "topology/geography.h"

namespace itm::topology {

class AsTable {
 public:
  static AsTable build(const AsGraph& graph, const Geography& geography);

  [[nodiscard]] std::size_t size() const { return type_.size(); }

  // ---- scalar columns, indexed by dense ASN ----
  [[nodiscard]] AsType type(Asn asn) const { return type_[asn.value()]; }
  [[nodiscard]] CountryId country(Asn asn) const {
    return CountryId(country_[asn.value()]);
  }
  [[nodiscard]] CityId home_city(Asn asn) const {
    return CityId(home_city_[asn.value()]);
  }
  [[nodiscard]] PeeringPolicy policy(Asn asn) const {
    return policy_[asn.value()];
  }
  [[nodiscard]] TrafficProfile profile(Asn asn) const {
    return profile_[asn.value()];
  }
  [[nodiscard]] double size_factor(Asn asn) const {
    return size_factor_[asn.value()];
  }
  [[nodiscard]] std::uint32_t name_ref(Asn asn) const {
    return name_ref_[asn.value()];
  }
  [[nodiscard]] const std::string& name(Asn asn) const {
    return strings_.at(name_ref_[asn.value()]);
  }
  [[nodiscard]] std::uint32_t country_name_ref(CountryId country) const {
    return country_name_ref_[country.value()];
  }

  // ---- customer-cone and rank columns ----
  // CAIDA-style customer cone size (the AS itself plus everything reachable
  // over provider->customer edges), equal to
  // AsGraph::customer_cone_size(asn).
  [[nodiscard]] std::uint32_t cone_size(Asn asn) const {
    return cone_size_[asn.value()];
  }
  // rank 0 = no customers; rank(as) = 1 + max rank over customers.
  [[nodiscard]] std::uint32_t rank(Asn asn) const {
    return rank_of_[asn.value()];
  }
  [[nodiscard]] std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(rank_offset_.size() - 1);
  }
  // All ASes of a rank, ascending ASN (rank_to_asns flattened to CSR).
  [[nodiscard]] std::span<const std::uint32_t> ases_at_rank(
      std::uint32_t rank) const {
    return {rank_ases_.data() + rank_offset_[rank],
            rank_ases_.data() + rank_offset_[rank + 1]};
  }

  // ---- CSR adjacency (same order as AsGraph::neighbors) ----
  struct NeighborView {
    Asn asn;
    Relation relation;
    std::uint32_t link_index;
  };
  [[nodiscard]] std::size_t degree(Asn asn) const {
    return adj_offset_[asn.value() + 1] - adj_offset_[asn.value()];
  }
  [[nodiscard]] NeighborView neighbor(Asn asn, std::size_t i) const {
    const std::size_t at = adj_offset_[asn.value()] + i;
    return {Asn(adj_asn_[at]), adj_relation_[at], adj_link_[at]};
  }

  // ---- CSR presence cities and facilities ----
  [[nodiscard]] std::span<const CityId> presence_cities(Asn asn) const {
    return {presence_cities_.data() + presence_offset_[asn.value()],
            presence_cities_.data() + presence_offset_[asn.value() + 1]};
  }
  [[nodiscard]] std::span<const FacilityId> facilities(Asn asn) const {
    return {facilities_.data() + facility_offset_[asn.value()],
            facilities_.data() + facility_offset_[asn.value() + 1]};
  }

  // The interned AS + country names, in snapshot string-section order.
  [[nodiscard]] const net::StringTable& strings() const { return strings_; }

  // Heap bytes of every column (the bench's bytes/AS numerator).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::vector<AsType> type_;
  std::vector<PeeringPolicy> policy_;
  std::vector<TrafficProfile> profile_;
  std::vector<std::uint32_t> country_;
  std::vector<std::uint32_t> home_city_;
  std::vector<std::uint32_t> name_ref_;
  std::vector<double> size_factor_;
  std::vector<std::uint32_t> cone_size_;

  std::vector<std::uint32_t> rank_of_;
  std::vector<std::uint32_t> rank_offset_;  // num_ranks + 1
  std::vector<std::uint32_t> rank_ases_;

  std::vector<std::uint32_t> adj_offset_;  // size + 1
  std::vector<std::uint32_t> adj_asn_;
  std::vector<Relation> adj_relation_;
  std::vector<std::uint32_t> adj_link_;

  std::vector<std::uint32_t> presence_offset_;  // size + 1
  std::vector<CityId> presence_cities_;
  std::vector<std::uint32_t> facility_offset_;  // size + 1
  std::vector<FacilityId> facilities_;

  std::vector<std::uint32_t> country_name_ref_;
  net::StringTable strings_;
};

}  // namespace itm::topology
