// Topology interchange in the CAIDA AS-relationship format.
//
// Writes/reads the de-facto standard serialization used by CAIDA's as-rel
// datasets: one `<as-a>|<as-b>|<rel>` line per link, where rel is -1 for
// provider-customer (a is the provider) and 0 for peer-peer; comment lines
// start with '#'. Exporting lets external tools consume the synthetic
// topology; importing lets every itm algorithm (BGP propagation, public
// view, prediction, recommender) run on real-world AS-relationship files.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "topology/as_graph.h"

namespace itm::topology {

// Serializes the graph's links (ASNs are the dense internal numbers).
void write_as_rel(const AsGraph& graph, std::ostream& os);

struct AsRelParseError {
  std::size_t line = 0;
  std::string message;
};

// Parses an as-rel stream into a graph. External ASNs are arbitrary
// integers; they are densified in first-appearance order and the original
// numbers stored in each AsInfo's name ("AS<original>"). Returns the error
// on malformed input.
[[nodiscard]] std::optional<AsRelParseError> read_as_rel(std::istream& is,
                                                         AsGraph& graph);

}  // namespace itm::topology
