#include "topology/address_plan.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace itm::topology {

namespace {

// Smallest power of two >= n.
std::uint32_t ceil_pow2(std::uint32_t n) {
  return n <= 1 ? 1 : std::bit_ceil(n);
}

}  // namespace

AddressPlan AddressPlan::build(const AsGraph& graph,
                               const AddressPlanConfig& config) {
  AddressPlan plan;
  plan.per_as_.reserve(graph.size());
  plan.origins_.reserve(graph.size());  // one aggregate per AS

  // Allocation cursor in units of /24s, starting at 1.0.0.0.
  std::uint32_t cursor_24 = 1u << 16;  // 1.0.0.0 is the 65536-th /24

  for (const auto& as : graph.ases()) {
    AsAddressing a;
    a.asn = as.asn;
    switch (as.type) {
      case AsType::kAccess:
        a.user_slash24s = static_cast<std::uint32_t>(std::max(
            1.0, std::round(config.user_24s_per_access_as * as.size_factor)));
        break;
      case AsType::kContent:
        a.content_slash24s = static_cast<std::uint32_t>(std::max(
            1.0,
            std::round(config.content_24s_per_content_as * as.size_factor)));
        break;
      case AsType::kHypergiant:
        a.content_slash24s = static_cast<std::uint32_t>(std::max(
            1.0,
            std::round(config.content_24s_per_hypergiant * as.size_factor)));
        break;
      case AsType::kTier1:
      case AsType::kTransit:
      case AsType::kEnterprise:
        break;
    }
    a.misc_slash24s = config.misc_24s;
    a.announced_slash24s =
        a.user_slash24s + a.content_slash24s + a.misc_slash24s + 1;
    const std::uint32_t span = ceil_pow2(a.announced_slash24s);
    // Align the aggregate to its size.
    cursor_24 = (cursor_24 + span - 1) / span * span;
    const auto length =
        static_cast<std::uint8_t>(24 - std::countr_zero(span));
    a.aggregate = Ipv4Prefix(Ipv4Addr(cursor_24 << 8), length);
    a.infra_slash24 = a.aggregate.child(24, a.announced_slash24s - 1);
    cursor_24 += span;
    if (cursor_24 >= (224u << 16)) {  // stay below multicast space
      throw std::length_error(
          "IPv4 address plan exhausted; reduce AS counts or per-AS /24s");
    }

    plan.origins_.insert(a.aggregate, as.asn);
    plan.total_slash24s_ += a.announced_slash24s;
    plan.per_as_.push_back(a);
  }
  return plan;
}

std::optional<Asn> AddressPlan::origin_of(Ipv4Addr addr) const {
  const auto match = origins_.longest_match(addr);
  if (!match) return std::nullopt;
  return match->second.get();
}

std::optional<Asn> AddressPlan::origin_of(const Ipv4Prefix& prefix) const {
  const auto match = origins_.longest_covering(prefix);
  if (!match) return std::nullopt;
  return match->second.get();
}

Ipv4Prefix AddressPlan::user_slash24(Asn asn, std::uint32_t i) const {
  const auto& a = of(asn);
  assert(i < a.user_slash24s);
  return a.aggregate.child(24, i);
}

Ipv4Prefix AddressPlan::content_slash24(Asn asn, std::uint32_t i) const {
  const auto& a = of(asn);
  assert(i < a.content_slash24s);
  return a.aggregate.child(24, a.user_slash24s + i);
}

Ipv4Prefix AddressPlan::misc_slash24(Asn asn, std::uint32_t i) const {
  const auto& a = of(asn);
  assert(i < a.misc_slash24s);
  return a.aggregate.child(24, a.user_slash24s + a.content_slash24s + i);
}

std::vector<Ipv4Prefix> AddressPlan::routable_slash24s() const {
  std::vector<Ipv4Prefix> out;
  out.reserve(total_slash24s_);
  for (const auto& a : per_as_) {
    for (std::uint64_t i = 0; i < a.announced_slash24s; ++i) {
      out.push_back(a.aggregate.child(24, i));
    }
  }
  return out;
}

std::vector<Ipv4Prefix> AddressPlan::user_slash24s() const {
  std::vector<Ipv4Prefix> out;
  for (const auto& a : per_as_) {
    for (std::uint32_t i = 0; i < a.user_slash24s; ++i) {
      out.push_back(a.aggregate.child(24, i));
    }
  }
  return out;
}

}  // namespace itm::topology
