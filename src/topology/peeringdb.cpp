#include "topology/peeringdb.h"

#include <algorithm>
#include <cmath>

namespace itm::topology {

namespace {

const char* info_type_of(AsType type) {
  switch (type) {
    case AsType::kTier1: return "NSP";
    case AsType::kTransit: return "NSP";
    case AsType::kAccess: return "Cable/DSL/ISP";
    case AsType::kContent: return "Content";
    case AsType::kHypergiant: return "Content";
    case AsType::kEnterprise: return "Enterprise";
  }
  return "Not Disclosed";
}

double register_probability(AsType type, const PeeringDbConfig& config) {
  switch (type) {
    case AsType::kTier1: return config.p_register_tier1;
    case AsType::kTransit: return config.p_register_transit;
    case AsType::kAccess: return config.p_register_access;
    case AsType::kContent: return config.p_register_content;
    case AsType::kHypergiant: return config.p_register_hypergiant;
    case AsType::kEnterprise: return config.p_register_enterprise;
  }
  return 0.0;
}

}  // namespace

PeeringDb PeeringDb::build(const AsGraph& graph, const PeeringDbConfig& config,
                           Rng& rng) {
  PeeringDb db;
  db.index_.assign(graph.size(), std::nullopt);
  for (const auto& as : graph.ases()) {
    // Networks with no facility presence have nothing to declare and rarely
    // register; still allow it occasionally so coverage is imperfect both ways.
    double p = register_probability(as.type, config);
    if (as.facilities.empty()) p *= 0.2;
    if (!rng.bernoulli(p)) continue;

    PeeringDbRecord rec;
    rec.asn = as.asn;
    rec.name = as.name;
    rec.info_type = info_type_of(as.type);
    rec.policy = as.policy;
    rec.profile = as.profile;
    for (const auto f : as.facilities) {
      if (rng.bernoulli(config.p_declare_facility)) {
        rec.facilities.push_back(f);
      }
    }
    // Traffic level: noisy log of true size, clamped to 1..6.
    const double noisy = std::log2(std::max(0.1, as.size_factor)) + 3.0 +
                         rng.normal(0.0, 0.5);
    rec.traffic_level = static_cast<int>(std::clamp(noisy, 1.0, 6.0));
    db.index_[as.asn.value()] = db.records_.size();
    db.records_.push_back(std::move(rec));
  }
  return db;
}

const PeeringDbRecord* PeeringDb::lookup(Asn asn) const {
  const auto& slot = index_.at(asn.value());
  return slot ? &records_[*slot] : nullptr;
}

std::vector<Asn> PeeringDb::members_of(FacilityId facility) const {
  std::vector<Asn> out;
  for (const auto& rec : records_) {
    if (std::find(rec.facilities.begin(), rec.facilities.end(), facility) !=
        rec.facilities.end()) {
      out.push_back(rec.asn);
    }
  }
  return out;
}

}  // namespace itm::topology
