// Synthetic Internet topology generator.
//
// Produces an AS graph with the structural properties the paper's
// measurement techniques depend on:
//   * a small tier-1 clique and a layer of national transit providers,
//   * heavy-tailed access (eyeball) networks concentrated in a few countries,
//   * a handful of hypergiants that peer directly with most large eyeballs
//     ("Internet flattening" — most user traffic is <= 1 AS hop),
//   * content and enterprise stubs,
//   * peering constrained to shared colocation facilities with a
//     policy/size/profile-driven probability (the ground truth that the
//     §3.3.3 peering recommender tries to learn back).
//
// A few large eyeballs in the first five countries carry stable stand-in
// names (Orange, Free, ...) so the Figure 2 reproduction prints recognizable
// rows; they are synthetic networks, not measurements of the real ISPs.
#pragma once

#include <vector>

#include "net/rng.h"
#include "topology/address_plan.h"
#include "topology/as_graph.h"
#include "topology/as_table.h"
#include "topology/geography.h"

namespace itm::topology {

struct TopologyConfig {
  GeographyConfig geography;

  std::size_t num_tier1 = 8;
  std::size_t num_transit = 48;
  std::size_t num_access = 240;
  std::size_t num_content = 90;
  std::size_t num_hypergiants = 6;
  std::size_t num_enterprise = 80;

  // Pareto shape for access-network size factors (smaller = heavier tail).
  double access_size_alpha = 1.1;
  // Providers per access network, 1..max.
  std::size_t max_access_providers = 3;
  // Base probability that a hypergiant peers directly with an access AS of
  // median size; scales up with eyeball size (see implementation).
  double hypergiant_peering_base = 0.35;
  // Probability scale for non-hypergiant peering at shared facilities.
  double peering_base = 0.25;
  // IXPs: one per country whose user share reaches the median; join and
  // route-server participation probabilities by declared policy.
  bool build_ixps = true;
  double ixp_join_open = 0.85;
  double ixp_join_selective = 0.5;
  // Route-server participation by policy (selective networks commonly use
  // route servers too, just less universally).
  double ixp_route_server_rate = 0.9;
  double ixp_route_server_selective = 0.45;

  AddressPlanConfig addressing;
};

// An Internet exchange point: a shared fabric at one facility. Members may
// peer bilaterally (covered by the facility-based affinity model); open
// members additionally join the route server and peer multilaterally with
// every other participant — the link class [4] found overwhelmingly
// invisible in public topologies.
struct Ixp {
  IxpId id;
  std::string name;
  FacilityId facility;
  std::vector<Asn> members;
  std::vector<Asn> route_server_participants;
};

struct Topology {
  Geography geography;
  AsGraph graph;
  // Immutable SoA view of `graph` (ranks, cones, CSR adjacency, interned
  // names), built once generation finishes; the scale-friendly access path.
  AsTable table;
  AddressPlan addresses;
  std::vector<Ixp> ixps;

  std::vector<Asn> tier1s;
  std::vector<Asn> transits;
  std::vector<Asn> accesses;
  std::vector<Asn> contents;
  std::vector<Asn> hypergiants;
  std::vector<Asn> enterprises;

  // Access ASes per country, largest first.
  [[nodiscard]] std::vector<Asn> accesses_in(CountryId country) const;
};

// Ground-truth probability that two ASes would peer given a shared facility;
// exposed so tests and the recommender evaluation can reference the exact
// generative model.
[[nodiscard]] double peering_affinity(const AsInfo& a, const AsInfo& b,
                                      std::size_t shared_facilities,
                                      const TopologyConfig& config);

[[nodiscard]] Topology generate_topology(const TopologyConfig& config,
                                         Rng& rng);

}  // namespace itm::topology
