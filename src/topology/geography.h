// Synthetic world geography: countries, cities, and colocation facilities.
//
// The generator lays countries out on the globe, places cities inside them
// with population weights, and sites colocation facilities in the larger
// cities. ASes declare presence in cities/facilities; peering links require
// (mostly) a shared facility, mirroring how interconnection works in
// practice and enabling the paper's facility-based peering-prediction idea
// (§3.3.3).
#pragma once

#include <string>
#include <vector>

#include "net/geo.h"
#include "net/ids.h"
#include "net/rng.h"

namespace itm::topology {

struct City {
  CityId id;
  CountryId country;
  std::string name;
  GeoPoint location;
  // Relative population weight within the country (sums to 1 per country).
  double population_weight = 0.0;
};

struct Facility {
  FacilityId id;
  CityId city;
  std::string name;
};

struct Country {
  CountryId id;
  std::string name;
  GeoPoint center;
  // Relative share of the world's Internet users in this country.
  double user_share = 0.0;
  std::vector<CityId> cities;
};

struct GeographyConfig {
  std::size_t num_countries = 6;
  std::size_t cities_per_country = 8;
  std::size_t facilities_per_large_city = 2;
  // Zipf exponent over city populations within a country.
  double city_population_exponent = 1.0;
  // Zipf exponent over countries' user shares.
  double country_share_exponent = 0.8;
};

class Geography {
 public:
  static Geography generate(const GeographyConfig& config, Rng& rng);

  [[nodiscard]] const std::vector<Country>& countries() const {
    return countries_;
  }
  [[nodiscard]] const std::vector<City>& cities() const { return cities_; }
  [[nodiscard]] const std::vector<Facility>& facilities() const {
    return facilities_;
  }

  [[nodiscard]] const Country& country(CountryId id) const {
    return countries_.at(id.value());
  }
  [[nodiscard]] const City& city(CityId id) const {
    return cities_.at(id.value());
  }
  [[nodiscard]] const Facility& facility(FacilityId id) const {
    return facilities_.at(id.value());
  }

  // Facilities located in the given city.
  [[nodiscard]] std::vector<FacilityId> facilities_in(CityId city) const;

  // Weighted random city of a country (by population weight).
  [[nodiscard]] CityId sample_city(CountryId country, Rng& rng) const;

  // Weighted random country (by user share).
  [[nodiscard]] CountryId sample_country(Rng& rng) const;

  [[nodiscard]] double distance_km(CityId a, CityId b) const {
    return haversine_km(city(a).location, city(b).location);
  }

 private:
  std::vector<Country> countries_;
  std::vector<City> cities_;
  std::vector<Facility> facilities_;
};

}  // namespace itm::topology
