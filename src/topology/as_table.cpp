#include "topology/as_table.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace itm::topology {

namespace {

// Customer-cone sizes for every AS with one shared scratch pad: an
// epoch-stamped visited array avoids a per-AS O(V) clear, so the total cost
// is the cone mass (sum of cone sizes), not V * cone work.
std::vector<std::uint32_t> cone_sizes(const AsGraph& graph) {
  const std::size_t n = graph.size();
  std::vector<std::uint32_t> sizes(n, 0);
  std::vector<std::uint32_t> visited_epoch(n, 0);
  std::vector<std::uint32_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t epoch = static_cast<std::uint32_t>(i) + 1;
    std::uint32_t count = 0;
    stack.assign(1, static_cast<std::uint32_t>(i));
    visited_epoch[i] = epoch;
    while (!stack.empty()) {
      const std::uint32_t at = stack.back();
      stack.pop_back();
      ++count;
      for (const auto& nb : graph.neighbors(Asn(at))) {
        if (nb.relation != Relation::kCustomer) continue;
        const std::uint32_t c = nb.asn.value();
        if (visited_epoch[c] == epoch) continue;
        visited_epoch[c] = epoch;
        stack.push_back(c);
      }
    }
    sizes[i] = count;
  }
  return sizes;
}

// Longest-customer-chain ranks over the provider DAG: rank 0 for ASes with
// no customers, otherwise 1 + max rank over customers. Computed with a
// Kahn-style sweep over customer->provider edges (the generator only builds
// acyclic transit relationships; a defensive assert guards the invariant).
std::vector<std::uint32_t> customer_ranks(const AsGraph& graph) {
  const std::size_t n = graph.size();
  std::vector<std::uint32_t> rank(n, 0);
  std::vector<std::uint32_t> pending(n, 0);  // unresolved customers
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& nb : graph.neighbors(Asn(i))) {
      if (nb.relation == Relation::kCustomer) ++pending[i];
    }
  }
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) queue.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t resolved = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t at = queue[head];
    ++resolved;
    for (const auto& nb : graph.neighbors(Asn(at))) {
      if (nb.relation != Relation::kProvider) continue;
      const std::uint32_t p = nb.asn.value();
      rank[p] = std::max(rank[p], rank[at] + 1);
      if (--pending[p] == 0) queue.push_back(p);
    }
  }
  assert(resolved == n && "customer-provider graph must be acyclic");
  (void)resolved;
  return rank;
}

}  // namespace

AsTable AsTable::build(const AsGraph& graph, const Geography& geography) {
  AsTable t;
  const std::size_t n = graph.size();
  t.type_.reserve(n);
  t.policy_.reserve(n);
  t.profile_.reserve(n);
  t.country_.reserve(n);
  t.home_city_.reserve(n);
  t.name_ref_.reserve(n);
  t.size_factor_.reserve(n);
  t.adj_offset_.reserve(n + 1);
  t.presence_offset_.reserve(n + 1);
  t.facility_offset_.reserve(n + 1);

  // Scalar columns + string interning in dense ASN order (the snapshot's
  // string-section order: AS names first, then country names).
  for (const auto& as : graph.ases()) {
    t.type_.push_back(as.type);
    t.policy_.push_back(as.policy);
    t.profile_.push_back(as.profile);
    t.country_.push_back(as.country.value());
    t.home_city_.push_back(as.home_city.value());
    t.name_ref_.push_back(t.strings_.intern(as.name));
    t.size_factor_.push_back(as.size_factor);
  }
  t.country_name_ref_.reserve(geography.countries().size());
  for (const auto& country : geography.countries()) {
    t.country_name_ref_.push_back(t.strings_.intern(country.name));
  }

  // CSR adjacency, preserving AsGraph's per-AS neighbor order.
  std::size_t total_neighbors = 0;
  std::size_t total_presence = 0;
  std::size_t total_facilities = 0;
  for (const auto& as : graph.ases()) {
    total_neighbors += graph.neighbors(as.asn).size();
    total_presence += as.presence_cities.size();
    total_facilities += as.facilities.size();
  }
  t.adj_asn_.reserve(total_neighbors);
  t.adj_relation_.reserve(total_neighbors);
  t.adj_link_.reserve(total_neighbors);
  t.presence_cities_.reserve(total_presence);
  t.facilities_.reserve(total_facilities);
  t.adj_offset_.push_back(0);
  t.presence_offset_.push_back(0);
  t.facility_offset_.push_back(0);
  for (const auto& as : graph.ases()) {
    for (const auto& nb : graph.neighbors(as.asn)) {
      t.adj_asn_.push_back(nb.asn.value());
      t.adj_relation_.push_back(nb.relation);
      t.adj_link_.push_back(nb.link_index);
    }
    t.adj_offset_.push_back(static_cast<std::uint32_t>(t.adj_asn_.size()));
    t.presence_cities_.insert(t.presence_cities_.end(),
                              as.presence_cities.begin(),
                              as.presence_cities.end());
    t.presence_offset_.push_back(
        static_cast<std::uint32_t>(t.presence_cities_.size()));
    t.facilities_.insert(t.facilities_.end(), as.facilities.begin(),
                         as.facilities.end());
    t.facility_offset_.push_back(
        static_cast<std::uint32_t>(t.facilities_.size()));
  }

  t.cone_size_ = cone_sizes(graph);
  t.rank_of_ = customer_ranks(graph);

  // rank_to_asns flattened: bucket counts -> offsets -> fill in ASN order.
  const std::uint32_t num_ranks =
      n == 0 ? 0
             : *std::max_element(t.rank_of_.begin(), t.rank_of_.end()) + 1;
  t.rank_offset_.assign(num_ranks + 1, 0);
  for (const std::uint32_t r : t.rank_of_) ++t.rank_offset_[r + 1];
  for (std::uint32_t r = 0; r < num_ranks; ++r) {
    t.rank_offset_[r + 1] += t.rank_offset_[r];
  }
  t.rank_ases_.resize(n);
  std::vector<std::uint32_t> fill(t.rank_offset_.begin(),
                                  t.rank_offset_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    t.rank_ases_[fill[t.rank_of_[i]]++] = static_cast<std::uint32_t>(i);
  }

  obs::gauge_set("topology.as_table.bytes",
                 static_cast<std::int64_t>(t.memory_bytes()));
  obs::gauge_set("topology.as_table.ranks",
                 static_cast<std::int64_t>(num_ranks));
  return t;
}

std::size_t AsTable::memory_bytes() const {
  const auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(v[0]);
  };
  return vec_bytes(type_) + vec_bytes(policy_) + vec_bytes(profile_) +
         vec_bytes(country_) + vec_bytes(home_city_) + vec_bytes(name_ref_) +
         vec_bytes(size_factor_) + vec_bytes(cone_size_) +
         vec_bytes(rank_of_) + vec_bytes(rank_offset_) +
         vec_bytes(rank_ases_) + vec_bytes(adj_offset_) +
         vec_bytes(adj_asn_) + vec_bytes(adj_relation_) +
         vec_bytes(adj_link_) + vec_bytes(presence_offset_) +
         vec_bytes(presence_cities_) + vec_bytes(facility_offset_) +
         vec_bytes(facilities_) + vec_bytes(country_name_ref_) +
         strings_.memory_bytes();
}

}  // namespace itm::topology
