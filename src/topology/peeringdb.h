// A PeeringDB-like public registry: the subset of topology information a
// researcher can obtain without privileged access.
//
// Records are self-declared, so coverage is incomplete (small networks often
// do not register) and some fields are generalized. The §3.3.3 peering
// recommender consumes this registry, never the ground-truth graph.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/ids.h"
#include "net/rng.h"
#include "topology/as_graph.h"

namespace itm::topology {

struct PeeringDbRecord {
  Asn asn;
  std::string name;
  // Self-declared network type string ("Content", "Cable/DSL/ISP", "NSP"...).
  std::string info_type;
  PeeringPolicy policy = PeeringPolicy::kSelective;
  TrafficProfile profile = TrafficProfile::kBalanced;
  // Declared facility presence (may be a subset of actual presence).
  std::vector<FacilityId> facilities;
  // Order-of-magnitude self-declared traffic level (1..6, like PeeringDB's
  // "traffic" ranges), correlated with — but not equal to — true size.
  int traffic_level = 1;
};

struct PeeringDbConfig {
  // Registration probability by AS type (content networks register most).
  double p_register_hypergiant = 1.0;
  double p_register_content = 0.9;
  double p_register_transit = 0.85;
  double p_register_access = 0.6;
  double p_register_tier1 = 0.9;
  double p_register_enterprise = 0.05;
  // Per-facility probability that a registered AS declares its presence.
  double p_declare_facility = 0.9;
};

class PeeringDb {
 public:
  static PeeringDb build(const AsGraph& graph, const PeeringDbConfig& config,
                         Rng& rng);

  [[nodiscard]] const std::vector<PeeringDbRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const PeeringDbRecord* lookup(Asn asn) const;

  // ASes declaring presence at the facility.
  [[nodiscard]] std::vector<Asn> members_of(FacilityId facility) const;

 private:
  std::vector<PeeringDbRecord> records_;
  std::vector<std::optional<std::size_t>> index_;  // asn -> record index
};

}  // namespace itm::topology
