#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <stdexcept>

namespace itm::obs {

Histogram::Histogram(std::span<const std::uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()), buckets_(bounds.size() + 1) {
  if (bounds_.empty()) {
    throw std::logic_error("Histogram: bucket bounds must be non-empty");
  }
  if (std::adjacent_find(bounds_.begin(), bounds_.end(),
                         std::greater_equal<std::uint64_t>()) !=
      bounds_.end()) {
    throw std::logic_error(
        "Histogram: bucket bounds must be strictly ascending");
  }
}

void Histogram::observe(std::uint64_t sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, Kind kind, Determinism det,
    std::span<const std::uint64_t> bounds) {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                             "' already registered with a different type");
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.det = det;
  switch (kind) {
    case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(bounds);
      break;
    case Kind::kQuantile:
      entry.quantile = std::make_unique<QuantileHistogram>();
      break;
  }
  return entries_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Determinism det) {
  return *find_or_create(name, Kind::kCounter, det, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Determinism det) {
  return *find_or_create(name, Kind::kGauge, det, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const std::uint64_t> bounds,
                                      Determinism det) {
  return *find_or_create(name, Kind::kHistogram, det, bounds).histogram;
}

QuantileHistogram& MetricsRegistry::quantile(std::string_view name,
                                             Determinism det) {
  if (det == Determinism::kDeterministic) {
    throw std::logic_error("MetricsRegistry: quantile '" + std::string(name) +
                           "' must be wall-clock: order statistics of "
                           "wall-clock samples are never deterministic");
  }
  return *find_or_create(name, Kind::kQuantile, det, {}).quantile;
}

void MetricsRegistry::clear() {
  const std::lock_guard lock(mutex_);
  entries_.clear();
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

std::optional<std::uint64_t> MetricsRegistry::counter_value(
    std::string_view name) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kCounter) {
    return std::nullopt;
  }
  return it->second.counter->value();
}

std::optional<std::int64_t> MetricsRegistry::gauge_value(
    std::string_view name) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kGauge) {
    return std::nullopt;
  }
  return it->second.gauge->value();
}

namespace {

// JSON string escaping for metric names (kept ASCII by convention, but the
// writer stays safe for arbitrary content).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os, Export what) const {
  const std::lock_guard lock(mutex_);
  const auto write_section = [&](Determinism det, const char* title,
                                 const char* indent) {
    // The deterministic section's bytes are pinned by golden tests and the
    // cross-thread-count diff gate; "quantiles" only ever appears in the
    // wall-clock section (quantile registration enforces kWallClock).
    const std::vector<Kind> kinds =
        det == Determinism::kWallClock
            ? std::vector<Kind>{Kind::kCounter, Kind::kGauge, Kind::kHistogram,
                                Kind::kQuantile}
            : std::vector<Kind>{Kind::kCounter, Kind::kGauge,
                                Kind::kHistogram};
    os << indent << "\"" << title << "\": {\n";
    for (const Kind kind : kinds) {
      const char* kind_name = kind == Kind::kCounter     ? "counters"
                              : kind == Kind::kGauge     ? "gauges"
                              : kind == Kind::kHistogram ? "histograms"
                                                         : "quantiles";
      os << indent << "  \"" << kind_name << "\": {";
      bool first = true;
      for (const auto& [name, entry] : entries_) {
        if (entry.kind != kind || entry.det != det) continue;
        if (!first) os << ",";
        first = false;
        os << "\n" << indent << "    \"" << json_escape(name) << "\": ";
        switch (kind) {
          case Kind::kCounter: os << entry.counter->value(); break;
          case Kind::kGauge: os << entry.gauge->value(); break;
          case Kind::kHistogram: {
            const Histogram& h = *entry.histogram;
            os << "{\"bounds\": [";
            for (std::size_t i = 0; i < h.bounds().size(); ++i) {
              if (i) os << ", ";
              os << h.bounds()[i];
            }
            os << "], \"counts\": [";
            const auto counts = h.counts();
            for (std::size_t i = 0; i < counts.size(); ++i) {
              if (i) os << ", ";
              os << counts[i];
            }
            os << "], \"count\": " << h.count() << ", \"sum\": " << h.sum()
               << "}";
            break;
          }
          case Kind::kQuantile: {
            const QuantileHistogram& qh = *entry.quantile;
            const auto fmt = [](double v) {
              char buf[32];
              std::snprintf(buf, sizeof buf, "%.1f", v);
              return std::string(buf);
            };
            os << "{\"count\": " << qh.count() << ", \"sum\": " << qh.sum()
               << ", \"max\": " << qh.max() << ", \"mean\": "
               << fmt(qh.mean()) << ", \"p50\": " << fmt(qh.quantile(0.50))
               << ", \"p90\": " << fmt(qh.quantile(0.90))
               << ", \"p99\": " << fmt(qh.quantile(0.99))
               << ", \"p999\": " << fmt(qh.quantile(0.999)) << "}";
            break;
          }
        }
      }
      os << (first ? "" : "\n" + std::string(indent) + "  ") << "}";
      os << (kind == kinds.back() ? "\n" : ",\n");
    }
    os << indent << "}";
  };

  os << "{\n  \"metrics\": {\n";
  write_section(Determinism::kDeterministic, "deterministic", "    ");
  if (what == Export::kAll) {
    os << ",\n";
    write_section(Determinism::kWallClock, "wall_clock", "    ");
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::write_text(std::ostream& os) const {
  const std::lock_guard lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    os << name;
    if (entry.det == Determinism::kWallClock) os << " [wall]";
    os << " = ";
    switch (entry.kind) {
      case Kind::kCounter: os << entry.counter->value(); break;
      case Kind::kGauge: os << entry.gauge->value(); break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        os << "count " << h.count() << ", sum " << h.sum() << ", buckets [";
        const auto counts = h.counts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (i) os << " ";
          os << counts[i];
        }
        os << "]";
        break;
      }
      case Kind::kQuantile: {
        const QuantileHistogram& qh = *entry.quantile;
        os << "count " << qh.count() << ", p50 " << qh.quantile(0.50)
           << ", p99 " << qh.quantile(0.99) << ", max " << qh.max();
        break;
      }
    }
    os << "\n";
  }
}

namespace {

MetricsRegistry& default_registry() {
  static MetricsRegistry instance;
  return instance;
}

// The innermost installed registry. Release/acquire pairs with the
// executor's batch hand-off, so workers inside a scoped batch observe the
// installing store.
std::atomic<MetricsRegistry*> g_current{nullptr};

}  // namespace

MetricsRegistry& metrics() {
  MetricsRegistry* current = g_current.load(std::memory_order_acquire);
  return current != nullptr ? *current : default_registry();
}

ScopedMetrics::ScopedMetrics(MetricsRegistry& registry)
    : previous_(g_current.exchange(&registry, std::memory_order_acq_rel)) {}

ScopedMetrics::~ScopedMetrics() {
  g_current.store(previous_, std::memory_order_release);
}

}  // namespace itm::obs
