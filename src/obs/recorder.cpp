#include "obs/recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>

#include "obs/metrics.h"

namespace itm::obs {

namespace {

// The in-flight stage name, readable from a signal handler. Publish
// protocol: zero the length, copy bytes + terminator, then store the new
// length (release). The buffer is always null-terminated within bounds, so
// even a torn read yields printable text.
constexpr std::size_t kStageBufBytes = 96;
char g_stage_buf[kStageBufBytes] = "";
std::atomic<std::uint32_t> g_stage_len{0};

void set_current_stage(std::string_view name) {
  const std::size_t n = name.size() < kStageBufBytes - 1
                            ? name.size()
                            : kStageBufBytes - 1;
  g_stage_len.store(0, std::memory_order_release);
  std::memcpy(g_stage_buf, name.data(), n);
  g_stage_buf[n] = '\0';
  g_stage_len.store(static_cast<std::uint32_t>(n), std::memory_order_release);
}

// Async-signal-safe unsigned decimal formatting; returns chars written.
std::size_t format_u64(char* out, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

// write() the whole buffer, retrying short writes; best-effort (postmortem
// path — nothing useful to do on error).
void write_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

// clock_gettime is on the POSIX async-signal-safe list; fine for both the
// normal and the handler path.
std::uint64_t wall_ms_now() noexcept {
  timespec ts{};
  if (clock_gettime(CLOCK_REALTIME, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
}

}  // namespace

const char* current_stage() { return g_stage_buf; }

FlightRecorder::~FlightRecorder() { flush(); }

void FlightRecorder::enable(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("FlightRecorder: cannot open '" + path + "'");
  }
  flushed_.store(false, std::memory_order_release);
  fd_.store(fd, std::memory_order_release);
}

void FlightRecorder::event(std::string_view name, std::string_view fields) {
  if (!enabled() || flushed_.load(std::memory_order_acquire)) return;
  const std::lock_guard lock(record_mutex_);
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kSlots];

  char line[kSlotBytes];
  const char* stage = current_stage();
  int n = std::snprintf(
      line, sizeof line, "{\"ts_ms\": %llu, \"seq\": %llu, \"event\": \"%.*s\"",
      static_cast<unsigned long long>(wall_ms_now()),
      static_cast<unsigned long long>(seq), static_cast<int>(name.size()),
      name.data());
  if (n > 0 && stage[0] != '\0') {
    n += std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                       ", \"stage\": \"%s\"", stage);
  }
  if (n > 0 && !fields.empty()) {
    n += std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                       ", %.*s", static_cast<int>(fields.size()),
                       fields.data());
  }
  if (n < 0 || static_cast<std::size_t>(n) + 2 >= sizeof line) {
    // Over-long payload: degrade to the fixed keys so the line stays JSON.
    n = std::snprintf(line, sizeof line,
                      "{\"ts_ms\": %llu, \"seq\": %llu, \"event\": \"%.*s\"",
                      static_cast<unsigned long long>(wall_ms_now()),
                      static_cast<unsigned long long>(seq),
                      static_cast<int>(name.size()), name.data());
  }
  n += std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                     "}\n");

  slot.len.store(0, std::memory_order_release);
  std::memcpy(slot.bytes, line, static_cast<std::size_t>(n));
  slot.len.store(static_cast<std::uint32_t>(n), std::memory_order_release);
}

void FlightRecorder::write_ring(int fd) noexcept {
  const std::uint64_t total = seq_.load(std::memory_order_acquire);
  const std::size_t start =
      total > kSlots ? static_cast<std::size_t>(total % kSlots) : 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    const Slot& slot = slots_[(start + i) % kSlots];
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len > 0 && len <= kSlotBytes) write_all(fd, slot.bytes, len);
  }
}

void FlightRecorder::flush() {
  const std::lock_guard lock(record_mutex_);
  if (flushed_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
  write_ring(fd);
  ::close(fd);
  fd_.store(-1, std::memory_order_release);
}

void FlightRecorder::flush_from_signal(int signo) noexcept {
  // No locks, no allocation: a handler may have interrupted a thread that
  // holds record_mutex_. Torn slots read len==0 and are skipped.
  if (flushed_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
  write_ring(fd);
  // Final line naming the in-flight stage, formatted without snprintf.
  char line[kStageBufBytes + 96];
  std::size_t n = 0;
  const auto append = [&](const char* text) {
    const std::size_t len = std::strlen(text);
    std::memcpy(line + n, text, len);
    n += len;
  };
  append("{\"ts_ms\": ");
  n += format_u64(line + n, wall_ms_now());
  append(", \"seq\": ");
  n += format_u64(line + n, seq_.load(std::memory_order_relaxed));
  append(", \"event\": \"signal\", \"signo\": ");
  n += format_u64(line + n, static_cast<std::uint64_t>(signo < 0 ? 0 : signo));
  append(", \"stage\": \"");
  append(g_stage_buf);  // always null-terminated, [a-z0-9_.] content
  append("\"}\n");
  write_all(fd, line, n);
  ::close(fd);
  fd_.store(-1, std::memory_order_release);
}

FlightRecorder& recorder() {
  static FlightRecorder instance;
  return instance;
}

namespace {

void crash_signal_handler(int signo) {
  recorder().flush_from_signal(signo);
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

std::terminate_handler g_previous_terminate = nullptr;

[[noreturn]] void terminate_flush() {
  recorder().flush_from_signal(0);
  // Chaining to the displaced handler is deliberate: whatever the embedder
  // installed (often a logging hook that allocates) runs after our ring is
  // already on disk, so its safety is its own problem — and the default
  // handler is the common case. itm-lint: allow(signal-safety)
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

}  // namespace

void install_crash_flush() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  for (const int signo : {SIGTERM, SIGINT, SIGSEGV, SIGABRT}) {
    struct sigaction action {};
    action.sa_handler = crash_signal_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(signo, &action, nullptr);
  }
  g_previous_terminate = std::set_terminate(terminate_flush);
}

// ---- ProgressMeter ----

ProgressMeter::~ProgressMeter() { disable(); }

void ProgressMeter::enable() {
  if (enabled_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  run_watch_.reset();
  thread_ = std::thread([this] { heartbeat_loop(); });
}

void ProgressMeter::disable() {
  if (!enabled_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void ProgressMeter::begin_stage(std::string_view name, std::size_t index,
                                std::size_t total) {
  {
    const std::lock_guard lock(stage_mutex_);
    stage_name_.assign(name);
    stage_index_ = index;
    stage_total_ = total;
    stage_watch_.reset();
    units_expected_.store(0, std::memory_order_relaxed);
    units_completed_.store(0, std::memory_order_relaxed);
  }
  if (enabled()) emit_line();
}

void ProgressMeter::end_stage() {
  const std::lock_guard lock(stage_mutex_);
  stage_name_.clear();
}

void ProgressMeter::heartbeat_loop() {
  // ~1 s heartbeat, polling stop_ at 100 ms so disable() is responsive.
  std::size_t ticks = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (++ticks % 10 != 0) continue;
    emit_line();
  }
}

void ProgressMeter::emit_line() {
  std::string stage;
  std::size_t index = 0;
  std::size_t total = 0;
  double stage_s = 0;
  {
    const std::lock_guard lock(stage_mutex_);
    stage = stage_name_;
    index = stage_index_;
    total = stage_total_;
    stage_s = stage_watch_.elapsed_s();
  }
  const double run_s = run_watch_.elapsed_s();
  const double rss_mib =
      static_cast<double>(current_rss_bytes()) / (1024.0 * 1024.0);
  const std::uint64_t expected = units_expected_.load(std::memory_order_relaxed);
  const std::uint64_t completed =
      units_completed_.load(std::memory_order_relaxed);

  char eta[32];
  if (!stage.empty() && completed > 0 && expected > completed) {
    const double eta_s = stage_s * static_cast<double>(expected - completed) /
                         static_cast<double>(completed);
    std::snprintf(eta, sizeof eta, "eta ~%.0fs", eta_s);
  } else {
    std::snprintf(eta, sizeof eta, "eta -");
  }

  if (stage.empty()) {
    std::fprintf(stderr, "[itm] run %.1fs | rss %.1f MiB\n", run_s, rss_mib);
  } else if (total > 0) {
    std::fprintf(stderr,
                 "[itm] stage %zu/%zu %s %.1fs | run %.1fs | rss %.1f MiB | "
                 "%s\n",
                 index, total, stage.c_str(), stage_s, run_s, rss_mib, eta);
  } else {
    std::fprintf(stderr, "[itm] %s %.1fs | run %.1fs | rss %.1f MiB | %s\n",
                 stage.c_str(), stage_s, run_s, rss_mib, eta);
  }
  heartbeats_.fetch_add(1, std::memory_order_relaxed);

  if (recorder().enabled()) {
    char fields[128];
    std::snprintf(fields, sizeof fields,
                  "\"run_s\": %.1f, \"rss_mib\": %.1f, \"done\": %llu, "
                  "\"expected\": %llu",
                  run_s, rss_mib, static_cast<unsigned long long>(completed),
                  static_cast<unsigned long long>(expected));
    recorder().event("progress", fields);
  }
}

ProgressMeter& progress() {
  static ProgressMeter instance;
  return instance;
}

// ---- StageScope ----

StageScope::StageScope(std::string_view name, std::size_t index,
                       std::size_t total)
    : name_(name), span_(name), rss_before_(current_rss_bytes()) {
  set_current_stage(name_);
  progress().begin_stage(name_, index, total);
  if (recorder().enabled()) {
    char fields[96];
    std::snprintf(fields, sizeof fields,
                  "\"rss_bytes\": %llu, \"index\": %zu, \"total\": %zu",
                  static_cast<unsigned long long>(rss_before_), index, total);
    recorder().event("stage.begin", fields);
  }
}

StageScope::~StageScope() { close(); }

double StageScope::close() {
  if (!open_) return 0;
  open_ = false;
  const double seconds = span_.close();
  const std::uint64_t rss_after = current_rss_bytes();
  const auto delta = static_cast<std::int64_t>(rss_after) -
                     static_cast<std::int64_t>(rss_before_);
  auto& reg = metrics();
  reg.gauge(name_ + ".rss_bytes", Determinism::kWallClock)
      .set(static_cast<std::int64_t>(rss_after));
  reg.gauge(name_ + ".rss_delta_bytes", Determinism::kWallClock).set(delta);
  reg.gauge(name_ + ".wall_us", Determinism::kWallClock)
      .set(static_cast<std::int64_t>(watch_.elapsed_us()));
  if (recorder().enabled()) {
    char fields[128];
    std::snprintf(fields, sizeof fields,
                  "\"wall_s\": %.3f, \"rss_bytes\": %llu, "
                  "\"rss_delta_bytes\": %lld",
                  seconds, static_cast<unsigned long long>(rss_after),
                  static_cast<long long>(delta));
    recorder().event("stage.end", fields);
  }
  progress().end_stage();
  set_current_stage("");
  return seconds;
}

}  // namespace itm::obs
