// Log-bucketed quantile histogram for wall-clock latencies (HDR-style).
//
// The paper's serving target is a tail-latency number (p99 under load), and
// "Where in the Internet is congestion?" makes the broader point that the
// tail, not the mean, is the signal; the fixed-bucket obs::Histogram cannot
// report a p99 at all. QuantileHistogram buckets samples geometrically:
// values below 16 get one bucket each, and every power-of-two octave above
// that is split into 16 linear sub-buckets, so a bucket's width is at most
// 1/16th of its lower bound (~6% relative error). quantile(q) returns the
// midpoint of the bucket holding the q-th order statistic — by construction
// within one log-bucket of the exact value (unit-tested against exact order
// statistics on a golden sample).
//
// Buckets are relaxed atomics: observations commute, so merging from worker
// threads in any order yields the same counts. The geometry is fixed (no
// per-instance bounds), which keeps observe() allocation-free and the type
// registry-friendly.
//
// Determinism: latency is wall-clock by nature, so the registry only admits
// QuantileHistograms in the kWallClock class (registering one as
// kDeterministic throws) — the deterministic export stays byte-identical
// across thread counts (DESIGN.md decisions #7 and #11).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace itm::obs {

class QuantileHistogram {
 public:
  // 16 one-per-value buckets for [0, 16), then 16 sub-buckets per octave up
  // to 2^63; bucket_count() covers every uint64 sample with no overflow
  // bucket needed.
  static constexpr std::uint64_t kLinearLimit = 16;
  static constexpr std::uint64_t kSubBuckets = 16;

  QuantileHistogram();
  QuantileHistogram(const QuantileHistogram&) = delete;
  QuantileHistogram& operator=(const QuantileHistogram&) = delete;

  void observe(std::uint64_t sample);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

  // Estimated q-quantile (q clamped to [0, 1]): the midpoint of the bucket
  // containing the nearest-rank order statistic; 0 when empty. Concurrent
  // observes may make the snapshot slightly stale — acceptable for a
  // wall-clock metric.
  [[nodiscard]] double quantile(double q) const;

  // Mean of all samples (sum/count); 0 when empty.
  [[nodiscard]] double mean() const;

  [[nodiscard]] std::vector<std::uint64_t> counts() const;

  // ---- bucket geometry (static, exposed for tests and reports) ----
  [[nodiscard]] static std::size_t bucket_count();
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t sample);
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index);
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index);

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace itm::obs
