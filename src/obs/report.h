// Run-analysis reports over exported artifacts: the logic behind the
// `itm obs report` and `itm obs trace` CLI verbs.
//
// Lives in the library (not tools/itm_cli.cpp) so the report and diff logic
// is unit-testable without spawning the binary. Exit-code contract matches
// the CLI's: 0 success, 1 regression found (report --baseline only),
// 4 unreadable/malformed input. Usage errors (2) are the CLI's concern.
#pragma once

#include <ostream>
#include <string>

namespace itm::obs {

struct ObsReportOptions {
  std::string metrics_path;
  // When non-empty, diff against this run and fail (exit 1) on regression.
  std::string baseline_path;
  // Ratio band for wall-clock values, mirroring tools/bench_diff.py's PERF
  // class: current must lie within [baseline/tol, baseline*tol]. Values
  // where both sides are below the noise floor are never flagged.
  double wall_tolerance = 25.0;
  // Absolute floor under which wall-clock values are considered noise.
  double noise_floor = 50.0;
};

// Renders the per-stage summary (wall time, RSS delta, imbalance, top
// counters, latency quantiles) and, with a baseline, the tolerance-classed
// diff. Returns 0/1/4 per the contract above.
int run_obs_report(const ObsReportOptions& options, std::ostream& out,
                   std::ostream& err);

// Per-stage critical-path and shard-imbalance stats from a Chrome trace
// produced by --trace-out. Returns 0/4.
int run_obs_trace(const std::string& trace_path, std::ostream& out,
                  std::ostream& err);

}  // namespace itm::obs
