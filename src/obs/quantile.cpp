#include "obs/quantile.h"

#include <algorithm>
#include <bit>

namespace itm::obs {

namespace {

// Octave k (k >= 4) spans [2^k, 2^(k+1)) split into 16 sub-buckets; octaves
// 0..3 collapse into the 16 linear buckets. Highest sample bit is 63, so the
// last octave is k = 63.
constexpr std::size_t kOctaves = 60;  // k in [4, 63]

}  // namespace

QuantileHistogram::QuantileHistogram() : buckets_(bucket_count()) {}

std::size_t QuantileHistogram::bucket_count() {
  return kLinearLimit + kOctaves * kSubBuckets;
}

std::size_t QuantileHistogram::bucket_index(std::uint64_t sample) {
  if (sample < kLinearLimit) return static_cast<std::size_t>(sample);
  const int top = 63 - std::countl_zero(sample);  // top >= 4
  const auto sub =
      static_cast<std::size_t>((sample >> (top - 4)) & (kSubBuckets - 1));
  return kLinearLimit + static_cast<std::size_t>(top - 4) * kSubBuckets + sub;
}

std::uint64_t QuantileHistogram::bucket_lower(std::size_t index) {
  if (index < kLinearLimit) return index;
  const std::size_t octave = (index - kLinearLimit) / kSubBuckets;  // top - 4
  const std::size_t sub = (index - kLinearLimit) % kSubBuckets;
  return (kSubBuckets + sub) << octave;
}

std::uint64_t QuantileHistogram::bucket_upper(std::size_t index) {
  if (index < kLinearLimit) return index;
  return bucket_lower(index + 1) - 1;
}

void QuantileHistogram::observe(std::uint64_t sample) {
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (cur < sample &&
         !max_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

double QuantileHistogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto snapshot = counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : snapshot) total += c;
  if (total == 0) return 0.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * total), with rank at least 1.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    cumulative += snapshot[i];
    if (cumulative >= rank) {
      return (static_cast<double>(bucket_lower(i)) +
              static_cast<double>(bucket_upper(i))) /
             2.0;
    }
  }
  return static_cast<double>(max());
}

double QuantileHistogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum()) / static_cast<double>(n);
}

std::vector<std::uint64_t> QuantileHistogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace itm::obs
