#include "obs/trace.h"

#include <algorithm>
#include <atomic>

namespace itm::obs {

namespace {

std::atomic<std::uint32_t> g_next_tid{0};

std::uint32_t this_thread_tid() {
  thread_local const std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Per-thread span nesting depth (spans are strictly scoped, so a plain
// counter suffices).
thread_local std::uint32_t tl_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::record(TraceEvent event) {
  const std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::clear() {
  const std::lock_guard lock(mutex_);
  events_.clear();
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

double Tracer::total_seconds(std::string_view name) const {
  const std::lock_guard lock(mutex_);
  std::uint64_t total_ns = 0;
  for (const auto& event : events_) {
    if (event.name == name) total_ns += event.duration_ns;
  }
  return static_cast<double>(total_ns) * 1e-9;
}

std::size_t Tracer::span_count() const {
  const std::lock_guard lock(mutex_);
  return events_.size();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const auto sorted = events();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TraceEvent& event = sorted[i];
    if (i) os << ",";
    // Complete ("X") events; timestamps in integer microseconds to keep the
    // writer locale/format independent.
    os << "\n  {\"name\": \"" << event.name << "\", \"ph\": \"X\", \"pid\": 1"
       << ", \"tid\": " << event.tid << ", \"ts\": " << event.start_ns / 1000
       << ", \"dur\": " << event.duration_ns / 1000 << ", \"args\": {"
       << "\"depth\": " << event.depth;
    if (event.sim_at) os << ", \"sim_time\": " << *event.sim_at;
    os << "}}";
  }
  os << "\n]}\n";
}

namespace {

Tracer& default_tracer() {
  static Tracer instance;
  return instance;
}

std::atomic<Tracer*> g_current{nullptr};

}  // namespace

Tracer& tracer() {
  Tracer* current = g_current.load(std::memory_order_acquire);
  return current != nullptr ? *current : default_tracer();
}

ScopedTracer::ScopedTracer(Tracer& tracer)
    : previous_(g_current.exchange(&tracer, std::memory_order_acq_rel)) {}

ScopedTracer::~ScopedTracer() {
  g_current.store(previous_, std::memory_order_release);
}

Span::Span(std::string_view name, std::optional<SimTime> sim_at)
    : tracer_(&tracer()),
      name_(name),
      start_ns_(tracer_->now_ns()),
      depth_(tl_depth++),
      sim_at_(sim_at) {}

double Span::close() {
  if (!open_) return 0.0;
  open_ = false;
  --tl_depth;
  TraceEvent event;
  event.name = name_;
  event.tid = this_thread_tid();
  event.start_ns = start_ns_;
  event.duration_ns = tracer_->now_ns() - start_ns_;
  event.depth = depth_;
  event.sim_at = sim_at_;
  const double seconds = static_cast<double>(event.duration_ns) * 1e-9;
  tracer_->record(std::move(event));
  return seconds;
}

Span::~Span() { close(); }

}  // namespace itm::obs
