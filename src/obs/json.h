// Minimal JSON reader for the run-analysis CLI (`itm obs`).
//
// The repo's JSON *writers* (metrics, traces, bench records) are hand-rolled
// ostream code; `itm obs report`/`itm obs trace` need the reverse direction
// to consume those artifacts, and the no-new-dependencies rule applies. This
// is a strict recursive-descent parser over the subset those writers emit
// (objects, arrays, strings with the writers' escapes, numbers, booleans,
// null) — sufficient for any RFC-8259 document, kept deliberately small.
// Object keys preserve insertion order is NOT guaranteed: keys land in a
// sorted map, matching the writers' sorted-key convention.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace itm::obs {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }

  [[nodiscard]] double number() const { return number_; }
  [[nodiscard]] const std::string& string() const { return string_; }
  [[nodiscard]] bool boolean() const { return bool_; }
  [[nodiscard]] const JsonObject& object() const { return *object_; }
  [[nodiscard]] const JsonArray& array() const { return *array_; }

  // Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  // Dotted-path lookup through nested objects ("metrics.deterministic").
  [[nodiscard]] const JsonValue* find_path(std::string_view dotted) const;
  // Numeric member as double; nullopt when absent or non-numeric.
  [[nodiscard]] std::optional<double> number_at(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

// Parses a complete document; nullopt (with a diagnostic in *error when
// given) on any syntax error or trailing garbage.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace itm::obs
