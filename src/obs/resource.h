// Wall-clock and resource sampling primitives for the run-analysis layer.
//
// All clock access for instrumentation lives here, inside src/obs/ — the one
// subtree itm-lint's banned-nondet-sources rule allowlists — so call sites in
// src/net/, src/serve/ and bench/ can time shards and queries without their
// own suppression comments. The readings are wall-clock by definition and
// must only ever feed kWallClock metrics.
#pragma once

#include <chrono>
#include <cstdint>

namespace itm::obs {

// Monotonic elapsed-time meter. start() is the construction time.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  [[nodiscard]] std::uint64_t elapsed_us() const {
    return elapsed_ns() / 1000;
  }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Scoped latency sampler: observes the scope's lifetime in microseconds into
// a QuantileHistogram on destruction. The handle is taken by reference, so
// resolve it from the registry once, outside the hot loop.
class QuantileHistogram;

class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(QuantileHistogram& sink) : sink_(sink) {}
  ~ScopedLatencyUs();
  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

 private:
  QuantileHistogram& sink_;
  Stopwatch watch_;
};

// Current resident set size in bytes, from /proc/self/statm (Linux); 0 when
// unreadable. Cheap enough to sample per stage, not per item.
[[nodiscard]] std::uint64_t current_rss_bytes();

// Peak resident set size in bytes, from getrusage(RUSAGE_SELF).
[[nodiscard]] std::uint64_t peak_rss_bytes();

// Milliseconds since the Unix epoch (system clock): only for journal
// timestamps, never for metrics that get diffed.
[[nodiscard]] std::uint64_t unix_millis();

}  // namespace itm::obs
