// Span-based tracing of the pipeline, exportable as Chrome trace-event JSON.
//
// A Span measures one named region of work: wall time always (steady-clock
// nanoseconds relative to the tracer's epoch), simulated time optionally
// (stages that run "at" a SimTime, like cache-probe sweeps, tag their spans
// with it). Spans nest per thread — the tracer tracks a per-thread depth so
// exports and tests can check containment — and may be opened from executor
// workers; recording is mutex-serialized and cheap relative to any span
// worth tracing.
//
// Wall durations are inherently nondeterministic, so traces live entirely in
// the wall-clock half of the determinism split (DESIGN.md decision #7): the
// trace file is never diffed across thread counts, only the metrics JSON is.
//
// The exported JSON is the Chrome trace-event format (object form, complete
// "X" events, microsecond timestamps), loadable in Perfetto / chrome://tracing.
//
//   ITM_SPAN("map.tls_scan");             // RAII, closes at scope exit
//   ITM_SPAN_AT("probe.sweep", sim_now);  // tagged with simulated time
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "net/sim_time.h"

namespace itm::obs {

struct TraceEvent {
  std::string name;
  // Stable small id per OS thread (assignment order is scheduling-dependent;
  // the trace is wall-clock data, so that is fine).
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;     // relative to the tracer's epoch
  std::uint64_t duration_ns = 0;
  std::uint32_t depth = 0;        // nesting depth on its thread at open
  std::optional<SimTime> sim_at;  // simulated time the span ran at
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void clear();

  // Snapshot of all closed spans, sorted by (start_ns, tid) so output order
  // does not depend on close order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // Total wall seconds across all closed spans with this name (the source
  // of truth behind core::MapBuildTimings).
  [[nodiscard]] double total_seconds(std::string_view name) const;

  [[nodiscard]] std::size_t span_count() const;

  // Chrome trace-event JSON: {"displayTimeUnit": "ms", "traceEvents": [...]}.
  void write_chrome_trace(std::ostream& os) const;

 private:
  friend class Span;

  [[nodiscard]] std::uint64_t now_ns() const;
  void record(TraceEvent event);

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

// The current tracer (innermost live ScopedTracer, else a process-global
// default). Same scoping rules as obs::metrics().
[[nodiscard]] Tracer& tracer();

class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer& tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

// RAII span over the current tracer. Captures the tracer at construction, so
// the event lands in the tracer that was current when the work started.
class Span {
 public:
  explicit Span(std::string_view name,
                std::optional<SimTime> sim_at = std::nullopt);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Closes the span now and returns its wall duration in seconds (0 on
  // repeat calls). The destructor closes implicitly; call close() when the
  // duration feeds a summary (e.g. the MapBuildTimings view).
  double close();

 private:
  Tracer* tracer_;
  std::string name_;
  std::uint64_t start_ns_;
  std::uint32_t depth_;
  std::optional<SimTime> sim_at_;
  bool open_ = true;
};

#define ITM_OBS_CONCAT2(a, b) a##b
#define ITM_OBS_CONCAT(a, b) ITM_OBS_CONCAT2(a, b)
#define ITM_SPAN(name) \
  ::itm::obs::Span ITM_OBS_CONCAT(itm_span_, __LINE__)(name)
#define ITM_SPAN_AT(name, sim_at) \
  ::itm::obs::Span ITM_OBS_CONCAT(itm_span_, __LINE__)(name, sim_at)

}  // namespace itm::obs
