#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace itm::obs {

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// One exported metrics file, flattened to name -> value with the
// determinism class retained. Histogram/quantile sub-fields flatten to
// "<name>.<field>" leaves.
struct FlatMetrics {
  std::map<std::string, double, std::less<>> deterministic;
  std::map<std::string, double, std::less<>> wall;
};

void flatten_section(const JsonValue& section,
                     std::map<std::string, double, std::less<>>& out) {
  for (const char* group : {"counters", "gauges", "histograms", "quantiles"}) {
    const JsonValue* values = section.find(group);
    if (values == nullptr || !values->is_object()) continue;
    for (const auto& [name, value] : values->object()) {
      if (value.is_number()) {
        out[name] = value.number();
      } else if (value.is_object()) {
        for (const auto& [field, leaf] : value.object()) {
          if (leaf.is_number()) out[name + "." + field] = leaf.number();
        }
      }
    }
  }
}

std::optional<FlatMetrics> load_metrics(const std::string& path,
                                        std::ostream& err) {
  const auto text = read_file(path);
  if (!text) {
    err << "itm obs: cannot read '" << path << "'\n";
    return std::nullopt;
  }
  std::string parse_error;
  const auto doc = parse_json(*text, &parse_error);
  if (!doc) {
    err << "itm obs: '" << path << "' is not valid JSON: " << parse_error
        << "\n";
    return std::nullopt;
  }
  const JsonValue* deterministic = doc->find_path("metrics.deterministic");
  if (deterministic == nullptr) {
    err << "itm obs: '" << path << "' has no metrics.deterministic section\n";
    return std::nullopt;
  }
  FlatMetrics flat;
  flatten_section(*deterministic, flat.deterministic);
  if (const JsonValue* wall = doc->find_path("metrics.wall_clock")) {
    flatten_section(*wall, flat.wall);
  }
  return flat;
}

std::string human_bytes(double bytes) {
  char buf[32];
  const char* sign = bytes < 0 ? "-" : "+";
  const double mag = std::fabs(bytes);
  if (mag >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%s%.2f GiB", sign,
                  mag / (1024.0 * 1024.0 * 1024.0));
  } else if (mag >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%s%.1f MiB", sign, mag / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof buf, "%s%.0f KiB", sign, mag / 1024.0);
  }
  return buf;
}

// Stage rows discovered from "<stage>.wall_us" wall gauges (StageScope's
// publication contract).
struct StageRow {
  std::string name;
  double wall_s = 0;
  std::optional<double> rss_delta;
  std::optional<double> imbalance;
};

std::vector<StageRow> collect_stages(const FlatMetrics& flat) {
  std::vector<StageRow> rows;
  constexpr std::string_view kWallSuffix = ".wall_us";
  for (const auto& [name, value] : flat.wall) {
    if (name.size() <= kWallSuffix.size() ||
        name.substr(name.size() - kWallSuffix.size()) != kWallSuffix) {
      continue;
    }
    const std::string stage = name.substr(0, name.size() - kWallSuffix.size());
    StageRow row;
    row.name = stage;
    row.wall_s = value / 1e6;
    if (const auto it = flat.wall.find(stage + ".rss_delta_bytes");
        it != flat.wall.end()) {
      row.rss_delta = it->second;
    }
    if (const auto it = flat.wall.find(stage + ".imbalance_x1000");
        it != flat.wall.end()) {
      row.imbalance = it->second / 1000.0;
    }
    rows.push_back(std::move(row));
  }
  // Longest stage first: the critical path is what the reader came for.
  std::sort(rows.begin(), rows.end(), [](const StageRow& a, const StageRow& b) {
    if (a.wall_s != b.wall_s) return a.wall_s > b.wall_s;
    return a.name < b.name;
  });
  return rows;
}

void print_summary(const FlatMetrics& flat, std::ostream& out) {
  const auto stages = collect_stages(flat);
  if (!stages.empty()) {
    out << "stage                         wall_s    rss_delta    imbalance\n";
    for (const auto& row : stages) {
      char line[160];
      char imbalance[24];
      if (row.imbalance) {
        std::snprintf(imbalance, sizeof imbalance, "%.2fx", *row.imbalance);
      } else {
        std::snprintf(imbalance, sizeof imbalance, "-");
      }
      std::snprintf(line, sizeof line, "%-28s %8.3f %12s %12s\n",
                    row.name.c_str(), row.wall_s,
                    row.rss_delta ? human_bytes(*row.rss_delta).c_str() : "-",
                    imbalance);
      out << line;
    }
  } else {
    out << "(no stage wall gauges found — run with --metrics-full to include "
           "wall-clock data)\n";
  }

  // Latency quantiles on record (flattened "<name>.p50" leaves).
  bool quantile_header = false;
  for (const auto& [name, value] : flat.wall) {
    constexpr std::string_view kP50 = ".p50";
    if (name.size() <= kP50.size() ||
        name.substr(name.size() - kP50.size()) != kP50) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - kP50.size());
    const auto leaf = [&](const char* field) -> double {
      const auto it = flat.wall.find(base + field);
      return it == flat.wall.end() ? 0 : it->second;
    };
    if (!quantile_header) {
      out << "\nlatency quantiles (us)\n";
      quantile_header = true;
    }
    char line[200];
    std::snprintf(line, sizeof line,
                  "%-28s p50 %9.1f  p90 %9.1f  p99 %9.1f  p999 %9.1f  "
                  "(n=%.0f)\n",
                  base.c_str(), value, leaf(".p90"), leaf(".p99"),
                  leaf(".p999"), leaf(".count"));
    out << line;
  }

  // Top deterministic counters by value: the "what did this run do" recap.
  std::vector<std::pair<std::string, double>> counters(
      flat.deterministic.begin(), flat.deterministic.end());
  std::sort(counters.begin(), counters.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  out << "\ntop counters\n";
  const std::size_t top = std::min<std::size_t>(10, counters.size());
  for (std::size_t i = 0; i < top; ++i) {
    char line[160];
    std::snprintf(line, sizeof line, "%-44s %16.0f\n",
                  counters[i].first.c_str(), counters[i].second);
    out << line;
  }
}

struct DiffStats {
  std::size_t compared = 0;
  std::size_t only_current = 0;
  std::size_t only_baseline = 0;
  std::vector<std::string> regressions;
};

// Deterministic half: exact match, bench_diff's STRUCTURAL class. Any
// difference between two runs of the same seed+options is a real defect.
void diff_exact(const std::map<std::string, double, std::less<>>& current,
                const std::map<std::string, double, std::less<>>& baseline,
                DiffStats& stats) {
  for (const auto& [name, value] : current) {
    const auto it = baseline.find(name);
    if (it == baseline.end()) {
      ++stats.only_current;
      continue;
    }
    ++stats.compared;
    if (value != it->second) {
      char line[256];
      std::snprintf(line, sizeof line,
                    "deterministic %s: %.6g vs baseline %.6g (exact class)",
                    name.c_str(), value, it->second);
      stats.regressions.emplace_back(line);
    }
  }
  for (const auto& [name, value] : baseline) {
    if (!current.contains(name)) ++stats.only_baseline;
  }
}

// Wall-clock half: ratio band (PERF class). Noise-floor values never flag.
void diff_ratio(const std::map<std::string, double, std::less<>>& current,
                const std::map<std::string, double, std::less<>>& baseline,
                double tolerance, double noise_floor, DiffStats& stats) {
  for (const auto& [name, value] : current) {
    const auto it = baseline.find(name);
    if (it == baseline.end()) {
      ++stats.only_current;
      continue;
    }
    ++stats.compared;
    const double base = it->second;
    if (std::fabs(value) < noise_floor && std::fabs(base) < noise_floor) {
      continue;
    }
    // Signed values (rss deltas) and zero baselines only flag on sign flips
    // of large magnitude; the ratio test needs both sides positive.
    if (base <= 0 || value <= 0) continue;
    if (value > base * tolerance || value < base / tolerance) {
      char line[256];
      std::snprintf(line, sizeof line,
                    "wall_clock %s: %.6g vs baseline %.6g (x%.1f band)",
                    name.c_str(), value, base, tolerance);
      stats.regressions.emplace_back(line);
    }
  }
  for (const auto& [name, value] : baseline) {
    if (!current.contains(name)) ++stats.only_baseline;
  }
}

}  // namespace

int run_obs_report(const ObsReportOptions& options, std::ostream& out,
                   std::ostream& err) {
  const auto current = load_metrics(options.metrics_path, err);
  if (!current) return 4;

  out << "== itm obs report: " << options.metrics_path << " ==\n";
  print_summary(*current, out);

  if (options.baseline_path.empty()) return 0;

  const auto baseline = load_metrics(options.baseline_path, err);
  if (!baseline) return 4;

  DiffStats stats;
  diff_exact(current->deterministic, baseline->deterministic, stats);
  diff_ratio(current->wall, baseline->wall, options.wall_tolerance,
             options.noise_floor, stats);

  out << "\n== diff vs " << options.baseline_path << " ==\n";
  out << "compared " << stats.compared << " metrics (" << stats.only_current
      << " only in current, " << stats.only_baseline << " only in baseline)\n";
  if (stats.regressions.empty()) {
    out << "OK: within tolerance\n";
    return 0;
  }
  for (const auto& regression : stats.regressions) {
    out << "REGRESSION: " << regression << "\n";
  }
  out << stats.regressions.size() << " regression(s)\n";
  return 1;
}

int run_obs_trace(const std::string& trace_path, std::ostream& out,
                  std::ostream& err) {
  const auto text = read_file(trace_path);
  if (!text) {
    err << "itm obs: cannot read '" << trace_path << "'\n";
    return 4;
  }
  std::string parse_error;
  const auto doc = parse_json(*text, &parse_error);
  if (!doc) {
    err << "itm obs: '" << trace_path << "' is not valid JSON: " << parse_error
        << "\n";
    return 4;
  }
  const JsonValue* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    err << "itm obs: '" << trace_path << "' has no traceEvents array\n";
    return 4;
  }

  struct Ev {
    std::string name;
    double tid = 0;
    double ts = 0;
    double dur = 0;
    double depth = 0;
  };
  std::vector<Ev> spans;
  spans.reserve(events->array().size());
  for (const JsonValue& raw : events->array()) {
    if (!raw.is_object()) continue;
    Ev ev;
    if (const JsonValue* name = raw.find("name"); name && name->is_string()) {
      ev.name = name->string();
    }
    ev.tid = raw.number_at("tid").value_or(0);
    ev.ts = raw.number_at("ts").value_or(0);
    ev.dur = raw.number_at("dur").value_or(0);
    if (const JsonValue* args = raw.find("args")) {
      ev.depth = args->number_at("depth").value_or(0);
    }
    spans.push_back(std::move(ev));
  }

  // Per-name aggregates.
  struct NameStats {
    std::size_t count = 0;
    double total_us = 0;
    double max_us = 0;
  };
  std::map<std::string, NameStats, std::less<>> by_name;
  for (const Ev& ev : spans) {
    NameStats& stats = by_name[ev.name];
    ++stats.count;
    stats.total_us += ev.dur;
    stats.max_us = std::max(stats.max_us, ev.dur);
  }

  out << "== itm obs trace: " << trace_path << " (" << spans.size()
      << " spans) ==\n";
  out << "span                              count     total_ms      max_ms\n";
  for (const auto& [name, stats] : by_name) {
    char line[160];
    std::snprintf(line, sizeof line, "%-32s %6zu %12.3f %11.3f\n", name.c_str(),
                  stats.count, stats.total_us / 1000.0, stats.max_us / 1000.0);
    out << line;
  }

  // Stage-level analysis: depth-0 spans are stages; spans contained in a
  // stage's [ts, ts+dur) window attribute to it. Per-tid busy time inside
  // the window gives the shard-imbalance view (max/mean over active tids).
  out << "\nstage critical path\n";
  out << "stage                           wall_ms   child_ms  tids  "
         "imbalance\n";
  bool any_stage = false;
  for (const Ev& stage : spans) {
    if (stage.depth != 0 || stage.dur <= 0) continue;
    // Worker-thread shard spans are depth 0 on their own tid; they are the
    // *children* in this analysis, not stages.
    if (stage.name == "executor.shard") continue;
    const double begin = stage.ts;
    const double end = stage.ts + stage.dur;
    std::map<double, double> busy_by_tid;
    double child_us = 0;
    for (const Ev& ev : spans) {
      if (&ev == &stage) continue;
      if (ev.ts < begin || ev.ts + ev.dur > end) continue;
      // Only count leaf-ish work once: direct children (depth 1 on the
      // stage's thread) and worker-thread spans (any depth, other tids).
      if (ev.tid == stage.tid && ev.depth != stage.depth + 1) continue;
      child_us += ev.dur;
      busy_by_tid[ev.tid] += ev.dur;
    }
    double max_busy = 0;
    double total_busy = 0;
    for (const auto& [tid, busy] : busy_by_tid) {
      max_busy = std::max(max_busy, busy);
      total_busy += busy;
    }
    char imbalance[24];
    if (busy_by_tid.size() > 1 && total_busy > 0) {
      const double mean = total_busy / static_cast<double>(busy_by_tid.size());
      std::snprintf(imbalance, sizeof imbalance, "%.2fx", max_busy / mean);
    } else {
      std::snprintf(imbalance, sizeof imbalance, "-");
    }
    char line[200];
    std::snprintf(line, sizeof line, "%-28s %10.3f %10.3f %5zu %10s\n",
                  stage.name.c_str(), stage.dur / 1000.0, child_us / 1000.0,
                  busy_by_tid.size(), imbalance);
    out << line;
    any_stage = true;
  }
  if (!any_stage) out << "(no depth-0 spans)\n";
  return 0;
}

}  // namespace itm::obs
