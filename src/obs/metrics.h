// Deterministic metrics for the map-build pipeline.
//
// A MetricsRegistry holds named counters, gauges and fixed-bucket histograms.
// Every metric is classified by *determinism*:
//   * kDeterministic — event counts whose final value is a pure function of
//     the scenario seed and build options. Updates are commutative integer
//     operations (add, max, bucket increment), so accumulating from worker
//     threads in any order yields the same value as the serial path. These
//     are the values the byte-equivalence tests diff across thread counts.
//   * kWallClock — durations, queue depths, thread counts: anything that
//     legitimately varies run to run. Exported only on request, never in the
//     deterministic section.
// This is the metrics analogue of the executor's determinism contract
// (DESIGN.md decisions #6 and #7): observability must never make two builds
// of the same seed look different just because the thread count changed.
//
// Exports use deterministic key ordering (sorted by metric name), so the
// JSON/text output of two registries with equal contents is byte-identical.
//
// Instrumented code reaches the registry through the *current registry*:
// a process-wide pointer installed by ScopedMetrics (the CLI and tests scope
// one registry per run) and defaulting to a process-global registry, so
// instrumentation sites never need a handle threaded through constructors.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/quantile.h"

namespace itm::obs {

enum class Determinism {
  kDeterministic,  // event counts: identical for every thread count
  kWallClock,      // timings/scheduling artifacts: vary run to run
};

// Monotonic event counter. Relaxed atomic addition: integer sums commute, so
// the total is thread-count independent as long as the *set* of add() calls
// is (which the executor's sharding contract guarantees).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-value / high-water-mark gauge. set() is only deterministic when called
// from one thread (stage-level summaries); maximize() commutes and is safe
// from workers.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void maximize(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram over non-negative integer samples. Bucket `i` counts
// samples <= bounds[i] (cumulative-style upper bounds, strictly ascending and
// non-empty — anything else throws std::logic_error, since unsorted or
// duplicate bounds would silently miscount); one implicit overflow bucket
// catches the rest. Bucket increments and the integer sum commute, so merged
// values are thread-count independent.
class Histogram {
 public:
  explicit Histogram(std::span<const std::uint64_t> bounds);

  void observe(std::uint64_t sample);

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  // Per-bucket counts (bounds().size() + 1 entries, last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. The returned reference stays valid for the
  // registry's lifetime. Registering an existing name with a different
  // metric type throws std::logic_error; the determinism class of the first
  // registration wins.
  Counter& counter(std::string_view name,
                   Determinism det = Determinism::kDeterministic);
  Gauge& gauge(std::string_view name,
               Determinism det = Determinism::kDeterministic);
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> bounds,
                       Determinism det = Determinism::kDeterministic);
  // Quantile histograms estimate order statistics from wall-clock samples
  // (latencies), so they are wall-clock by definition: registering one as
  // kDeterministic throws std::logic_error. They export under a "quantiles"
  // subsection of the wall_clock JSON section only — the deterministic
  // artifact's bytes are untouched (DESIGN.md decision #11).
  QuantileHistogram& quantile(std::string_view name,
                              Determinism det = Determinism::kWallClock);

  // Drops every metric (handles become dangling; re-register after).
  void clear();

  [[nodiscard]] std::size_t size() const;

  // Snapshot accessors for tests and summaries (nullopt when absent or of a
  // different type).
  [[nodiscard]] std::optional<std::uint64_t> counter_value(
      std::string_view name) const;
  [[nodiscard]] std::optional<std::int64_t> gauge_value(
      std::string_view name) const;

  enum class Export {
    kDeterministicOnly,  // the byte-stable artifact diffed across threads
    kAll,                // adds the "wall_clock" section
  };

  // JSON document with sorted keys:
  //   {"metrics": {"deterministic": {"counters": {...}, "gauges": {...},
  //    "histograms": {...}}[, "wall_clock": {...}]}}
  void write_json(std::ostream& os,
                  Export what = Export::kDeterministicOnly) const;

  // Human-readable "name  value" dump of everything, sorted by name, with
  // wall-clock metrics marked.
  void write_text(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kQuantile };

  struct Entry {
    Kind kind;
    Determinism det;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<QuantileHistogram> quantile;
  };

  Entry& find_or_create(std::string_view name, Kind kind, Determinism det,
                        std::span<const std::uint64_t> bounds);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

// The current registry: the one installed by the innermost live
// ScopedMetrics, else a process-global default. Never null.
[[nodiscard]] MetricsRegistry& metrics();

// Installs `registry` as current for this scope (restores the previous one
// on destruction). Scopes are process-wide, not per-thread, so executor
// workers spawned inside the scope see the same registry as the caller.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry& registry);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
};

// Convenience wrappers over the current registry for instrumentation sites.
// Call at batched granularity (per sweep / per stage), not per packet: each
// call is a locked name lookup.
inline void count(std::string_view name, std::uint64_t n = 1,
                  Determinism det = Determinism::kDeterministic) {
  metrics().counter(name, det).add(n);
}
inline void gauge_set(std::string_view name, std::int64_t v,
                      Determinism det = Determinism::kDeterministic) {
  metrics().gauge(name, det).set(v);
}
inline void gauge_max(std::string_view name, std::int64_t v,
                      Determinism det = Determinism::kDeterministic) {
  metrics().gauge(name, det).maximize(v);
}
inline void observe(std::string_view name,
                    std::span<const std::uint64_t> bounds,
                    std::uint64_t sample,
                    Determinism det = Determinism::kDeterministic) {
  metrics().histogram(name, bounds, det).observe(sample);
}
// Hot paths should resolve the QuantileHistogram handle once (registry
// lookup takes the lock) and call observe() on it directly; this wrapper is
// for per-stage call sites.
inline void observe_quantile(std::string_view name, std::uint64_t sample) {
  metrics().quantile(name).observe(sample);
}

// Sanctioned escape hatch for itm-lint's determinism-taint rule: wrapping a
// wall-clock-derived expression asserts the caller has reduced it to
// something reproducible (rounded to a fixed bucket, clamped to a config
// bound, compared against a threshold that only gates logging). The cast is
// an identity at runtime; its value is the written-down claim at the call
// site, which the lint rule trusts and a reviewer can audit.
template <typename T>
[[nodiscard]] constexpr T deterministic_cast(T value) {
  return value;
}

}  // namespace itm::obs
