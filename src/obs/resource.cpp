#include "obs/resource.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

#include "obs/quantile.h"

namespace itm::obs {

ScopedLatencyUs::~ScopedLatencyUs() { sink_.observe(watch_.elapsed_us()); }

std::uint64_t current_rss_bytes() {
  // statm field 2 is resident pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::uint64_t>(resident) *
         static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

std::uint64_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

std::uint64_t unix_millis() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace itm::obs
