#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace itm::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::find_path(std::string_view dotted) const {
  const JsonValue* node = this;
  while (!dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    node = node->find(head);
    if (node == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return node;
}

std::optional<double> JsonValue::number_at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->number();
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value)) {
      if (error != nullptr) *error = fail_reason_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing garbage at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const std::string& why) {
    if (fail_reason_.empty()) {
      fail_reason_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (at_end() || text_[pos_] != expected) {
      return fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.type_ = JsonValue::Type::kString;
        return parse_string(out.string_);
      }
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.type_ = JsonValue::Type::kObject;
    out.object_ = std::make_shared<JsonObject>();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      (*out.object_)[std::move(key)] = std::move(value);
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.type_ = JsonValue::Type::kArray;
    out.array_ = std::make_shared<JsonArray>();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array_->push_back(std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // The writers only \u-escape control characters; emit them as
          // single bytes and anything else best-effort UTF-8 (2-byte max —
          // enough for metric/stage names, which are ASCII by lint rule).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    if (text_.substr(pos_, 4) == "true") {
      out.type_ = JsonValue::Type::kBool;
      out.bool_ = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.type_ = JsonValue::Type::kBool;
      out.bool_ = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue& out) {
    if (text_.substr(pos_, 4) == "null") {
      out.type_ = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos_;
    bool digits = false;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      if (std::isdigit(static_cast<unsigned char>(peek()))) digits = true;
      ++pos_;
    }
    if (!digits) return fail("bad number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number_ = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out.type_ = JsonValue::Type::kNumber;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string fail_reason_;
};

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace itm::obs
