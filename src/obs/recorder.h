// Flight recorder, progress heartbeat, and stage scopes — the postmortem
// half of the run-analysis layer.
//
// A huge-tier build that dies (OOM kill, SIGTERM, crash) must leave evidence
// behind. The FlightRecorder keeps the last N events in a ring of fixed-size
// slots and flushes them as line-delimited JSON to `--events-out` — on
// normal exit through flush(), and from a signal/terminate handler through
// flush_from_signal(), which touches only pre-opened file descriptors and
// pre-formatted slot bytes (write/lseek/itoa — async-signal-safe by POSIX).
// The ring bounds both memory (kSlots * kSlotBytes, ~192 KiB) and journal
// file size; a build that emits millions of events still leaves a journal of
// the *last* kSlots of them, which is what a postmortem needs.
//
// The ProgressMeter prints a heartbeat line to stderr every ~1 s with the
// current stage, elapsed wall time, RSS, and an ETA extrapolated from shard
// completions the executor reports. StageScope ties the pieces together for
// one pipeline stage: a trace Span, an RSS delta gauge, begin/end journal
// events, the progress meter's stage pointer, and the crash handler's
// current-stage tag.
//
// Everything here is wall-clock — journal and heartbeat are run artifacts,
// never diffed across thread counts (DESIGN.md decision #11).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/resource.h"
#include "obs/trace.h"

namespace itm::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kSlots = 256;
  static constexpr std::size_t kSlotBytes = 768;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  // Opens (creates/truncates) the journal file and starts recording. Throws
  // std::runtime_error when the path cannot be opened.
  void enable(const std::string& path);
  [[nodiscard]] bool enabled() const {
    return fd_.load(std::memory_order_acquire) >= 0;
  }

  // Records one event. `fields` is an optional pre-rendered JSON fragment of
  // extra key/values (e.g. `"wall_s": 1.25, "rss_bytes": 1024`) appended to
  // the line's fixed keys (ts_ms, seq, event[, stage]). A line that would
  // overflow its slot degrades to the fixed keys only — the journal stays
  // valid JSONL no matter what a caller passes. No-op until enable().
  void event(std::string_view name, std::string_view fields = {});

  // Normal-exit flush: writes the ring (oldest first) and closes the file.
  // Idempotent; later event() calls are dropped.
  void flush();

  // Async-signal-safe flush: appends a final {"event":"signal",...} line
  // naming the in-flight stage, then writes the ring and closes. Safe to
  // call from a signal handler or std::terminate handler.
  void flush_from_signal(int signo) noexcept;

  [[nodiscard]] std::uint64_t events_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    // len is written (release) only after bytes are fully formatted; the
    // signal path skips slots whose len reads 0, so a torn slot is dropped
    // rather than emitted as garbage.
    std::atomic<std::uint32_t> len{0};
    char bytes[kSlotBytes];
  };

  void write_ring(int fd) noexcept;

  Slot slots_[kSlots];
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<int> fd_{-1};
  std::atomic<bool> flushed_{false};
  std::mutex record_mutex_;
};

// The process-wide recorder (journaling is a per-process concern — there is
// exactly one `--events-out` per run).
[[nodiscard]] FlightRecorder& recorder();

// Installs SIGTERM/SIGINT/SIGSEGV/SIGABRT handlers and a std::terminate
// handler that flush the recorder, then re-raise with default disposition so
// the exit status still reflects the signal. Idempotent.
void install_crash_flush();

// The stage currently executing, for crash tagging and executor rollups.
// Returns "" outside any StageScope. The returned pointer is a stable
// internal buffer holding [a-z0-9_.]-safe text — readable from a signal
// handler.
[[nodiscard]] const char* current_stage();

// Periodic progress heartbeat on stderr. Disabled by default; the CLI's
// --progress flag enables it. Work accounting: stages declare themselves via
// StageScope; the executor adds expected/completed shard counts, from which
// the heartbeat extrapolates a per-stage ETA once any shard has finished.
class ProgressMeter {
 public:
  ProgressMeter() = default;
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;
  ~ProgressMeter();

  void enable();  // starts the heartbeat thread (idempotent)
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }
  void disable();  // stops the thread (joins); safe if never enabled

  // Stage lifecycle (called by StageScope).
  void begin_stage(std::string_view name, std::size_t index,
                   std::size_t total);
  void end_stage();

  // Work accounting (called by the executor; cheap relaxed atomics).
  void add_expected(std::uint64_t units) {
    units_expected_.fetch_add(units, std::memory_order_relaxed);
  }
  void add_completed(std::uint64_t units) {
    units_completed_.fetch_add(units, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t heartbeats_emitted() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }

 private:
  void heartbeat_loop();
  void emit_line();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::mutex stage_mutex_;
  std::string stage_name_;
  std::size_t stage_index_ = 0;
  std::size_t stage_total_ = 0;
  Stopwatch run_watch_;
  Stopwatch stage_watch_;
  std::atomic<std::uint64_t> units_expected_{0};
  std::atomic<std::uint64_t> units_completed_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
};

[[nodiscard]] ProgressMeter& progress();

// RAII for one pipeline stage: opens a Span named `name`, samples RSS at the
// ends, journals stage.begin/stage.end, publishes `<name>.rss_delta_bytes` /
// `<name>.rss_bytes` / `<name>.wall_us` wall-clock gauges, and sets the
// crash handler's current-stage tag. close() returns the wall duration in
// seconds (like Span::close) so MapBuildTimings keeps working unchanged.
class StageScope {
 public:
  explicit StageScope(std::string_view name, std::size_t index = 0,
                      std::size_t total = 0);
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  double close();

 private:
  std::string name_;
  Span span_;
  std::uint64_t rss_before_;
  Stopwatch watch_;
  bool open_ = true;
};

}  // namespace itm::obs
