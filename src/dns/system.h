// The DNS ecosystem: a Google-Public-DNS-like anycast resolver with per-PoP
// ECS-scoped caches, per-ISP recursive resolvers, authoritative servers, and
// the root system.
//
// The workload driver pushes client queries through DnsSystem::resolve();
// measurement tools later read the state a real measurer could reach:
// non-recursive ECS cache probes of the public resolver (§3.1.2 approach 1)
// and crawls of open root-letter logs (approach 2).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cdn/mapping.h"
#include "cdn/services.h"
#include "dns/authoritative.h"
#include "dns/cache.h"
#include "dns/root.h"
#include "traffic/user_base.h"

namespace itm::dns {

struct PublicPop {
  CityId city;
  Ipv4Addr address;
};

struct DnsConfig {
  // Number of public-resolver PoPs to place (main cities first).
  std::size_t public_pop_target = 14;
  // Public resolver caps upstream TTLs (seconds).
  std::uint32_t max_cache_ttl_s = 21600;
  // Probability that an access network runs its own recursive resolver:
  // base + boost * size_factor (capped). Networks without one forward to
  // their transit provider's resolver, so root logs attribute their
  // Chromium queries to the provider's AS — the blind spot that caps the
  // root-log technique's coverage (~60% in the paper, vs ~95% for probing).
  double own_resolver_base = 0.3;
  double own_resolver_size_boost = 0.1;
  double own_resolver_cap = 0.85;
  // Fraction of resolutions sampled by measurement JavaScript embedded in
  // popular pages ([43]; §3.1.3's proposed fix for resolver-based
  // techniques): each sample records the (client AS, resolver address)
  // pair, letting researchers redistribute per-resolver root-log counts
  // back onto client networks.
  double association_sample_rate = 0.01;
  RootConfig root;
};

class DnsSystem {
 public:
  DnsSystem(const topology::Topology& topo, const traffic::UserBase& users,
            const cdn::ServiceCatalog& catalog,
            const cdn::ClientMapper& mapper, const DnsConfig& config,
            Rng& rng);

  struct ResolveResult {
    Ipv4Addr answer;
    bool used_public = false;
    bool cache_hit = false;
    std::size_t public_pop = 0;  // valid when used_public
  };

  // A client in `up` resolves `service`; resolver choice is sampled from the
  // prefix's public-DNS share.
  ResolveResult resolve(const traffic::UserPrefix& up,
                        const cdn::Service& service, SimTime now, Rng& rng);

  // A Chromium browser start in `up`: `queries` random-label lookups that
  // bypass caches and land at the roots, logged by resolver address.
  void chromium_probe(const traffic::UserPrefix& up, std::uint64_t queries,
                      SimTime now, Rng& rng);

  // --- Measurement surface -------------------------------------------------

  // Non-recursive ECS cache probe against one public PoP: did a client of
  // `slash24` resolve `service` there recently? Returns the cached answer.
  [[nodiscard]] std::optional<Ipv4Addr> probe_cache(
      std::size_t pop_index, const cdn::Service& service,
      const Ipv4Prefix& slash24, SimTime now) const;

  [[nodiscard]] const std::vector<PublicPop>& public_pops() const {
    return pops_;
  }
  [[nodiscard]] const RootSystem& roots() const { return roots_; }
  [[nodiscard]] const AuthoritativeDns& authoritative() const {
    return authoritative_;
  }

  // The public PoP serving clients in `city` (anycast catchment).
  [[nodiscard]] std::size_t pop_for_city(CityId city) const {
    return nearest_pop_[city.value()];
  }

  [[nodiscard]] Ipv4Addr isp_resolver_address(Asn asn) const;

  // Sampled (resolver address -> client AS -> observation count) pairs from
  // page-embedded measurements; public data a research project could host.
  using ResolverAssociations =
      std::unordered_map<Ipv4Addr,
                         std::unordered_map<std::uint32_t, std::uint64_t>>;
  [[nodiscard]] const ResolverAssociations& resolver_associations() const {
    return associations_;
  }

  void purge(SimTime now);

  // Workload-path cache effectiveness. Misses split into cold (no entry)
  // and TTL expiries (entry present but stale); purged counts entries
  // evicted by purge(). All driven by the single-threaded workload, so the
  // values are deterministic for a given seed.
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t public_queries = 0;
    std::uint64_t public_hits = 0;
    std::uint64_t public_misses = 0;
    std::uint64_t public_expired = 0;
    std::uint64_t isp_hits = 0;
    std::uint64_t isp_misses = 0;
    std::uint64_t isp_expired = 0;
    std::uint64_t insertions = 0;
    std::uint64_t purged = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // True when the AS operates a resolver in its own address space.
  [[nodiscard]] bool runs_own_resolver(Asn asn) const;

 private:
  struct IspResolver {
    CityId city;
    Asn host{0};  // AS whose space the resolver lives in
    DnsCache cache;
  };

  const topology::Topology* topo_;
  AuthoritativeDns authoritative_;
  DnsConfig config_;
  std::vector<PublicPop> pops_;
  std::vector<DnsCache> pop_caches_;
  std::vector<std::size_t> nearest_pop_;  // city -> pop index
  // Resolver assignment: access AS -> resolver address (own or provider's),
  // and resolver state keyed by address (siblings may share a resolver).
  std::unordered_map<std::uint32_t, Ipv4Addr> resolver_of_as_;
  std::unordered_map<Ipv4Addr, IspResolver> isp_resolvers_;
  ResolverAssociations associations_;
  RootSystem roots_;
  Stats stats_;
};

}  // namespace itm::dns
