#include "dns/system.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "net/geo.h"

namespace itm::dns {

DnsSystem::DnsSystem(const topology::Topology& topo,
                     const traffic::UserBase& users,
                     const cdn::ServiceCatalog& catalog,
                     const cdn::ClientMapper& mapper, const DnsConfig& config,
                     Rng& rng)
    : topo_(&topo),
      authoritative_(topo, users, catalog, mapper),
      config_(config),
      roots_(config.root) {
  (void)rng;
  const auto& geo = topo.geography;

  // Public PoPs: main city of every country by user share, then second
  // cities of the largest countries, until the target count.
  std::vector<CountryId> by_share;
  for (const auto& c : geo.countries()) by_share.push_back(c.id);
  std::sort(by_share.begin(), by_share.end(), [&](CountryId a, CountryId b) {
    return geo.country(a).user_share > geo.country(b).user_share;
  });
  std::vector<CityId> pop_cities;
  for (const CountryId c : by_share) {
    if (pop_cities.size() >= config.public_pop_target) break;
    pop_cities.push_back(geo.country(c).cities.front());
  }
  for (const CountryId c : by_share) {
    if (pop_cities.size() >= config.public_pop_target) break;
    if (geo.country(c).cities.size() > 1) {
      pop_cities.push_back(geo.country(c).cities[1]);
    }
  }

  // The public resolver is operated by the first hypergiant (its addresses
  // come from that AS's infrastructure /24, so root logs attribute its
  // queries to the hypergiant's AS — the coverage gap of §3.1.2 approach 2).
  assert(!topo.hypergiants.empty());
  const Asn operator_as = topo.hypergiants.front();
  const auto infra = topo.addresses.of(operator_as).infra_slash24;
  for (std::size_t i = 0; i < pop_cities.size(); ++i) {
    pops_.push_back(PublicPop{pop_cities[i],
                              infra.address_at(100 + i)});
  }
  pop_caches_.resize(pops_.size());

  // Precompute the anycast catchment (nearest PoP) for every city.
  nearest_pop_.resize(geo.cities().size(), 0);
  for (const auto& city : geo.cities()) {
    double best = std::numeric_limits<double>::max();
    for (std::size_t p = 0; p < pops_.size(); ++p) {
      const double km = geo.distance_km(city.id, pops_[p].city);
      if (km < best) {
        best = km;
        nearest_pop_[city.id.value()] = p;
      }
    }
  }

  // Recursive resolvers for access networks: larger networks run their own;
  // the rest forward to their (first) transit provider's resolver.
  const auto resolver_address_of = [&](Asn asn) {
    return topo.addresses.of(asn).infra_slash24.address_at(53);
  };
  for (const Asn asn : topo.accesses) {
    const auto& info = topo.graph.info(asn);
    const double p_own =
        std::min(config.own_resolver_cap,
                 config.own_resolver_base +
                     config.own_resolver_size_boost * info.size_factor);
    Asn resolver_as = asn;
    if (!rng.bernoulli(p_own)) {
      for (const auto& nb : topo.graph.neighbors(asn)) {
        if (nb.relation == topology::Relation::kProvider) {
          resolver_as = nb.asn;
          break;
        }
      }
    }
    const Ipv4Addr addr = resolver_address_of(resolver_as);
    resolver_of_as_.emplace(asn.value(), addr);
    isp_resolvers_.try_emplace(
        addr, IspResolver{topo.graph.info(resolver_as).home_city,
                          resolver_as,
                          {}});
  }
}

Ipv4Addr DnsSystem::isp_resolver_address(Asn asn) const {
  const auto it = resolver_of_as_.find(asn.value());
  assert(it != resolver_of_as_.end() && "AS has no ISP resolver");
  return it->second;
}

bool DnsSystem::runs_own_resolver(Asn asn) const {
  const auto it = resolver_of_as_.find(asn.value());
  if (it == resolver_of_as_.end()) return false;
  return topo_->addresses.of(asn).infra_slash24.contains(it->second);
}

DnsSystem::ResolveResult DnsSystem::resolve(const traffic::UserPrefix& up,
                                            const cdn::Service& service,
                                            SimTime now, Rng& rng) {
  ++stats_.queries;
  ResolveResult result;
  result.used_public = rng.bernoulli(up.public_dns_share);
  // Page-embedded measurement sampling: observes which resolver this client
  // uses (client identity at AS granularity, as real deployments report).
  if (config_.association_sample_rate > 0 &&
      rng.bernoulli(config_.association_sample_rate)) {
    const Ipv4Addr resolver_addr =
        result.used_public ? pops_[nearest_pop_[up.city.value()]].address
                           : isp_resolver_address(up.asn);
    ++associations_[resolver_addr][up.asn.value()];
  }
  if (result.used_public) {
    ++stats_.public_queries;
    const std::size_t pop = nearest_pop_[up.city.value()];
    result.public_pop = pop;
    DnsCache& cache = pop_caches_[pop];
    const std::uint32_t scope = service.supports_ecs
                                    ? DnsCache::scope_of(up.prefix)
                                    : DnsCache::kGlobalScope;
    DnsCache::LookupOutcome outcome;
    if (const auto cached = cache.lookup(service.id, scope, now, &outcome)) {
      ++stats_.public_hits;
      result.cache_hit = true;
      result.answer = *cached;
      return result;
    }
    if (outcome == DnsCache::LookupOutcome::kExpired) {
      ++stats_.public_expired;
    } else {
      ++stats_.public_misses;
    }
    // Miss: the public resolver queries the authoritative, forwarding the
    // client subnet (services that ignore ECS answer by the PoP's location).
    const auto ans = authoritative_.answer(
        service,
        service.supports_ecs ? std::optional<Ipv4Prefix>(up.prefix)
                             : std::nullopt,
        pops_[pop].city);
    const SimTime expiry =
        now + std::min<std::uint32_t>(ans.ttl_s, config_.max_cache_ttl_s);
    cache.insert(service.id, ans.cache_scope, ans.address, expiry);
    ++stats_.insertions;
    result.answer = ans.address;
    return result;
  }

  // ISP resolver path: shared resolver cache (own or provider's), no ECS
  // upstream.
  auto it = isp_resolvers_.find(isp_resolver_address(up.asn));
  assert(it != isp_resolvers_.end());
  IspResolver& resolver = it->second;
  DnsCache::LookupOutcome outcome;
  if (const auto cached = resolver.cache.lookup(
          service.id, DnsCache::kGlobalScope, now, &outcome)) {
    ++stats_.isp_hits;
    result.cache_hit = true;
    result.answer = *cached;
    return result;
  }
  if (outcome == DnsCache::LookupOutcome::kExpired) {
    ++stats_.isp_expired;
  } else {
    ++stats_.isp_misses;
  }
  const auto ans = authoritative_.answer(service, std::nullopt,
                                         resolver.city, resolver.host);
  resolver.cache.insert(service.id, DnsCache::kGlobalScope, ans.address,
                        now + ans.ttl_s);
  ++stats_.insertions;
  result.answer = ans.address;
  return result;
}

void DnsSystem::chromium_probe(const traffic::UserPrefix& up,
                               std::uint64_t queries, SimTime now, Rng& rng) {
  (void)now;
  // Random-label queries never hit resolver caches; the resolver forwards
  // them to a root, which logs the resolver's address.
  const bool via_public = rng.bernoulli(up.public_dns_share);
  Ipv4Addr resolver_addr;
  if (via_public) {
    resolver_addr = pops_[nearest_pop_[up.city.value()]].address;
  } else {
    resolver_addr = isp_resolver_address(up.asn);
  }
  roots_.record(resolver_addr, queries, rng);
}

std::optional<Ipv4Addr> DnsSystem::probe_cache(std::size_t pop_index,
                                               const cdn::Service& service,
                                               const Ipv4Prefix& slash24,
                                               SimTime now) const {
  assert(pop_index < pops_.size());
  const std::uint32_t scope = service.supports_ecs
                                  ? DnsCache::scope_of(slash24)
                                  : DnsCache::kGlobalScope;
  return pop_caches_[pop_index].lookup(service.id, scope, now);
}

void DnsSystem::purge(SimTime now) {
  for (auto& cache : pop_caches_) stats_.purged += cache.purge(now);
  // In-place purge of every resolver cache: per-resolver counts are
  // independent and the sum is an integer, so visit order cannot reach any
  // output. itm-lint: allow(nondet-iteration)
  for (auto& [addr, resolver] : isp_resolvers_) {
    stats_.purged += resolver.cache.purge(now);
  }
}

}  // namespace itm::dns
