#include "dns/root.h"

#include "net/ordered.h"

namespace itm::dns {

void RootSystem::record(Ipv4Addr resolver, std::uint64_t count, Rng& rng) {
  if (letter_logs_.empty()) {
    letter_logs_.resize(config_.letters);
    letter_usable_.resize(config_.letters, false);
    for (std::size_t i = 0; i < config_.letters; ++i) {
      const bool open = i < config_.open_letters;
      letter_usable_[i] =
          open && !rng.bernoulli(config_.anonymized_fraction);
    }
  }
  total_ += count;
  for (std::uint64_t q = 0; q < count; ++q) {
    const std::size_t letter = rng.next_below(config_.letters);
    ++letter_logs_[letter][resolver];
  }
}

std::unordered_map<Ipv4Addr, std::uint64_t> RootSystem::crawl() const {
  std::unordered_map<Ipv4Addr, std::uint64_t> out;
  for (std::size_t i = 0; i < letter_logs_.size(); ++i) {
    if (!letter_usable_[i]) continue;
    for (const auto& [resolver, count] : net::sorted_items(letter_logs_[i])) {
      out[resolver] += count;
    }
  }
  return out;
}

}  // namespace itm::dns
