// Root DNS servers and their query logs.
//
// Chromium-style random-label probes never hit resolver caches, so they
// reach a root letter and appear in its logs keyed by the *recursive
// resolver's* address — the paper's §3.1.2 "crawling DNS logs" signal. Only
// some letters are operated by research organizations with accessible logs,
// and some anonymize sources; both limits are modeled.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ids.h"
#include "net/ipv4.h"
#include "net/rng.h"

namespace itm::dns {

struct RootConfig {
  // Total root letters; queries spread uniformly across them.
  std::size_t letters = 13;
  // Letters whose logs researchers can crawl.
  std::size_t open_letters = 3;
  // Fraction of open-letter logs with anonymized (unusable) sources.
  double anonymized_fraction = 0.2;
};

class RootSystem {
 public:
  explicit RootSystem(const RootConfig& config) : config_(config) {}

  // Records `count` queries from a resolver; each query independently lands
  // on a random letter.
  void record(Ipv4Addr resolver, std::uint64_t count, Rng& rng);

  // The crawlable view: per-resolver query counts aggregated over open,
  // non-anonymized letters.
  [[nodiscard]] std::unordered_map<Ipv4Addr, std::uint64_t> crawl() const;

  [[nodiscard]] std::uint64_t total_queries() const { return total_; }
  [[nodiscard]] const RootConfig& config() const { return config_; }

 private:
  RootConfig config_;
  // Per-letter logs: resolver -> count.
  std::vector<std::unordered_map<Ipv4Addr, std::uint64_t>> letter_logs_;
  // Decided lazily and deterministically on first record().
  std::vector<bool> letter_usable_;
  std::uint64_t total_ = 0;
};

}  // namespace itm::dns
