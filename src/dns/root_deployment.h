// Root DNS letter deployments: each of the 13 letters is anycast from
// several sites hosted in different networks (operators range from tier-1
// carriers to research institutions). Which site a query reaches is decided
// by BGP among the hosting ASes — multi-origin anycast, computed with
// routing::Bgp::routes_to_set.
//
// This is the destination set of the paper's motivating §3.3.1 experiment
// ("when we tried to predict paths from RIPE Atlas probes to root DNS
// servers, more than half could not be predicted").
#pragma once

#include <string>
#include <vector>

#include "net/rng.h"
#include "routing/bgp.h"
#include "topology/generator.h"

namespace itm::dns {

struct RootLetter {
  std::size_t index = 0;       // 0 = 'A', ...
  std::string name;            // "A-root"
  std::vector<Asn> site_hosts; // ASes announcing the letter's prefix
};

struct RootDeploymentConfig {
  std::size_t letters = 13;
  // Sites per letter (small letters have a handful, large ones dozens —
  // real letters range from a few to hundreds of instances).
  std::size_t min_sites = 4;
  std::size_t max_sites = 18;
};

class RootDeployment {
 public:
  static RootDeployment build(const topology::Topology& topo,
                              const RootDeploymentConfig& config, Rng& rng);

  [[nodiscard]] const std::vector<RootLetter>& letters() const {
    return letters_;
  }

  // Anycast routing for one letter: best route from every AS to the
  // nearest (in BGP policy terms) site; entry.origin_index identifies the
  // winning site within the letter's site_hosts.
  [[nodiscard]] routing::RouteTable catchment(
      const topology::Topology& topo, std::size_t letter) const;

 private:
  std::vector<RootLetter> letters_;
};

}  // namespace itm::dns
