// Authoritative DNS behaviour for every service in the catalog.
//
// For DNS-redirected services the answer depends on where the client appears
// to be: the ECS prefix when the resolver forwards one and the service
// honors ECS, otherwise the recursive resolver's own location — the bias
// that makes public-resolver users of non-ECS services land on distant
// front ends.
#pragma once

#include <optional>

#include "cdn/mapping.h"
#include "cdn/services.h"
#include "traffic/user_base.h"

namespace itm::dns {

struct AuthoritativeAnswer {
  Ipv4Addr address;
  std::uint32_t ttl_s = 60;
  // Scope the answer may be cached under (kGlobalScope when no ECS echo).
  std::uint32_t cache_scope = 0;
};

class AuthoritativeDns {
 public:
  AuthoritativeDns(const topology::Topology& topo,
                   const traffic::UserBase& users,
                   const cdn::ServiceCatalog& catalog,
                   const cdn::ClientMapper& mapper);

  // Answers a recursive resolver's query.
  // `ecs`: client /24 included by the resolver (nullopt when not sent).
  // `resolver_city`: where the querying resolver is.
  // `resolver_as`: origin AS of the resolver address, when known — used
  // (like real CDN mapping systems) to hand out an off-net cache inside the
  // client's ISP for cacheable content.
  [[nodiscard]] AuthoritativeAnswer answer(
      const cdn::Service& service, std::optional<Ipv4Prefix> ecs,
      CityId resolver_city, std::optional<Asn> resolver_as = {}) const;

  // Best-effort geolocation of a client prefix as the authoritative's
  // mapping database would see it (ground truth for user prefixes, the
  // origin AS's home city otherwise).
  [[nodiscard]] CityId locate_prefix(const Ipv4Prefix& slash24) const;

 private:
  const topology::Topology* topo_;
  const traffic::UserBase* users_;
  const cdn::ServiceCatalog* catalog_;
  const cdn::ClientMapper* mapper_;
};

}  // namespace itm::dns
