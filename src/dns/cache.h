// Resolver cache with TTL and EDNS0-Client-Subnet scoping.
//
// Entries are keyed by (service, scope): ECS-aware answers are cached per
// client /24 scope, non-ECS answers under a shared global scope. This is the
// mechanism DNS cache probing (§3.1.2) exploits: a non-recursive ECS query
// for prefix P hits only if a client in P recently resolved the name at the
// same cache.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/ids.h"
#include "net/ipv4.h"
#include "net/sim_time.h"

namespace itm::dns {

class DnsCache {
 public:
  // Sentinel scope for answers not scoped to a client subnet.
  static constexpr std::uint32_t kGlobalScope = 0xffffffu;

  static std::uint32_t scope_of(const Ipv4Prefix& slash24) {
    return slash24.base().bits() >> 8;
  }

  void insert(ServiceId service, std::uint32_t scope, Ipv4Addr answer,
              SimTime expiry) {
    slots_[key(service, scope)] = Entry{answer, expiry};
  }

  // Why the probe missed: no entry at all vs. an entry that outlived its
  // TTL. Callers tracking cache effectiveness (DnsSystem::Stats, the obs
  // counters) need the split; measurement code ignores it.
  enum class LookupOutcome { kHit, kMiss, kExpired };

  [[nodiscard]] std::optional<Ipv4Addr> lookup(
      ServiceId service, std::uint32_t scope, SimTime now,
      LookupOutcome* outcome = nullptr) const {
    const auto it = slots_.find(key(service, scope));
    if (it == slots_.end()) {
      if (outcome != nullptr) *outcome = LookupOutcome::kMiss;
      return std::nullopt;
    }
    if (it->second.expiry <= now) {
      if (outcome != nullptr) *outcome = LookupOutcome::kExpired;
      return std::nullopt;
    }
    if (outcome != nullptr) *outcome = LookupOutcome::kHit;
    return it->second.answer;
  }

  // Removes expired entries (call occasionally to bound memory); returns the
  // number evicted.
  std::size_t purge(SimTime now) {
    return std::erase_if(
        slots_, [now](const auto& kv) { return kv.second.expiry <= now; });
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  struct Entry {
    Ipv4Addr answer;
    SimTime expiry = 0;
  };

  static std::uint64_t key(ServiceId service, std::uint32_t scope) {
    return (std::uint64_t{service.value()} << 24) | scope;
  }

  std::unordered_map<std::uint64_t, Entry> slots_;
};

}  // namespace itm::dns
