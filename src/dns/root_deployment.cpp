#include "dns/root_deployment.h"

#include <cassert>

namespace itm::dns {

RootDeployment RootDeployment::build(const topology::Topology& topo,
                                     const RootDeploymentConfig& config,
                                     Rng& rng) {
  RootDeployment deployment;
  // Root instances predominantly connect at IXPs (hosted instances behind
  // route-server participants) — the reason their paths cross invisible
  // peering; a minority sit behind carriers/transit.
  std::vector<Asn> ixp_hosts;
  for (const auto& ixp : topo.ixps) {
    for (const Asn asn : ixp.route_server_participants) {
      ixp_hosts.push_back(asn);
    }
  }
  std::vector<Asn> carrier_hosts = topo.tier1s;
  carrier_hosts.insert(carrier_hosts.end(), topo.transits.begin(),
                       topo.transits.end());
  if (ixp_hosts.empty()) ixp_hosts = carrier_hosts;  // IXP-free topologies
  assert(!carrier_hosts.empty());

  for (std::size_t letter = 0; letter < config.letters; ++letter) {
    RootLetter entry;
    entry.index = letter;
    entry.name = std::string(1, static_cast<char>('A' + letter)) + "-root";
    const std::size_t sites = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_sites),
        static_cast<std::int64_t>(config.max_sites)));
    for (std::size_t s = 0; s < sites; ++s) {
      const auto& pool = rng.bernoulli(0.9) ? ixp_hosts : carrier_hosts;
      const Asn host = pool[rng.next_below(pool.size())];
      if (std::find(entry.site_hosts.begin(), entry.site_hosts.end(), host) ==
          entry.site_hosts.end()) {
        entry.site_hosts.push_back(host);
      }
    }
    deployment.letters_.push_back(std::move(entry));
  }
  return deployment;
}

routing::RouteTable RootDeployment::catchment(const topology::Topology& topo,
                                              std::size_t letter) const {
  assert(letter < letters_.size());
  const routing::Bgp bgp(topo.graph);
  return bgp.routes_to_set(letters_[letter].site_hosts);
}

}  // namespace itm::dns
