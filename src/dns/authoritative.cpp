#include "dns/authoritative.h"

#include "dns/cache.h"

namespace itm::dns {

AuthoritativeDns::AuthoritativeDns(const topology::Topology& topo,
                                   const traffic::UserBase& users,
                                   const cdn::ServiceCatalog& catalog,
                                   const cdn::ClientMapper& mapper)
    : topo_(&topo), users_(&users), catalog_(&catalog), mapper_(&mapper) {}

CityId AuthoritativeDns::locate_prefix(const Ipv4Prefix& slash24) const {
  if (const auto* up = users_->find(slash24)) return up->city;
  if (const auto asn = topo_->addresses.origin_of(slash24)) {
    return topo_->graph.info(*asn).home_city;
  }
  return CityId(0);
}

AuthoritativeAnswer AuthoritativeDns::answer(const cdn::Service& service,
                                             std::optional<Ipv4Prefix> ecs,
                                             CityId resolver_city,
                                             std::optional<Asn> resolver_as)
    const {
  AuthoritativeAnswer out;
  out.ttl_s = service.dns_ttl_s;
  switch (service.redirection) {
    case cdn::RedirectionKind::kAnycast:
    case cdn::RedirectionKind::kCustomUrl:
    case cdn::RedirectionKind::kSingleSite:
      out.address = service.service_address;
      out.cache_scope = DnsCache::kGlobalScope;
      return out;
    case cdn::RedirectionKind::kDnsRedirection:
      break;
  }
  const bool use_ecs = service.supports_ecs && ecs.has_value();
  const CityId effective = use_ecs ? locate_prefix(*ecs) : resolver_city;

  // For cacheable content, clients inside an ISP that hosts the operator's
  // off-net cache are directed to it (Netflix-OCA/Akamai-AANP style). The
  // client AS is inferred from the ECS prefix when present, else from the
  // resolver's address.
  if (service.offnet_cacheable && service.hypergiant) {
    std::optional<Asn> client_as = resolver_as;
    if (use_ecs) client_as = topo_->addresses.origin_of(*ecs);
    if (client_as) {
      if (const auto* offnet = mapper_->deployment().offnet_in(
              *service.hypergiant, *client_as)) {
        const auto& fes =
            mapper_->deployment().front_end_addresses(offnet->id);
        const std::uint64_t h = (std::uint64_t{service.id.value()} << 32) |
                                client_as->value();
        out.address = fes[h % fes.size()];
        out.cache_scope =
            use_ecs ? DnsCache::scope_of(*ecs) : DnsCache::kGlobalScope;
        return out;
      }
    }
  }

  const PopId pop = mapper_->dns_site(service, effective);
  const auto& fes = mapper_->deployment().front_end_addresses(pop);
  // Deterministic per (service, city) front-end choice keeps answers stable
  // within a TTL, like a real load balancer with consistent hashing.
  const std::uint64_t h =
      (std::uint64_t{service.id.value()} << 32) | effective.value();
  out.address = fes[h % fes.size()];
  out.cache_scope = use_ecs ? DnsCache::scope_of(*ecs) : DnsCache::kGlobalScope;
  return out;
}

}  // namespace itm::dns
