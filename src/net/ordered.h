// Ordered snapshots of unordered containers.
//
// The repo's determinism contract (DESIGN.md decisions #6/#8) forbids
// letting unordered_{map,set} iteration order reach outputs, merges or RNG
// draws: that order is an accident of hash layout and insertion history.
// These helpers are the sanctioned fix — take a key-sorted snapshot and
// iterate that. itm-lint's nondet-iteration rule recognises a range-for
// over `sorted_items(...)` / `sorted_keys(...)` as ordered.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace itm::net {

// Key-sorted copy of a map's (key, value) pairs. Values are copied; use
// sorted_keys + find for expensive mapped types.
template <typename Map>
[[nodiscard]] auto sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      out;
  out.reserve(m.size());
  for (const auto& [k, v] : m) out.emplace_back(k, v);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

// Sorted copy of a map's or set's keys.
template <typename Container>
[[nodiscard]] auto sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> out;
  out.reserve(c.size());
  if constexpr (requires { c.begin()->first; }) {
    for (const auto& [k, v] : c) out.push_back(k);
  } else {
    for (const auto& k : c) out.push_back(k);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace itm::net
