// Deterministic sharded parallelism for the map-build pipeline.
//
// Executor is a small fixed-size thread pool exposing parallel_for /
// parallel_map over an index range [0, n). The range is split into
// contiguous shards whose boundaries depend ONLY on n — never on the thread
// count or on scheduling — so a caller that merges per-shard results in
// shard order (or writes per-index slots) produces bit-identical output
// whether the work ran on 1 thread or 16. This is the repo's determinism
// contract (DESIGN.md decision #6): parallelism must never change results,
// only wall-clock time.
//
// Rules of use:
//   * Shard functions must not share mutable state except through their own
//     per-shard / per-index output slots; RNG-consuming stages derive one
//     stream per item or per shard via Rng::split, never share a generator.
//   * Nested parallelism is rejected: calling parallel_for from inside a
//     shard function throws std::logic_error (a worker blocking on a child
//     batch could deadlock the pool). Structure stages as flat loops.
//   * Exceptions thrown by shard functions are captured and the first one
//     (lowest shard index) is rethrown on the calling thread after the
//     batch drains; remaining shards still run.
//
// Executor(1) runs everything inline on the calling thread with no pool,
// no locks and no allocation — the exact legacy serial path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace itm::net {

class Executor {
 public:
  // threads == 0 selects hardware_threads(). The calling thread counts
  // toward the total and participates in every batch, so Executor(4) spawns
  // three workers.
  explicit Executor(std::size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return threads_; }

  [[nodiscard]] static std::size_t hardware_threads();

  // Process-wide single-threaded executor for callers given no pool.
  // Stateless in serial mode, so sharing across threads is safe.
  [[nodiscard]] static Executor& serial();

  // One contiguous slice of the index range.
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;    // exclusive
    std::size_t index = 0;  // shard ordinal in [0, count)
    std::size_t count = 0;  // total shards in this batch
  };

  // Number of shards a range of n items is split into: min(n, 64), a pure
  // function of n so that shard boundaries are schedule-independent.
  [[nodiscard]] static std::size_t shard_count_for(std::size_t n);

  // Runs fn once per shard, blocking until every shard finishes. Shards are
  // claimed dynamically by the pool (and by the calling thread); fn must be
  // safe to invoke concurrently. Throws std::logic_error when called from
  // inside a shard function.
  void parallel_for(std::size_t n, const std::function<void(const Shard&)>& fn);

  // fn(i) -> T for every index, results returned in index order. T must be
  // default-constructible; each slot is written by exactly one invocation,
  // so the output is identical for every thread count.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&out, &fn](const Shard& shard) {
      for (std::size_t i = shard.begin; i < shard.end; ++i) out[i] = fn(i);
    });
    return out;
  }

  // fn(shard) -> T per shard, results in shard order — the building block
  // for ordered merges of per-shard accumulators.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map_shards(std::size_t n, Fn&& fn) {
    std::vector<T> out(shard_count_for(n));
    parallel_for(n, [&out, &fn](const Shard& shard) {
      out[shard.index] = fn(shard);
    });
    return out;
  }

 private:
  struct Batch;

  void worker_loop();
  static void run_shards(Batch& batch);

  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::shared_ptr<Batch> batch_;  // non-null while a batch is open
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace itm::net
