// IPv4 address and prefix value types.
//
// Addresses are a thin wrapper over a host-order uint32; prefixes pair an
// address with a mask length and canonicalize the host bits to zero so that
// equal prefixes compare equal regardless of how they were constructed.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace itm {

class Ipv4Addr {
 public:
  Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : bits_(host_order) {}

  // Builds from dotted-quad octets: Ipv4Addr::from_octets(10, 0, 0, 1).
  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                        std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  // Parses "a.b.c.d"; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

  friend std::ostream& operator<<(std::ostream& os, Ipv4Addr a);

 private:
  std::uint32_t bits_ = 0;
};

class Ipv4Prefix {
 public:
  Ipv4Prefix() = default;

  // Canonicalizes: bits below the mask are cleared.
  constexpr Ipv4Prefix(Ipv4Addr base, std::uint8_t length)
      : base_(Ipv4Addr(length == 0 ? 0 : (base.bits() & mask_for(length)))),
        length_(length > 32 ? 32 : length) {}

  // Parses "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Addr base() const { return base_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }

  // Number of addresses covered (2^(32-length)).
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const {
    return length_ == 0 ||
           (addr.bits() & mask_for(length_)) == base_.bits();
  }

  [[nodiscard]] constexpr bool contains(const Ipv4Prefix& other) const {
    return other.length_ >= length_ && contains(other.base_);
  }

  // The enclosing /len prefix of this prefix (len must be <= length()).
  [[nodiscard]] constexpr Ipv4Prefix parent_at(std::uint8_t len) const {
    return Ipv4Prefix(base_, len);
  }

  // The i-th /sublen child. sublen must be >= length().
  [[nodiscard]] constexpr Ipv4Prefix child(std::uint8_t sublen,
                                           std::uint64_t index) const {
    if (sublen == 0) return Ipv4Prefix(base_, 0);  // only child of /0 is /0
    const std::uint32_t step =
        sublen >= 32 ? 1u : (std::uint32_t{1} << (32 - sublen));
    return Ipv4Prefix(
        Ipv4Addr(base_.bits() + static_cast<std::uint32_t>(index) * step),
        sublen);
  }

  // Address at offset within the prefix.
  [[nodiscard]] constexpr Ipv4Addr address_at(std::uint64_t offset) const {
    return Ipv4Addr(base_.bits() + static_cast<std::uint32_t>(offset));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&,
                                    const Ipv4Prefix&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Ipv4Prefix& p);

  static constexpr std::uint32_t mask_for(std::uint8_t length) {
    return length == 0 ? 0u
                       : ~std::uint32_t{0} << (32 - (length > 32 ? 32 : length));
  }

 private:
  Ipv4Addr base_;
  std::uint8_t length_ = 0;
};

}  // namespace itm

namespace std {
template <>
struct hash<itm::Ipv4Addr> {
  size_t operator()(itm::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};

template <>
struct hash<itm::Ipv4Prefix> {
  size_t operator()(const itm::Ipv4Prefix& p) const noexcept {
    // Mix length into the base address hash.
    const std::uint64_t key =
        (std::uint64_t{p.base().bits()} << 8) | p.length();
    return std::hash<std::uint64_t>{}(key);
  }
};
}  // namespace std
