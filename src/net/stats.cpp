#include "net/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace itm {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double ss = 0;
  for (const double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(ss / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Average ranks with ties sharing the mean rank.
std::vector<double> ranks_of(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const auto rx = ranks_of(x.subspan(0, n));
  const auto ry = ranks_of(y.subspan(0, n));
  return pearson(rx, ry);
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double kendall_tau(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      const double prod = dx * dy;
      if (prod > 0) ++concordant;
      else if (prod < 0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

void WeightedCdf::add(double value, double weight) {
  if (weight <= 0) return;
  samples_.emplace_back(value, weight);
  total_weight_ += weight;
  sorted_ = false;
}

void WeightedCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double WeightedCdf::fraction_at_or_below(double x) const {
  if (samples_.empty() || total_weight_ <= 0) return 0.0;
  ensure_sorted();
  double acc = 0;
  for (const auto& [value, weight] : samples_) {
    if (value > x) break;
    acc += weight;
  }
  return acc / total_weight_;
}

double WeightedCdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_weight_;
  double acc = 0;
  for (const auto& [value, weight] : samples_) {
    acc += weight;
    if (acc >= target) return value;
  }
  return samples_.back().first;
}

std::vector<std::pair<double, double>> WeightedCdf::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  const double lo = samples_.front().first;
  const double hi = samples_.back().first;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi
                    : lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(points - 1);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

double gini(std::span<const double> masses) {
  if (masses.size() < 2) return 0.0;
  std::vector<double> sorted(masses.begin(), masses.end());
  std::sort(sorted.begin(), sorted.end());
  double cumulative = 0, weighted_sum = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    weighted_sum += sorted[i] * static_cast<double>(i + 1);
  }
  if (cumulative <= 0) return 0.0;
  const double n = static_cast<double>(sorted.size());
  return (2.0 * weighted_sum) / (n * cumulative) - (n + 1.0) / n;
}

double top_k_share(std::span<const double> masses, std::size_t k) {
  if (masses.empty() || k == 0) return 0.0;
  std::vector<double> sorted(masses.begin(), masses.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0) return 0.0;
  k = std::min(k, sorted.size());
  const double top = std::accumulate(sorted.begin(), sorted.begin() + static_cast<long>(k), 0.0);
  return top / total;
}

}  // namespace itm
