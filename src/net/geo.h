// Geographic primitives: lat/lon points and great-circle distance.
#pragma once

#include <cmath>
#include <numbers>
#include <ostream>
#include <string>

namespace itm {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
  friend std::ostream& operator<<(std::ostream& os, const GeoPoint& p) {
    return os << "(" << p.lat_deg << "," << p.lon_deg << ")";
  }
};

// Great-circle distance in kilometers (haversine, mean Earth radius).
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b);

// Speed-of-light-in-fiber lower bound for one-way latency, in milliseconds.
// Fiber refractive index ~1.47 => ~204 km/ms; real paths add ~30% stretch.
[[nodiscard]] double min_rtt_ms(const GeoPoint& a, const GeoPoint& b);

}  // namespace itm
