// Strongly-typed integer identifiers used across the itm libraries.
//
// Raw integers invite accidental cross-assignment (an AS number used where a
// city id was meant). Each identifier gets its own distinct type with an
// explicit constructor and value() accessor; comparison and hashing are
// provided so the types work in standard containers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace itm {

// CRTP-free tagged id: distinct Tag => distinct type.
template <typename Tag, typename Rep = std::uint32_t>
class TaggedId {
 public:
  using rep_type = Rep;

  TaggedId() = default;
  constexpr explicit TaggedId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    return os << id.value_;
  }

 private:
  Rep value_ = 0;
};

struct AsnTag {};
struct CityTag {};
struct CountryTag {};
struct FacilityTag {};
struct ServiceTag {};
struct HypergiantTag {};
struct PopTag {};
struct RouterTag {};
struct ResolverTag {};
struct ServerTag {};
struct IxpTag {};

// Autonomous System number.
using Asn = TaggedId<AsnTag>;
// Synthetic city identifier.
using CityId = TaggedId<CityTag>;
// Synthetic country identifier.
using CountryId = TaggedId<CountryTag>;
// Colocation facility identifier.
using FacilityId = TaggedId<FacilityTag>;
// A popular service (a web property, e.g. "video-3").
using ServiceId = TaggedId<ServiceTag>;
// A hypergiant / large content provider operating serving infrastructure.
using HypergiantId = TaggedId<HypergiantTag>;
// A point of presence (of a CDN or a public resolver).
using PopId = TaggedId<PopTag>;
// A router interface in the simulated data plane.
using RouterId = TaggedId<RouterTag>;
// A recursive resolver instance.
using ResolverId = TaggedId<ResolverTag>;
// A front-end server instance (on-net or off-net).
using ServerId = TaggedId<ServerTag>;
// An Internet exchange point.
using IxpId = TaggedId<IxpTag>;

// Canonical unordered key for an AS pair (order-independent); shared by
// link sets, link matching and pair deduplication across modules.
inline std::uint64_t asn_pair_key(Asn a, Asn b) {
  const auto lo = a.value() < b.value() ? a.value() : b.value();
  const auto hi = a.value() < b.value() ? b.value() : a.value();
  return (std::uint64_t{lo} << 32) | hi;
}

}  // namespace itm

namespace std {
template <typename Tag, typename Rep>
struct hash<itm::TaggedId<Tag, Rep>> {
  size_t operator()(itm::TaggedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
