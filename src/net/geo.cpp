#include "net/geo.h"

namespace itm {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = std::numbers::pi / 180.0;
// Effective signal speed in fiber, km per ms, including typical path stretch.
constexpr double kFiberKmPerMs = 204.0 / 1.3;
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2);
  const double s2 = std::sin(dlon / 2);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double min_rtt_ms(const GeoPoint& a, const GeoPoint& b) {
  return 2.0 * haversine_km(a, b) / kFiberKmPerMs;
}

}  // namespace itm
