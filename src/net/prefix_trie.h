// Binary (Patricia-style path of single bits) trie keyed by IPv4 prefixes,
// supporting exact-match insert/lookup and longest-prefix match — the core
// lookup structure for routing tables, address allocation and ECS scoping.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"

namespace itm {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  // Inserts or overwrites the value at an exact prefix.
  void insert(const Ipv4Prefix& prefix, Value value) {
    Node* node = descend_create(prefix);
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  // Exact-match lookup.
  [[nodiscard]] const Value* find(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      node = node->child(bit_at(prefix.base(), depth));
      if (node == nullptr) return nullptr;
    }
    return node->value ? &*node->value : nullptr;
  }

  [[nodiscard]] Value* find(const Ipv4Prefix& prefix) {
    return const_cast<Value*>(std::as_const(*this).find(prefix));
  }

  // Longest-prefix match for a single address. Returns the matched prefix and
  // value, or nullopt when no covering prefix exists.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, std::reference_wrapper<const Value>>>
  longest_match(Ipv4Addr addr) const {
    const Node* node = root_.get();
    const Node* best = node->value ? node : nullptr;
    std::uint8_t best_depth = 0;
    for (std::uint8_t depth = 0; depth < 32; ++depth) {
      node = node->child(bit_at(addr, depth));
      if (node == nullptr) break;
      if (node->value) {
        best = node;
        best_depth = static_cast<std::uint8_t>(depth + 1);
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Ipv4Prefix(addr, best_depth),
                          std::cref(*best->value));
  }

  // Longest *covering* prefix of a prefix (the most-specific entry whose
  // prefix contains the query prefix, possibly the query itself).
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, std::reference_wrapper<const Value>>>
  longest_covering(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    const Node* best = node->value ? node : nullptr;
    std::uint8_t best_depth = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      node = node->child(bit_at(prefix.base(), depth));
      if (node == nullptr) break;
      if (node->value) {
        best = node;
        best_depth = static_cast<std::uint8_t>(depth + 1);
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Ipv4Prefix(prefix.base(), best_depth),
                          std::cref(*best->value));
  }

  // Removes an exact prefix; returns true when an entry was removed.
  bool erase(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      node = node->child(bit_at(prefix.base(), depth));
      if (node == nullptr) return false;
    }
    if (!node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  // Visits every (prefix, value) in lexicographic prefix order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(root_.get(), Ipv4Prefix(Ipv4Addr(0), 0), fn);
  }

  // All entries as a vector (mostly for tests and reporting).
  [[nodiscard]] std::vector<std::pair<Ipv4Prefix, Value>> entries() const {
    std::vector<std::pair<Ipv4Prefix, Value>> out;
    out.reserve(size_);
    for_each([&](const Ipv4Prefix& p, const Value& v) { out.emplace_back(p, v); });
    return out;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> children[2];

    [[nodiscard]] const Node* child(int bit) const {
      return children[bit].get();
    }
    [[nodiscard]] Node* child(int bit) { return children[bit].get(); }
  };

  static int bit_at(Ipv4Addr addr, std::uint8_t depth) {
    return (addr.bits() >> (31 - depth)) & 1u;
  }

  Node* descend_create(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = bit_at(prefix.base(), depth);
      if (node->children[bit] == nullptr) {
        node->children[bit] = std::make_unique<Node>();
      }
      node = node->children[bit].get();
    }
    return node;
  }

  template <typename Fn>
  static void visit(const Node* node, Ipv4Prefix at, Fn& fn) {
    if (node->value) fn(at, *node->value);
    for (int bit = 0; bit < 2; ++bit) {
      if (node->children[bit]) {
        const std::uint8_t len = static_cast<std::uint8_t>(at.length() + 1);
        const std::uint32_t next_base =
            at.base().bits() |
            (static_cast<std::uint32_t>(bit) << (32 - len));
        visit(node->children[bit].get(), Ipv4Prefix(Ipv4Addr(next_base), len),
              fn);
      }
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace itm
