// Path-compacted binary trie keyed by IPv4 prefixes, supporting exact-match
// insert/lookup and longest-prefix match — the core lookup structure for
// routing tables, address allocation and ECS scoping.
//
// Storage is an index-linked arena (one contiguous std::vector of nodes)
// instead of heap-allocated node-per-bit chains: each node carries the full
// compressed prefix it represents, so a /24 entry under an otherwise empty
// branch costs one node, not twenty-four. This is what lets ~1M announced
// prefixes fit in tens of megabytes (DESIGN.md decision #10); the previous
// one-node-per-bit layout spent ~30x more memory and a pointer dereference
// per bit of every lookup.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"

namespace itm {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() { clear(); }

  // Inserts or overwrites the value at an exact prefix.
  void insert(const Ipv4Prefix& prefix, Value value) {
    Node& node = nodes_[descend_create(prefix)];
    if (!node.value) ++size_;
    node.value = std::move(value);
  }

  // Exact-match lookup.
  [[nodiscard]] const Value* find(const Ipv4Prefix& prefix) const {
    const std::uint32_t idx = descend_exact(prefix);
    if (idx == kNil) return nullptr;
    const Node& node = nodes_[idx];
    return node.value ? &*node.value : nullptr;
  }

  [[nodiscard]] Value* find(const Ipv4Prefix& prefix) {
    return const_cast<Value*>(std::as_const(*this).find(prefix));
  }

  // Longest-prefix match for a single address. Returns the matched prefix and
  // value, or nullopt when no covering prefix exists.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, std::reference_wrapper<const Value>>>
  longest_match(Ipv4Addr addr) const {
    return walk_covering(addr, 32);
  }

  // Longest *covering* prefix of a prefix (the most-specific entry whose
  // prefix contains the query prefix, possibly the query itself).
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, std::reference_wrapper<const Value>>>
  longest_covering(const Ipv4Prefix& prefix) const {
    return walk_covering(prefix.base(), prefix.length());
  }

  // Removes an exact prefix; returns true when an entry was removed. The
  // node stays in the arena as a valueless branch point (the arena is
  // append-only); lookups treat it as absent.
  bool erase(const Ipv4Prefix& prefix) {
    const std::uint32_t idx = descend_exact(prefix);
    if (idx == kNil || !nodes_[idx].value) return false;
    nodes_[idx].value.reset();
    --size_;
    return true;
  }

  // Visits every (prefix, value) in lexicographic (base, length) order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(kRoot, fn);
  }

  // All entries as a vector (mostly for tests and reporting).
  [[nodiscard]] std::vector<std::pair<Ipv4Prefix, Value>> entries() const {
    std::vector<std::pair<Ipv4Prefix, Value>> out;
    out.reserve(size_);
    for_each([&](const Ipv4Prefix& p, const Value& v) { out.emplace_back(p, v); });
    return out;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Arena nodes currently allocated (compacted branch points, not bits).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // Pre-sizes the arena for `entries` prefixes. A path-compressed trie
  // needs at most 2*entries+1 nodes (every entry adds one leaf and at most
  // one fork), so a bulk loader that knows its count avoids both the
  // doubling-growth copies and the final capacity slack.
  void reserve(std::size_t entries) { nodes_.reserve(2 * entries + 1); }

  // Heap bytes held by the arena; the substrate-scale bench reports this as
  // bytes/prefix.
  [[nodiscard]] std::size_t memory_bytes() const {
    return nodes_.capacity() * sizeof(Node);
  }

  void clear() {
    nodes_.clear();
    nodes_.push_back(Node{Ipv4Prefix(Ipv4Addr(0), 0), {kNil, kNil}, {}});
    size_ = 0;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kRoot = 0;

  struct Node {
    // The full (compressed) prefix this node represents.
    Ipv4Prefix prefix;
    // Children diverge at bit `prefix.length()`; each child's prefix is a
    // strict extension of this one.
    std::uint32_t children[2];
    std::optional<Value> value;
  };

  static int bit_at(Ipv4Addr addr, std::uint8_t depth) {
    return (addr.bits() >> (31 - depth)) & 1u;
  }

  // Length of the longest common prefix of a and b, capped at max_len.
  static std::uint8_t common_prefix_len(Ipv4Addr a, Ipv4Addr b,
                                        std::uint8_t max_len) {
    const std::uint32_t diff = a.bits() ^ b.bits();
    const int lead = diff == 0 ? 32 : std::countl_zero(diff);
    return static_cast<std::uint8_t>(
        lead < static_cast<int>(max_len) ? lead : max_len);
  }

  // Walks to the node whose prefix equals `prefix` exactly, or kNil.
  [[nodiscard]] std::uint32_t descend_exact(const Ipv4Prefix& prefix) const {
    std::uint32_t idx = kRoot;
    while (true) {
      const Node& node = nodes_[idx];
      if (node.prefix.length() == prefix.length()) {
        return node.prefix == prefix ? idx : kNil;
      }
      const std::uint32_t child =
          node.children[bit_at(prefix.base(), node.prefix.length())];
      if (child == kNil) return kNil;
      const Node& c = nodes_[child];
      // The child's compressed label must lie on the query's path.
      if (c.prefix.length() > prefix.length() ||
          !c.prefix.contains(prefix.base())) {
        return kNil;
      }
      idx = child;
    }
  }

  // Deepest valued node whose prefix covers `addr` with length <= max_len.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, std::reference_wrapper<const Value>>>
  walk_covering(Ipv4Addr addr, std::uint8_t max_len) const {
    const Node* best = nullptr;
    std::uint32_t idx = kRoot;
    while (idx != kNil) {
      const Node& node = nodes_[idx];
      if (node.value) best = &node;
      if (node.prefix.length() >= max_len) break;
      const std::uint32_t child =
          node.children[bit_at(addr, node.prefix.length())];
      if (child == kNil) break;
      const Node& c = nodes_[child];
      if (c.prefix.length() > max_len || !c.prefix.contains(addr)) break;
      idx = child;
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(best->prefix, std::cref(*best->value));
  }

  // Finds or creates the node for `prefix`, splitting compressed edges as
  // needed. Returns its arena index.
  std::uint32_t descend_create(const Ipv4Prefix& prefix) {
    std::uint32_t idx = kRoot;
    while (true) {
      // Re-read through nodes_ each step: new_node() may reallocate.
      if (nodes_[idx].prefix.length() == prefix.length()) return idx;
      const int bit = bit_at(prefix.base(), nodes_[idx].prefix.length());
      const std::uint32_t child = nodes_[idx].children[bit];
      if (child == kNil) {
        const std::uint32_t leaf = new_node(prefix);
        nodes_[idx].children[bit] = leaf;
        return leaf;
      }
      const Ipv4Prefix child_prefix = nodes_[child].prefix;
      const std::uint8_t common = common_prefix_len(
          child_prefix.base(), prefix.base(),
          std::min(child_prefix.length(), prefix.length()));
      if (common == child_prefix.length()) {
        // The child's label lies fully on our path; descend.
        idx = child;
        continue;
      }
      if (common == prefix.length()) {
        // `prefix` sits on the edge above the child: new node takes the
        // child as its single descendant.
        const std::uint32_t mid = new_node(prefix);
        nodes_[mid].children[bit_at(child_prefix.base(), prefix.length())] =
            child;
        nodes_[idx].children[bit] = mid;
        return mid;
      }
      // The paths diverge inside the edge: split at the fork, then hang both
      // the old child and a fresh leaf for `prefix` off the fork node.
      const std::uint32_t fork =
          new_node(Ipv4Prefix(prefix.base(), common));
      const std::uint32_t leaf = new_node(prefix);
      nodes_[fork].children[bit_at(child_prefix.base(), common)] = child;
      nodes_[fork].children[bit_at(prefix.base(), common)] = leaf;
      nodes_[idx].children[bit] = fork;
      return leaf;
    }
  }

  std::uint32_t new_node(const Ipv4Prefix& prefix) {
    nodes_.push_back(Node{prefix, {kNil, kNil}, {}});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  // Preorder, bit-0 child before bit-1: yields (base, length) sorted order,
  // the same order std::map<Ipv4Prefix, V> iterates in.
  template <typename Fn>
  void visit(std::uint32_t idx, Fn& fn) const {
    const Node& node = nodes_[idx];
    if (node.value) fn(node.prefix, *node.value);
    for (const std::uint32_t child : node.children) {
      if (child != kNil) visit(child, fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace itm
