#include "net/executor.h"

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace itm::net {

namespace {

// Set while the current thread is executing a shard function; used to
// reject nested parallel_for calls, which could deadlock the pool.
thread_local bool tl_in_shard = false;

// Per-shard wall-time histogram bounds: 0.1 ms .. 1 s in decades (µs).
constexpr std::uint64_t kShardMicrosBounds[] = {100, 1000, 10000, 100000,
                                                1000000};

// Shards concurrently executing across all executors; its high-water mark is
// the closest analogue of "queue depth" for this pool (claimed-but-running
// work). Scheduling-dependent, so recorded in the wall-clock section.
std::atomic<std::int64_t> g_active_shards{0};

// Times one shard and feeds the executor's wall-clock metrics (clock access
// via obs::Stopwatch — the allowlisted home for wall time). The event
// *counts* (batches, shards) are deterministic — shard geometry is a pure
// function of n — and recorded by the caller; only durations and concurrency
// live here.
class ShardTimer {
 public:
  explicit ShardTimer(std::uint64_t* micros_out)
      : micros_out_(micros_out),
        active_(g_active_shards.fetch_add(1, std::memory_order_relaxed) + 1) {
    obs::gauge_max("executor.active_shards_hwm", active_,
                   obs::Determinism::kWallClock);
  }
  ~ShardTimer() {
    g_active_shards.fetch_sub(1, std::memory_order_relaxed);
    const std::uint64_t micros = watch_.elapsed_us();
    if (micros_out_ != nullptr) *micros_out_ = micros;
    obs::observe("executor.shard_micros", kShardMicrosBounds, micros,
                 obs::Determinism::kWallClock);
    obs::progress().add_completed(1);
  }
  ShardTimer(const ShardTimer&) = delete;
  ShardTimer& operator=(const ShardTimer&) = delete;

 private:
  std::uint64_t* micros_out_;
  obs::Stopwatch watch_;
  std::int64_t active_;
};

// Post-batch health rollup, attributed to the pipeline stage in flight (or
// "executor" outside any StageScope). Imbalance is max/mean shard wall time:
// 1.0 = perfectly balanced, large = one straggler shard dominated the batch.
// All wall-clock: shard durations are scheduling artifacts.
void publish_batch_health(const std::vector<std::uint64_t>& shard_micros) {
  if (shard_micros.empty()) return;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (const std::uint64_t v : shard_micros) {
    max = v > max ? v : max;
    sum += v;
  }
  auto& shard_us = obs::metrics().quantile("executor.shard_us");
  for (const std::uint64_t v : shard_micros) shard_us.observe(v);
  const char* stage = obs::current_stage();
  const std::string prefix = stage[0] != '\0' ? stage : "executor";
  obs::count(prefix + ".exec_batches", 1, obs::Determinism::kWallClock);
  obs::count(prefix + ".exec_shards", shard_micros.size(),
             obs::Determinism::kWallClock);
  if (sum > 0) {
    const double mean = static_cast<double>(sum) /
                        static_cast<double>(shard_micros.size());
    obs::gauge_max(
        prefix + ".imbalance_x1000",
        static_cast<std::int64_t>(static_cast<double>(max) * 1000.0 / mean),
        obs::Determinism::kWallClock);
  }
}

}  // namespace

struct Executor::Batch {
  std::size_t n = 0;
  std::size_t shard_count = 0;
  const std::function<void(const Shard&)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  // One slot per shard; each written by exactly one thread.
  std::vector<std::exception_ptr> errors;
  // Per-shard wall micros (same one-writer-per-slot discipline); feeds the
  // post-batch imbalance rollup.
  std::vector<std::uint64_t> shard_micros;
  std::mutex done_mutex;
  std::condition_variable done_cv;
};

Executor::Executor(std::size_t threads)
    : threads_(threads == 0 ? hardware_threads() : threads) {
  workers_.reserve(threads_ > 0 ? threads_ - 1 : 0);
  for (std::size_t i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t Executor::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Executor& Executor::serial() {
  static Executor instance(1);
  return instance;
}

std::size_t Executor::shard_count_for(std::size_t n) {
  constexpr std::size_t kMaxShards = 64;
  return n < kMaxShards ? n : kMaxShards;
}

void Executor::run_shards(Batch& batch) {
  for (;;) {
    const std::size_t index = batch.next.fetch_add(1);
    if (index >= batch.shard_count) return;
    const std::size_t base = batch.n / batch.shard_count;
    const std::size_t rem = batch.n % batch.shard_count;
    Shard shard;
    shard.index = index;
    shard.count = batch.shard_count;
    shard.begin = index * base + (index < rem ? index : rem);
    shard.end = shard.begin + base + (index < rem ? 1 : 0);
    tl_in_shard = true;
    try {
      const ShardTimer timer(&batch.shard_micros[index]);
      obs::Span span("executor.shard");
      (*batch.fn)(shard);
    } catch (...) {
      batch.errors[index] = std::current_exception();
    }
    tl_in_shard = false;
    if (batch.completed.fetch_add(1) + 1 == batch.shard_count) {
      const std::lock_guard lock(batch.done_mutex);
      batch.done_cv.notify_all();
    }
  }
}

void Executor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && generation_ != seen);
      });
      if (stop_) return;
      batch = batch_;
      seen = generation_;
    }
    run_shards(*batch);
  }
}

void Executor::parallel_for(std::size_t n,
                            const std::function<void(const Shard&)>& fn) {
  if (tl_in_shard) {
    throw std::logic_error(
        "Executor::parallel_for: nested parallelism is not supported");
  }
  if (n == 0) return;
  const std::size_t shard_count = shard_count_for(n);
  // Deterministic batch bookkeeping: shard geometry depends only on n, so
  // these counts are identical for every thread count. The thread count
  // itself is a run property, not an event count.
  obs::count("executor.batches");
  obs::count("executor.shards", shard_count);
  obs::count("executor.items", n);
  obs::gauge_set("executor.threads", static_cast<std::int64_t>(threads_),
                 obs::Determinism::kWallClock);
  obs::progress().add_expected(shard_count);
  if (obs::recorder().enabled()) {
    char fields[96];
    std::snprintf(fields, sizeof fields, "\"items\": %zu, \"shards\": %zu", n,
                  shard_count);
    obs::recorder().event("executor.batch", fields);
  }
  if (threads_ == 1 || shard_count == 1) {
    // Inline serial path: identical shard geometry, no pool involvement.
    const std::size_t base = n / shard_count;
    const std::size_t rem = n % shard_count;
    std::vector<std::uint64_t> shard_micros(shard_count, 0);
    for (std::size_t index = 0; index < shard_count; ++index) {
      Shard shard;
      shard.index = index;
      shard.count = shard_count;
      shard.begin = index * base + (index < rem ? index : rem);
      shard.end = shard.begin + base + (index < rem ? 1 : 0);
      tl_in_shard = true;
      try {
        const ShardTimer timer(&shard_micros[index]);
        obs::Span span("executor.shard");
        fn(shard);
      } catch (...) {
        tl_in_shard = false;
        throw;
      }
      tl_in_shard = false;
    }
    publish_batch_health(shard_micros);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->shard_count = shard_count;
  batch->fn = &fn;
  batch->errors.resize(shard_count);
  batch->shard_micros.resize(shard_count, 0);
  {
    const std::lock_guard lock(mutex_);
    batch_ = batch;
    ++generation_;
  }
  cv_.notify_all();
  // The calling thread works alongside the pool.
  run_shards(*batch);
  {
    std::unique_lock lock(batch->done_mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->completed.load() == batch->shard_count;
    });
  }
  {
    const std::lock_guard lock(mutex_);
    batch_.reset();
  }
  publish_batch_health(batch->shard_micros);
  for (const auto& error : batch->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace itm::net
