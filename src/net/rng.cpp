#include "net/rng.h"

#include <algorithm>
#include <numbers>
#include <unordered_set>

namespace itm {

namespace {

// SplitMix64: seeds the xoshiro state from a single 64-bit seed.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

namespace {

// Bijective-ish mixer used to derive child seeds: SplitMix64 finalizer over
// the (seed, label) combination. Pure integer arithmetic, so the derived
// streams are identical on every platform.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t label) {
  std::uint64_t z = seed ^ (label * 0xd1342543de82ef95ull +
                            0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

Rng Rng::fork(std::uint64_t stream_id) {
  // Mix the stream id with fresh output so forks are independent.
  std::uint64_t mix = next_u64() ^ (0xd1342543de82ef95ull * (stream_id + 1));
  return Rng(mix);
}

Rng Rng::split(std::uint64_t label) const {
  return Rng(mix_seed(seed_, label));
}

Rng Rng::split(std::string_view label) const {
  // FNV-1a, 64-bit: simple, platform-stable string hash.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : label) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return split(hash);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  // Subtract in unsigned space: hi - lo can exceed INT64_MAX.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 2^64 range: every uint64 is valid.
  const std::uint64_t draw = span == 0 ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double rate) {
  assert(rate > 0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload
  // generation at large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0;
  for (const double w : weights) total += w;
  assert(total > 0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sampling into a set.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::size_t candidate = next_below(n);
    if (chosen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : exponent_(exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

double ZipfSampler::pmf(std::size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace itm
