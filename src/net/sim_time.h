// Simulated wall-clock time and diurnal activity shaping.
//
// Simulation time is seconds from the experiment epoch. The diurnal model
// maps (time, longitude) to a local activity multiplier, peaking in the local
// evening, which drives both the traffic ground truth and the IP ID velocity
// experiment.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace itm {

// Seconds since experiment epoch.
using SimTime = std::uint64_t;

constexpr SimTime kSecondsPerMinute = 60;
constexpr SimTime kSecondsPerHour = 3600;
constexpr SimTime kSecondsPerDay = 86400;

// Local solar hour-of-day in [0, 24) at the given longitude.
[[nodiscard]] inline double local_hour(SimTime t, double lon_deg) {
  const double utc_hour =
      static_cast<double>(t % kSecondsPerDay) / kSecondsPerHour;
  double h = utc_hour + lon_deg / 15.0;
  h = std::fmod(h, 24.0);
  if (h < 0) h += 24.0;
  return h;
}

// Relative user activity multiplier as a function of local hour. Smooth
// sinusoidal day/night curve peaking at 21:00 local with trough ~4:30, mean
// 1.0 over a full day: a(h) = 1 + depth * cos(2*pi*(h - peak)/24).
[[nodiscard]] inline double diurnal_multiplier(double local_hour_of_day,
                                               double depth = 0.75) {
  constexpr double kPeakHour = 21.0;
  return 1.0 + depth * std::cos(2.0 * std::numbers::pi *
                                (local_hour_of_day - kPeakHour) / 24.0);
}

// Convenience: activity multiplier at simulation time t for longitude lon.
[[nodiscard]] inline double diurnal_at(SimTime t, double lon_deg,
                                       double depth = 0.75) {
  return diurnal_multiplier(local_hour(t, lon_deg), depth);
}

}  // namespace itm
