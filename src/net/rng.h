// Deterministic random number generation for reproducible experiments.
//
// All randomness in itm flows through Rng so that any experiment is exactly
// reproducible from its seed. The engine is xoshiro256** (public domain,
// Blackman & Vigna), which is fast and has no observable statistical flaws
// at our scales. Rng also provides the distribution helpers the generators
// need (Zipf, power-law, lognormal, weighted choice) so callers do not reach
// for <random> distributions whose output differs across standard libraries.
#pragma once

#include <cassert>
#include <cstdint>
#include <cmath>
#include <span>
#include <string_view>
#include <vector>

namespace itm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  // Copying a generator to initialize a new stream (Rng local = parent;) is
  // fine — the copy is a fresh value. Re-pointing an existing generator at
  // another one's state (a = b;) is almost always a determinism bug: the
  // idiom shows up when a shard tries to "reset" a shared generator instead
  // of deriving its own stream with split(). Copy-assignment is therefore
  // deleted; use split()/fork() to derive streams, or move-assign from an
  // rvalue (rng = parent.split(i);), which stays allowed.
  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  void reseed(std::uint64_t seed);

  // Derives an independent child generator; use to give each subsystem its
  // own stream so that adding draws in one does not perturb another.
  // fork() consumes parent state, so the child depends on how much the
  // parent has already drawn; prefer split() when shards must be
  // schedule-independent.
  [[nodiscard]] Rng fork(std::uint64_t stream_id);

  // Derives an independent child stream as a pure function of this
  // generator's construction seed and `label` — the result is identical no
  // matter how much the parent (or any sibling) has been consumed, and
  // stable across platforms (integer arithmetic only). This is the stream
  // derivation parallel shards use: one split per work item makes results
  // independent of shard boundaries, thread count and execution order.
  // Splits nest: r.split(a).split(b) is itself stable.
  [[nodiscard]] Rng split(std::uint64_t label) const;

  // String-labelled stream (FNV-1a 64-bit hash of the label).
  [[nodiscard]] Rng split(std::string_view label) const;

  // The seed this generator was constructed/reseeded with (split() derives
  // children from it, not from the evolving state).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Uniform over the full uint64 range.
  std::uint64_t next_u64();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  bool bernoulli(double p);

  // Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  double exponential(double rate);

  // Pareto with minimum xm and shape alpha.
  double pareto(double xm, double alpha);

  // Poisson-distributed count (inversion for small mean, PTRS-style
  // normal approximation fallback for large mean).
  std::uint64_t poisson(double mean);

  // Index in [0, weights.size()) with probability proportional to weight.
  std::size_t weighted_index(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_below(i)]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t state_[4] = {};
  std::uint64_t seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Zipf sampler over ranks {0, .., n-1} with exponent s: P(k) ~ 1/(k+1)^s.
// Precomputes the CDF; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

  // Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t k) const;

  std::size_t sample(Rng& rng) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace itm
