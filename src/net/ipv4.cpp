#include "net/ipv4.h"

#include <charconv>

namespace itm {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t bits = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255 || next == p) return std::nullopt;
    bits = (bits << 8) | value;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr(bits);
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((bits_ >> shift) & 0xff);
    if (shift > 0) out += '.';
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4Addr a) {
  return os << a.to_string();
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  const char* p = text.data() + slash + 1;
  const char* end = text.data() + text.size();
  auto [next, ec] = std::from_chars(p, end, length);
  if (ec != std::errc{} || next != end || length > 32) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<std::uint8_t>(length));
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Ipv4Prefix& p) {
  return os << p.to_string();
}

}  // namespace itm
