// Deduplicating, deterministic string table (interner).
//
// Table order is first-insertion order, and every producer interns in a
// deterministic (ASN-/record-sorted) sequence, so the table contents are a
// pure function of the data — the property the `.itms` snapshot's string
// section relies on for byte-identical exports across thread counts.
//
// Shared between the SoA topology::AsTable (which interns AS and country
// names once at generation time) and the serve snapshot writer (which seeds
// its table from the topology's and appends measurement-derived strings such
// as inferred operator names on top).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace itm::net {

class StringTable {
 public:
  // Sentinel for "no string" references.
  static constexpr std::uint32_t kNoRef = 0xffffffffu;

  // Returns the table index for `s`, inserting it on first sight.
  std::uint32_t intern(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const auto ref = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    index_.emplace(std::string(s), ref);
    return ref;
  }

  // Lookup of an already-interned string; kNoRef when absent.
  [[nodiscard]] std::uint32_t find(std::string_view s) const {
    const auto it = index_.find(s);
    return it == index_.end() ? kNoRef : it->second;
  }

  [[nodiscard]] const std::string& at(std::uint32_t ref) const {
    return strings_[ref];
  }
  [[nodiscard]] std::size_t size() const { return strings_.size(); }
  [[nodiscard]] const std::vector<std::string>& strings() const {
    return strings_;
  }

  // Moves the table contents out (the snapshot writer's final step).
  [[nodiscard]] std::vector<std::string> take() {
    index_.clear();
    return std::move(strings_);
  }

  // Approximate heap bytes (bench accounting: interned names are the
  // string-heavy part of the per-AS layout).
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t total = strings_.capacity() * sizeof(std::string);
    for (const auto& s : strings_) {
      if (s.size() >= sizeof(std::string)) total += s.capacity() + 1;
    }
    // Index nodes: owned key + ref + tree overhead, roughly.
    total += index_.size() * (sizeof(void*) * 4 + sizeof(std::uint32_t) +
                              sizeof(std::string));
    return total;
  }

 private:
  std::vector<std::string> strings_;
  // The index owns key copies (table entries may relocate as the vector
  // grows); std::map keeps lookup deterministic and heterogeneous.
  std::map<std::string, std::uint32_t, std::less<>> index_;
};

}  // namespace itm::net
