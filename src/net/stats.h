// Statistical helpers used by the inference layer and the benchmark
// harnesses: summary statistics, correlation (Pearson & Spearman), ordinary
// least squares, and — centrally for this paper — weighted empirical CDFs.
//
// The paper's thesis is that unweighted CDFs over paths/networks mislead;
// WeightedCdf lets every analysis be run both ways so benches can show the
// contrast the paper calls out.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace itm {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

// Pearson product-moment correlation; returns 0 for degenerate input.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

// Ordinary least squares y = slope*x + intercept.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

// Kendall tau-a over two equally-long vectors (used to score rank agreement
// between inferred activity and ground truth).
[[nodiscard]] double kendall_tau(std::span<const double> x,
                                 std::span<const double> y);

// Empirical CDF over weighted samples. With unit weights this is the
// classic unweighted CDF the paper rails against; with traffic/user weights
// it is the traffic-weighted view the ITM enables.
class WeightedCdf {
 public:
  void add(double value, double weight = 1.0);

  // Fraction of total weight at values <= x. Empty CDF returns 0.
  [[nodiscard]] double fraction_at_or_below(double x) const;

  // Value at quantile q in [0,1] (weighted). Empty CDF returns 0.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double total_weight() const { return total_weight_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

  // Evenly spaced (value, cumulative fraction) points for printing curves.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points = 20) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<std::pair<double, double>> samples_;  // (value, weight)
  mutable bool sorted_ = true;
  double total_weight_ = 0.0;
};

// Gini coefficient of a set of non-negative masses — used to report traffic
// concentration ("a handful of providers carry most traffic").
[[nodiscard]] double gini(std::span<const double> masses);

// Fraction of total mass held by the k largest entries.
[[nodiscard]] double top_k_share(std::span<const double> masses, std::size_t k);

}  // namespace itm
