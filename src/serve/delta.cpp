#include "serve/delta.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/format.h"
#include "serve/snapshot.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"

namespace itm::serve {

namespace {

constexpr std::uint8_t kOpAdd = 1;
constexpr std::uint8_t kOpRemove = 2;
constexpr std::uint8_t kOpReplace = 3;

// Doubles compare by bit pattern: the delta's contract is *byte* identity
// of the applied result, and operator== would conflate 0.0 with -0.0.
std::uint64_t f64_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

// ---- Per-record traits: key, equality, encode, decode ----
//
// The payload encodings mirror snapshot_writer.cpp exactly; a record added
// or replaced by a delta serializes into the rebuilt snapshot through the
// same writer, so these only need to round-trip, not to define the layout.

struct CountryTraits {
  using Key = std::uint32_t;
  static Key key(const CountryRecord& r) { return r.country; }
  static bool equal(const CountryRecord& a, const CountryRecord& b) {
    return a.country == b.country && a.name_ref == b.name_ref;
  }
  static void encode(ByteWriter& w, const CountryRecord& r) {
    w.u32(r.country);
    w.u32(r.name_ref);
  }
  static CountryRecord decode(ByteReader& r) {
    CountryRecord rec;
    rec.country = r.u32();
    rec.name_ref = r.u32();
    return rec;
  }
  static void encode_key(ByteWriter& w, Key k) { w.u32(k); }
  static Key decode_key(ByteReader& r) { return r.u32(); }
};

struct AsTraits {
  using Key = std::uint32_t;
  static Key key(const AsRecord& r) { return r.asn; }
  static bool equal(const AsRecord& a, const AsRecord& b) {
    return a.asn == b.asn && a.name_ref == b.name_ref &&
           a.country == b.country && a.type == b.type && a.flags == b.flags &&
           f64_bits(a.activity) == f64_bits(b.activity);
  }
  static void encode(ByteWriter& w, const AsRecord& r) {
    w.u32(r.asn);
    w.u32(r.name_ref);
    w.u32(r.country);
    w.u32(r.type);
    w.u32(r.flags);
    w.f64(r.activity);
  }
  static AsRecord decode(ByteReader& r) {
    AsRecord rec;
    rec.asn = r.u32();
    rec.name_ref = r.u32();
    rec.country = r.u32();
    rec.type = r.u32();
    rec.flags = r.u32();
    rec.activity = r.f64();
    return rec;
  }
  static void encode_key(ByteWriter& w, Key k) { w.u32(k); }
  static Key decode_key(ByteReader& r) { return r.u32(); }
};

struct PrefixTraits {
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  static Key key(const PrefixRecord& r) { return {r.base, r.length}; }
  static bool equal(const PrefixRecord& a, const PrefixRecord& b) {
    return a.base == b.base && a.length == b.length &&
           a.origin_asn == b.origin_asn;
  }
  static void encode(ByteWriter& w, const PrefixRecord& r) {
    w.u32(r.base);
    w.u32(r.length);
    w.u32(r.origin_asn);
  }
  static PrefixRecord decode(ByteReader& r) {
    PrefixRecord rec;
    rec.base = r.u32();
    rec.length = r.u32();
    rec.origin_asn = r.u32();
    return rec;
  }
  static void encode_key(ByteWriter& w, Key k) {
    w.u32(k.first);
    w.u32(k.second);
  }
  static Key decode_key(ByteReader& r) {
    const std::uint32_t base = r.u32();
    return {base, r.u32()};
  }
};

struct EndpointTraits {
  using Key = std::uint32_t;
  static Key key(const EndpointRecord& r) { return r.address; }
  static bool equal(const EndpointRecord& a, const EndpointRecord& b) {
    return a.address == b.address && a.origin_asn == b.origin_asn &&
           a.operator_ref == b.operator_ref && a.flags == b.flags &&
           f64_bits(a.lat_deg) == f64_bits(b.lat_deg) &&
           f64_bits(a.lon_deg) == f64_bits(b.lon_deg);
  }
  static void encode(ByteWriter& w, const EndpointRecord& r) {
    w.u32(r.address);
    w.u32(r.origin_asn);
    w.u32(r.operator_ref);
    w.u32(r.flags);
    w.f64(r.lat_deg);
    w.f64(r.lon_deg);
  }
  static EndpointRecord decode(ByteReader& r) {
    EndpointRecord rec;
    rec.address = r.u32();
    rec.origin_asn = r.u32();
    rec.operator_ref = r.u32();
    rec.flags = r.u32();
    rec.lat_deg = r.f64();
    rec.lon_deg = r.f64();
    return rec;
  }
  static void encode_key(ByteWriter& w, Key k) { w.u32(k); }
  static Key decode_key(ByteReader& r) { return r.u32(); }
};

struct MappingTraits {
  using Key = std::uint32_t;
  static Key key(const ServiceMapping& r) { return r.service; }
  static bool equal(const ServiceMapping& a, const ServiceMapping& b) {
    if (a.service != b.service || a.entries.size() != b.entries.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
      const MappingEntry& x = a.entries[i];
      const MappingEntry& y = b.entries[i];
      if (x.prefix_base != y.prefix_base ||
          x.prefix_length != y.prefix_length || x.address != y.address) {
        return false;
      }
    }
    return true;
  }
  static void encode(ByteWriter& w, const ServiceMapping& r) {
    w.u32(r.service);
    w.u32(static_cast<std::uint32_t>(r.entries.size()));
    for (const MappingEntry& e : r.entries) {
      w.u32(e.prefix_base);
      w.u32(e.prefix_length);
      w.u32(e.address);
    }
  }
  static ServiceMapping decode(ByteReader& r) {
    ServiceMapping rec;
    rec.service = r.u32();
    const std::uint32_t count = r.u32();
    // Bound reserve by what the payload can actually hold: 12 bytes/entry.
    rec.entries.reserve(std::min<std::size_t>(count, r.remaining() / 12));
    for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
      MappingEntry e;
      e.prefix_base = r.u32();
      e.prefix_length = r.u32();
      e.address = r.u32();
      rec.entries.push_back(e);
    }
    return rec;
  }
  static void encode_key(ByteWriter& w, Key k) { w.u32(k); }
  static Key decode_key(ByteReader& r) { return r.u32(); }
};

bool links_equal(const std::vector<LinkRecord>& a,
                 const std::vector<LinkRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b ||
        f64_bits(a[i].score) != f64_bits(b[i].score)) {
      return false;
    }
  }
  return true;
}

// ---- Diff side: two-pointer merge of key-sorted sections into op lists ----

template <typename Traits, typename Rec>
void diff_section(ByteWriter& w, const std::vector<Rec>& base,
                  const std::vector<Rec>& target) {
  ByteWriter ops;
  std::uint32_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < base.size() || j < target.size()) {
    if (j == target.size() ||
        (i < base.size() && Traits::key(base[i]) < Traits::key(target[j]))) {
      ops.u8(kOpRemove);
      Traits::encode_key(ops, Traits::key(base[i]));
      ++count;
      ++i;
    } else if (i == base.size() ||
               Traits::key(target[j]) < Traits::key(base[i])) {
      ops.u8(kOpAdd);
      Traits::encode(ops, target[j]);
      ++count;
      ++j;
    } else {
      if (!Traits::equal(base[i], target[j])) {
        ops.u8(kOpReplace);
        Traits::encode(ops, target[j]);
        ++count;
      }
      ++i;
      ++j;
    }
  }
  w.u32(count);
  w.bytes(ops.buffer());
}

// ---- Apply side: strict merge of base + ops into the target section ----

struct ApplyState {
  std::string error;
  bool failed = false;
  std::uint64_t ops = 0;

  bool fail(const std::string& message) {
    if (!failed) {
      failed = true;
      error = message;
    }
    return false;
  }
};

template <typename Traits, typename Rec>
bool apply_section(ApplyState& st, ByteReader& r, const char* what,
                   std::vector<Rec>& records) {
  const std::uint32_t count = r.u32();
  if (r.failed()) return st.fail(std::string(what) + " ops truncated");
  std::vector<Rec> out;
  out.reserve(records.size());
  std::size_t i = 0;
  bool have_prev_key = false;
  typename Traits::Key prev_key{};
  for (std::uint32_t n = 0; n < count; ++n) {
    const std::uint8_t op = r.u8();
    typename Traits::Key key{};
    Rec rec{};
    if (op == kOpRemove) {
      key = Traits::decode_key(r);
    } else if (op == kOpAdd || op == kOpReplace) {
      rec = Traits::decode(r);
      key = Traits::key(rec);
    } else {
      return st.fail(std::string(what) + " ops contain an unknown op code");
    }
    if (r.failed()) return st.fail(std::string(what) + " ops truncated");
    if (have_prev_key && !(prev_key < key)) {
      return st.fail(std::string(what) + " ops not sorted by key");
    }
    prev_key = key;
    have_prev_key = true;

    // Copy base records below the op key through untouched.
    while (i < records.size() && Traits::key(records[i]) < key) {
      out.push_back(std::move(records[i]));
      ++i;
    }
    const bool present = i < records.size() && Traits::key(records[i]) == key;
    if (op == kOpAdd) {
      if (present) {
        return st.fail(std::string(what) + " add op targets an existing key");
      }
      out.push_back(std::move(rec));
    } else if (op == kOpRemove) {
      if (!present) {
        return st.fail(std::string(what) + " remove op targets a missing key");
      }
      ++i;
    } else {
      if (!present) {
        return st.fail(std::string(what) +
                       " replace op targets a missing key");
      }
      out.push_back(std::move(rec));
      ++i;
    }
    ++st.ops;
  }
  while (i < records.size()) {
    out.push_back(std::move(records[i]));
    ++i;
  }
  records = std::move(out);
  return true;
}

// Skips (diff) or reads (apply/info) an op list without interpreting it —
// used by read_delta_info to structurally validate all sections.
template <typename Traits>
bool scan_section(ApplyState& st, ByteReader& r, const char* what) {
  const std::uint32_t count = r.u32();
  if (r.failed()) return st.fail(std::string(what) + " ops truncated");
  for (std::uint32_t n = 0; n < count; ++n) {
    const std::uint8_t op = r.u8();
    if (op == kOpRemove) {
      (void)Traits::decode_key(r);
    } else if (op == kOpAdd || op == kOpReplace) {
      (void)Traits::decode(r);
    } else {
      return st.fail(std::string(what) + " ops contain an unknown op code");
    }
    if (r.failed()) return st.fail(std::string(what) + " ops truncated");
    ++st.ops;
  }
  return true;
}

void write_string_table(ByteWriter& w, const std::vector<std::string>& table) {
  w.u32(static_cast<std::uint32_t>(table.size()));
  for (const std::string& s : table) {
    w.u32(static_cast<std::uint32_t>(s.size()));
    w.bytes(s);
  }
}

bool read_string_table(ApplyState& st, ByteReader& r,
                       std::vector<std::string>& table) {
  const std::uint32_t count = r.u32();
  if (r.failed()) return st.fail("string replacement truncated");
  table.clear();
  table.reserve(std::min<std::size_t>(count, r.remaining() / 4));
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = r.u32();
    const std::string_view bytes = r.bytes(len);
    if (r.failed()) return st.fail("string replacement truncated");
    table.emplace_back(bytes);
  }
  return true;
}

void write_link_table(ByteWriter& w, const std::vector<LinkRecord>& links) {
  w.u32(static_cast<std::uint32_t>(links.size()));
  for (const LinkRecord& link : links) {
    w.u32(link.a);
    w.u32(link.b);
    w.f64(link.score);
  }
}

bool read_link_table(ApplyState& st, ByteReader& r,
                     std::vector<LinkRecord>& links) {
  const std::uint32_t count = r.u32();
  if (r.failed()) return st.fail("link replacement truncated");
  links.clear();
  links.reserve(std::min<std::size_t>(count, r.remaining() / 16));
  for (std::uint32_t i = 0; i < count; ++i) {
    LinkRecord link;
    link.a = r.u32();
    link.b = r.u32();
    link.score = r.f64();
    if (r.failed()) return st.fail("link replacement truncated");
    links.push_back(link);
  }
  return true;
}

constexpr std::size_t kDeltaHeaderSize = 8 + 4 + 4 + 8;

// Validates the delta container (magic/version/endian/checksum) and
// returns the tail on success.
std::optional<std::string_view> delta_tail(std::string_view bytes,
                                           std::string* error) {
  const auto fail = [&](const char* message) -> std::optional<std::string_view> {
    if (error != nullptr) *error = message;
    obs::count("serve.delta.rejected");
    return std::nullopt;
  };
  if (bytes.size() < kDeltaHeaderSize) {
    return fail("file shorter than delta header");
  }
  ByteReader header(bytes.substr(0, kDeltaHeaderSize));
  const auto magic = header.bytes(kDeltaMagic.size());
  if (magic != std::string_view(kDeltaMagic.data(), kDeltaMagic.size())) {
    return fail("bad magic (not an .itmsd delta)");
  }
  if (header.u32() != kDeltaVersion) return fail("unsupported delta version");
  if (header.u32() != kEndianMarker) return fail("endianness marker mismatch");
  const std::uint64_t checksum = header.u64();
  const std::string_view tail = bytes.substr(kDeltaHeaderSize);
  if (fnv1a64(tail) != checksum) {
    return fail("checksum mismatch (corrupted delta)");
  }
  return tail;
}

std::string serialize(const Snapshot& snap) {
  std::ostringstream os;
  write_snapshot(snap, os);
  return std::move(os).str();
}

}  // namespace

std::optional<std::string> diff_snapshots(std::string_view base_bytes,
                                          std::string_view target_bytes,
                                          std::string* error) {
  std::string parse_error;
  const auto base = read_snapshot(base_bytes, &parse_error);
  if (!base) {
    if (error != nullptr) *error = "base snapshot: " + parse_error;
    return std::nullopt;
  }
  const auto target = read_snapshot(target_bytes, &parse_error);
  if (!target) {
    if (error != nullptr) *error = "target snapshot: " + parse_error;
    return std::nullopt;
  }

  ByteWriter tail;
  tail.u64(snapshot_checksum(base_bytes));
  tail.u64(snapshot_checksum(target_bytes));
  tail.u64(target->seed);
  tail.u64(target->addresses_probed);
  tail.u64(target->observed_links);

  if (base->strings == target->strings) {
    tail.u8(0);
  } else {
    tail.u8(1);
    write_string_table(tail, target->strings);
  }
  diff_section<CountryTraits>(tail, base->countries, target->countries);
  diff_section<AsTraits>(tail, base->ases, target->ases);
  diff_section<PrefixTraits>(tail, base->prefixes, target->prefixes);
  diff_section<EndpointTraits>(tail, base->endpoints, target->endpoints);
  diff_section<MappingTraits>(tail, base->mappings, target->mappings);
  if (links_equal(base->links, target->links)) {
    tail.u8(0);
  } else {
    tail.u8(1);
    write_link_table(tail, target->links);
  }

  ByteWriter out;
  out.bytes(std::string_view(kDeltaMagic.data(), kDeltaMagic.size()));
  out.u32(kDeltaVersion);
  out.u32(kEndianMarker);
  out.u64(fnv1a64(tail.buffer()));
  out.bytes(tail.buffer());
  obs::count("serve.delta.diffs");
  obs::count("serve.delta.bytes_written", out.size());
  return out.buffer();
}

std::optional<std::string> apply_delta(std::string_view base_bytes,
                                       std::string_view delta_bytes,
                                       std::string* error) {
  const auto tail = delta_tail(delta_bytes, error);
  if (!tail) return std::nullopt;

  std::string parse_error;
  auto snap = read_snapshot(base_bytes, &parse_error);
  if (!snap) {
    if (error != nullptr) *error = "base snapshot: " + parse_error;
    return std::nullopt;
  }

  ApplyState st;
  const auto fail = [&](const std::string& message)
      -> std::optional<std::string> {
    if (error != nullptr) *error = message;
    obs::count("serve.delta.rejected");
    return std::nullopt;
  };

  ByteReader r(*tail);
  const std::uint64_t base_checksum = r.u64();
  const std::uint64_t target_checksum = r.u64();
  if (r.failed()) return fail("delta tail truncated");
  if (base_checksum != snapshot_checksum(base_bytes)) {
    return fail("delta targets a different base snapshot");
  }
  snap->seed = r.u64();
  snap->addresses_probed = r.u64();
  snap->observed_links = r.u64();

  const std::uint8_t strings_flag = r.u8();
  if (r.failed()) return fail("delta tail truncated");
  if (strings_flag > 1) return fail("bad string replacement flag");
  if (strings_flag == 1 && !read_string_table(st, r, snap->strings)) {
    return fail(st.error);
  }
  if (!apply_section<CountryTraits>(st, r, "country", snap->countries) ||
      !apply_section<AsTraits>(st, r, "AS", snap->ases) ||
      !apply_section<PrefixTraits>(st, r, "prefix", snap->prefixes) ||
      !apply_section<EndpointTraits>(st, r, "endpoint", snap->endpoints) ||
      !apply_section<MappingTraits>(st, r, "mapping", snap->mappings)) {
    return fail(st.error);
  }
  const std::uint8_t links_flag = r.u8();
  if (r.failed()) return fail("delta tail truncated");
  if (links_flag > 1) return fail("bad link replacement flag");
  if (links_flag == 1 && !read_link_table(st, r, snap->links)) {
    return fail(st.error);
  }
  if (!r.exhausted()) return fail("trailing bytes after delta ops");

  // The proof obligation: the rebuilt snapshot must BE the target, byte for
  // byte. Serialization is canonical, so checksum equality is bytes
  // equality; anything the op checks missed dies here.
  std::string rebuilt = serialize(*snap);
  if (snapshot_checksum(rebuilt) != target_checksum) {
    return fail("applied result does not match the delta's target checksum");
  }
  obs::count("serve.delta.applies");
  obs::count("serve.delta.ops_applied", st.ops);
  return rebuilt;
}

std::optional<DeltaInfo> read_delta_info(std::string_view delta_bytes,
                                         std::string* error) {
  const auto tail = delta_tail(delta_bytes, error);
  if (!tail) return std::nullopt;

  ApplyState st;
  const auto fail = [&](const std::string& message) -> std::optional<DeltaInfo> {
    if (error != nullptr) *error = message;
    obs::count("serve.delta.rejected");
    return std::nullopt;
  };

  ByteReader r(*tail);
  DeltaInfo info;
  info.base_checksum = r.u64();
  info.target_checksum = r.u64();
  info.target_seed = r.u64();
  (void)r.u64();  // addresses_probed
  (void)r.u64();  // observed_links
  const std::uint8_t strings_flag = r.u8();
  if (r.failed()) return fail("delta tail truncated");
  if (strings_flag > 1) return fail("bad string replacement flag");
  info.replaces_strings = strings_flag == 1;
  if (strings_flag == 1) {
    std::vector<std::string> scratch;
    if (!read_string_table(st, r, scratch)) return fail(st.error);
  }
  if (!scan_section<CountryTraits>(st, r, "country") ||
      !scan_section<AsTraits>(st, r, "AS") ||
      !scan_section<PrefixTraits>(st, r, "prefix") ||
      !scan_section<EndpointTraits>(st, r, "endpoint") ||
      !scan_section<MappingTraits>(st, r, "mapping")) {
    return fail(st.error);
  }
  const std::uint8_t links_flag = r.u8();
  if (r.failed()) return fail("delta tail truncated");
  if (links_flag > 1) return fail("bad link replacement flag");
  info.replaces_links = links_flag == 1;
  if (links_flag == 1) {
    std::vector<LinkRecord> scratch;
    if (!read_link_table(st, r, scratch)) return fail(st.error);
  }
  if (!r.exhausted()) return fail("trailing bytes after delta ops");
  info.ops = st.ops;
  return info;
}

}  // namespace itm::serve
